# Header self-containment gate (-DSFCPART_CHECK_HEADERS=ON).
#
# For every header under src/ this generates a one-line translation unit
# that includes it first, and compiles them all into one object library.
# A header that silently leans on its includer's context (missing its own
# #include, missing #pragma once dependencies) fails this target with a
# plain compiler error naming the header. sfplint's pragma-once pass covers
# the static half of header hygiene; this covers the semantic half.

file(GLOB_RECURSE sfcpart_check_headers CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.hpp)

set(sfcpart_header_check_tus "")
foreach(hdr IN LISTS sfcpart_check_headers)
  file(RELATIVE_PATH hdr_rel ${CMAKE_SOURCE_DIR}/src ${hdr})
  string(REPLACE "/" "_" tu_stem ${hdr_rel})
  string(REPLACE ".hpp" "" tu_stem ${tu_stem})
  set(tu ${CMAKE_BINARY_DIR}/header_checks/check_${tu_stem}.cpp)
  set(tu_content "// generated: standalone-compile check for ${hdr_rel}\n#include \"${hdr_rel}\"\n")
  # Rewrite only on content change so reconfigures stay incremental.
  set(existing "")
  if(EXISTS ${tu})
    file(READ ${tu} existing)
  endif()
  if(NOT existing STREQUAL tu_content)
    file(WRITE ${tu} "${tu_content}")
  endif()
  list(APPEND sfcpart_header_check_tus ${tu})
endforeach()

add_library(sfcpart_header_check OBJECT ${sfcpart_header_check_tus})
target_include_directories(sfcpart_header_check PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(sfcpart_header_check PRIVATE sfcpart_warnings)
