#!/usr/bin/env bash
# Repo lint gate: two sfcpart-specific greps that encode hard project rules,
# plus clang-tidy (profile in .clang-tidy) when the binary is available.
# Exit 0 = clean. Run from anywhere; paths resolve against the repo root.
#
#   tools/lint.sh            # repo lints + clang-tidy if installed
#   tools/lint.sh --no-tidy  # repo lints only
#   tools/lint.sh FILE...    # restrict clang-tidy to the given sources
set -u
cd "$(dirname "$0")/.."

fail=0

# ---------------------------------------------------------------------------
# Lint 1: no bare blocking runtime calls outside the timeout-aware layers.
#
# world::recv / barrier / allreduce block until a peer answers; a rank that
# calls them directly can deadlock the whole virtual-rank world when a peer
# dies. All blocking calls in src/runtime and src/seam must live in
#   * src/runtime/world.cpp      (the implementation itself), or
#   * src/seam/exchange.cpp      (the timeout-aware halo-exchange wrapper),
# or carry an explicit `lint: blocking-ok` annotation on the same line
# explaining why a hang is impossible or recoverable there.
# ---------------------------------------------------------------------------
blocking='\.recv\(|\.barrier\(|\.allreduce_|world::recv'
hits=$(grep -rnE "$blocking" src/runtime src/seam \
         --include='*.cpp' --include='*.hpp' \
       | grep -v -e '^src/runtime/world\.cpp:' -e '^src/seam/exchange\.cpp:' \
       | grep -v 'lint: blocking-ok' \
       | grep -vE '^[^:]+:[0-9]+: *(//|\*)')   # pure comment lines
if [ -n "$hits" ]; then
  echo "lint: blocking world calls outside the timeout-aware wrappers" >&2
  echo "      (route through seam::exchange or annotate with 'lint: blocking-ok — <reason>'):" >&2
  echo "$hits" >&2
  fail=1
fi

# ---------------------------------------------------------------------------
# Lint 2: no raw assert() in library code — use the contract tiers.
#
# assert() vanishes under NDEBUG with no diagnostics and no observability
# hook. Library/bench/tool code must use SFP_REQUIRE / SFP_ASSERT /
# SFP_AUDIT from util/contract.hpp instead. Tests may use their own
# framework's CHECK macros (and <cassert> if they really want).
# ---------------------------------------------------------------------------
hits=$(grep -rnE '(^|[^_[:alnum:]])assert[[:space:]]*\(|<cassert>|"assert\.h"' \
         src bench tools --include='*.cpp' --include='*.hpp' \
       | grep -v 'static_assert' \
       | grep -vE '^[^:]+:[0-9]+: *(//|\*)')
if [ -n "$hits" ]; then
  echo "lint: raw assert() in library code — use SFP_REQUIRE/SFP_ASSERT/SFP_AUDIT" >&2
  echo "$hits" >&2
  fail=1
fi

# ---------------------------------------------------------------------------
# clang-tidy (optional): needs the binary and a compile database.
# ---------------------------------------------------------------------------
run_tidy=1
files=()
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    *) files+=("$arg") ;;
  esac
done

if [ "$run_tidy" -eq 1 ]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "lint: clang-tidy not installed — skipping static analysis stage"
  else
    db=""
    for d in build build-asan build-tsan; do
      [ -f "$d/compile_commands.json" ] && db="$d" && break
    done
    if [ -z "$db" ]; then
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || fail=1
      db=build
    fi
    if [ ${#files[@]} -eq 0 ]; then
      mapfile -t files < <(git ls-files 'src/**/*.cpp')
    fi
    if ! clang-tidy -p "$db" --quiet "${files[@]}"; then
      echo "lint: clang-tidy reported errors" >&2
      fail=1
    fi
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "lint: OK"
fi
exit "$fail"
