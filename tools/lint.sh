#!/usr/bin/env bash
# Repo lint gate — a thin wrapper around sfplint (the project-native static
# analyzer: layering, determinism, contract discipline, header hygiene, and
# the blocking-call / raw-assert rules, one suppression convention:
# `// lint: <rule>-ok — <reason>`), plus clang-tidy when installed.
# Exit 0 = clean. Run from anywhere; paths resolve against the repo root.
#
#   tools/lint.sh                  # sfplint + clang-tidy if installed
#   tools/lint.sh --no-tidy        # sfplint only
#   tools/lint.sh --rule=SLUG[,..] # run only the named sfplint rules
#   tools/lint.sh --changed[=REV]  # differential: only findings on lines
#                                  # changed since REV (default HEAD)
#   tools/lint.sh FILE...          # restrict clang-tidy to the given sources
#
# sfplint is built on demand in a tiny bootstrap configure (build-lint/,
# -DSFCPART_LINT_TOOL_ONLY=ON: no tests/benches, no GTest lookup), so the
# gate runs before — and much faster than — the main toolchain build.
set -u
cd "$(dirname "$0")/.."

fail=0

run_tidy=1
files=()
sfplint_extra=()
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --rule=*) sfplint_extra+=("$arg") ;;
    --changed) sfplint_extra+=("--diff-base=HEAD") ;;
    --changed=*) sfplint_extra+=("--diff-base=${arg#--changed=}") ;;
    *) files+=("$arg") ;;
  esac
done

# ---------------------------------------------------------------------------
# sfplint: build (bootstrap configure, cached) and scan the repo.
# ---------------------------------------------------------------------------
sfplint_bin=""
for candidate in build/tools/sfplint build-lint/tools/sfplint; do
  [ -x "$candidate" ] && sfplint_bin="$candidate" && break
done
if [ -z "$sfplint_bin" ]; then
  if ! cmake -B build-lint -S . -DSFCPART_LINT_TOOL_ONLY=ON > /dev/null; then
    echo "lint: bootstrap configure failed (cmake -B build-lint" \
         "-DSFCPART_LINT_TOOL_ONLY=ON); rerun without > /dev/null to see" \
         "the toolchain error — the gate cannot run" >&2
    exit 1
  fi
  if ! cmake --build build-lint -j "$(nproc 2>/dev/null || echo 4)" \
    --target sfplint_cli > /dev/null; then
    echo "lint: failed to build sfplint (cmake --build build-lint" \
         "--target sfplint_cli); the gate cannot run" >&2
    exit 1
  fi
  sfplint_bin=build-lint/tools/sfplint
fi
if ! "$sfplint_bin" --root=. --quiet ${sfplint_extra[@]+"${sfplint_extra[@]}"}; then
  echo "lint: sfplint reported findings (catalogue: sfplint --list-rules;" >&2
  echo "      suppress justified cases inline with 'lint: <rule>-ok — <reason>')" >&2
  fail=1
fi

if [ "$run_tidy" -eq 1 ]; then
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "lint: clang-tidy not installed — skipping static analysis stage"
  else
    db=""
    for d in build build-asan build-tsan; do
      [ -f "$d/compile_commands.json" ] && db="$d" && break
    done
    if [ -z "$db" ]; then
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || fail=1
      db=build
    fi
    if [ ${#files[@]} -eq 0 ]; then
      mapfile -t files < <(git ls-files 'src/**/*.cpp')
    fi
    if ! clang-tidy -p "$db" --quiet "${files[@]}"; then
      echo "lint: clang-tidy reported errors" >&2
      fail=1
    fi
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "lint: OK"
fi
exit "$fail"
