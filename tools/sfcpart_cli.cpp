// sfcpart — command-line driver for the library.
//
//   sfcpart info      --ne=16
//   sfcpart partition --ne=16 --nproc=768 [--method=sfc|rb|kway|tv|rcb]
//                     [--order=peano|hilbert|interleaved] [--schedule=SPEC]
//                     [--out=part.csv]
//   sfcpart curve     --ne=8 [--out=curve.csv] [--art]
//   sfcpart figure    --ne=8 [--metric=speedup|gflops] [--out=figure]
//   sfcpart trace     --ne=8 --nproc=24 [--steps=4] [--out=BASE]
//
// `figure` sweeps the equal-load processor counts, evaluates SFC vs the
// best METIS-family partition on the modeled machine, and writes
// gnuplot-ready artifacts (<out>.dat/<out>.gp). `trace` runs an observed
// advection step loop and writes <BASE>.trace.json (load in Perfetto /
// chrome://tracing) and <BASE>.metrics.json — see docs/observability.md.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/cube_curve.hpp"
#include "io/trace_io.hpp"
#include "obs/obs.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "io/csv.hpp"
#include "io/gnuplot.hpp"
#include "io/partition_io.hpp"
#include "io/vtk.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/geometric.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "runtime/fault_json.hpp"
#include "runtime/world.hpp"
#include "seam/advection.hpp"
#include "seam/chaos.hpp"
#include "seam/distributed.hpp"
#include "sfc/curve.hpp"
#include "sfc/parse.hpp"
#include "sfc/render.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace sfp;

int usage() {
  std::fprintf(stderr,
               "usage: sfcpart "
               "<info|partition|curve|figure|validate|faults|chaos|trace> "
               "[--flags]\n"
               "  info      --ne=N\n"
               "  partition --ne=N --nproc=P [--method=sfc|rb|kway|tv|rcb] "
               "[--out=FILE] [--vtk=FILE]\n"
               "            [--schedule=SPEC]  (explicit face schedule, "
               "e.g. 'p,p,h' or 'hilbert*4'; side must equal Ne)\n"
               "  curve     --ne=N [--out=FILE] [--art]\n"
               "  figure    --ne=N [--metric=speedup|gflops] [--out=BASE]\n"
               "  validate  --ne=N --in=FILE   (metrics of a saved "
               "partition)\n"
               "  faults    --ne=N --nproc=P [--kill-rank=R|R@ROUND] "
               "[--kill-op=K] [--steps=S] [--seed=X]\n"
               "            [--plan=FILE] [--reliable[=0|1]] "
               "[--transport=inproc|socket]\n"
               "            (kill a rank mid-run, recover by curve "
               "re-slicing, report counters;\n"
               "            --plan replays a saved fault-plan JSON instead "
               "of the synthetic kill;\n"
               "            --transport=socket runs over loopback TCP and "
               "forces the reliable channel)\n"
               "  chaos     [--trials=T] [--seed=X] [--faults=F] "
               "[--stream=S] [--ne=N] [--nproc=P] [--steps=S]\n"
               "            [--out=BASE] [--no-shrink] "
               "[--transport=inproc|socket]\n"
               "            (soak the reliable transport under T randomized "
               "fault schedules;\n"
               "            --stream adds byte-stream faults per schedule; "
               "failures are\n"
               "            ddmin-shrunk and written as BASE.failK.json "
               "reproducers)\n"
               "            [--partition] [--kills=K] [--nparts=P] "
               "[--kill-rank=R@ROUND]\n"
               "            (partition mode: soak the distributed SFC "
               "partitioner with K rank\n"
               "            kills per schedule — survivors must match the "
               "serial plan exactly,\n"
               "            sub-quorum schedules must abort cleanly; "
               "--kill-rank runs one\n"
               "            directed trial killing rank R at its ROUND-th "
               "op)\n"
               "  trace     --ne=N --nproc=P [--steps=S] [--out=BASE]\n"
               "            (observed advection run; writes "
               "BASE.trace.json + BASE.metrics.json)\n");
  return 2;
}

bool parse_transport(const cli_args& args,
                     runtime::transport_backend* backend) {
  const std::string name = args.get_or("transport", "inproc");
  if (name == "inproc") {
    *backend = runtime::transport_backend::inproc;
    return true;
  }
  if (name == "socket") {
    *backend = runtime::transport_backend::socket;
    return true;
  }
  std::fprintf(stderr, "unknown --transport=%s (want inproc or socket)\n",
               name.c_str());
  return false;
}

sfc::nesting_order order_from(const std::string& name) {
  if (name == "hilbert") return sfc::nesting_order::hilbert_first;
  if (name == "interleaved") return sfc::nesting_order::interleaved;
  return sfc::nesting_order::peano_first;
}

int cmd_info(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  const mesh::cubed_sphere mesh(ne);
  std::printf("Ne=%d: K=%d elements, SFC-compatible: %s (extended: %s)\n", ne,
              mesh.num_elements(), core::sfc_supports(ne) ? "yes" : "no",
              core::sfc_supports_extended(ne) ? "yes" : "no");
  std::printf("equal-load processor counts:");
  for (const int p : core::equal_load_nprocs(ne)) std::printf(" %d", p);
  std::printf("\n");
  return 0;
}

int cmd_partition(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 24));
  const std::string method = args.get_or("method", "sfc");
  const mesh::cubed_sphere mesh(ne);
  const auto dual = mesh.dual_graph();
  if (nproc < 1 || nproc > mesh.num_elements()) {
    std::fprintf(stderr, "nproc must be in [1, %d]\n", mesh.num_elements());
    return 2;
  }

  partition::partition part;
  if (method == "sfc") {
    core::cube_curve curve;
    if (args.has("schedule")) {
      // Explicit face schedule, e.g. --schedule=p,p,h or hilbert*4.
      sfc::schedule sched;
      std::string err;
      if (!sfc::try_parse_schedule(args.get_or("schedule", ""), sched,
                                   &err)) {
        std::fprintf(stderr, "bad --schedule: %s\n", err.c_str());
        return 2;
      }
      if (sfc::side_of(sched) != ne) {
        std::fprintf(stderr,
                     "--schedule side %d does not match --ne=%d\n",
                     sfc::side_of(sched), ne);
        return 2;
      }
      curve = core::build_cube_curve(mesh, sched);
    } else if (!core::sfc_supports_extended(ne)) {
      std::fprintf(stderr,
                   "Ne=%d is not 2^n 3^m 5^p; SFC does not apply — use "
                   "--method=rb|kway|tv|rcb\n",
                   ne);
      return 2;
    } else {
      // The paper's factor set honors --order; factor-5 meshes use the
      // extended schedule (largest factor first).
      curve = core::sfc_supports(ne)
                  ? core::build_cube_curve(
                        mesh, order_from(args.get_or("order", "peano")))
                  : core::build_cube_curve_extended(mesh);
    }
    part = core::sfc_partition(curve, nproc);
  } else if (method == "rcb") {
    std::vector<mgp::point3> centers(
        static_cast<std::size_t>(mesh.num_elements()));
    for (int e = 0; e < mesh.num_elements(); ++e) {
      const mesh::vec3 c = mesh.element_center_sphere(e);
      centers[static_cast<std::size_t>(e)] = {c.x, c.y, c.z};
    }
    part = mgp::recursive_coordinate_bisection(centers, {}, nproc);
  } else {
    mgp::options opt;
    if (method == "rb") opt.algo = mgp::method::recursive_bisection;
    else if (method == "kway") opt.algo = mgp::method::kway;
    else if (method == "tv") opt.algo = mgp::method::kway_volume;
    else return usage();
    part = mgp::partition_graph(dual, nproc, opt);
  }

  const auto m = partition::compute_metrics(dual, part);
  const auto time = perf::simulate_step(dual, part, perf::machine_model{},
                                        perf::seam_workload{});
  table t({"metric", "value"});
  t.new_row().add("method").add(method);
  t.new_row().add("K / Nproc").add(std::to_string(mesh.num_elements()) + " / " +
                                   std::to_string(nproc));
  t.new_row().add("LB(nelemd)").add(m.lb_elems, 4);
  t.new_row().add("LB(spcv)").add(m.lb_comm, 4);
  t.new_row().add("edgecut").add(m.edgecut_edges);
  t.new_row().add("max peers").add(m.max_peers);
  t.new_row().add("modeled time (usec/step)").add(time.total_s * 1e6, 1);
  std::printf("%s", t.str().c_str());

  if (args.has("out")) {
    const std::string path = args.get_or("out", "partition.csv");
    io::save_partition_file(path, part);
    std::printf("partition written to %s\n", path.c_str());
  }
  if (args.has("vtk")) {
    const std::string path = args.get_or("vtk", "partition.vtk");
    io::vtk_cell_field owner{"owner", {}};
    owner.values.assign(part.part_of.begin(), part.part_of.end());
    io::write_vtk_file(path, mesh, {owner});
    std::printf("vtk written to %s (open in ParaView)\n", path.c_str());
  }
  return 0;
}

int cmd_curve(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  const mesh::cubed_sphere mesh(ne);
  if (!core::sfc_supports_extended(ne)) {
    std::fprintf(stderr, "Ne=%d is not 2^n 3^m 5^p\n", ne);
    return 2;
  }
  const auto curve = core::build_cube_curve_extended(mesh);
  std::printf("curve: %s, %s\n",
              sfc::schedule_name(curve.face_schedule).c_str(),
              curve.closed ? "closed" : "open");
  if (args.has("art") && ne <= 32) {
    const auto base = sfc::generate(curve.face_schedule);
    std::printf("%s", sfc::render_curve(base, ne).c_str());
  }
  if (args.has("out")) {
    io::csv_writer w({"position", "element", "face", "i", "j"});
    for (std::size_t pos = 0; pos < curve.order.size(); ++pos) {
      const auto r = mesh.element_of(curve.order[pos]);
      w.new_row()
          .add(static_cast<std::int64_t>(pos))
          .add(curve.order[pos])
          .add(r.face)
          .add(r.i)
          .add(r.j);
    }
    const std::string path = args.get_or("out", "curve.csv");
    w.write_file(path);
    std::printf("curve written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_figure(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  const std::string metric = args.get_or("metric", "speedup");
  const std::string out = args.get_or("out", "figure_ne" + std::to_string(ne));
  const mesh::cubed_sphere mesh(ne);
  if (!core::sfc_supports_extended(ne)) {
    std::fprintf(stderr, "Ne=%d is not SFC-compatible\n", ne);
    return 2;
  }
  const auto dual = mesh.dual_graph();
  const auto curve = core::build_cube_curve_extended(mesh);
  const perf::machine_model machine;
  const perf::seam_workload workload;
  const auto serial =
      perf::serial_step(mesh.num_elements(), machine, workload);

  io::plot_series sfc_series{"SFC", {}, {}};
  io::plot_series mgp_series{"best METIS-family", {}, {}};
  for (const int nproc : core::equal_load_nprocs(ne)) {
    if (nproc < 2) continue;
    const auto sfc_part = core::sfc_partition(curve, nproc);
    const auto t_sfc = perf::simulate_step(dual, sfc_part, machine, workload);
    double best = 0;
    for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc)) {
      (void)algo;
      const auto tm = perf::simulate_step(dual, part, machine, workload);
      if (best == 0 || tm.total_s < best) best = tm.total_s;
    }
    const auto value = [&](double total_s) {
      if (metric == "gflops")
        return static_cast<double>(mesh.num_elements()) *
               workload.flops_per_element() / total_s / 1e9;
      return serial.total_s / total_s;
    };
    sfc_series.x.push_back(nproc);
    sfc_series.y.push_back(value(t_sfc.total_s));
    mgp_series.x.push_back(nproc);
    mgp_series.y.push_back(value(best));
  }

  io::plot_spec spec;
  spec.title = (metric == "gflops" ? "Sustained Gflop/s" : "Speedup") +
               std::string(", K=") + std::to_string(mesh.num_elements());
  spec.ylabel = metric;
  spec.series = {sfc_series, mgp_series};
  io::write_gnuplot(out, spec);
  std::printf("wrote %s.dat and %s.gp (run: gnuplot %s.gp)\n", out.c_str(),
              out.c_str(), out.c_str());
  return 0;
}

int cmd_validate(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  if (!args.has("in")) return usage();
  const std::string path = args.get_or("in", "");
  const mesh::cubed_sphere mesh(ne);
  const auto part = io::load_partition_file(path);
  if (part.part_of.size() != static_cast<std::size_t>(mesh.num_elements())) {
    std::fprintf(stderr,
                 "partition covers %zu elements but Ne=%d has %d\n",
                 part.part_of.size(), ne, mesh.num_elements());
    return 1;
  }
  const auto dual = mesh.dual_graph();
  const auto m = partition::compute_metrics(dual, part);
  const auto time = perf::simulate_step(dual, part, perf::machine_model{},
                                        perf::seam_workload{});
  table t({"metric", "value"});
  t.new_row().add("file").add(path);
  t.new_row().add("num parts").add(m.num_parts);
  t.new_row().add("all parts non-empty").add(
      partition::all_parts_nonempty(part) ? "yes" : "NO");
  t.new_row().add("LB(nelemd)").add(m.lb_elems, 4);
  t.new_row().add("LB(spcv)").add(m.lb_comm, 4);
  t.new_row().add("edgecut").add(m.edgecut_edges);
  t.new_row().add("max peers").add(m.max_peers);
  t.new_row().add("modeled time (usec/step)").add(time.total_s * 1e6, 1);
  std::printf("%s", t.str().c_str());
  return 0;
}

// "R@ROUND" -> kill rank R at its ROUND-th communication op. Returns false
// on anything that is not two decimal integers around a single '@'.
bool parse_kill_at(const std::string& text, int* rank, std::int64_t* at_op) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= text.size())
    return false;
  const std::string r = text.substr(0, at);
  const std::string op = text.substr(at + 1);
  if (r.find_first_not_of("0123456789") != std::string::npos ||
      op.find_first_not_of("0123456789") != std::string::npos)
    return false;
  *rank = std::atoi(r.c_str());
  *at_op = std::atoll(op.c_str());
  return *at_op >= 1;
}

}  // namespace

int cmd_faults(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 4));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 4));
  const int nsteps = static_cast<int>(args.get_int_or("steps", 8));
  const mesh::cubed_sphere mesh(ne);
  if (nproc < 2 || nproc > mesh.num_elements()) {
    std::fprintf(stderr, "nproc must be in [2, %d]\n", mesh.num_elements());
    return 2;
  }

  seam::resilience_options ropts;
  if (const auto plan_path = args.get("plan")) {
    ropts.faults = runtime::load_fault_plan(*plan_path);
    for (const auto& k : ropts.faults.kills) {
      if (k.rank >= nproc) {
        std::fprintf(stderr, "plan kills rank %d but the run has %d ranks\n",
                     k.rank, nproc);
        return 2;
      }
    }
  } else {
    // --kill-rank takes either a bare rank (op from --kill-op) or the
    // combined R@ROUND form shared with `sfcpart chaos`.
    int kill_rank = nproc / 2;
    std::int64_t kill_op = args.get_int_or("kill-op", 40);
    if (const auto text = args.get("kill-rank")) {
      if (text->find('@') != std::string::npos) {
        if (!parse_kill_at(*text, &kill_rank, &kill_op)) {
          std::fprintf(stderr, "--kill-rank=%s: want R@ROUND with ROUND >= 1\n",
                       text->c_str());
          return 2;
        }
      } else {
        kill_rank = static_cast<int>(args.get_int_or("kill-rank", kill_rank));
      }
    }
    if (kill_rank < 0 || kill_rank >= nproc) {
      std::fprintf(stderr, "kill-rank must be in [0, %d)\n", nproc);
      return 2;
    }
    ropts.faults.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0));
    ropts.faults.kills.push_back({kill_rank, kill_op});
  }
  // Message faults only heal in place over the reliable channel; plans that
  // carry them get it by default (a bare kill keeps the raw transport).
  ropts.reliable_transport =
      args.get_bool_or("reliable", !ropts.faults.message_faults.empty());
  if (!parse_transport(args, &ropts.backend)) return 2;
  // The socket fabric offers no raw delivery guarantee at all, so it always
  // runs under the reliable channel.
  if (ropts.backend == runtime::transport_backend::socket)
    ropts.reliable_transport = true;
  if (ropts.reliable_transport)
    ropts.reliable = seam::chaos_reliable_defaults();

  const auto curve = core::build_cube_curve(mesh);
  const auto part = core::sfc_partition(curve, nproc);
  seam::advection_model model(mesh, 4);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double dt = model.cfl_dt(0.3);

  std::printf("running %d steps of advection on %d ranks under %zu kill(s) "
              "and %zu message fault(s)%s over the %s backend...\n",
              nsteps, nproc, ropts.faults.kills.size(),
              ropts.faults.message_faults.size(),
              ropts.reliable_transport ? " (reliable transport)" : "",
              runtime::to_string(ropts.backend));
  const auto reference = seam::run_distributed(model, part, dt, nsteps);

  seam::recovery_report report;
  seam::dist_stats stats;
  const auto recovered = seam::run_distributed_resilient(
      model, curve, part, dt, nsteps, ropts, &report, &stats);

  double max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_diff = std::max(max_diff, std::abs(recovered[i] - reference[i]));

  table t({"metric", "value"});
  t.new_row().add("attempts").add(report.attempts);
  t.new_row().add("failed rank").add(report.failed_rank);
  t.new_row().add("restart step").add(report.restart_step);
  t.new_row().add("survivor ranks").add(report.final_partition.num_parts);
  t.new_row().add("moved elements").add(report.migration.moved_elements);
  t.new_row().add("moved fraction").add(report.migration.moved_fraction, 4);
  t.new_row().add("1/nproc").add(1.0 / nproc, 4);
  t.new_row().add("max |recovered - fault-free|").add(max_diff, 16);
  std::printf("%s", t.str().c_str());

  const auto& c = report.counters;
  table rt({"counter", "value"});
  rt.new_row().add("messages sent").add(c.messages_sent);
  rt.new_row().add("doubles sent").add(c.doubles_sent);
  rt.new_row().add("barriers").add(c.barriers);
  rt.new_row().add("timeouts").add(c.timeouts);
  rt.new_row().add("aborts observed").add(c.aborts_observed);
  rt.new_row().add("injected kills").add(c.injected_kills);
  rt.new_row().add("injected drops").add(c.injected_drops);
  rt.new_row().add("injected delays").add(c.injected_delays);
  rt.new_row().add("injected duplicates").add(c.injected_duplicates);
  rt.new_row().add("injected corruptions").add(c.injected_corruptions);
  rt.new_row().add("injected truncations").add(c.injected_truncations);
  rt.new_row().add("injected reorders").add(c.injected_reorders);
  std::printf("\nrobustness counters (all ranks, all attempts):\n%s",
              rt.str().c_str());

  if (ropts.reliable_transport) {
    const auto& rel = report.reliable;
    table lt({"reliable-channel counter", "value"});
    lt.new_row().add("data sent").add(rel.data_sent);
    lt.new_row().add("data received").add(rel.data_received);
    lt.new_row().add("retransmits").add(rel.retransmits);
    lt.new_row().add("corruption detected").add(rel.corruption_detected);
    lt.new_row().add("duplicates dropped").add(rel.dedup_dropped);
    lt.new_row().add("out of order").add(rel.out_of_order);
    std::printf("\n%s", lt.str().c_str());
  }
  if (ropts.backend == runtime::transport_backend::socket) {
    const auto& s = report.socket;
    table st({"socket counter", "value"});
    st.new_row().add("connects").add(s.connects);
    st.new_row().add("reconnects").add(s.reconnects);
    st.new_row().add("frames sent").add(s.frames_sent);
    st.new_row().add("frames received").add(s.frames_received);
    st.new_row().add("heartbeats sent").add(s.heartbeats_sent);
    st.new_row().add("frames rejected").add(s.frames_rejected);
    st.new_row().add("stale epoch dropped").add(s.stale_epoch_dropped);
    st.new_row().add("stream faults injected").add(s.injected_stream_faults);
    st.new_row().add("send failures").add(s.send_failures);
    std::printf("\n%s", st.str().c_str());
  }
  return max_diff < 1e-12 ? 0 : 1;
}

// Partition-mode chaos (`sfcpart chaos --partition` / `--kills` /
// `--kill-rank`): the randomized schedules — now carrying rank kills — are
// pointed at the distributed SFC partitioner, whose wall is serial parity
// through survivor regroup rather than in-place healing.
static int chaos_partition(const cli_args& args,
                           runtime::transport_backend backend) {
  seam::partition_chaos_options popts;
  popts.ne = static_cast<int>(args.get_int_or("ne", popts.ne));
  popts.nranks = static_cast<int>(args.get_int_or("nproc", popts.nranks));
  popts.nparts = static_cast<int>(args.get_int_or("nparts", popts.nparts));
  popts.backend = backend;
  const mesh::cubed_sphere mesh(popts.ne);
  if (popts.nranks < 2 || popts.nranks > mesh.num_elements()) {
    std::fprintf(stderr, "nproc must be in [2, %d]\n", mesh.num_elements());
    return 2;
  }
  const seam::partition_chaos_harness harness(popts);

  const auto print_trial = [](const seam::partition_chaos_trial& trial) {
    table t({"metric", "value"});
    t.new_row().add("passed").add(trial.passed ? 1 : 0);
    t.new_row().add("aborted").add(trial.aborted ? 1 : 0);
    t.new_row().add("recoveries").add(trial.recoveries);
    t.new_row().add("group epoch").add(
        static_cast<std::int64_t>(trial.group_epoch));
    t.new_row().add("lost ranks").add(
        static_cast<std::int64_t>(trial.lost_ranks.size()));
    t.new_row().add("injected kills").add(trial.counters.injected_kills);
    t.new_row().add("retransmits").add(trial.reliable.retransmits);
    t.new_row().add("suspicion reports").add(trial.regroup.reports_sent);
    t.new_row().add("agreement rounds").add(trial.regroup.agreement_rounds);
    std::printf("%s", t.str().c_str());
    if (!trial.passed) std::printf("FAIL: %s\n", trial.failure.c_str());
  };

  if (const auto replay = args.get("replay")) {
    std::ifstream is(*replay, std::ios::binary);
    if (!is.good()) {
      std::fprintf(stderr, "cannot open %s\n", replay->c_str());
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    const io::json_value doc = io::parse_json(text.str());
    const seam::chaos_schedule schedule = seam::chaos_schedule_from_json(
        doc.is_object() && doc.has("shrunk") ? doc.at("shrunk") : doc);
    const seam::partition_chaos_trial trial = harness.run(schedule);
    std::printf("replayed %zu fault(s) + %zu kill(s), seed %llu:\n",
                schedule.faults.size(), schedule.kills.size(),
                static_cast<unsigned long long>(schedule.seed));
    print_trial(trial);
    return trial.passed ? 0 : 1;
  }

  if (const auto text = args.get("kill-rank")) {
    // Directed single trial: one pinned kill (plus any --faults message
    // chaos) instead of a randomized soak.
    seam::chaos_kill kill;
    if (!parse_kill_at(*text, &kill.rank, &kill.at_op)) {
      std::fprintf(stderr, "--kill-rank=%s: want R@ROUND with ROUND >= 1\n",
                   text->c_str());
      return 2;
    }
    if (kill.rank < 0 || kill.rank >= popts.nranks) {
      std::fprintf(stderr, "kill-rank must be in [0, %d)\n", popts.nranks);
      return 2;
    }
    seam::chaos_schedule schedule = seam::make_chaos_schedule(
        static_cast<std::uint64_t>(args.get_int_or("seed", 1000)),
        popts.nranks, static_cast<int>(args.get_int_or("faults", 0)));
    schedule.kills.push_back(kill);
    std::printf("partitioning Ne=%d into %d parts on %d ranks (%s backend), "
                "killing rank %d at op %lld...\n",
                popts.ne, popts.nparts, popts.nranks,
                runtime::to_string(popts.backend), kill.rank,
                static_cast<long long>(kill.at_op));
    const seam::partition_chaos_trial trial = harness.run(schedule);
    print_trial(trial);
    return trial.passed ? 0 : 1;
  }

  const int trials = static_cast<int>(args.get_int_or("trials", 50));
  const int nkills = static_cast<int>(args.get_int_or("kills", 1));
  const int nfaults = static_cast<int>(args.get_int_or("faults", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1000));
  const bool shrink = !args.has("no-shrink");
  const std::string out = args.get_or("out", "chaos_partition");

  std::printf("soaking %d partition schedules of %d kill(s) + %d message "
              "fault(s) (seed %llu) over Ne=%d, %d parts, %d ranks on the "
              "%s backend...\n",
              trials, nkills, nfaults,
              static_cast<unsigned long long>(seed), popts.ne, popts.nparts,
              popts.nranks, runtime::to_string(popts.backend));
  const seam::partition_soak_report report = seam::run_partition_chaos_soak(
      harness, seed, trials, nkills, nfaults, shrink);

  table t({"metric", "value"});
  t.new_row().add("trials").add(report.trials);
  t.new_row().add("failures").add(
      static_cast<std::int64_t>(report.failures.size()));
  t.new_row().add("recovered trials").add(report.recovered_trials);
  t.new_row().add("aborted trials").add(report.aborted_trials);
  t.new_row().add("retransmits").add(report.reliable.retransmits);
  t.new_row().add("suspicion reports").add(report.regroup.reports_sent);
  t.new_row().add("agreement rounds").add(report.regroup.agreement_rounds);
  t.new_row().add("stale frames dropped").add(report.regroup.stale_dropped);
  std::printf("%s", t.str().c_str());

  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const seam::partition_soak_failure& f = report.failures[i];
    const std::string path = out + ".fail" + std::to_string(i) + ".json";
    io::write_json_file(seam::partition_soak_failure_to_json(f), path);
    std::printf("FAIL: %s\n  %zu fault(s) + %zu kill(s), shrunk to %zu + %zu "
                "— reproducer written to %s\n",
                f.trial.failure.c_str(), f.schedule.faults.size(),
                f.schedule.kills.size(), f.shrunk.faults.size(),
                f.shrunk.kills.size(), path.c_str());
  }
  if (report.failures.empty())
    std::printf("all %d schedules kept the serial-parity contract\n",
                report.trials);
  return report.failures.empty() ? 0 : 1;
}

// Chaos soak from the command line: N randomized seeded schedules through
// the reliable transport, each checked for in-place healing against the
// fault-free baseline; failures are ddmin-shrunk and written as JSON
// reproducers a later `sfcpart chaos --replay=FILE` run can rerun.
int cmd_chaos(const cli_args& args) {
  seam::chaos_options opts;
  opts.ne = static_cast<int>(args.get_int_or("ne", opts.ne));
  opts.nranks = static_cast<int>(args.get_int_or("nproc", opts.nranks));
  opts.nsteps = static_cast<int>(args.get_int_or("steps", opts.nsteps));
  if (!parse_transport(args, &opts.backend)) return 2;
  // Rank kills cannot heal in place, so any kill-carrying invocation routes
  // to the partition harness, whose contract (survivor parity or clean
  // abort) is what a kill is checked against.
  if (args.has("partition") || args.has("kills") || args.has("kill-rank"))
    return chaos_partition(args, opts.backend);
  const mesh::cubed_sphere mesh(opts.ne);
  if (opts.nranks < 2 || opts.nranks > mesh.num_elements()) {
    std::fprintf(stderr, "nproc must be in [2, %d]\n", mesh.num_elements());
    return 2;
  }
  const seam::chaos_harness harness(opts);

  if (const auto replay = args.get("replay")) {
    std::ifstream is(*replay, std::ios::binary);
    if (!is.good()) {
      std::fprintf(stderr, "cannot open %s\n", replay->c_str());
      return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();
    const io::json_value doc = io::parse_json(text.str());
    // Accept both a bare schedule and a soak reproducer (use its shrunk
    // schedule when present).
    const seam::chaos_schedule schedule = seam::chaos_schedule_from_json(
        doc.is_object() && doc.has("shrunk") ? doc.at("shrunk") : doc);
    const seam::chaos_trial trial = harness.run(schedule);
    std::printf("replayed %zu fault(s), seed %llu: %s\n",
                schedule.faults.size(),
                static_cast<unsigned long long>(schedule.seed),
                trial.passed ? "healed in place" : trial.failure.c_str());
    return trial.passed ? 0 : 1;
  }

  const int trials = static_cast<int>(args.get_int_or("trials", 50));
  const int nfaults = static_cast<int>(args.get_int_or("faults", 6));
  const int nstream = static_cast<int>(args.get_int_or("stream", 0));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 1000));
  const bool shrink = !args.has("no-shrink");
  const std::string out = args.get_or("out", "chaos");

  std::printf("soaking %d schedules of %d faults + %d stream faults "
              "(seed %llu) over Ne=%d, %d ranks, %d steps on the %s "
              "backend...\n",
              trials, nfaults, nstream,
              static_cast<unsigned long long>(seed), opts.ne, opts.nranks,
              opts.nsteps, runtime::to_string(opts.backend));
  const seam::soak_report report =
      seam::run_chaos_soak(harness, seed, trials, nfaults, shrink, nstream);

  table t({"metric", "value"});
  t.new_row().add("trials").add(report.trials);
  t.new_row().add("failures").add(static_cast<std::int64_t>(
      report.failures.size()));
  t.new_row().add("data sent").add(report.reliable.data_sent);
  t.new_row().add("retransmits").add(report.reliable.retransmits);
  t.new_row().add("corruption detected").add(
      report.reliable.corruption_detected);
  t.new_row().add("duplicates dropped").add(report.reliable.dedup_dropped);
  t.new_row().add("out of order").add(report.reliable.out_of_order);
  if (opts.backend == runtime::transport_backend::socket) {
    t.new_row().add("socket reconnects").add(report.socket.reconnects);
    t.new_row().add("frames rejected").add(report.socket.frames_rejected);
    t.new_row().add("stream faults injected").add(
        report.socket.injected_stream_faults);
    t.new_row().add("send failures").add(report.socket.send_failures);
  }
  std::printf("%s", t.str().c_str());

  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const seam::soak_failure& f = report.failures[i];
    const std::string path = out + ".fail" + std::to_string(i) + ".json";
    io::write_json_file(seam::soak_failure_to_json(f), path);
    std::printf("FAIL: %s\n  %zu fault(s), shrunk to %zu — reproducer "
                "written to %s\n",
                f.trial.failure.c_str(), f.schedule.faults.size(),
                f.shrunk.faults.size(), path.c_str());
  }
  if (report.failures.empty())
    std::printf("all %d schedules healed in place\n", report.trials);
  return report.failures.empty() ? 0 : 1;
}

// Observed advection run: partition with the SFC, run the distributed
// step loop inside an obs::session (mgp kway runs too, so its phase
// histograms land in the dump), then write the Chrome-trace timeline and
// the metrics JSON and print per-rank summary tables joined from both.
int cmd_trace(const cli_args& args) {
  const int ne = static_cast<int>(args.get_int_or("ne", 4));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 6));
  const int nsteps = static_cast<int>(args.get_int_or("steps", 4));
  const std::string out = args.get_or(
      "out", "trace_ne" + std::to_string(ne) + "_np" + std::to_string(nproc));
  const mesh::cubed_sphere mesh(ne);
  if (nproc < 1 || nproc > mesh.num_elements()) {
    std::fprintf(stderr, "nproc must be in [1, %d]\n", mesh.num_elements());
    return 2;
  }
  if (!core::sfc_supports_extended(ne)) {
    std::fprintf(stderr, "Ne=%d is not 2^n 3^m 5^p\n", ne);
    return 2;
  }

  obs::session session;  // resets the metrics registry, enables tracing
  obs::trace::set_thread_name("main");

  const auto curve = core::build_cube_curve_extended(mesh);  // core.stitch
  const auto part = core::sfc_partition(curve, nproc);
  {
    // Exercise the multilevel partitioner so mgp.* phase timings show up
    // alongside the runtime spans.
    SFP_TRACE_SCOPE_CAT("mgp.partition_graph", "mgp");
    (void)mgp::partition_graph(mesh.dual_graph(), nproc, {});
  }

  seam::advection_model model(mesh, 4);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double dt = model.cfl_dt(0.3);
  seam::dist_stats stats;
  (void)seam::run_distributed(model, part, dt, nsteps, &stats);

  const obs::trace_dump dump = session.finish();
  const obs::metrics_snapshot snap = obs::registry::global().snapshot();
  io::write_chrome_trace_file(out + ".trace.json", dump, &snap);
  io::write_metrics_json_file(out + ".metrics.json", snap);

  // Per-rank timeline: sum span durations by name for each "rank N" thread
  // and join with the world's per-rank counters.
  struct rank_row {
    double step_ms = 0, compute_ms = 0, exchange_ms = 0;
    double send_ms = 0, recv_ms = 0, barrier_ms = 0;
  };
  std::map<int, rank_row> rows;
  for (const auto& th : dump.threads) {
    if (th.name.rfind("rank ", 0) != 0) continue;
    const int r = std::atoi(th.name.c_str() + 5);
    rank_row& row = rows[r];
    for (const auto& ev : th.events) {
      const double ms = static_cast<double>(ev.dur_ns) / 1e6;
      const std::string_view n = ev.name;
      if (n == "seam.step") row.step_ms += ms;
      else if (n == "seam.compute") row.compute_ms += ms;
      else if (n == "seam.exchange") row.exchange_ms += ms;
      else if (n == "world.send") row.send_ms += ms;
      else if (n == "world.recv") row.recv_ms += ms;
      else if (n == "world.barrier") row.barrier_ms += ms;
    }
  }
  table t({"rank", "step ms", "compute ms", "exchange ms", "send ms",
           "recv ms", "barrier ms", "msgs", "doubles"});
  for (const auto& [r, row] : rows) {
    auto& tr = t.new_row();
    tr.add(r)
        .add(row.step_ms, 2)
        .add(row.compute_ms, 2)
        .add(row.exchange_ms, 2)
        .add(row.send_ms, 2)
        .add(row.recv_ms, 2)
        .add(row.barrier_ms, 2);
    if (r < static_cast<int>(stats.per_rank.size())) {
      const auto& c = stats.per_rank[static_cast<std::size_t>(r)];
      tr.add(c.messages_sent).add(c.doubles_sent);
    } else {
      tr.add(0).add(0);
    }
  }
  std::printf("per-rank timeline (%d steps, %d ranks):\n%s", nsteps, nproc,
              t.str().c_str());

  // Message volume by tag, from the registry (bytes on the wire).
  table vt({"counter", "value"});
  int tag_rows = 0;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("runtime.send.bytes.tag", 0) == 0 && tag_rows < 8) {
      vt.new_row().add(c.name).add(c.value);
      ++tag_rows;
    }
    if (c.name == "runtime.messages_sent" || c.name == "runtime.doubles_sent")
      vt.new_row().add(c.name).add(c.value);
  }
  std::printf("\nmessage volume (first %d tags):\n%s", tag_rows,
              vt.str().c_str());

  std::int64_t dropped = 0;
  for (const auto& th : dump.threads) dropped += th.dropped;
  std::printf("\nwrote %s.trace.json (%zu threads%s) — load in Perfetto or "
              "chrome://tracing\nwrote %s.metrics.json (%zu counters, %zu "
              "histograms)\n",
              out.c_str(), dump.threads.size(),
              dropped ? (", " + std::to_string(dropped) + " dropped").c_str()
                      : "",
              out.c_str(), snap.counters.size(), snap.histograms.size());
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const cli_args args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string cmd = args.positional()[0];
  try {
    if (cmd == "info") return cmd_info(args);
    if (cmd == "partition") return cmd_partition(args);
    if (cmd == "curve") return cmd_curve(args);
    if (cmd == "figure") return cmd_figure(args);
    if (cmd == "validate") return cmd_validate(args);
    if (cmd == "faults") return cmd_faults(args);
    if (cmd == "chaos") return cmd_chaos(args);
    if (cmd == "trace") return cmd_trace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
