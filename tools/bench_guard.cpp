// bench_guard — perf/quality drift gate for bench JSON artifacts.
//
//   bench_guard --fresh=FILE --reference=FILE [--tolerance=0.25]
//               [--floor=0.05] [--ignore=KEY[,KEY...]]
//
// Recursively compares a freshly produced BENCH_*.json against a committed
// reference. Structure must match exactly (same keys, same array lengths,
// same value kinds); numeric leaves may drift within
//
//   |fresh - ref| <= floor + tolerance * max(|fresh|, |ref|)
//
// so deterministic quality metrics (load balance, edge cut, migration
// volume) are pinned with generous slack while rounding noise never trips
// the gate. Object keys named in --ignore (default: time_usec) are skipped
// wherever they appear — wall-clock columns are machine-dependent and must
// not gate CI.
//
// --update flips the tool from gate to generator: the fresh artifact is
// written over the reference, except that ignored keys keep the value the
// old reference had (wall-clock columns stay stable across regenerations
// instead of churning every diff). Exit 0 after writing.
//
// Exit codes: 0 within tolerance (or --update wrote the reference),
// 1 drift or structural mismatch (each difference is printed with its
// JSON path), 2 usage or I/O error.

#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "util/cli.hpp"

namespace {

struct guard_options {
  double tolerance = 0.25;
  double floor = 0.05;
  std::vector<std::string> ignore = {"time_usec"};
};

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_guard --fresh=FILE --reference=FILE\n"
      "                   [--tolerance=0.25] [--floor=0.05]\n"
      "                   [--ignore=KEY[,KEY...]] [--update]\n"
      "  --fresh=FILE      artifact produced by this run\n"
      "  --reference=FILE  committed reference (tools/bench_reference.json)\n"
      "  --tolerance=T     relative drift allowed per numeric leaf\n"
      "  --floor=F         absolute slack, so near-zero leaves don't trip\n"
      "  --ignore=KEYS     object keys to skip everywhere "
      "(default: time_usec)\n"
      "  --update          rewrite the reference from the fresh artifact;\n"
      "                    ignored keys keep their old reference values\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) {
      if (start < arg.size()) out.push_back(arg.substr(start));
      break;
    }
    if (comma > start) out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool ignored(const guard_options& opts, const std::string& key) {
  for (const auto& k : opts.ignore)
    if (k == key) return true;
  return false;
}

sfp::io::json_value load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return sfp::io::parse_json(buf.str());
}

const char* kind_name(sfp::io::json_value::kind k) {
  using kind = sfp::io::json_value::kind;
  switch (k) {
    case kind::null: return "null";
    case kind::boolean: return "bool";
    case kind::number: return "number";
    case kind::string: return "string";
    case kind::array: return "array";
    case kind::object: return "object";
  }
  return "?";
}

/// Recursive comparison; appends one line per difference to `diffs`.
void compare(const sfp::io::json_value& fresh,
             const sfp::io::json_value& ref, const guard_options& opts,
             const std::string& path, std::vector<std::string>& diffs) {
  using kind = sfp::io::json_value::kind;
  if (fresh.type != ref.type) {
    diffs.push_back(path + ": kind changed (" +
                    kind_name(ref.type) + " -> " + kind_name(fresh.type) +
                    ")");
    return;
  }
  switch (fresh.type) {
    case kind::null:
      return;
    case kind::boolean:
      if (fresh.boolean != ref.boolean)
        diffs.push_back(path + ": " + (ref.boolean ? "true" : "false") +
                        " -> " + (fresh.boolean ? "true" : "false"));
      return;
    case kind::string:
      if (fresh.string != ref.string)
        diffs.push_back(path + ": \"" + ref.string + "\" -> \"" +
                        fresh.string + "\"");
      return;
    case kind::number: {
      const double a = fresh.number, b = ref.number;
      const double slack =
          opts.floor +
          opts.tolerance * std::max(std::fabs(a), std::fabs(b));
      if (std::fabs(a - b) > slack) {
        char line[256];
        std::snprintf(line, sizeof line,
                      "%s: %g -> %g (allowed drift %g)", path.c_str(), b, a,
                      slack);
        diffs.emplace_back(line);
      }
      return;
    }
    case kind::array: {
      if (fresh.array.size() != ref.array.size()) {
        diffs.push_back(path + ": length " +
                        std::to_string(ref.array.size()) + " -> " +
                        std::to_string(fresh.array.size()));
        return;
      }
      for (std::size_t i = 0; i < fresh.array.size(); ++i)
        compare(fresh.array[i], ref.array[i], opts,
                path + "[" + std::to_string(i) + "]", diffs);
      return;
    }
    case kind::object: {
      for (const auto& [key, rv] : ref.object) {
        if (ignored(opts, key)) continue;
        if (!fresh.has(key)) {
          diffs.push_back(path + "." + key + ": missing from fresh run");
          continue;
        }
        compare(fresh.at(key), rv, opts, path + "." + key, diffs);
      }
      for (const auto& [key, fv] : fresh.object) {
        (void)fv;
        if (!ignored(opts, key) && ref.object.count(key) == 0)
          diffs.push_back(path + "." + key + ": not in the reference");
      }
      return;
    }
  }
}

/// The --update merge: fresh values win everywhere, except object keys in
/// --ignore, which keep the value the old reference had (when it had one).
/// Structure comes from the fresh artifact — keys that vanished from the
/// fresh run vanish from the regenerated reference too.
sfp::io::json_value merge_update(const sfp::io::json_value& fresh,
                                 const sfp::io::json_value* ref,
                                 const guard_options& opts) {
  using kind = sfp::io::json_value::kind;
  if (fresh.type == kind::object) {
    sfp::io::json_value out = sfp::io::json_object();
    for (const auto& [key, fv] : fresh.object) {
      const sfp::io::json_value* rv =
          ref != nullptr && ref->type == kind::object && ref->has(key)
              ? &ref->at(key)
              : nullptr;
      if (ignored(opts, key) && rv != nullptr)
        out.object[key] = *rv;
      else
        out.object[key] = merge_update(fv, rv, opts);
    }
    return out;
  }
  if (fresh.type == kind::array) {
    sfp::io::json_value out = sfp::io::json_array();
    for (std::size_t i = 0; i < fresh.array.size(); ++i) {
      const sfp::io::json_value* rv =
          ref != nullptr && ref->type == kind::array &&
                  i < ref->array.size()
              ? &ref->array[i]
              : nullptr;
      out.array.push_back(merge_update(fresh.array[i], rv, opts));
    }
    return out;
  }
  return fresh;
}

}  // namespace

int main(int argc, char** argv) {
  const sfp::cli_args args(argc, argv);
  const auto fresh_path = args.get("fresh");
  const auto ref_path = args.get("reference");
  if (!fresh_path || !ref_path || !args.positional().empty()) return usage();

  guard_options opts;
  opts.tolerance = args.get_double_or("tolerance", opts.tolerance);
  opts.floor = args.get_double_or("floor", opts.floor);
  if (const auto ig = args.get("ignore")) opts.ignore = split_csv(*ig);
  if (opts.tolerance < 0 || opts.floor < 0) return usage();

  try {
    const sfp::io::json_value fresh = load(*fresh_path);
    if (args.has("update")) {
      // Bootstrap-friendly: a missing or unreadable reference means there
      // is nothing to preserve, so the fresh artifact becomes the
      // reference verbatim.
      sfp::io::json_value old;
      const sfp::io::json_value* old_ptr = nullptr;
      try {
        old = load(*ref_path);
        old_ptr = &old;
      } catch (const std::exception&) {
      }
      sfp::io::write_json_file(merge_update(fresh, old_ptr, opts),
                               *ref_path);
      std::printf("bench_guard: regenerated %s from %s%s\n",
                  ref_path->c_str(), fresh_path->c_str(),
                  old_ptr != nullptr ? " (ignored keys preserved)" : "");
      return 0;
    }
    const sfp::io::json_value ref = load(*ref_path);
    std::vector<std::string> diffs;
    compare(fresh, ref, opts, "$", diffs);
    if (diffs.empty()) {
      std::printf("bench_guard: %s within tolerance %g of %s\n",
                  fresh_path->c_str(), opts.tolerance, ref_path->c_str());
      return 0;
    }
    for (const auto& d : diffs)
      std::fprintf(stderr, "bench_guard: %s\n", d.c_str());
    std::fprintf(stderr,
                 "bench_guard: %zu difference(s) vs %s; if the drift is an "
                 "intended quality change, regenerate the reference "
                 "(see tools/ci.sh)\n",
                 diffs.size(), ref_path->c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_guard: error: %s\n", e.what());
    return 2;
  }
}
