#!/usr/bin/env sh
# One-command CI gate. Run from anywhere:
#
#   tools/ci.sh
#
# Exits non-zero on the first failing stage. Stages:
#   1. sfplint, built in a tiny bootstrap configure
#      (-DSFCPART_LINT_TOOL_ONLY=ON), gates the run before the main build;
#      the machine-readable reports land in build/lint-report.json and
#      build/lint.sarif (SARIF 2.1.0, the artifact code-review UIs ingest).
#      A second pass gates on --fix-dry-run: if sfplint could mechanically
#      repair anything (missing #pragma once, malformed suppression
#      separators), the run fails — apply `sfplint --root=. --fix` and
#      commit. Then clang-tidy via tools/lint.sh when installed.
#   2. configure + build the default preset with the escalated warnings
#      wall as errors (SFCPART_STRICT_WARNINGS + SFCPART_WERROR) and the
#      compile-each-header-standalone check (SFCPART_CHECK_HEADERS), then
#      ctest --preset ci (all tests, including the 'lint'-labelled repo
#      scan and the fuzz-corpus regression replays)
#   3. configure + build the tsan preset, ctest --preset tsan (label
#      'runtime')
#   4. configure + build the asan-ubsan preset (which also turns on
#      SFCPART_AUDIT, so the deep validators run at every module boundary),
#      ctest --preset asan-ubsan
#   5. sfcpart trace produces both artifacts and they are non-empty JSON
#   6. seeded short chaos soak: the 'chaos'-labelled ctest binaries rerun
#      standalone with a hard per-test timeout, then the shipped CLI soaks
#      a bounded batch of randomized schedules (seed fixed by
#      SFCPART_CHAOS_SEED, default 1000) across the transport backend
#      matrix — in-process, and loopback-TCP with byte-stream faults —
#      and must heal every one in place
#   7. distributed-partition bench smoke: bench_partition_scaling at a tiny
#      K must run all rank counts, match the serial slicer (the bench
#      aborts on divergence), and emit a well-formed
#      BENCH_partition_scaling.json
#   8. perf guard: bench_baselines reruns in a scratch dir and its fresh
#      BENCH_baselines.json must stay within a generous tolerance of the
#      committed tools/bench_reference.json (wall-clock columns ignored);
#      regenerate the reference when a quality change is intended:
#        bench_guard --fresh=BENCH_baselines.json \
#          --reference=tools/bench_reference.json --update
#      (--update keeps the ignored wall-clock columns from the old
#      reference, so regenerations do not churn machine-dependent noise)
set -eu

cd "$(dirname "$0")/.."

echo "==> [1/8] sfplint (bootstrap configure) + repo lints"
cmake -B build-lint -S . -DSFCPART_LINT_TOOL_ONLY=ON
cmake --build build-lint -j "$(nproc 2>/dev/null || echo 4)" --target sfplint_cli
mkdir -p build
build-lint/tools/sfplint --root=. --json=build/lint-report.json \
  --sarif=build/lint.sarif
# The autofix gate: exit 1 iff the mechanical-repair plan is non-empty, so
# a fixable deviation never lingers — run `sfplint --root=. --fix` locally.
build-lint/tools/sfplint --root=. --fix-dry-run
if command -v clang-tidy > /dev/null 2>&1; then
  sh tools/lint.sh
fi

echo "==> [2/8] tier-1: configure + build (strict warnings as errors, header checks) + ctest (preset ci)"
cmake --preset default -DSFCPART_STRICT_WARNINGS=ON -DSFCPART_WERROR=ON \
  -DSFCPART_CHECK_HEADERS=ON
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset ci

echo "==> [3/8] tsan: runtime-labelled tests under ThreadSanitizer"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset tsan

echo "==> [4/8] asan-ubsan + audit: full suite under ASan/UBSan with deep validators"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset asan-ubsan
# The serial-parity wall, re-asserted by name under the audit validators:
# the distributed slicer must stay bit-identical to the serial one while
# every validate_plan audit fires at the module boundaries.
ctest --test-dir build-asan -R 'ParallelPartition|SplitterSearch' \
  --output-on-failure

echo "==> [5/8] trace artifacts: sfcpart trace smoke"
out="$(mktemp -d)/ci_trace"
build/tools/sfcpart trace --ne=4 --nproc=6 --steps=2 --out="$out"
for f in "$out.trace.json" "$out.metrics.json"; do
  test -s "$f" || { echo "missing or empty artifact: $f" >&2; exit 1; }
done
# The real structural validation (parse-back, well-nesting, histogram
# invariants) already ran inside ctest via obs_test; this stage proves the
# shipped CLI wires the same exporters end to end.
grep -q '"traceEvents"' "$out.trace.json"
grep -q '"counters"' "$out.metrics.json"
rm -rf "$(dirname "$out")"

echo "==> [6/8] chaos soak: seeded randomized fault schedules must heal in place"
# Wall-clock is bounded twice over: ctest kills any chaos-labelled test
# that exceeds the per-test timeout, and the CLI soak is a fixed, small
# trial count on a tiny problem (~seconds). The seed is pinned so a CI
# failure names a replayable schedule; bump SFCPART_CHAOS_SEED to rotate
# the batch without touching the repo.
ctest --test-dir build -L chaos --timeout 240 --output-on-failure
chaos_dir="$(mktemp -d)"
# Backend matrix: one soak per transport, same seed batch. The socket leg
# adds byte-stream faults (truncated frames, resets, split writes, stalls)
# underneath the message-level schedule.
build/tools/sfcpart chaos --trials=20 --faults=6 --transport=inproc \
  --seed="${SFCPART_CHAOS_SEED:-1000}" --out="$chaos_dir/chaos_inproc"
build/tools/sfcpart chaos --trials=20 --faults=6 --transport=socket \
  --stream=2 --seed="${SFCPART_CHAOS_SEED:-1000}" \
  --out="$chaos_dir/chaos_socket"
# Rank-kill legs: fail-stop deaths mid-run. Quorum-surviving schedules must
# recover into the exact serial plan, sub-quorum ones abort cleanly; the
# partition-mode trial/shrink machinery enforces both (exit 1 otherwise).
build/tools/sfcpart chaos --partition --trials=20 --kills=1 \
  --transport=inproc --seed="${SFCPART_CHAOS_SEED:-1000}" \
  --out="$chaos_dir/chaos_kill_inproc"
build/tools/sfcpart chaos --partition --trials=20 --kills=1 \
  --transport=socket --seed="${SFCPART_CHAOS_SEED:-1000}" \
  --out="$chaos_dir/chaos_kill_socket"
rm -rf "$chaos_dir"

echo "==> [7/8] distributed-partition bench smoke (tiny K)"
bench_dir="$(mktemp -d)"
# Tiny problem, one repeat: proves the fabric pipeline end to end (the
# bench exits non-zero if any rank count diverges from the serial plan)
# and that the JSON artifact is well formed.
build/bench/bench_partition_scaling --ne=2 --nparts=4 --repeat=1 \
  --out="$bench_dir/BENCH_partition_scaling.json"
test -s "$bench_dir/BENCH_partition_scaling.json" || {
  echo "missing or empty artifact: BENCH_partition_scaling.json" >&2; exit 1; }
grep -q '"elements_per_sec"' "$bench_dir/BENCH_partition_scaling.json"
rm -rf "$bench_dir"

echo "==> [8/8] perf guard: fresh BENCH_baselines.json vs committed reference"
# The quality metrics (load balance, edge cut) are deterministic, so the
# generous tolerance only has to absorb intended algorithm changes — which
# should arrive together with a regenerated tools/bench_reference.json
# (bench_guard --update; ignored wall-clock columns carry over unchanged).
# Wall-clock columns (time_usec) are ignored by default.
guard_dir="$(mktemp -d)"
repo_root="$(pwd)"
(cd "$guard_dir" && "$repo_root/build/bench/bench_baselines" > /dev/null)
build/tools/bench_guard --fresh="$guard_dir/BENCH_baselines.json" \
  --reference=tools/bench_reference.json --tolerance=0.25
# Recovery smoke + guard: the bench itself exits non-zero unless every
# kill scenario recovers into the serial plan; the guard then pins the
# structural columns (parity, kills fired, ranks lost). Wall-clock and the
# timing-dependent regroup-coalescing count are ignored.
build/bench/bench_partition_recovery --repeat=1 \
  --out="$guard_dir/BENCH_partition_recovery.json" > /dev/null
build/tools/bench_guard --fresh="$guard_dir/BENCH_partition_recovery.json" \
  --reference=tools/bench_partition_recovery_reference.json \
  --tolerance=0.25 --ignore=time_usec,recoveries
rm -rf "$guard_dir"

echo "==> CI gate passed"
