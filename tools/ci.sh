#!/usr/bin/env sh
# One-command CI gate: tier-1 tests, the ThreadSanitizer runtime subset
# (fault injection + observability under real thread interleavings), and a
# smoke of the `sfcpart trace` artifacts. Run from anywhere:
#
#   tools/ci.sh
#
# Exits non-zero on the first failing stage. Stages:
#   1. configure + build the default preset, ctest --preset ci (all tests)
#   2. configure + build the tsan preset, ctest --preset tsan (label 'runtime')
#   3. sfcpart trace produces both artifacts and they are non-empty JSON
set -eu

cd "$(dirname "$0")/.."

echo "==> [1/3] tier-1: configure + build + ctest (preset ci)"
cmake --preset default
cmake --build --preset default -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset ci

echo "==> [2/3] tsan: runtime-labelled tests under ThreadSanitizer"
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc 2>/dev/null || echo 4)"
ctest --preset tsan

echo "==> [3/3] trace artifacts: sfcpart trace smoke"
out="$(mktemp -d)/ci_trace"
build/tools/sfcpart trace --ne=4 --nproc=6 --steps=2 --out="$out"
for f in "$out.trace.json" "$out.metrics.json"; do
  test -s "$f" || { echo "missing or empty artifact: $f" >&2; exit 1; }
done
# The real structural validation (parse-back, well-nesting, histogram
# invariants) already ran inside ctest via obs_test; this stage proves the
# shipped CLI wires the same exporters end to end.
grep -q '"traceEvents"' "$out.trace.json"
grep -q '"counters"' "$out.metrics.json"
rm -rf "$(dirname "$out")"

echo "==> CI gate passed"
