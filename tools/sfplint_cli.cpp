// sfplint — project-native static analyzer for sfcpart.
//
//   sfplint --root=DIR [--manifest=FILE] [--baseline=FILE] [--json=FILE]
//           [--write-baseline=FILE] [--list-rules] [--quiet]
//
// Scans src/, bench/, tools/, examples/, and fuzz/ under --root and
// enforces the repo's structural rules: the declared module layering
// (tools/layering.json), determinism in partitioner code, contract-tier
// discipline, header hygiene, and the blocking-call / raw-assert rules
// folded in from the old grep lints. See docs/static_analysis.md.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <exception>
#include <string>

#include "analysis/baseline.hpp"
#include "analysis/manifest.hpp"
#include "analysis/passes.hpp"
#include "analysis/report.hpp"
#include "analysis/source_model.hpp"
#include "io/json.hpp"
#include "util/cli.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sfplint --root=DIR [--manifest=FILE] [--baseline=FILE]\n"
      "               [--json=FILE] [--write-baseline=FILE] [--list-rules]\n"
      "               [--quiet]\n"
      "  --root=DIR            repository root to scan (required)\n"
      "  --manifest=FILE       layering manifest "
      "(default: ROOT/tools/layering.json)\n"
      "  --baseline=FILE       suppression baseline "
      "(default: ROOT/tools/sfplint_baseline.json)\n"
      "  --json=FILE           write the machine-readable report here\n"
      "  --write-baseline=FILE snapshot current findings as a baseline\n"
      "  --list-rules          print the rule catalogue and exit\n"
      "  --quiet               suppress the clean-run summary line\n");
  return 2;
}

constexpr const char* kRules =
    "layering-cycle     include cycle between src modules\n"
    "layering-unknown   src module missing from tools/layering.json\n"
    "layering           include edge that violates the declared layering\n"
    "determinism        rand()/time()/random_device/unseeded std engines in "
    "partitioner code\n"
    "contract-purity    side-effectful expression in an SFP_* condition\n"
    "runtime-throw      throw in src/runtime outside the designated "
    "failure-path files\n"
    "audit-header-loop  SFP_AUDIT inside a header-inlined loop\n"
    "pragma-once        header not opening with #pragma once\n"
    "blocking           bare blocking world call outside the timeout-aware "
    "wrappers\n"
    "raw-assert         raw assert()/<cassert> in library code\n"
    "retry-backoff      retry/retransmit loop without backoff in "
    "src/runtime or src/seam\n"
    "\nSuppress a justified finding inline with:  "
    "// lint: <rule>-ok — <reason>\n"
    "(layering-cycle and layering-unknown are never suppressible)\n";

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const sfp::cli_args args(argc, argv);
  if (args.has("list-rules")) {
    std::fputs(kRules, stdout);
    return 0;
  }
  const auto root = args.get("root");
  if (!root || !args.positional().empty()) return usage();

  try {
    const std::string manifest_path =
        args.get_or("manifest", *root + "/tools/layering.json");
    const std::string baseline_path =
        args.get_or("baseline", *root + "/tools/sfplint_baseline.json");

    const sfp::analysis::source_tree tree = sfp::analysis::load_tree(*root);
    const sfp::analysis::layering_manifest manifest =
        sfp::analysis::load_manifest(manifest_path);
    sfp::analysis::analysis_result result =
        sfp::analysis::run_all(tree, manifest);

    std::vector<sfp::analysis::baseline_entry> baseline;
    if (args.has("baseline") || file_exists(baseline_path))
      baseline = sfp::analysis::load_baseline(baseline_path);
    const std::vector<sfp::analysis::finding> baselined =
        sfp::analysis::apply_baseline(result, baseline);

    if (const auto out = args.get("write-baseline")) {
      sfp::io::write_json_file(
          sfp::analysis::baseline_to_json(result.findings), *out);
      std::fprintf(stderr, "sfplint: wrote %zu suppression(s) to %s\n",
                   result.findings.size(), out->c_str());
    }
    if (const auto out = args.get("json"))
      sfp::io::write_json_file(
          sfp::analysis::report_to_json(result, baselined), *out);

    const std::string text = sfp::analysis::render_text(result, baselined);
    if (!result.findings.empty() || !args.has("quiet"))
      std::fputs(text.c_str(), stdout);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfplint: error: %s\n", e.what());
    return 2;
  }
}
