// sfplint — project-native static analyzer for sfcpart.
//
//   sfplint --root=DIR [--manifest=FILE] [--baseline=FILE] [--json=FILE]
//           [--sarif=FILE] [--write-baseline=FILE] [--rule=SLUG[,SLUG...]]
//           [--diff-base=REV] [--fix] [--fix-dry-run] [--stats]
//           [--list-rules] [--quiet]
//
// Scans src/, bench/, tools/, examples/, and fuzz/ under --root and
// enforces the repo's structural rules: the declared module layering
// (tools/layering.json), determinism in partitioner code (direct AND
// transitive through the cross-TU call graph), lock-order / blocking
// discipline from the concurrency model, contract-tier discipline, header
// hygiene, the blocking-call / raw-assert rules folded in from the old
// grep lints, and the v3 flow-sensitive rules (overflow-arith,
// resource-leak, use-after-move, path-sensitive unchecked-status) riding
// the per-function statement CFGs. See docs/static_analysis.md.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. With
// --rule=<slug>[,<slug>...] only the named rules count: exit 1 iff a
// *filtered* finding remains (the JSON report and text listing are
// filtered the same way), and an unknown slug is a usage error (2).
// --diff-base=REV additionally drops findings whose anchor line is
// unchanged relative to the git revision (differential CI mode).
// --fix applies the mechanical autofixes and exits 0 when everything it
// touched is repaired; --fix-dry-run prints the plan without writing and
// exits 1 iff the plan is non-empty (the CI "no pending autofix" gate).

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/changed_lines.hpp"
#include "analysis/fix.hpp"
#include "analysis/manifest.hpp"
#include "analysis/passes.hpp"
#include "analysis/report.hpp"
#include "analysis/sarif.hpp"
#include "analysis/source_model.hpp"
#include "io/json.hpp"
#include "util/cli.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sfplint --root=DIR [--manifest=FILE] [--baseline=FILE]\n"
      "               [--json=FILE] [--sarif=FILE] [--write-baseline=FILE]\n"
      "               [--rule=SLUG[,SLUG...]] [--diff-base=REV]\n"
      "               [--fix] [--fix-dry-run] [--stats] [--list-rules]\n"
      "               [--quiet]\n"
      "  --root=DIR            repository root to scan (required)\n"
      "  --manifest=FILE       layering manifest "
      "(default: ROOT/tools/layering.json)\n"
      "  --baseline=FILE       suppression baseline "
      "(default: ROOT/tools/sfplint_baseline.json)\n"
      "  --json=FILE           write the machine-readable report here\n"
      "  --sarif=FILE          write a SARIF 2.1.0 report here\n"
      "  --write-baseline=FILE snapshot current findings as a baseline\n"
      "  --rule=SLUGS          only report the named rules (CI triage); "
      "exit 1 iff a filtered finding remains\n"
      "  --diff-base=REV       only report findings on lines changed "
      "vs the git revision (differential mode)\n"
      "  --fix                 apply the mechanical autofixes "
      "(pragma-once, suppression-format) and rescan\n"
      "  --fix-dry-run         print the autofix plan without writing; "
      "exit 1 iff edits are pending\n"
      "  --stats               print the per-rule finding-counts table\n"
      "  --list-rules          print the rule catalogue and exit\n"
      "  --quiet               suppress the clean-run summary line\n");
  return 2;
}

/// --list-rules output, generated from the one catalogue in passes.hpp —
/// the CLI can no longer drift from what run_all() actually emits.
void print_rules() {
  for (const sfp::analysis::rule_info& r : sfp::analysis::rule_catalogue())
    std::printf("%-24s%s\n", r.slug, r.summary);
  std::printf(
      "\nSuppress a justified finding inline with:  "
      "// lint: <rule>-ok — <reason>\n");
  std::string unsuppressible;
  for (const sfp::analysis::rule_info& r : sfp::analysis::rule_catalogue())
    if (!r.suppressible)
      unsuppressible += (unsuppressible.empty() ? "" : " and ") +
                        std::string(r.slug);
  std::printf("(%s are never suppressible)\n", unsuppressible.c_str());
}

/// Split --rule=a,b,c; empty components are usage errors (caught by the
/// rule_by_slug validation below since "" is not a slug).
std::vector<std::string> split_slugs(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(arg.substr(start));
      break;
    }
    out.push_back(arg.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const sfp::cli_args args(argc, argv);
  if (args.has("list-rules")) {
    print_rules();
    return 0;
  }
  const auto root = args.get("root");
  if (!root || !args.positional().empty()) return usage();

  std::vector<std::string> rule_filter;
  if (const auto rules = args.get("rule")) {
    rule_filter = split_slugs(*rules);
    for (const std::string& slug : rule_filter) {
      if (sfp::analysis::rule_by_slug(slug) != nullptr) continue;
      std::fprintf(stderr,
                   "sfplint: unknown rule '%s' (see --list-rules)\n",
                   slug.c_str());
      return 2;
    }
  }

  try {
    const std::string manifest_path =
        args.get_or("manifest", *root + "/tools/layering.json");
    const std::string baseline_path =
        args.get_or("baseline", *root + "/tools/sfplint_baseline.json");

    sfp::analysis::source_tree tree = sfp::analysis::load_tree(*root);
    const sfp::analysis::layering_manifest manifest =
        sfp::analysis::load_manifest(manifest_path);
    sfp::analysis::analysis_result result =
        sfp::analysis::run_all(tree, manifest);

    std::vector<sfp::analysis::baseline_entry> baseline;
    if (args.has("baseline") || file_exists(baseline_path))
      baseline = sfp::analysis::load_baseline(baseline_path);
    std::vector<sfp::analysis::finding> baselined =
        sfp::analysis::apply_baseline(result, baseline);

    // Autofix runs on the unfiltered findings: a pending mechanical fix
    // is pending regardless of the triage filter in effect.
    if (args.has("fix") || args.has("fix-dry-run")) {
      const sfp::analysis::fix_plan plan =
          sfp::analysis::plan_fixes(tree, result.findings);
      if (args.has("fix-dry-run")) {
        std::fputs(sfp::analysis::render_fix_plan(plan).c_str(), stdout);
        return plan.edits.empty() ? 0 : 1;
      }
      sfp::analysis::apply_fixes(*root, plan);
      std::fprintf(stderr, "sfplint: applied %zu autofix(es)\n",
                   plan.edits.size());
      // Rescan so the listing and exit code describe the repaired tree —
      // and so a second --fix run plans zero edits (idempotence).
      tree = sfp::analysis::load_tree(*root);
      result = sfp::analysis::run_all(tree, manifest);
      baselined = sfp::analysis::apply_baseline(result, baseline);
    }

    if (!rule_filter.empty()) {
      sfp::analysis::filter_rules(result, rule_filter);
      baselined.erase(
          std::remove_if(baselined.begin(), baselined.end(),
                         [&rule_filter](const sfp::analysis::finding& f) {
                           return std::find(rule_filter.begin(),
                                            rule_filter.end(),
                                            f.rule) == rule_filter.end();
                         }),
          baselined.end());
    }

    if (const auto rev = args.get("diff-base")) {
      std::string err;
      const sfp::analysis::changed_lines changed =
          sfp::analysis::collect_git_changed_lines(*root, *rev, &err);
      if (!err.empty()) {
        std::fprintf(stderr, "sfplint: --diff-base: %s\n", err.c_str());
        return 2;
      }
      const auto off_changed_lines =
          [&changed](const sfp::analysis::finding& f) {
            return !changed.contains(f.file, f.line);
          };
      result.findings.erase(std::remove_if(result.findings.begin(),
                                           result.findings.end(),
                                           off_changed_lines),
                            result.findings.end());
      result.suppressed.erase(std::remove_if(result.suppressed.begin(),
                                             result.suppressed.end(),
                                             off_changed_lines),
                              result.suppressed.end());
      baselined.erase(std::remove_if(baselined.begin(), baselined.end(),
                                     off_changed_lines),
                      baselined.end());
    }

    if (const auto out = args.get("write-baseline")) {
      sfp::io::write_json_file(
          sfp::analysis::baseline_to_json(result.findings), *out);
      std::fprintf(stderr, "sfplint: wrote %zu suppression(s) to %s\n",
                   result.findings.size(), out->c_str());
    }
    if (const auto out = args.get("json"))
      sfp::io::write_json_file(
          sfp::analysis::report_to_json(result, baselined), *out);
    if (const auto out = args.get("sarif"))
      sfp::io::write_json_file(
          sfp::analysis::sarif_document(result, baselined), *out);

    if (args.has("stats"))
      std::fputs(sfp::analysis::render_stats(result, baselined).c_str(),
                 stdout);
    const std::string text = sfp::analysis::render_text(result, baselined);
    if (!result.findings.empty() || !args.has("quiet"))
      std::fputs(text.c_str(), stdout);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfplint: error: %s\n", e.what());
    return 2;
  }
}
