// Additional cross-cutting coverage: comm/compute overlap in the machine
// model, exchange-plan vs metrics consistency, log levels, stopwatch, and
// remapping edge cases.

#include <gtest/gtest.h>

#include <thread>

#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "seam/assembly.hpp"
#include "seam/exchange.hpp"
#include "util/log.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace sfp;

// ---- perf overlap ------------------------------------------------------------

TEST(Overlap, FullOverlapNeverSlower) {
  const mesh::cubed_sphere m(8);
  const auto dual = m.dual_graph();
  const auto p = core::sfc_partition(m, 96);
  const perf::seam_workload w;
  perf::machine_model sync;
  perf::machine_model half = sync;
  half.comm_overlap = 0.5;
  perf::machine_model full = sync;
  full.comm_overlap = 1.0;
  const auto t0 = perf::simulate_step(dual, p, sync, w);
  const auto t1 = perf::simulate_step(dual, p, half, w);
  const auto t2 = perf::simulate_step(dual, p, full, w);
  EXPECT_LE(t1.total_s, t0.total_s);
  EXPECT_LE(t2.total_s, t1.total_s);
  // Full overlap is bounded below by pure compute of the critical rank.
  EXPECT_GE(t2.total_s, t2.compute_s - 1e-15);
}

TEST(Overlap, SynchronousDefaultIsAdditive) {
  const perf::machine_model m;
  EXPECT_DOUBLE_EQ(m.comm_overlap, 0.0);
  const mesh::cubed_sphere mesh(4);
  const auto t = perf::simulate_step(mesh.dual_graph(),
                                     core::sfc_partition(mesh, 12), m,
                                     perf::seam_workload{});
  EXPECT_NEAR(t.total_s, t.compute_s + t.comm_s, 1e-15);
}

TEST(Overlap, NodePlacement) {
  perf::machine_model m;
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(7), 0);
  EXPECT_EQ(m.node_of(8), 1);
  EXPECT_EQ(m.node_of(23), 2);
}

// ---- exchange plan vs metrics consistency --------------------------------------

TEST(ExchangeConsistency, PeerCountsMatchElementMetricsLoosely) {
  // The exchange plan counts dof-level peers; the dual-graph metrics count
  // element-level peers. A rank pair exchanging dofs must share at least an
  // element corner, so plan peers >= metric peers can differ — but both
  // must agree on *which ranks are completely isolated* (none, here) and
  // the plan's volume must be positive whenever the metric cut is.
  const mesh::cubed_sphere m(4);
  const seam::assembly dofs(m, 4);
  const auto part = core::sfc_partition(m, 12);
  const auto plan = seam::exchange_plan::build(dofs, part);
  const auto metrics = partition::compute_metrics(m.dual_graph(), part);
  EXPECT_GT(plan.total_exchange_volume(), 0);
  EXPECT_EQ(metrics.edgecut_edges > 0, plan.total_exchange_volume() > 0);
  for (std::size_t r = 0; r < plan.ranks.size(); ++r) {
    // Every rank with a cut edge has at least one exchange peer.
    if (metrics.send_interfaces[r] > 0) {
      EXPECT_GE(plan.ranks[r].peers.size(), 1u) << "rank " << r;
    }
    // Dof-level peers can exceed element-edge peers (corner sharing) but
    // never by more than the element peer count allows at np>=2... just
    // sanity-bound: <= num_parts - 1.
    EXPECT_LE(plan.ranks[r].peers.size(),
              static_cast<std::size_t>(part.num_parts - 1));
  }
}

TEST(ExchangeConsistency, VolumeScalesWithNp) {
  const mesh::cubed_sphere m(3);
  const auto part = core::sfc_partition(m, 9);
  const seam::assembly d3(m, 3), d6(m, 6);
  const auto plan3 = seam::exchange_plan::build(d3, part);
  const auto plan6 = seam::exchange_plan::build(d6, part);
  // More GLL points per edge => strictly more shared dofs to exchange.
  EXPECT_GT(plan6.total_exchange_volume(), plan3.total_exchange_volume());
}

// ---- remap edge cases ------------------------------------------------------------

TEST(Remap, IdentityWhenPartitionsEqual) {
  const mesh::cubed_sphere m(4);
  const auto p = core::sfc_partition(m, 8);
  partition::partition q = p;
  core::remap_to_maximize_overlap(p, q);
  EXPECT_EQ(q.part_of, p.part_of);
}

TEST(Remap, RecoversPurePermutation) {
  // If the new partition is the old one with labels permuted, remapping
  // must recover the original labels exactly (migration zero).
  const mesh::cubed_sphere m(4);
  const auto p = core::sfc_partition(m, 6);
  partition::partition q = p;
  for (auto& label : q.part_of) label = (label + 2) % 6;
  core::remap_to_maximize_overlap(p, q);
  EXPECT_EQ(q.part_of, p.part_of);
  EXPECT_EQ(core::migration_between(p, q).moved_elements, 0);
}

TEST(Remap, SupportsMismatchedPartCounts) {
  // Growing: the two reference labels are claimed by their best-overlap new
  // parts; the extra part gets a spare label. Labels stay in range.
  partition::partition a(2, {0, 1, 0, 1});
  partition::partition b(3, {0, 1, 2, 0});
  core::remap_to_maximize_overlap(a, b);
  EXPECT_EQ(b.num_parts, 3);
  for (const auto l : b.part_of) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
  // Shrinking: reference labels >= target.num_parts cannot be claimed.
  partition::partition wide(3, {0, 0, 1, 1, 2, 2});
  partition::partition narrow(2, {0, 0, 0, 1, 1, 1});
  core::remap_to_maximize_overlap(wide, narrow);
  EXPECT_EQ(narrow.num_parts, 2);
  // The part overlapping old part 0 keeps label 0; the other gets label 1.
  EXPECT_EQ(narrow.part_of[0], 0);
  EXPECT_EQ(narrow.part_of[5], 1);
}

TEST(Remap, PreservesPartitionContent) {
  // Remapping only renames parts: the multiset of part sizes is invariant.
  const mesh::cubed_sphere m(4);
  const auto p = core::sfc_partition(m, 12);
  auto q = core::sfc_partition(m, 12);
  // perturb q
  std::swap(q.part_of[0], q.part_of[50]);
  auto sizes_before = partition::part_sizes(q);
  std::sort(sizes_before.begin(), sizes_before.end());
  core::remap_to_maximize_overlap(p, q);
  auto sizes_after = partition::part_sizes(q);
  std::sort(sizes_after.begin(), sizes_after.end());
  EXPECT_EQ(sizes_before, sizes_after);
}

// ---- util odds and ends ------------------------------------------------------------

TEST(Log, LevelsFilter) {
  const log_level original = get_log_level();
  set_log_level(log_level::error);
  EXPECT_EQ(get_log_level(), log_level::error);
  // These must not crash (output suppressed/emitted to stderr).
  log_debug("dropped ", 42);
  log_error("emitted ", 3.14);
  set_log_level(log_level::off);
  log_error("also dropped");
  set_log_level(original);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = clock.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(clock.milliseconds(), clock.seconds() * 1e3,
              clock.seconds() * 1e3 * 0.5);
  clock.reset();
  EXPECT_LT(clock.seconds(), 0.015);
}

}  // namespace
