// Unit tests for src/util: contracts, stats (incl. the paper's LB metric),
// table formatting, RNG determinism, CLI parsing.

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace sfp;

TEST(Require, ThrowsContractErrorWithContext) {
  try {
    SFP_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Require, PassesOnTrue) {
  EXPECT_NO_THROW(SFP_REQUIRE(true, "never fires"));
}

// ---- stats ----------------------------------------------------------------

TEST(Stats, BasicMoments) {
  const std::vector<int> v{1, 2, 3, 4};
  const std::span<const int> s(v);
  EXPECT_DOUBLE_EQ(sum_of(s), 10.0);
  EXPECT_DOUBLE_EQ(mean_of(s), 2.5);
  EXPECT_DOUBLE_EQ(max_of(s), 4.0);
  EXPECT_DOUBLE_EQ(min_of(s), 1.0);
}

TEST(Stats, LoadBalancePerfect) {
  const std::vector<int> v{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(load_balance(std::span<const int>(v)), 0.0);
}

TEST(Stats, LoadBalanceMatchesPaperFormula) {
  // LB(S) = (max - avg) / max; S = {2, 1, 1}: max=2, avg=4/3 -> LB = 1/3.
  const std::vector<int> v{2, 1, 1};
  EXPECT_NEAR(load_balance(std::span<const int>(v)), 1.0 / 3.0, 1e-12);
}

TEST(Stats, LoadBalanceAllZeroIsBalanced) {
  const std::vector<int> v{0, 0};
  EXPECT_DOUBLE_EQ(load_balance(std::span<const int>(v)), 0.0);
}

TEST(Stats, LoadBalanceApproachesOneWhenOneBucketDominates) {
  const std::vector<int> v{1000, 0, 0, 0};
  EXPECT_NEAR(load_balance(std::span<const int>(v)), 0.75, 1e-12);
}

TEST(Stats, EmptySpanThrows) {
  const std::vector<int> v;
  EXPECT_THROW(mean_of(std::span<const int>(v)), contract_error);
  EXPECT_THROW(load_balance(std::span<const int>(v)), contract_error);
}

TEST(Stats, StdevOfConstantIsZero) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stdev_of(std::span<const double>(v)), 0.0);
}

// ---- table ------------------------------------------------------------------

TEST(Table, AlignsColumnsAndRightAlignsNumbers) {
  table t({"metric", "value"});
  t.new_row().add("LB").add(0.0625, 4);
  t.new_row().add("edgecut").add(std::int64_t{6038});
  const std::string s = t.str();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("0.0625"), std::string::npos);
  EXPECT_NE(s.find("6038"), std::string::npos);
  EXPECT_NE(s.find("-------"), std::string::npos);  // header rule
}

TEST(Table, RejectsTooManyCells) {
  table t({"only"});
  t.new_row().add("x");
  EXPECT_THROW(t.add("overflow"), contract_error);
}

TEST(Table, RejectsAddWithoutRow) {
  table t({"a"});
  EXPECT_THROW(t.add("x"), contract_error);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(17.7 * 1024 * 1024), "17.7 MB");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
  EXPECT_EQ(r.below(1), 0u);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(9);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.05);  // should explore the interval
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, BelowIsRoughlyUniform) {
  rng r(123);
  std::array<int, 8> histogram{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i)
    ++histogram[static_cast<std::size_t>(r.below(8))];
  for (const int h : histogram) {
    EXPECT_GT(h, kDraws / 8 - 800);
    EXPECT_LT(h, kDraws / 8 + 800);
  }
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "positional", "--ne=16", "--nproc", "768",
                        "--verbose"};
  cli_args args(6, argv);
  EXPECT_EQ(args.get_int_or("ne", 0), 16);
  EXPECT_EQ(args.get_int_or("nproc", 0), 768);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool_or("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  cli_args args(1, argv);
  EXPECT_EQ(args.get_int_or("missing", 5), 5);
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_or("missing", "dflt"), "dflt");
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, DoubleAndBoolValues) {
  const char* argv[] = {"prog", "--alpha=1.5", "--flag=false", "--on=true"};
  cli_args args(4, argv);
  EXPECT_DOUBLE_EQ(args.get_double_or("alpha", 0.0), 1.5);
  EXPECT_FALSE(args.get_bool_or("flag", true));
  EXPECT_TRUE(args.get_bool_or("on", false));
}

}  // namespace
