// Tests for the multilevel graph partitioner (METIS stand-in):
// matching, coarsening, FM bisection, recursive bisection, k-way, and the
// volume-objective variant — including the qualitative behaviours the paper
// relies on (RB balances best; KWAY favours edgecut and tolerates imbalance).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/bisect.hpp"
#include "mgp/coarsen.hpp"
#include "mgp/kway.hpp"
#include "mgp/match.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using namespace sfp::mgp;

// ---- matching ---------------------------------------------------------------

TEST(Matching, ProducesValidMap) {
  rng r(1);
  const auto g = graph::grid_graph(6, 6);
  const matching m = heavy_edge_matching(g, 0, r);
  ASSERT_EQ(m.coarse_of.size(), 36u);
  EXPECT_LT(m.num_coarse, 36);      // something matched
  EXPECT_GE(m.num_coarse, 18);      // at most halved
  std::vector<int> count(static_cast<std::size_t>(m.num_coarse), 0);
  for (const graph::vid c : m.coarse_of) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, m.num_coarse);
    ++count[static_cast<std::size_t>(c)];
  }
  for (const int c : count) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);  // matching merges at most pairs
  }
}

TEST(Matching, PrefersHeavyEdges) {
  // Path 0 -1- 1 -100- 2 -1- 3. HEM visits vertices in random order, so the
  // heavy middle edge is matched whenever 1 or 2 is visited first — half of
  // the random orders. (Visiting 0 or 3 first legitimately claims an
  // endpoint via a light edge: HEM is greedy from the visited vertex.)
  graph::builder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 100);
  b.add_edge(2, 3, 1);
  const auto g = b.build();
  int heavy_matched = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    rng r(seed);
    const matching m = heavy_edge_matching(g, 0, r);
    heavy_matched += (m.coarse_of[1] == m.coarse_of[2]);
  }
  // Binomial(40, 1/2): 12+ successes has p > 0.9997.
  EXPECT_GE(heavy_matched, 12);
}

TEST(Matching, RespectsWeightCap) {
  graph::builder b(2);
  b.add_edge(0, 1, 5);
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(1, 10);
  const auto g = b.build();
  rng r(3);
  const matching m = heavy_edge_matching(g, 15, r);  // 20 > cap, no merge
  EXPECT_EQ(m.num_coarse, 2);
  rng r2(3);
  const matching m2 = heavy_edge_matching(g, 20, r2);
  EXPECT_EQ(m2.num_coarse, 1);
}

// ---- coarsening --------------------------------------------------------------

TEST(Coarsen, ReachesTargetAndPreservesWeight) {
  rng r(7);
  const auto g = graph::grid_graph(16, 16);
  const hierarchy h = coarsen(g, 32, 0, r);
  EXPECT_GT(h.levels.size(), 2u);
  EXPECT_LE(h.coarsest().num_vertices(), 64);  // near target (stall-capped)
  for (const auto& lv : h.levels) {
    lv.g.validate();
    EXPECT_EQ(lv.g.total_vertex_weight(), g.total_vertex_weight());
  }
}

TEST(Coarsen, ProjectionRoundTrips) {
  rng r(7);
  const auto g = graph::grid_graph(8, 8);
  const hierarchy h = coarsen(g, 8, 0, r);
  ASSERT_GT(h.levels.size(), 1u);
  // Label the coarsest graph by vertex id and project to the finest level;
  // every fine vertex must inherit its coarse ancestor's label.
  std::vector<graph::vid> labels(
      static_cast<std::size_t>(h.coarsest().num_vertices()));
  std::iota(labels.begin(), labels.end(), 0);
  std::vector<graph::vid> fine = labels;
  for (std::size_t lvl = h.levels.size(); lvl-- > 1;)
    fine = project(h.levels[lvl], fine);
  ASSERT_EQ(fine.size(), static_cast<std::size_t>(g.num_vertices()));
  // Group weights by label must equal coarse vertex weights.
  std::vector<graph::weight> acc(labels.size(), 0);
  for (graph::vid v = 0; v < g.num_vertices(); ++v)
    acc[static_cast<std::size_t>(fine[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  for (std::size_t c = 0; c < labels.size(); ++c)
    EXPECT_EQ(acc[c], h.coarsest().vertex_weight(static_cast<graph::vid>(c)));
}

TEST(Coarsen, StallsGracefullyOnEdgelessGraph) {
  graph::builder b(10);
  b.add_edge(0, 1);  // nearly edgeless: matching can only merge one pair
  const auto g = b.build();
  rng r(1);
  const hierarchy h = coarsen(g, 2, 0, r);
  EXPECT_GE(h.coarsest().num_vertices(), 9);
}

// ---- FM refinement ------------------------------------------------------------

TEST(FmRefine, ImprovesABadBisection) {
  // 8x2 grid; start from an interleaved (maximally cut) split.
  const auto g = graph::grid_graph(8, 2);
  std::vector<graph::vid> side(16);
  for (int i = 0; i < 16; ++i) side[static_cast<std::size_t>(i)] = i % 2;
  const graph::weight before = graph::cut_weight(g, side);
  rng r(2);
  const graph::weight after = fm_refine(g, side, 8, 1.05, 8, r);
  EXPECT_EQ(after, graph::cut_weight(g, side));
  EXPECT_LT(after, before);
  EXPECT_LE(after, 4);  // optimal vertical split cuts 2; allow slack
  // Balance maintained.
  graph::weight w0 = 0;
  for (int i = 0; i < 16; ++i)
    if (side[static_cast<std::size_t>(i)] == 0) ++w0;
  EXPECT_GE(w0, 7);
  EXPECT_LE(w0, 9);
}

TEST(FmRefine, RespectsTargetWeights) {
  const auto g = graph::grid_graph(10, 1);
  std::vector<graph::vid> side(10, 0);
  side[9] = 1;  // tiny side 1; target is 7/3 split
  rng r(4);
  fm_refine(g, side, 7, 1.01, 8, r);
  graph::weight w0 = 0;
  for (const auto s : side) w0 += (s == 0);
  EXPECT_EQ(w0, 7);
}

// ---- bisect / recursive bisection ---------------------------------------------

TEST(Bisect, GridSplitsCleanly) {
  const auto g = graph::grid_graph(8, 8);
  options opt;
  rng r(opt.seed);
  const auto side = bisect(g, 32, 1.03, opt, r);
  graph::weight w0 = 0;
  for (const auto s : side) w0 += (s == 0);
  EXPECT_GE(w0, 30);
  EXPECT_LE(w0, 34);
  // A good bisection of an 8x8 grid cuts close to 8 edges.
  EXPECT_LE(graph::cut_weight(g, side), 14);
}

class RecursiveBisection : public ::testing::TestWithParam<int> {};

TEST_P(RecursiveBisection, BalancedAndComplete) {
  const int k = GetParam();
  const auto g = graph::grid_graph(12, 12);
  options opt;
  opt.algo = method::recursive_bisection;
  const auto p = partition_graph(g, k, opt);
  partition::validate(p, g);
  EXPECT_TRUE(partition::all_parts_nonempty(p));
  const auto sizes = partition::part_sizes(p);
  const auto mx = *std::max_element(sizes.begin(), sizes.end());
  const auto mn = *std::min_element(sizes.begin(), sizes.end());
  // 144 vertices into k parts: RB should stay within one–two vertices of
  // ideal at these sizes.
  EXPECT_LE(mx - mn, std::max<std::int64_t>(2, 144 / k / 4)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Parts, RecursiveBisection,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16, 48, 144),
                         ::testing::PrintToStringParamName());

TEST(RecursiveBisectionQuality, BeatsRandomCutOnGrid) {
  const auto g = graph::grid_graph(16, 16);
  options opt;
  opt.algo = method::recursive_bisection;
  const auto p = partition_graph(g, 8, opt);
  const auto m = partition::compute_metrics(g, p);
  // Random 8-way labelling of a 16x16 grid cuts ~7/8 of 480 edges (~420);
  // a real partitioner should do far better (ideal stripes cut ~112).
  EXPECT_LT(m.edgecut_weight, 220);
}

// ---- k-way ---------------------------------------------------------------------

class KwayParts : public ::testing::TestWithParam<int> {};

TEST_P(KwayParts, ValidCompleteAndWithinTolerance) {
  const int k = GetParam();
  const auto g = graph::grid_graph(12, 12);
  options opt;
  opt.algo = method::kway;
  const auto p = partition_graph(g, k, opt);
  partition::validate(p, g);
  EXPECT_TRUE(partition::all_parts_nonempty(p));
  const auto sizes = partition::part_sizes(p);
  const auto mx = *std::max_element(sizes.begin(), sizes.end());
  const double ideal = 144.0 / k;
  EXPECT_LE(static_cast<double>(mx), std::ceil(1.03 * ideal) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Parts, KwayParts,
                         ::testing::Values(2, 4, 8, 16, 36, 72),
                         ::testing::PrintToStringParamName());

TEST(Kway, RefineImprovesCut) {
  const auto g = graph::grid_graph(10, 10);
  rng r(5);
  std::vector<graph::vid> labels(100);
  for (int i = 0; i < 100; ++i)
    labels[static_cast<std::size_t>(i)] =
        static_cast<graph::vid>(r.below(4));
  const graph::weight before = graph::cut_weight(g, labels);
  rng r2(6);
  kway_refine(g, labels, 4, kway_objective::edgecut, 1.05, 8, r2);
  EXPECT_LT(graph::cut_weight(g, labels), before);
  // No part may be emptied by refinement.
  std::set<graph::vid> used(labels.begin(), labels.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(Kway, VolumeObjectiveReducesTcv) {
  const auto g = graph::grid_graph(10, 10);
  rng r(5);
  std::vector<graph::vid> labels(100);
  for (int i = 0; i < 100; ++i)
    labels[static_cast<std::size_t>(i)] =
        static_cast<graph::vid>(r.below(4));
  const auto before =
      partition::compute_metrics(g, partition::partition(4, labels));
  rng r2(6);
  kway_refine(g, labels, 4, kway_objective::total_volume, 1.05, 8, r2);
  const auto after =
      partition::compute_metrics(g, partition::partition(4, labels));
  EXPECT_LT(after.tcv_interfaces, before.tcv_interfaces);
}

TEST(Kway, DeterministicForFixedSeed) {
  const auto g = graph::grid_graph(9, 9);
  options opt;
  opt.algo = method::kway;
  const auto a = partition_graph(g, 6, opt);
  const auto b = partition_graph(g, 6, opt);
  EXPECT_EQ(a.part_of, b.part_of);
  options opt2 = opt;
  opt2.seed = 999;
  const auto c = partition_graph(g, 6, opt2);
  // Different seed is allowed to differ (not required, but overwhelmingly
  // likely on a 81-vertex graph); only assert validity.
  partition::validate(c, g);
}

// ---- behaviour the paper depends on ---------------------------------------------

TEST(PaperBehaviour, RbBalancesBetterThanKwayAtFineGranularity) {
  // K=384 cubed-sphere at 2 elements/processor: KWAY's imbalance tolerance
  // shows up while RB stays near-perfect — the effect behind paper Table 2.
  const mesh::cubed_sphere mesh(8);
  const auto g = mesh.dual_graph();
  options opt;
  opt.algo = method::recursive_bisection;
  const auto rb = partition_graph(g, 192, opt);
  opt.algo = method::kway;
  const auto kw = partition_graph(g, 192, opt);
  const auto m_rb = partition::compute_metrics(g, rb);
  const auto m_kw = partition::compute_metrics(g, kw);
  EXPECT_LE(m_rb.lb_elems, m_kw.lb_elems + 1e-12);
  EXPECT_LT(m_rb.lb_elems, 0.15);
}

TEST(PaperBehaviour, KwayCutsNoWorseThanRb) {
  const mesh::cubed_sphere mesh(8);
  const auto g = mesh.dual_graph();
  options opt;
  opt.algo = method::recursive_bisection;
  const auto rb = partition_graph(g, 16, opt);
  opt.algo = method::kway;
  const auto kw = partition_graph(g, 16, opt);
  const auto m_rb = partition::compute_metrics(g, rb);
  const auto m_kw = partition::compute_metrics(g, kw);
  // KWAY optimises edgecut; allow slack but it must not be grossly worse.
  EXPECT_LE(m_kw.edgecut_weight,
            static_cast<graph::weight>(1.15 * static_cast<double>(
                                                  m_rb.edgecut_weight)));
}

TEST(PaperBehaviour, AllMethodsRunViaFacade) {
  const mesh::cubed_sphere mesh(4);
  const auto g = mesh.dual_graph();
  const auto results = run_all_methods(g, 12);
  ASSERT_EQ(results.size(), 3u);
  std::set<std::string> names;
  for (const auto& res : results) {
    partition::validate(res.part, g);
    EXPECT_TRUE(partition::all_parts_nonempty(res.part));
    names.insert(method_name(res.algo));
  }
  EXPECT_EQ(names, (std::set<std::string>{"RB", "KWAY", "TV"}));
}

TEST(Facade, Preconditions) {
  const auto g = graph::grid_graph(2, 2);
  EXPECT_THROW(partition_graph(g, 0), contract_error);
  EXPECT_THROW(partition_graph(g, 5), contract_error);
  const auto p = partition_graph(g, 4);
  EXPECT_TRUE(partition::all_parts_nonempty(p));
}

TEST(Facade, SinglePart) {
  const auto g = graph::grid_graph(3, 3);
  const auto p = partition_graph(g, 1);
  for (const auto label : p.part_of) EXPECT_EQ(label, 0);
}

TEST(Facade, RandomGraphsAllMethodsAllSizes) {
  rng seed_rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    rng r(seed_rng());
    const auto g = graph::random_connected_graph(
        40 + static_cast<graph::vid>(r.below(80)), 150, 6, r);
    for (const int k : {2, 5, 9}) {
      for (const method m : {method::recursive_bisection, method::kway,
                             method::kway_volume}) {
        options opt;
        opt.algo = m;
        opt.seed = seed_rng();
        const auto p = partition_graph(g, k, opt);
        partition::validate(p, g);
        EXPECT_TRUE(partition::all_parts_nonempty(p))
            << method_name(m) << " k=" << k;
      }
    }
  }
}

}  // namespace
