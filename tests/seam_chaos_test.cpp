// The chaos-soak harness end to end: randomized discrete fault schedules
// heal in place under the reliable transport (agreeing with the fault-free
// run to 1e-12), a deliberately broken transport (checksum verification
// off) is caught by the soak, and ddmin shrinks the failing schedule to a
// minimal reproducer that survives a JSON round trip.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "io/json.hpp"
#include "seam/chaos.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

chaos_options small_problem() {
  chaos_options opts;
  opts.ne = 2;
  opts.nranks = 4;
  opts.nsteps = 3;
  opts.timeout = std::chrono::milliseconds(10000);
  opts.reliable.recv_timeout = std::chrono::milliseconds(8000);
  return opts;
}

TEST(ChaosSchedule, GenerationIsDeterministicAndNeverSelfAddressed) {
  const auto a = make_chaos_schedule(42, 4, 16);
  const auto b = make_chaos_schedule(42, 4, 16);
  ASSERT_EQ(a.faults.size(), 16u);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].what, b.faults[i].what);
    EXPECT_EQ(a.faults[i].src, b.faults[i].src);
    EXPECT_EQ(a.faults[i].dst, b.faults[i].dst);
    EXPECT_EQ(a.faults[i].nth, b.faults[i].nth);
    EXPECT_NE(a.faults[i].src, a.faults[i].dst);
    EXPECT_GE(a.faults[i].src, 0);
    EXPECT_LT(a.faults[i].src, 4);
  }
  // A different seed produces a different schedule.
  const auto c = make_chaos_schedule(43, 4, 16);
  bool any_different = false;
  for (std::size_t i = 0; i < c.faults.size(); ++i)
    any_different = any_different || c.faults[i].src != a.faults[i].src ||
                    c.faults[i].nth != a.faults[i].nth;
  EXPECT_TRUE(any_different);
}

TEST(ChaosSchedule, JsonRoundTripPreservesEveryFault) {
  chaos_schedule s = make_chaos_schedule(0xfedcba9876543210ull, 4, 8);
  const std::string text = io::write_json(chaos_schedule_to_json(s), 2);
  const chaos_schedule back = chaos_schedule_from_json(io::parse_json(text));
  EXPECT_EQ(back.seed, s.seed);
  ASSERT_EQ(back.faults.size(), s.faults.size());
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    EXPECT_EQ(back.faults[i].what, s.faults[i].what);
    EXPECT_EQ(back.faults[i].src, s.faults[i].src);
    EXPECT_EQ(back.faults[i].dst, s.faults[i].dst);
    EXPECT_EQ(back.faults[i].nth, s.faults[i].nth);
  }
  EXPECT_THROW(chaos_schedule_from_json(io::parse_json(
                   R"({"faults": [{"kind": "melt", "src": 0, "dst": 1,
                       "nth": 0}]})")),
               std::exception);
}

TEST(ChaosSchedule, LowersToOneShotFaultPlanEntries) {
  chaos_schedule s;
  s.seed = 7;
  s.faults.push_back({chaos_fault::kind::corrupt, 1, 3, 5});
  const runtime::fault_plan plan = to_fault_plan(s);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.message_faults.size(), 1u);
  EXPECT_EQ(plan.message_faults[0].src, 1);
  EXPECT_EQ(plan.message_faults[0].dst, 3);
  EXPECT_EQ(plan.message_faults[0].tag, -1);
  EXPECT_EQ(plan.message_faults[0].corrupt_probability, 1.0);
  EXPECT_EQ(plan.message_faults[0].fire_from, 5);
  EXPECT_EQ(plan.message_faults[0].fire_count, 1);
  EXPECT_EQ(plan.message_faults[0].drop_probability, 0.0);
}

TEST(ChaosSoak, FiftyRandomizedSchedulesHealInPlace) {
  // The headline soak: 50 seeded schedules of discrete drop / duplicate /
  // corrupt / truncate / reorder faults, every one healed by the reliable
  // transport with zero re-slices and 1e-12 agreement with the fault-free
  // baseline.
  const chaos_harness harness(small_problem());
  const soak_report report =
      run_chaos_soak(harness, /*base_seed=*/1000, /*trials=*/50,
                     /*nfaults=*/6);
  EXPECT_EQ(report.trials, 50);
  for (const auto& f : report.failures)
    ADD_FAILURE() << "seed " << f.schedule.seed << ": " << f.trial.failure;
  EXPECT_TRUE(report.failures.empty());
  // The schedules actually exercised the healing machinery.
  EXPECT_GT(report.reliable.retransmits, 0);
  EXPECT_GT(report.reliable.corruption_detected, 0);
  EXPECT_GT(report.reliable.dedup_dropped, 0);
}

TEST(ChaosSoak, ChecksumDisabledTransportIsCaughtAndShrunk) {
  // The harness's reason to exist: break the transport (skip checksum
  // verification, the designated test hook) and the soak must catch it —
  // an undetected bit flip reaches the tracer field — and shrink the
  // failing schedule to a tiny reproducer.
  chaos_options opts = small_problem();
  opts.reliable.verify_checksums = false;
  const chaos_harness harness(opts);
  const soak_report report =
      run_chaos_soak(harness, /*base_seed=*/5000, /*trials=*/20,
                     /*nfaults=*/6);
  ASSERT_FALSE(report.failures.empty())
      << "a checksum-less transport survived 20 corrupting schedules";
  const soak_failure& f = report.failures.front();
  EXPECT_FALSE(f.trial.passed);
  EXPECT_FALSE(f.trial.failure.empty());
  // ddmin leaves a 1-minimal subset; the root cause here is one or two
  // undetected corruptions, so the reproducer must be tiny.
  EXPECT_LE(f.shrunk.faults.size(), 3u);
  EXPECT_GE(f.shrunk.faults.size(), 1u);

  // The reproducer replays: a JSON round trip of the shrunk schedule still
  // fails the trial.
  const std::string text = io::write_json(soak_failure_to_json(f), 2);
  const io::json_value doc = io::parse_json(text);
  const chaos_schedule replay = chaos_schedule_from_json(doc.at("shrunk"));
  EXPECT_EQ(replay.faults.size(), f.shrunk.faults.size());
  EXPECT_FALSE(harness.run(replay).passed);
}

// ---------------------------------------------------------------------------
// Rank-kill vocabulary: generation, JSON round trip, lowering, and the
// partition-mode soak contract (quorum-surviving kills heal into the
// serial plan; sub-quorum kills abort cleanly — no silent wrong plans).

TEST(ChaosKills, AddKillsIsDeterministicAndInRange) {
  chaos_schedule a = make_chaos_schedule(77, 4, 0);
  chaos_schedule b = make_chaos_schedule(77, 4, 0);
  add_kills(a, /*nranks=*/4, /*nkills=*/3);
  add_kills(b, /*nranks=*/4, /*nkills=*/3);
  ASSERT_EQ(a.kills.size(), 3u);
  for (std::size_t i = 0; i < a.kills.size(); ++i) {
    EXPECT_EQ(a.kills[i].rank, b.kills[i].rank);
    EXPECT_EQ(a.kills[i].at_op, b.kills[i].at_op);
    EXPECT_GE(a.kills[i].rank, 0);
    EXPECT_LT(a.kills[i].rank, 4);
    EXPECT_GE(a.kills[i].at_op, 1);
  }
}

TEST(ChaosKills, JsonRoundTripPreservesKillsAndRejectsBadOnes) {
  chaos_schedule s = make_chaos_schedule(5, 4, 2);
  add_kills(s, 4, 2);
  const std::string text = io::write_json(chaos_schedule_to_json(s), 2);
  const chaos_schedule back = chaos_schedule_from_json(io::parse_json(text));
  ASSERT_EQ(back.kills.size(), s.kills.size());
  for (std::size_t i = 0; i < s.kills.size(); ++i) {
    EXPECT_EQ(back.kills[i].rank, s.kills[i].rank);
    EXPECT_EQ(back.kills[i].at_op, s.kills[i].at_op);
  }
  EXPECT_THROW(chaos_schedule_from_json(io::parse_json(
                   R"({"kills": [{"rank": -1, "at_op": 3}]})")),
               std::exception);
  EXPECT_THROW(chaos_schedule_from_json(io::parse_json(
                   R"({"kills": [{"rank": 0, "at_op": 0}]})")),
               std::exception);
}

TEST(ChaosKills, LowersToFaultPlanKillSpecs) {
  chaos_schedule s;
  s.seed = 9;
  s.kills.push_back({2, 7});
  const runtime::fault_plan plan = to_fault_plan(s);
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 2);
  EXPECT_EQ(plan.kills[0].at_op, 7);
}

TEST(ChaosKills, PartitionSoakKeepsSerialParityThroughKills) {
  // A compact version of the CI rank-kill soak: every quorum-surviving
  // schedule must recover into the exact serial plan, every sub-quorum
  // schedule must abort cleanly; any other outcome is a failure.
  const partition_chaos_harness harness;
  const partition_soak_report report = run_partition_chaos_soak(
      harness, /*base_seed=*/1000, /*trials=*/10, /*nkills=*/1);
  EXPECT_EQ(report.trials, 10);
  for (const auto& f : report.failures)
    ADD_FAILURE() << "seed " << f.schedule.seed << ": " << f.trial.failure;
  EXPECT_GT(report.recovered_trials, 0);
}

TEST(ChaosShrink, UnreproducibleFailureIsReturnedUnchanged) {
  // A schedule that passes cannot be shrunk; shrink_failure hands it back.
  const chaos_harness harness(small_problem());
  const chaos_schedule benign = make_chaos_schedule(1000, 4, 2);
  ASSERT_TRUE(harness.run(benign).passed);
  const chaos_schedule kept = shrink_failure(harness, benign);
  EXPECT_EQ(kept.faults.size(), benign.faults.size());
}

}  // namespace
