// Tests for the fault-tolerant runtime layer: deadlock-free abort when a
// rank fails, per-call timeouts, deterministic fault injection, and the
// per-rank robustness counters.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "runtime/fault.hpp"
#include "runtime/fault_json.hpp"
#include "runtime/world.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::runtime;

// ---- deadlock-free abort ----------------------------------------------------

TEST(WorldAbort, RankThrowMidBarrierWakesPeers) {
  // The regression this layer exists for: rank 2 dies while everyone else is
  // blocked in a barrier. Before the abort protocol, world::run's join loop
  // hung forever; now the peers throw world_aborted and the root cause is
  // rethrown.
  world w(4);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 2) throw std::runtime_error("rank 2 died");
                 c.barrier();  // must not hang
               }),
               std::runtime_error);
  EXPECT_TRUE(w.aborted());
  EXPECT_EQ(w.failed_rank(), 2);
  // The three survivors each observed exactly one abort.
  EXPECT_EQ(w.total_counters().aborts_observed, 3);
}

TEST(WorldAbort, RankThrowWakesPeersBlockedInRecv) {
  world w(3);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) throw std::runtime_error("rank 0 died");
                 c.recv(0, 7);  // rank 0 never sends — must not hang
               }),
               std::runtime_error);
  EXPECT_EQ(w.failed_rank(), 0);
}

TEST(WorldAbort, RankThrowWakesPeersBlockedInAllreduce) {
  world w(4);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                 c.allreduce_sum(1.0);
               }),
               std::runtime_error);
  EXPECT_EQ(w.failed_rank(), 1);
}

TEST(WorldAbort, SurvivorsSeeFailedRankInException) {
  world w(2);
  try {
    w.run([](communicator& c) {
      if (c.rank() == 1) throw std::logic_error("boom");
      try {
        c.barrier();
        FAIL() << "barrier should have aborted";
      } catch (const world_aborted& e) {
        EXPECT_EQ(e.failed_rank(), 1);
        throw;
      }
    });
    FAIL() << "run should rethrow";
  } catch (const std::logic_error&) {
    // root cause, not the cascading world_aborted
  }
}

TEST(WorldAbort, WorldIsReusableAfterAbort) {
  world w(3);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) throw std::runtime_error("once");
                 c.barrier();
               }),
               std::runtime_error);
  // Same world, clean run: fabric and failure state were reset.
  w.run([](communicator& c) {
    c.barrier();
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 3.0);
  });
  EXPECT_FALSE(w.aborted());
  EXPECT_EQ(w.failed_rank(), -1);
}

// ---- constructor validation -------------------------------------------------

TEST(WorldOptions, ConstructorValidatesBeforeBuildingMembers) {
  EXPECT_THROW(world(0), sfp::contract_error);
  EXPECT_THROW(world(-5), sfp::contract_error);
  world::options opts;
  EXPECT_THROW(world(-1, opts), sfp::contract_error);
}

// ---- timeouts ---------------------------------------------------------------

TEST(WorldTimeout, RecvTimesOutInsteadOfHanging) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  world w(2, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 1) c.recv(0, 3);  // never sent
               }),
               comm_timeout_error);
  EXPECT_EQ(w.failed_rank(), 1);
  EXPECT_EQ(w.counters(1).timeouts, 1);
}

TEST(WorldTimeout, BarrierTimesOutWhenRankStaysAway) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  world w(3, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() != 0) c.barrier();  // rank 0 never arrives
               }),
               comm_timeout_error);
  EXPECT_GE(w.total_counters().timeouts, 1);
}

TEST(WorldTimeout, GenerousTimeoutDoesNotPerturbCleanRuns) {
  world::options opts;
  opts.timeout = std::chrono::seconds(30);
  world w(4, opts);
  w.run([](communicator& c) {
    c.send((c.rank() + 1) % 4, 0, std::vector<double>{1.0});
    EXPECT_EQ(c.recv((c.rank() + 3) % 4, 0).size(), 1u);
    c.barrier();
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 3.0);
  });
}

// ---- fault injection --------------------------------------------------------

TEST(FaultInjection, KillFiresAtExactOp) {
  world::options opts;
  opts.faults.kills.push_back({/*rank=*/1, /*at_op=*/3});
  world w(2, opts);
  try {
    w.run([](communicator& c) {
      if (c.rank() == 1) {
        c.send(0, 0, std::vector<double>{1.0});  // op 1
        c.send(0, 1, std::vector<double>{2.0});  // op 2
        c.send(0, 2, std::vector<double>{3.0});  // op 3 — killed here
        FAIL() << "rank 1 should be dead";
      } else {
        c.recv(1, 0);
        c.recv(1, 1);
        c.recv(1, 2);  // never arrives: killed before delivery
      }
    });
    FAIL() << "run should rethrow the kill";
  } catch (const rank_killed& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.op(), 3);
  }
  EXPECT_EQ(w.failed_rank(), 1);
  EXPECT_EQ(w.counters(1).injected_kills, 1);
  // Rank 1 delivered exactly the two messages before the kill; rank 0
  // consumed at most those (it may observe the abort first if it is still
  // ahead of the deliveries when the kill lands).
  EXPECT_EQ(w.counters(1).messages_sent, 2);
  EXPECT_LE(w.counters(0).messages_received, 2);
}

TEST(FaultInjection, DropPlusTimeoutAbortsCleanly) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.src = 0;
  mf.dst = 1;
  mf.drop_probability = 1.0;  // every 0->1 message vanishes
  world w(2, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) {
                   c.send(1, 0, std::vector<double>{42.0});
                 } else {
                   c.recv(0, 0);  // dropped — times out instead of hanging
                 }
               }),
               comm_timeout_error);
  EXPECT_EQ(w.counters(0).injected_drops, 1);
  EXPECT_EQ(w.counters(0).messages_sent, 0);
  EXPECT_EQ(w.counters(1).timeouts, 1);
}

TEST(FaultInjection, DuplicatesPreserveOrderedDelivery) {
  world::options opts;
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.duplicate_probability = 1.0;
  world w(2, opts);
  w.run([](communicator& c) {
    constexpr int kCount = 20;
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        c.send(1, 0, std::vector<double>{static_cast<double>(i)});
    } else {
      // Every message arrives twice, in order.
      for (int i = 0; i < kCount; ++i) {
        EXPECT_DOUBLE_EQ(c.recv(0, 0)[0], static_cast<double>(i));
        EXPECT_DOUBLE_EQ(c.recv(0, 0)[0], static_cast<double>(i));
      }
    }
  });
  EXPECT_EQ(w.counters(0).injected_duplicates, 20);
  EXPECT_EQ(w.counters(0).messages_sent, 40);
}

TEST(FaultInjection, DelayedMessagesStillArrive) {
  world::options opts;
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.delay_probability = 0.5;
  mf.delay = std::chrono::microseconds(300);
  opts.faults.seed = 7;
  world w(3, opts);
  w.run([](communicator& c) {
    const int next = (c.rank() + 1) % 3;
    const int prev = (c.rank() + 2) % 3;
    for (int i = 0; i < 30; ++i) {
      c.send(next, i, std::vector<double>{static_cast<double>(i)});
      EXPECT_DOUBLE_EQ(c.recv(prev, i)[0], static_cast<double>(i));
    }
  });
  EXPECT_GT(w.total_counters().injected_delays, 0);
  EXPECT_EQ(w.total_counters().messages_received, 90);
}

TEST(FaultInjection, ChaosScheduleIsDeterministicAcrossRuns) {
  // Same seed, same program -> identical injected-fault counts and
  // identical per-rank traffic, independent of thread scheduling.
  const auto run_once = [](std::uint64_t seed) {
    world::options opts;
    opts.faults.seed = seed;
    auto& mf = opts.faults.message_faults.emplace_back();
    mf.drop_probability = 0.0;
    mf.delay_probability = 0.3;
    mf.duplicate_probability = 0.4;
    mf.delay = std::chrono::microseconds(100);
    world w(4, opts);
    w.run([](communicator& c) {
      for (int round = 0; round < 10; ++round) {
        for (int dst = 0; dst < 4; ++dst) {
          if (dst == c.rank()) continue;
          c.send(dst, round, std::vector<double>{1.0});
        }
        for (int src = 0; src < 4; ++src) {
          if (src == c.rank()) continue;
          c.recv(src, round);
        }
        c.barrier();
      }
    });
    std::vector<std::int64_t> signature;
    for (int r = 0; r < 4; ++r) {
      const auto& counter = w.counters(r);
      signature.push_back(counter.messages_sent);
      signature.push_back(counter.injected_delays);
      signature.push_back(counter.injected_duplicates);
    }
    return signature;
  };
  const auto a = run_once(123), b = run_once(123), c = run_once(999);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed draws a different schedule
}

TEST(FaultInjection, ScheduleIsInvariantUnderThreadInterleaving) {
  // Fault decisions must be a pure function of (seed, rank, op index) — the
  // wall-clock interleaving of the rank threads must not matter. Force two
  // very different interleavings with per-rank staggered start delays
  // (ascending in one run, descending in the other) and demand identical
  // per-rank fault decisions and traffic.
  constexpr int kRanks = 4;
  const auto run_once = [](bool reverse_stagger) {
    world::options opts;
    opts.faults.seed = 42;
    auto& mf = opts.faults.message_faults.emplace_back();
    mf.delay_probability = 0.25;
    mf.duplicate_probability = 0.25;
    mf.delay = std::chrono::microseconds(50);
    world w(kRanks, opts);
    w.run([reverse_stagger](communicator& c) {
      const int slot = reverse_stagger ? kRanks - 1 - c.rank() : c.rank();
      std::this_thread::sleep_for(std::chrono::microseconds(200 * slot));
      for (int round = 0; round < 8; ++round) {
        c.send((c.rank() + 1) % kRanks, round, std::vector<double>{1.0});
        c.recv((c.rank() + kRanks - 1) % kRanks, round);
      }
    });
    std::vector<std::int64_t> signature;
    for (int r = 0; r < kRanks; ++r) {
      const auto& counter = w.counters(r);
      signature.push_back(counter.messages_sent);
      signature.push_back(counter.messages_received);
      signature.push_back(counter.injected_delays);
      signature.push_back(counter.injected_duplicates);
      signature.push_back(counter.injected_drops);
    }
    return signature;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// ---- counters ---------------------------------------------------------------

TEST(Counters, AccountForCleanTraffic) {
  world w(2);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 0, std::vector<double>(5, 1.0));
    } else {
      EXPECT_EQ(c.recv(0, 0).size(), 5u);
    }
    c.barrier();
    c.allreduce_sum(1.0);
  });
  EXPECT_EQ(w.counters(0).messages_sent, 1);
  EXPECT_EQ(w.counters(0).doubles_sent, 5);
  EXPECT_EQ(w.counters(1).messages_received, 1);
  EXPECT_EQ(w.counters(1).doubles_received, 5);
  const auto total = w.total_counters();
  EXPECT_EQ(total.barriers, 2);
  EXPECT_EQ(total.reductions, 2);
  EXPECT_EQ(total.timeouts, 0);
  EXPECT_EQ(total.aborts_observed, 0);
  EXPECT_THROW(w.counters(2), sfp::contract_error);
}

// ---- fault_plan JSON persistence -------------------------------------------

TEST(FaultPlanJson, RoundTripsEveryField) {
  fault_plan plan;
  plan.seed = 0xfedcba9876543210ull;  // above 2^53: must not round
  plan.kills.push_back({2, 17});
  plan.kills.push_back({0, 1});
  fault_plan::message_fault mf;
  mf.src = 1;
  mf.dst = -1;
  mf.tag = 7;
  mf.drop_probability = 0.125;
  mf.delay_probability = 0.25;
  mf.duplicate_probability = 0.5;
  mf.corrupt_probability = 0.0625;
  mf.truncate_probability = 0.03125;
  mf.reorder_probability = 0.015625;
  mf.delay = std::chrono::microseconds{450};
  mf.fire_from = 3;
  mf.fire_count = 2;
  mf.min_payload = 7;
  plan.message_faults.push_back(mf);

  const std::string text = sfp::io::write_json(fault_plan_to_json(plan), 2);
  const fault_plan back = fault_plan_from_json(sfp::io::parse_json(text));
  EXPECT_EQ(back.seed, plan.seed);
  ASSERT_EQ(back.kills.size(), 2u);
  EXPECT_EQ(back.kills[0].rank, 2);
  EXPECT_EQ(back.kills[0].at_op, 17);
  ASSERT_EQ(back.message_faults.size(), 1u);
  const auto& b = back.message_faults[0];
  EXPECT_EQ(b.src, 1);
  EXPECT_EQ(b.dst, -1);
  EXPECT_EQ(b.tag, 7);
  EXPECT_EQ(b.drop_probability, mf.drop_probability);
  EXPECT_EQ(b.delay_probability, mf.delay_probability);
  EXPECT_EQ(b.duplicate_probability, mf.duplicate_probability);
  EXPECT_EQ(b.corrupt_probability, mf.corrupt_probability);
  EXPECT_EQ(b.truncate_probability, mf.truncate_probability);
  EXPECT_EQ(b.reorder_probability, mf.reorder_probability);
  EXPECT_EQ(b.delay, mf.delay);
  EXPECT_EQ(b.fire_from, mf.fire_from);
  EXPECT_EQ(b.fire_count, mf.fire_count);
  EXPECT_EQ(b.min_payload, mf.min_payload);
}

TEST(FaultInjection, MinPayloadSkipsHeaderOnlyFrames) {
  // A min_payload filter makes header-only frames (acks, fence tokens)
  // invisible to the entry: they neither fire nor advance its match index.
  fault_plan plan;
  plan.seed = 5;
  fault_plan::message_fault mf;
  mf.drop_probability = 1.0;
  mf.min_payload = 7;
  mf.fire_from = 1;
  mf.fire_count = 1;
  plan.message_faults.push_back(mf);

  fault_injector inj(plan, 0);
  EXPECT_FALSE(inj.on_send(1, 0, 6).drop);   // header-only: no match
  EXPECT_FALSE(inj.on_send(1, 0, 10).drop);  // data match #0: before window
  EXPECT_FALSE(inj.on_send(1, 0, 6).drop);   // header-only again
  EXPECT_TRUE(inj.on_send(1, 0, 10).drop);   // data match #1: fires
  EXPECT_FALSE(inj.on_send(1, 0, 10).drop);  // data match #2: window closed
}

TEST(FaultInjection, FireWindowPinsAFaultToSpecificMatches) {
  // drop with probability 1 but a [2, 4) window: of six matching sends,
  // exactly the third and fourth are dropped; the rng stream still
  // advances on every match, so a sibling entry's decisions are untouched
  // by the window (checked by comparing against the same plan windowless).
  fault_plan plan;
  plan.seed = 99;
  fault_plan::message_fault mf;
  mf.drop_probability = 1.0;
  mf.fire_from = 2;
  mf.fire_count = 2;
  plan.message_faults.push_back(mf);

  fault_injector inj(plan, /*rank=*/0);
  std::vector<bool> dropped;
  for (int i = 0; i < 6; ++i)
    dropped.push_back(inj.on_send(1, 0, 8).drop);
  EXPECT_EQ(dropped, (std::vector<bool>{false, false, true, true, false,
                                        false}));

  // Windowed and windowless plans draw identical corrupt positions.
  fault_plan probed = plan;
  probed.message_faults[0].corrupt_probability = 1.0;
  fault_plan windowless = probed;
  windowless.message_faults[0].fire_from = 0;
  windowless.message_faults[0].fire_count = -1;
  fault_injector a(probed, 0), b(windowless, 0);
  for (int i = 0; i < 6; ++i) {
    const auto aa = a.on_send(1, 0, 8);
    const auto bb = b.on_send(1, 0, 8);
    EXPECT_TRUE(bb.corrupt);
    if (aa.corrupt) {
      EXPECT_EQ(aa.corrupt_element, bb.corrupt_element);
      EXPECT_EQ(aa.corrupt_bit, bb.corrupt_bit);
    }
  }
}

TEST(FaultPlanJson, AcceptsSparseHandWrittenPlans) {
  const fault_plan plan = fault_plan_from_json(sfp::io::parse_json(
      R"({"seed": 7, "message_faults": [{"drop": 0.5}]})"));
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.message_faults.size(), 1u);
  EXPECT_EQ(plan.message_faults[0].src, -1);
  EXPECT_EQ(plan.message_faults[0].drop_probability, 0.5);
  EXPECT_TRUE(plan.kills.empty());
}

TEST(FaultPlanJson, RejectsMalformedPlans) {
  using sfp::io::parse_json;
  EXPECT_THROW(fault_plan_from_json(parse_json("[1,2]")), sfp::contract_error);
  EXPECT_THROW(fault_plan_from_json(parse_json(
                   R"({"message_faults": [{"drop": 1.5}]})")),
               sfp::contract_error);
  EXPECT_THROW(fault_plan_from_json(parse_json(
                   R"({"kills": [{"rank": -3, "at_op": 1}]})")),
               sfp::contract_error);
  EXPECT_THROW(fault_plan_from_json(parse_json(R"({"seed": "12x"})")),
               sfp::contract_error);
}

TEST(FaultPlanJson, FileRoundTripAndReplayIsDeterministic) {
  fault_plan plan;
  plan.seed = 424242;
  fault_plan::message_fault mf;
  mf.drop_probability = 0.3;
  mf.corrupt_probability = 0.2;
  plan.message_faults.push_back(mf);
  const std::string path =
      ::testing::TempDir() + "/sfcpart_fault_plan_test.json";
  save_fault_plan(plan, path);
  const fault_plan loaded = load_fault_plan(path);

  // The loaded plan must drive the injector through the identical decision
  // sequence — the property that makes committed reproducers replayable.
  fault_injector a(plan, 1);
  fault_injector b(loaded, 1);
  for (int i = 0; i < 32; ++i) {
    const auto x = a.on_send(0, 9, 12);
    const auto y = b.on_send(0, 9, 12);
    EXPECT_EQ(x.drop, y.drop);
    EXPECT_EQ(x.corrupt, y.corrupt);
    EXPECT_EQ(x.corrupt_element, y.corrupt_element);
  }
  EXPECT_THROW(load_fault_plan(path + ".does-not-exist"),
               sfp::contract_error);
}

}  // namespace
