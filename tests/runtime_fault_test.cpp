// Tests for the fault-tolerant runtime layer: deadlock-free abort when a
// rank fails, per-call timeouts, deterministic fault injection, and the
// per-rank robustness counters.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/world.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::runtime;

// ---- deadlock-free abort ----------------------------------------------------

TEST(WorldAbort, RankThrowMidBarrierWakesPeers) {
  // The regression this layer exists for: rank 2 dies while everyone else is
  // blocked in a barrier. Before the abort protocol, world::run's join loop
  // hung forever; now the peers throw world_aborted and the root cause is
  // rethrown.
  world w(4);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 2) throw std::runtime_error("rank 2 died");
                 c.barrier();  // must not hang
               }),
               std::runtime_error);
  EXPECT_TRUE(w.aborted());
  EXPECT_EQ(w.failed_rank(), 2);
  // The three survivors each observed exactly one abort.
  EXPECT_EQ(w.total_counters().aborts_observed, 3);
}

TEST(WorldAbort, RankThrowWakesPeersBlockedInRecv) {
  world w(3);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) throw std::runtime_error("rank 0 died");
                 c.recv(0, 7);  // rank 0 never sends — must not hang
               }),
               std::runtime_error);
  EXPECT_EQ(w.failed_rank(), 0);
}

TEST(WorldAbort, RankThrowWakesPeersBlockedInAllreduce) {
  world w(4);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                 c.allreduce_sum(1.0);
               }),
               std::runtime_error);
  EXPECT_EQ(w.failed_rank(), 1);
}

TEST(WorldAbort, SurvivorsSeeFailedRankInException) {
  world w(2);
  try {
    w.run([](communicator& c) {
      if (c.rank() == 1) throw std::logic_error("boom");
      try {
        c.barrier();
        FAIL() << "barrier should have aborted";
      } catch (const world_aborted& e) {
        EXPECT_EQ(e.failed_rank(), 1);
        throw;
      }
    });
    FAIL() << "run should rethrow";
  } catch (const std::logic_error&) {
    // root cause, not the cascading world_aborted
  }
}

TEST(WorldAbort, WorldIsReusableAfterAbort) {
  world w(3);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) throw std::runtime_error("once");
                 c.barrier();
               }),
               std::runtime_error);
  // Same world, clean run: fabric and failure state were reset.
  w.run([](communicator& c) {
    c.barrier();
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 3.0);
  });
  EXPECT_FALSE(w.aborted());
  EXPECT_EQ(w.failed_rank(), -1);
}

// ---- constructor validation -------------------------------------------------

TEST(WorldOptions, ConstructorValidatesBeforeBuildingMembers) {
  EXPECT_THROW(world(0), sfp::contract_error);
  EXPECT_THROW(world(-5), sfp::contract_error);
  world::options opts;
  EXPECT_THROW(world(-1, opts), sfp::contract_error);
}

// ---- timeouts ---------------------------------------------------------------

TEST(WorldTimeout, RecvTimesOutInsteadOfHanging) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  world w(2, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 1) c.recv(0, 3);  // never sent
               }),
               comm_timeout_error);
  EXPECT_EQ(w.failed_rank(), 1);
  EXPECT_EQ(w.counters(1).timeouts, 1);
}

TEST(WorldTimeout, BarrierTimesOutWhenRankStaysAway) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  world w(3, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() != 0) c.barrier();  // rank 0 never arrives
               }),
               comm_timeout_error);
  EXPECT_GE(w.total_counters().timeouts, 1);
}

TEST(WorldTimeout, GenerousTimeoutDoesNotPerturbCleanRuns) {
  world::options opts;
  opts.timeout = std::chrono::seconds(30);
  world w(4, opts);
  w.run([](communicator& c) {
    c.send((c.rank() + 1) % 4, 0, std::vector<double>{1.0});
    EXPECT_EQ(c.recv((c.rank() + 3) % 4, 0).size(), 1u);
    c.barrier();
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), 3.0);
  });
}

// ---- fault injection --------------------------------------------------------

TEST(FaultInjection, KillFiresAtExactOp) {
  world::options opts;
  opts.faults.kills.push_back({/*rank=*/1, /*at_op=*/3});
  world w(2, opts);
  try {
    w.run([](communicator& c) {
      if (c.rank() == 1) {
        c.send(0, 0, std::vector<double>{1.0});  // op 1
        c.send(0, 1, std::vector<double>{2.0});  // op 2
        c.send(0, 2, std::vector<double>{3.0});  // op 3 — killed here
        FAIL() << "rank 1 should be dead";
      } else {
        c.recv(1, 0);
        c.recv(1, 1);
        c.recv(1, 2);  // never arrives: killed before delivery
      }
    });
    FAIL() << "run should rethrow the kill";
  } catch (const rank_killed& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.op(), 3);
  }
  EXPECT_EQ(w.failed_rank(), 1);
  EXPECT_EQ(w.counters(1).injected_kills, 1);
  // Rank 1 delivered exactly the two messages before the kill; rank 0
  // consumed at most those (it may observe the abort first if it is still
  // ahead of the deliveries when the kill lands).
  EXPECT_EQ(w.counters(1).messages_sent, 2);
  EXPECT_LE(w.counters(0).messages_received, 2);
}

TEST(FaultInjection, DropPlusTimeoutAbortsCleanly) {
  world::options opts;
  opts.timeout = std::chrono::milliseconds(50);
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.src = 0;
  mf.dst = 1;
  mf.drop_probability = 1.0;  // every 0->1 message vanishes
  world w(2, opts);
  EXPECT_THROW(w.run([](communicator& c) {
                 if (c.rank() == 0) {
                   c.send(1, 0, std::vector<double>{42.0});
                 } else {
                   c.recv(0, 0);  // dropped — times out instead of hanging
                 }
               }),
               comm_timeout_error);
  EXPECT_EQ(w.counters(0).injected_drops, 1);
  EXPECT_EQ(w.counters(0).messages_sent, 0);
  EXPECT_EQ(w.counters(1).timeouts, 1);
}

TEST(FaultInjection, DuplicatesPreserveOrderedDelivery) {
  world::options opts;
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.duplicate_probability = 1.0;
  world w(2, opts);
  w.run([](communicator& c) {
    constexpr int kCount = 20;
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i)
        c.send(1, 0, std::vector<double>{static_cast<double>(i)});
    } else {
      // Every message arrives twice, in order.
      for (int i = 0; i < kCount; ++i) {
        EXPECT_DOUBLE_EQ(c.recv(0, 0)[0], static_cast<double>(i));
        EXPECT_DOUBLE_EQ(c.recv(0, 0)[0], static_cast<double>(i));
      }
    }
  });
  EXPECT_EQ(w.counters(0).injected_duplicates, 20);
  EXPECT_EQ(w.counters(0).messages_sent, 40);
}

TEST(FaultInjection, DelayedMessagesStillArrive) {
  world::options opts;
  auto& mf = opts.faults.message_faults.emplace_back();
  mf.delay_probability = 0.5;
  mf.delay = std::chrono::microseconds(300);
  opts.faults.seed = 7;
  world w(3, opts);
  w.run([](communicator& c) {
    const int next = (c.rank() + 1) % 3;
    const int prev = (c.rank() + 2) % 3;
    for (int i = 0; i < 30; ++i) {
      c.send(next, i, std::vector<double>{static_cast<double>(i)});
      EXPECT_DOUBLE_EQ(c.recv(prev, i)[0], static_cast<double>(i));
    }
  });
  EXPECT_GT(w.total_counters().injected_delays, 0);
  EXPECT_EQ(w.total_counters().messages_received, 90);
}

TEST(FaultInjection, ChaosScheduleIsDeterministicAcrossRuns) {
  // Same seed, same program -> identical injected-fault counts and
  // identical per-rank traffic, independent of thread scheduling.
  const auto run_once = [](std::uint64_t seed) {
    world::options opts;
    opts.faults.seed = seed;
    auto& mf = opts.faults.message_faults.emplace_back();
    mf.drop_probability = 0.0;
    mf.delay_probability = 0.3;
    mf.duplicate_probability = 0.4;
    mf.delay = std::chrono::microseconds(100);
    world w(4, opts);
    w.run([](communicator& c) {
      for (int round = 0; round < 10; ++round) {
        for (int dst = 0; dst < 4; ++dst) {
          if (dst == c.rank()) continue;
          c.send(dst, round, std::vector<double>{1.0});
        }
        for (int src = 0; src < 4; ++src) {
          if (src == c.rank()) continue;
          c.recv(src, round);
        }
        c.barrier();
      }
    });
    std::vector<std::int64_t> signature;
    for (int r = 0; r < 4; ++r) {
      const auto& counter = w.counters(r);
      signature.push_back(counter.messages_sent);
      signature.push_back(counter.injected_delays);
      signature.push_back(counter.injected_duplicates);
    }
    return signature;
  };
  const auto a = run_once(123), b = run_once(123), c = run_once(999);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed draws a different schedule
}

TEST(FaultInjection, ScheduleIsInvariantUnderThreadInterleaving) {
  // Fault decisions must be a pure function of (seed, rank, op index) — the
  // wall-clock interleaving of the rank threads must not matter. Force two
  // very different interleavings with per-rank staggered start delays
  // (ascending in one run, descending in the other) and demand identical
  // per-rank fault decisions and traffic.
  constexpr int kRanks = 4;
  const auto run_once = [](bool reverse_stagger) {
    world::options opts;
    opts.faults.seed = 42;
    auto& mf = opts.faults.message_faults.emplace_back();
    mf.delay_probability = 0.25;
    mf.duplicate_probability = 0.25;
    mf.delay = std::chrono::microseconds(50);
    world w(kRanks, opts);
    w.run([reverse_stagger](communicator& c) {
      const int slot = reverse_stagger ? kRanks - 1 - c.rank() : c.rank();
      std::this_thread::sleep_for(std::chrono::microseconds(200 * slot));
      for (int round = 0; round < 8; ++round) {
        c.send((c.rank() + 1) % kRanks, round, std::vector<double>{1.0});
        c.recv((c.rank() + kRanks - 1) % kRanks, round);
      }
    });
    std::vector<std::int64_t> signature;
    for (int r = 0; r < kRanks; ++r) {
      const auto& counter = w.counters(r);
      signature.push_back(counter.messages_sent);
      signature.push_back(counter.messages_received);
      signature.push_back(counter.injected_delays);
      signature.push_back(counter.injected_duplicates);
      signature.push_back(counter.injected_drops);
    }
    return signature;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// ---- counters ---------------------------------------------------------------

TEST(Counters, AccountForCleanTraffic) {
  world w(2);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 0, std::vector<double>(5, 1.0));
    } else {
      EXPECT_EQ(c.recv(0, 0).size(), 5u);
    }
    c.barrier();
    c.allreduce_sum(1.0);
  });
  EXPECT_EQ(w.counters(0).messages_sent, 1);
  EXPECT_EQ(w.counters(0).doubles_sent, 5);
  EXPECT_EQ(w.counters(1).messages_received, 1);
  EXPECT_EQ(w.counters(1).doubles_received, 5);
  const auto total = w.total_counters();
  EXPECT_EQ(total.barriers, 2);
  EXPECT_EQ(total.reductions, 2);
  EXPECT_EQ(total.timeouts, 0);
  EXPECT_EQ(total.aborts_observed, 0);
  EXPECT_THROW(w.counters(2), sfp::contract_error);
}

}  // namespace
