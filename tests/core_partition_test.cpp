// Tests for the SFC partitioner: slicing the global curve into balanced
// contiguous segments (paper Section 3) and the resulting partition quality.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "graph/ops.hpp"
#include "partition/metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace sfp;
using namespace sfp::core;

TEST(OrderSlicing, EqualCountsWhenDivisible) {
  std::vector<int> order(12);
  std::iota(order.begin(), order.end(), 0);
  const auto p = partition_from_order(order, 4);
  const auto sizes = partition::part_sizes(p);
  for (const auto s : sizes) EXPECT_EQ(s, 3);
  // Contiguity along the order: labels non-decreasing.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(p.part_of[static_cast<std::size_t>(order[i])],
              p.part_of[static_cast<std::size_t>(order[i - 1])]);
}

TEST(OrderSlicing, NearEqualWhenNotDivisible) {
  std::vector<int> order(10);
  std::iota(order.begin(), order.end(), 0);
  const auto p = partition_from_order(order, 3);
  const auto sizes = partition::part_sizes(p);
  std::int64_t mn = 100, mx = 0;
  for (const auto s : sizes) {
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  EXPECT_GE(mn, 3);
  EXPECT_LE(mx, 4);
}

TEST(OrderSlicing, WeightedBalancesWeightNotCount) {
  // Vertices 0..3 with weights 3,1,1,3 on the curve 0,1,2,3: two parts
  // should split as {0} | {1,2,3}? No: midpoints at 1.5, 3.5, 4.5, 6.5 of 8;
  // ideal halves split at 4 -> parts {0,1},{2,3} (weight 4 vs 4).
  std::vector<int> order{0, 1, 2, 3};
  std::vector<graph::weight> w{3, 1, 1, 3};
  const auto p = partition_from_order(order, w, 2);
  EXPECT_EQ(p.part_of[0], 0);
  EXPECT_EQ(p.part_of[1], 0);
  EXPECT_EQ(p.part_of[2], 1);
  EXPECT_EQ(p.part_of[3], 1);
}

TEST(OrderSlicing, HeavyVertexCannotStarveParts) {
  // One vertex holds nearly all weight; every part must still be non-empty.
  std::vector<int> order{0, 1, 2, 3, 4};
  std::vector<graph::weight> w{1, 1000, 1, 1, 1};
  const auto p = partition_from_order(order, w, 5);
  EXPECT_TRUE(partition::all_parts_nonempty(p));
  // Labels must still be monotone along the curve.
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(p.part_of[static_cast<std::size_t>(order[i])],
              p.part_of[static_cast<std::size_t>(order[i - 1])]);
}

TEST(OrderSlicing, RandomizedWeightsAlwaysValid) {
  rng r(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 20 + static_cast<int>(r.below(200));
    const int k = 1 + static_cast<int>(r.below(static_cast<std::uint64_t>(n)));
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::vector<graph::weight> w(static_cast<std::size_t>(n));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(50));
    const auto p = partition_from_order(order, w, k);
    EXPECT_EQ(p.num_parts, k);
    EXPECT_TRUE(partition::all_parts_nonempty(p));
    for (std::size_t i = 1; i < order.size(); ++i)
      EXPECT_GE(p.part_of[static_cast<std::size_t>(order[i])],
                p.part_of[static_cast<std::size_t>(order[i - 1])]);
  }
}

TEST(OrderSlicing, Preconditions) {
  std::vector<int> order{0, 1};
  EXPECT_THROW(partition_from_order(order, 3), contract_error);  // parts > n
  EXPECT_THROW(partition_from_order(order, 0), contract_error);
  EXPECT_THROW(partition_from_order(std::vector<int>{}, 1), contract_error);
}

// ---- full SFC partitioning on the cubed-sphere ------------------------------

TEST(SfcPartition, PerfectBalanceAtPaperConfigurations) {
  // Paper: "chosen specifically so that an equal number of spectral elements
  // are allocated to each processor" — SFC then achieves LB(nelemd) = 0.
  struct config {
    int ne;
    int nproc;
  };
  for (const config c : {config{8, 96}, config{8, 384}, config{9, 486},
                         config{16, 768}, config{18, 486}}) {
    const mesh::cubed_sphere m(c.ne);
    const auto p = sfc_partition(m, c.nproc);
    const auto g = m.dual_graph();
    const auto metrics = partition::compute_metrics(g, p);
    EXPECT_DOUBLE_EQ(metrics.lb_elems, 0.0)
        << "Ne=" << c.ne << " Nproc=" << c.nproc;
    EXPECT_TRUE(partition::all_parts_nonempty(p));
  }
}

TEST(SfcPartition, PartsAreContiguousCurveSegments) {
  const mesh::cubed_sphere m(8);
  const cube_curve curve = build_cube_curve(m);
  const auto p = sfc_partition(curve, 48);
  graph::vid prev = 0;
  for (const int e : curve.order) {
    const graph::vid label = p.part_of[static_cast<std::size_t>(e)];
    EXPECT_GE(label, prev);
    EXPECT_LE(label, prev + 1);
    prev = label;
  }
}

TEST(SfcPartition, PartsAreConnectedSubdomains) {
  // Contiguous segments of a continuous curve are connected in the edge-
  // adjacency graph — the locality property that keeps communication local.
  const mesh::cubed_sphere m(8);
  const auto p = sfc_partition(m, 24);
  const auto g = m.dual_graph(8, 1, /*include_corners=*/false);
  for (int part = 0; part < 24; ++part) {
    std::vector<graph::vid> keep;
    for (graph::vid v = 0; v < g.num_vertices(); ++v)
      if (p.part_of[static_cast<std::size_t>(v)] == part) keep.push_back(v);
    ASSERT_FALSE(keep.empty());
    std::vector<graph::vid> old_of_new;
    const auto sub = graph::induced_subgraph(g, keep, old_of_new);
    EXPECT_TRUE(graph::is_connected(sub)) << "part " << part;
  }
}

TEST(SfcPartition, WeightedElementsBalanceWeight) {
  const mesh::cubed_sphere m(4);
  const cube_curve curve = build_cube_curve(m);
  rng r(5);
  std::vector<graph::weight> w(static_cast<std::size_t>(m.num_elements()));
  for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(4));
  const auto p = sfc_partition(curve, 8, w);
  // Weighted LB should be small (weights are bounded by 4x the mean).
  graph::builder b(m.num_elements());
  b.add_edge(0, 1);  // weights live on vertices; graph content irrelevant
  for (int v = 0; v < m.num_elements(); ++v)
    b.set_vertex_weight(v, w[static_cast<std::size_t>(v)]);
  const auto weights = partition::part_weights(p, b.build());
  const double lb = load_balance(std::span<const graph::weight>(weights));
  EXPECT_LT(lb, 0.25);
}

TEST(SfcPartition, SupportsAndNprocs) {
  EXPECT_TRUE(sfc_supports(8));
  EXPECT_TRUE(sfc_supports(9));
  EXPECT_TRUE(sfc_supports(18));
  EXPECT_TRUE(sfc_supports(1));
  EXPECT_FALSE(sfc_supports(5));
  EXPECT_FALSE(sfc_supports(14));

  const auto nprocs = equal_load_nprocs(8);  // K = 384
  EXPECT_EQ(nprocs.front(), 1);
  EXPECT_EQ(nprocs.back(), 384);
  for (const int p : nprocs) EXPECT_EQ(384 % p, 0);
  // Paper Figure 7 runs through 384 processors; 96, 192, 384 are all valid.
  const std::set<int> s(nprocs.begin(), nprocs.end());
  for (const int p : {1, 2, 4, 8, 96, 192, 384}) EXPECT_TRUE(s.count(p));
}

TEST(SfcPartition, OneElementPerProcessor) {
  const mesh::cubed_sphere m(4);
  const auto p = sfc_partition(m, m.num_elements());
  const auto sizes = partition::part_sizes(p);
  for (const auto s : sizes) EXPECT_EQ(s, 1);
}

}  // namespace
