// Tests for the curve-locality analysis and the dynamic rebalancing module.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "sfc/locality.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace {

using namespace sfp;
using namespace sfp::sfc;

// ---- locality ----------------------------------------------------------------

TEST(Locality, UnitStepAnchor) {
  const auto r = analyze_locality(hilbert_curve(4), 16);
  EXPECT_DOUBLE_EQ(r.dilation_lag1, 1.0);  // consecutive cells are adjacent
}

TEST(Locality, HilbertBeatsRowMajor) {
  const int side = 32;
  const auto h = analyze_locality(hilbert_curve(5), side);
  const auto rm = analyze_locality(row_major_order(side), side);
  // Note: row-major *aliases* at lags that are multiples of the side (lag 64
  // = exactly two rows down), so lag-64 dilation is not a fair comparison;
  // lag 16 (half a row) and the stretch/perimeter metrics are.
  EXPECT_LT(h.dilation_lag16, 0.5 * rm.dilation_lag16);
  EXPECT_LT(h.dilation_lag64, 2.0);  // absolute locality bound for Hilbert
  EXPECT_LT(h.max_stretch, rm.max_stretch);
  EXPECT_LT(h.mean_segment_perimeter_16, rm.mean_segment_perimeter_16);
}

TEST(Locality, PeanoIsComparablyLocal) {
  const auto h = analyze_locality(hilbert_curve(5), 32);     // 1024 cells
  const auto p = analyze_locality(peano_curve(3), 27);       // 729 cells
  // Same ballpark: within 2x of each other on medium-range dilation.
  EXPECT_LT(p.dilation_lag16, 2.0 * h.dilation_lag16);
  EXPECT_LT(h.dilation_lag16, 2.0 * p.dilation_lag16);
}

TEST(Locality, SegmentPerimetersNearIdeal) {
  const auto h = analyze_locality(hilbert_curve(5), 32);
  // Hilbert segments of 16 cells should be within ~2x of a perfect 4x4
  // square's perimeter; row-major strips of 16 are far worse (up to 34).
  EXPECT_LT(h.mean_segment_perimeter_16,
            2.0 * locality_report::ideal_perimeter(16));
  EXPECT_DOUBLE_EQ(locality_report::ideal_perimeter(16), 16.0);
}

TEST(Locality, RowMajorOrderShape) {
  const auto rm = row_major_order(3);
  ASSERT_EQ(rm.size(), 9u);
  EXPECT_EQ(rm[0], (cell{0, 0}));
  EXPECT_EQ(rm[3], (cell{0, 1}));
  EXPECT_EQ(rm[8], (cell{2, 2}));
}

TEST(Locality, Preconditions) {
  EXPECT_THROW(analyze_locality(hilbert_curve(2), 5), contract_error);
  EXPECT_THROW(analyze_locality(hilbert_curve(2), 4, 0), contract_error);
}

// ---- rebalance -----------------------------------------------------------------

TEST(Rebalance, IdenticalWeightsMoveNothing) {
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 96);
  core::migration_stats stats;
  const auto p1 = core::rebalance(curve, p0, {}, 96, &stats);
  EXPECT_EQ(stats.moved_elements, 0);
  EXPECT_EQ(p1.part_of, p0.part_of);
}

TEST(Rebalance, FixesStrongWeightSkew) {
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int k = m.num_elements();
  const auto p0 = core::sfc_partition(curve, 48);

  // "Day side" elements (x > 0) cost 3x — a strong physics imbalance.
  std::vector<graph::weight> w(static_cast<std::size_t>(k), 1);
  for (int e = 0; e < k; ++e)
    if (m.element_center_sphere(e).x > 0) w[static_cast<std::size_t>(e)] = 3;

  core::migration_stats stats;
  const auto p1 = core::rebalance(curve, p0, w, 48, &stats);
  graph::builder gb(k);
  gb.add_edge(0, 1);
  for (int e = 0; e < k; ++e)
    gb.set_vertex_weight(e, w[static_cast<std::size_t>(e)]);
  const auto g = gb.build();
  const auto weights_new = partition::part_weights(p1, g);
  const auto weights_old = partition::part_weights(p0, g);
  EXPECT_LT(load_balance(std::span<const graph::weight>(weights_new)),
            0.5 * load_balance(std::span<const graph::weight>(weights_old)));
  EXPECT_GT(stats.moved_elements, 0);
}

TEST(Rebalance, MigrationScalesWithDriftMagnitude) {
  // The SFC's incremental-rebalancing property: small weight drifts shift
  // only segment boundaries, so migration volume grows smoothly with the
  // drift instead of jumping to "reshuffle everything".
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int k = m.num_elements();
  const auto p0 = core::sfc_partition(curve, 48);

  double prev_fraction = -1.0;
  for (const graph::weight day_cost : {9, 10, 12, 24}) {  // night side = 8
    std::vector<graph::weight> w(static_cast<std::size_t>(k), 8);
    for (int e = 0; e < k; ++e)
      if (m.element_center_sphere(e).x > 0)
        w[static_cast<std::size_t>(e)] = day_cost;
    core::migration_stats stats;
    core::rebalance(curve, p0, w, 48, &stats);
    EXPECT_GT(stats.moved_fraction, prev_fraction) << day_cost;
    prev_fraction = stats.moved_fraction;
    if (day_cost == 9) {
      // 12.5% cost skew moves well under a third of the elements.
      EXPECT_LT(stats.moved_fraction, 0.30);
    }
  }
}

TEST(Rebalance, MigrationStatsCountExactly) {
  partition::partition a(2, {0, 0, 1, 1});
  partition::partition b(2, {0, 1, 1, 0});
  std::vector<graph::weight> w{1, 10, 1, 10};
  const auto stats = core::migration_between(a, b, w);
  EXPECT_EQ(stats.moved_elements, 2);
  EXPECT_EQ(stats.moved_weight, 20);
  EXPECT_DOUBLE_EQ(stats.moved_fraction, 0.5);
}

TEST(Rebalance, SupportsPartCountChange) {
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 16);
  core::migration_stats stats;
  const auto p1 = core::rebalance(curve, p0, {}, 32, &stats);
  EXPECT_EQ(p1.num_parts, 32);
  EXPECT_TRUE(partition::all_parts_nonempty(p1));
  EXPECT_GT(stats.moved_elements, 0);  // finer parts relabel some elements
}

TEST(Rebalance, ShrinkingPartCountRemapsSurvivors) {
  // nparts -> nparts-1 via a full re-slice: remap keeps the usable labels
  // on their best-overlap parts, so migration stays bounded even though
  // every segment boundary shifts.
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 48);
  core::migration_stats stats;
  const auto p1 = core::rebalance(curve, p0, {}, 47, &stats);
  EXPECT_EQ(p1.num_parts, 47);
  EXPECT_TRUE(partition::all_parts_nonempty(p1));
  EXPECT_GT(stats.moved_elements, 0);
  // A full equal re-slice k -> k-1 moves ~1/4 of the elements after the
  // best label matching; far below "reshuffle everything".
  EXPECT_LT(stats.moved_fraction, 0.5);
}

TEST(Rebalance, PlanRecoveryMovesOnlyTheFailedSegment) {
  // The fault-tolerance path: absorb the failed segment into its
  // curve-adjacent neighbours. Exactly the failed part's elements move, so
  // moved_fraction == 1/nparts for unit weights — the O(imbalance)
  // re-slicing property the runtime's recovery protocol relies on.
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 48;
  const auto p0 = core::sfc_partition(curve, nparts);
  for (const int failed : {0, 7, nparts - 1}) {
    const auto plan = core::plan_recovery(curve, p0, failed);
    EXPECT_EQ(plan.part.num_parts, nparts - 1);
    EXPECT_TRUE(partition::all_parts_nonempty(plan.part));
    EXPECT_NEAR(plan.migration.moved_fraction, 1.0 / nparts, 1e-12)
        << "failed=" << failed;
    EXPECT_LE(plan.migration.moved_fraction, 1.5 / nparts);
    // The survivor map renumbers around the hole.
    ASSERT_EQ(plan.survivor_of.size(), static_cast<std::size_t>(nparts - 1));
    for (int l = 0; l < nparts - 1; ++l)
      EXPECT_EQ(plan.survivor_of[static_cast<std::size_t>(l)],
                l + (l >= failed ? 1 : 0));
    // Survivors keep every element they had (only failed's elements moved).
    for (std::size_t e = 0; e < p0.part_of.size(); ++e) {
      if (p0.part_of[e] == failed) continue;
      const auto new_label = plan.part.part_of[e];
      EXPECT_EQ(plan.survivor_of[static_cast<std::size_t>(new_label)],
                p0.part_of[e]);
    }
  }
}

TEST(Rebalance, PlanRecoveryRespectsWeightsAtTheSplit) {
  // With weights, the failed run splits at its weight midpoint: each
  // absorbing neighbour gains about half the failed part's weight.
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const int k = m.num_elements();
  std::vector<graph::weight> w(static_cast<std::size_t>(k), 2);
  const auto p0 = core::sfc_partition(curve, 8, w);
  const int failed = 4;
  const auto plan = core::plan_recovery(curve, p0, failed, w);
  EXPECT_EQ(plan.migration.moved_weight,
            2 * plan.migration.moved_elements);
  // Neighbour loads: failed's weight went somewhere, total is conserved.
  std::vector<graph::weight> load(7, 0);
  for (std::size_t e = 0; e < plan.part.part_of.size(); ++e)
    load[static_cast<std::size_t>(plan.part.part_of[e])] +=
        w[e];
  graph::weight total = 0;
  for (const auto l : load) total += l;
  EXPECT_EQ(total, 2 * k);
}

TEST(Rebalance, PlanRecoveryPreconditions) {
  const mesh::cubed_sphere m(2);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 4);
  EXPECT_THROW(core::plan_recovery(curve, p0, -1), contract_error);
  EXPECT_THROW(core::plan_recovery(curve, p0, 4), contract_error);
  partition::partition single(
      1, std::vector<graph::vid>(p0.part_of.size(), 0));
  EXPECT_THROW(core::plan_recovery(curve, single, 0), contract_error);
}

TEST(Rebalance, Preconditions) {
  partition::partition a(2, {0, 1});
  partition::partition b(2, {0, 1, 1});
  EXPECT_THROW(core::migration_between(a, b), contract_error);
  std::vector<graph::weight> bad_w{1};
  partition::partition c(2, {0, 1});
  EXPECT_THROW(core::migration_between(a, c, bad_w), contract_error);
}

}  // namespace
