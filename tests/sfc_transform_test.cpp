// Tests for the dihedral group D4 acting on grid cells.

#include <gtest/gtest.h>

#include <set>

#include "sfc/curve.hpp"
#include "sfc/transform.hpp"
#include "sfc/verify.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::sfc;

TEST(Dihedral, BasicImages) {
  const int side = 4;
  const cell c{1, 0};
  EXPECT_EQ(apply(dihedral::identity, c, side), (cell{1, 0}));
  EXPECT_EQ(apply(dihedral::rot90, c, side), (cell{3, 1}));
  EXPECT_EQ(apply(dihedral::rot180, c, side), (cell{2, 3}));
  EXPECT_EQ(apply(dihedral::rot270, c, side), (cell{0, 2}));
  EXPECT_EQ(apply(dihedral::flip_x, c, side), (cell{2, 0}));
  EXPECT_EQ(apply(dihedral::flip_y, c, side), (cell{1, 3}));
  EXPECT_EQ(apply(dihedral::transpose, c, side), (cell{0, 1}));
  EXPECT_EQ(apply(dihedral::anti_transpose, c, side), (cell{3, 2}));
}

TEST(Dihedral, EachIsABijection) {
  const int side = 5;
  for (const dihedral t : all_dihedrals) {
    std::set<std::pair<int, int>> images;
    for (int x = 0; x < side; ++x)
      for (int y = 0; y < side; ++y) {
        const cell i = apply(t, {x, y}, side);
        EXPECT_GE(i.x, 0);
        EXPECT_LT(i.x, side);
        EXPECT_GE(i.y, 0);
        EXPECT_LT(i.y, side);
        images.insert({i.x, i.y});
      }
    EXPECT_EQ(images.size(), static_cast<std::size_t>(side * side))
        << dihedral_name(t);
  }
}

TEST(Dihedral, ComposeMatchesSequentialApplication) {
  const int side = 7;
  for (const dihedral a : all_dihedrals) {
    for (const dihedral b : all_dihedrals) {
      const dihedral ab = compose(a, b);
      for (const cell c : {cell{0, 0}, cell{3, 1}, cell{6, 6}, cell{2, 5}}) {
        EXPECT_EQ(apply(ab, c, side), apply(a, apply(b, c, side), side))
            << dihedral_name(a) << " after " << dihedral_name(b);
      }
    }
  }
}

TEST(Dihedral, InverseUndoes) {
  const int side = 6;
  for (const dihedral t : all_dihedrals) {
    const dihedral inv = inverse(t);
    for (int x = 0; x < side; ++x)
      for (int y = 0; y < side; ++y)
        EXPECT_EQ(apply(inv, apply(t, {x, y}, side), side), (cell{x, y}));
  }
}

TEST(Dihedral, GroupClosureAndIdentity) {
  for (const dihedral a : all_dihedrals) {
    EXPECT_EQ(compose(a, dihedral::identity), a);
    EXPECT_EQ(compose(dihedral::identity, a), a);
  }
  // rot90 has order 4.
  const dihedral r2 = compose(dihedral::rot90, dihedral::rot90);
  EXPECT_EQ(r2, dihedral::rot180);
  EXPECT_EQ(compose(r2, r2), dihedral::identity);
  // Reflections are involutions.
  for (const dihedral t : {dihedral::flip_x, dihedral::flip_y,
                           dihedral::transpose, dihedral::anti_transpose})
    EXPECT_EQ(compose(t, t), dihedral::identity);
}

TEST(Dihedral, TransformedCurveKeepsAdjacency) {
  const auto base = hilbert_curve(3);
  for (const dihedral t : all_dihedrals) {
    const auto moved = apply(t, base, 8);
    const auto r = verify_coverage_and_adjacency(moved, 8);
    EXPECT_TRUE(r.ok) << dihedral_name(t) << ": " << r.error;
  }
}

TEST(Dihedral, CornersMapToCorners) {
  const int side = 9;
  const std::set<std::pair<int, int>> corners{
      {0, 0}, {side - 1, 0}, {0, side - 1}, {side - 1, side - 1}};
  for (const dihedral t : all_dihedrals) {
    for (const auto& [x, y] : corners) {
      const cell i = apply(t, {x, y}, side);
      EXPECT_TRUE(corners.count({i.x, i.y})) << dihedral_name(t);
    }
  }
}

TEST(Dihedral, RejectsOutOfRange) {
  EXPECT_THROW(apply(dihedral::rot90, {5, 0}, 4), sfp::contract_error);
  EXPECT_THROW(apply(dihedral::rot90, {-1, 0}, 4), sfp::contract_error);
}

}  // namespace
