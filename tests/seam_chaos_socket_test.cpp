// The chaos contract across transport backends: the socket fabric soaks
// under the same discrete schedules as the in-process one, the
// schedule-determined counters agree per schedule on both backends, and
// byte-stream faults (native frames on the socket backend, lowered
// message-level equivalents in-process) heal without data loss either way.
//
// Registered under "chaos-transport": part of the chaos suite (`-L chaos`),
// deliberately outside the tsan-preset `-L runtime` filter — the soak's
// wall clock, not its thread discipline, is the binding constraint here
// (runtime_transport_test carries the tsan coverage for the socket fabric).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "io/json.hpp"
#include "seam/chaos.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

chaos_options small_problem(runtime::transport_backend backend) {
  chaos_options opts;
  opts.ne = 2;
  opts.nranks = 4;
  opts.nsteps = 3;
  opts.timeout = std::chrono::milliseconds(10000);
  opts.reliable.recv_timeout = std::chrono::milliseconds(8000);
  opts.backend = backend;
  return opts;
}

TEST(ChaosSchedule, StreamFaultsAreSeededAndRoundTripThroughJson) {
  chaos_schedule s = make_chaos_schedule(77, 4, 4);
  add_stream_faults(s, 4, 3);
  ASSERT_EQ(s.stream_faults.size(), 3u);
  for (const auto& f : s.stream_faults) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_GE(f.src, 0);
    EXPECT_LT(f.src, 4);
    EXPECT_GE(f.nth, 0);
  }
  // Pure function of (schedule seed, args).
  chaos_schedule again = make_chaos_schedule(77, 4, 4);
  add_stream_faults(again, 4, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again.stream_faults[i].what, s.stream_faults[i].what);
    EXPECT_EQ(again.stream_faults[i].src, s.stream_faults[i].src);
    EXPECT_EQ(again.stream_faults[i].dst, s.stream_faults[i].dst);
    EXPECT_EQ(again.stream_faults[i].nth, s.stream_faults[i].nth);
  }

  const std::string text = io::write_json(chaos_schedule_to_json(s), 2);
  const chaos_schedule back = chaos_schedule_from_json(io::parse_json(text));
  ASSERT_EQ(back.stream_faults.size(), s.stream_faults.size());
  for (std::size_t i = 0; i < s.stream_faults.size(); ++i) {
    EXPECT_EQ(back.stream_faults[i].what, s.stream_faults[i].what);
    EXPECT_EQ(back.stream_faults[i].src, s.stream_faults[i].src);
    EXPECT_EQ(back.stream_faults[i].dst, s.stream_faults[i].dst);
    EXPECT_EQ(back.stream_faults[i].nth, s.stream_faults[i].nth);
  }
  EXPECT_THROW(chaos_schedule_from_json(io::parse_json(
                   R"({"faults": [], "stream": [{"kind": "melt", "src": 0,
                       "dst": 1, "nth": 0}]})")),
               std::exception);
}

TEST(ChaosSchedule, StreamFaultsLowerForInprocAndStayNativeForSocket) {
  chaos_schedule s;
  s.seed = 9;
  s.stream_faults = {
      {.what = runtime::stream_fault::kind::truncate, .src = 0, .dst = 1,
       .nth = 2},
      {.what = runtime::stream_fault::kind::reset, .src = 1, .dst = 2,
       .nth = 3},
      {.what = runtime::stream_fault::kind::split, .src = 2, .dst = 3,
       .nth = 4},
      {.what = runtime::stream_fault::kind::stall, .src = 3, .dst = 0,
       .nth = 5},
  };

  // In-process: every stream fault lowers to its closest message-level
  // equivalent so the reliable layer faces the same delivery outcome.
  const runtime::fault_plan inproc =
      to_fault_plan(s, runtime::transport_backend::inproc);
  ASSERT_EQ(inproc.message_faults.size(), 4u);
  EXPECT_EQ(inproc.message_faults[0].truncate_probability, 1.0);
  EXPECT_EQ(inproc.message_faults[1].drop_probability, 1.0);
  EXPECT_EQ(inproc.message_faults[2].delay_probability, 1.0);
  EXPECT_EQ(inproc.message_faults[3].delay_probability, 1.0);
  for (const auto& mf : inproc.message_faults) {
    EXPECT_EQ(mf.fire_count, 1);
    EXPECT_GE(mf.min_payload, 1u);  // pinned to data frames
  }

  // Socket: no lowering — the frames are mangled natively instead.
  const runtime::fault_plan socket =
      to_fault_plan(s, runtime::transport_backend::socket);
  EXPECT_TRUE(socket.message_faults.empty());
  const runtime::stream_fault_plan native = to_stream_plan(s);
  ASSERT_EQ(native.faults.size(), 4u);
  EXPECT_EQ(native.faults[1].what, runtime::stream_fault::kind::reset);
  EXPECT_EQ(native.faults[1].nth, 3);
}

TEST(ChaosSocketSoak, FiftySchedulesHealOverTheSocketBackend) {
  // The acceptance soak, verbatim on the socket fabric: the same 50 seeds
  // the in-process soak runs, healed to 1e-12 with one attempt each.
  const chaos_harness harness(
      small_problem(runtime::transport_backend::socket));
  const soak_report report =
      run_chaos_soak(harness, /*base_seed=*/1000, /*trials=*/50,
                     /*nfaults=*/6);
  EXPECT_EQ(report.trials, 50);
  for (const auto& f : report.failures)
    ADD_FAILURE() << "seed " << f.schedule.seed << ": " << f.trial.failure;
  EXPECT_TRUE(report.failures.empty());
  EXPECT_GT(report.reliable.retransmits, 0);
  EXPECT_GT(report.reliable.corruption_detected, 0);
  EXPECT_GT(report.reliable.dedup_dropped, 0);
  // And it genuinely ran over sockets.
  EXPECT_GT(report.socket.connects, 0);
  EXPECT_GT(report.socket.frames_received, 0);
}

TEST(ChaosSocketSoak, ScheduleDeterminedCountersMatchAcrossBackends) {
  // One schedule, two fabrics, the same ladder: the injected-fault counters
  // are a function of the schedule alone, so they must agree per schedule
  // on every backend. (Timing-dependent totals — retransmits, acks — may
  // differ; the schedule-determined subset may not.)
  const chaos_harness inproc(
      small_problem(runtime::transport_backend::inproc));
  const chaos_harness socket(
      small_problem(runtime::transport_backend::socket));
  for (std::uint64_t seed = 1000; seed < 1012; ++seed) {
    const chaos_schedule schedule =
        make_chaos_schedule(seed, inproc.options().nranks, 6);
    const chaos_trial a = inproc.run(schedule);
    const chaos_trial b = socket.run(schedule);
    ASSERT_TRUE(a.passed) << "seed " << seed << ": " << a.failure;
    ASSERT_TRUE(b.passed) << "seed " << seed << ": " << b.failure;
    EXPECT_EQ(a.attempts, b.attempts) << "seed " << seed;
    EXPECT_EQ(a.counters.injected_drops, b.counters.injected_drops)
        << "seed " << seed;
    EXPECT_EQ(a.counters.injected_duplicates, b.counters.injected_duplicates)
        << "seed " << seed;
    EXPECT_EQ(a.counters.injected_corruptions,
              b.counters.injected_corruptions)
        << "seed " << seed;
    EXPECT_EQ(a.counters.injected_truncations,
              b.counters.injected_truncations)
        << "seed " << seed;
    EXPECT_EQ(a.counters.injected_reorders, b.counters.injected_reorders)
        << "seed " << seed;
  }
}

TEST(ChaosSocketSoak, StreamFaultSchedulesHealOnBothBackends) {
  // Byte-stream chaos under the message-level chaos: native truncated /
  // split / reset / stalled frames on the socket backend, their lowered
  // equivalents in-process — healed without data loss either way.
  const chaos_harness socket(
      small_problem(runtime::transport_backend::socket));
  const soak_report socket_report =
      run_chaos_soak(socket, /*base_seed=*/3000, /*trials=*/10,
                     /*nfaults=*/4, /*shrink=*/true, /*nstream=*/2);
  for (const auto& f : socket_report.failures)
    ADD_FAILURE() << "socket seed " << f.schedule.seed << ": "
                  << f.trial.failure;
  EXPECT_TRUE(socket_report.failures.empty());
  EXPECT_GT(socket_report.socket.injected_stream_faults, 0);

  const chaos_harness inproc(
      small_problem(runtime::transport_backend::inproc));
  const soak_report inproc_report =
      run_chaos_soak(inproc, /*base_seed=*/3000, /*trials=*/10,
                     /*nfaults=*/4, /*shrink=*/true, /*nstream=*/2);
  for (const auto& f : inproc_report.failures)
    ADD_FAILURE() << "inproc seed " << f.schedule.seed << ": "
                  << f.trial.failure;
  EXPECT_TRUE(inproc_report.failures.empty());
  EXPECT_EQ(inproc_report.socket.injected_stream_faults, 0);  // lowered away
}

}  // namespace
