// Tests for the cube stitching: a single continuous space-filling curve over
// all six faces of the cubed-sphere (paper Section 3, Figure 6).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/cube_curve.hpp"
#include "mesh/cubed_sphere.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::core;

class CubeCurveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CubeCurveProperty, ContinuousTraversalOfAllElements) {
  const int ne = GetParam();
  const mesh::cubed_sphere m(ne);
  const cube_curve c = build_cube_curve(m);
  EXPECT_EQ(c.order.size(), static_cast<std::size_t>(m.num_elements()));
  std::string error;
  EXPECT_TRUE(verify_cube_curve(m, c.order, &error)) << "Ne=" << ne << ": "
                                                     << error;
}

TEST_P(CubeCurveProperty, VisitsFacesInContiguousBlocks) {
  const int ne = GetParam();
  const mesh::cubed_sphere m(ne);
  const cube_curve c = build_cube_curve(m);
  const int per_face = ne * ne;
  for (int pos = 0; pos < 6; ++pos) {
    const int face = c.face_order[static_cast<std::size_t>(pos)];
    for (int i = 0; i < per_face; ++i) {
      const int e = c.order[static_cast<std::size_t>(pos * per_face + i)];
      EXPECT_EQ(m.element_of(e).face, face);
    }
  }
  // All six faces appear exactly once in the order.
  std::set<int> faces(c.face_order.begin(), c.face_order.end());
  EXPECT_EQ(faces.size(), 6u);
}

TEST_P(CubeCurveProperty, CurveIsClosed) {
  // The stitcher prefers closed curves; they exist for every compatible Ne
  // (this test doubles as a regression check on that claim).
  const int ne = GetParam();
  const mesh::cubed_sphere m(ne);
  const cube_curve c = build_cube_curve(m);
  EXPECT_TRUE(c.closed) << "Ne=" << ne;
  if (c.closed) {
    bool adjacent = false;
    for (int e = 0; e < 4; ++e)
      adjacent |= m.edge_neighbor(c.order.back(), e) == c.order.front();
    EXPECT_TRUE(adjacent);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CubeCurveProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 24),
                         ::testing::PrintToStringParamName());

TEST(CubeCurve, AllNestingOrdersStitch) {
  const mesh::cubed_sphere m(12);
  for (const auto order :
       {sfc::nesting_order::peano_first, sfc::nesting_order::hilbert_first,
        sfc::nesting_order::interleaved}) {
    const cube_curve c = build_cube_curve(m, order);
    std::string error;
    EXPECT_TRUE(verify_cube_curve(m, c.order, &error)) << error;
  }
}

TEST(CubeCurve, ExplicitScheduleMustMatchNe) {
  const mesh::cubed_sphere m(4);
  const auto wrong = sfc::schedule_for(8);
  EXPECT_THROW(build_cube_curve(m, *wrong), contract_error);
}

TEST(CubeCurve, IncompatibleNeRejected) {
  const mesh::cubed_sphere m(5);
  EXPECT_THROW(build_cube_curve(m), contract_error);
}

TEST(CubeCurve, VerifyDetectsBrokenOrders) {
  const mesh::cubed_sphere m(2);
  cube_curve c = build_cube_curve(m);
  std::string error;

  auto too_short = c.order;
  too_short.pop_back();
  EXPECT_FALSE(verify_cube_curve(m, too_short, &error));

  auto duplicated = c.order;
  duplicated[1] = duplicated[0];
  EXPECT_FALSE(verify_cube_curve(m, duplicated, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);

  auto teleport = c.order;
  std::swap(teleport[5], teleport[17]);
  EXPECT_FALSE(verify_cube_curve(m, teleport, &error));
}

TEST(CubeCurve, ExtendedSchedulesStitchOnCincoMeshes) {
  // Ne with a factor of 5 — beyond the paper's 2^n 3^m rule — must stitch
  // into a continuous curve just like the paper's resolutions.
  for (const int ne : {5, 10, 15, 20}) {
    const mesh::cubed_sphere m(ne);
    const cube_curve c = build_cube_curve_extended(m);
    std::string error;
    EXPECT_TRUE(verify_cube_curve(m, c.order, &error)) << "Ne=" << ne << ": "
                                                       << error;
    EXPECT_TRUE(c.closed) << "Ne=" << ne;
  }
  // Paper-compatible Ne routes through the same entry point unchanged.
  const mesh::cubed_sphere m8(8);
  const cube_curve c8 = build_cube_curve_extended(m8);
  EXPECT_EQ(c8.order, build_cube_curve(m8).order);
  // Still rejects hopeless sides.
  const mesh::cubed_sphere m7(7);
  EXPECT_THROW(build_cube_curve_extended(m7), contract_error);
}

TEST(CubeCurve, DeterministicAcrossCalls) {
  const mesh::cubed_sphere m(8);
  const cube_curve a = build_cube_curve(m);
  const cube_curve b = build_cube_curve(m);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.face_order, b.face_order);
}

TEST(CubeCurve, PaperResolutionsStitch) {
  // The four resolutions of paper Table 1.
  for (const int ne : {8, 9, 16, 18}) {
    const mesh::cubed_sphere m(ne);
    const cube_curve c = build_cube_curve(m);
    std::string error;
    EXPECT_TRUE(verify_cube_curve(m, c.order, &error)) << "Ne=" << ne << ": "
                                                       << error;
    EXPECT_EQ(sfc::schedule_name(c.face_schedule),
              ne == 9 ? "m-peano"
                      : (ne == 18 ? "hilbert-peano" : "hilbert"));
  }
}

}  // namespace
