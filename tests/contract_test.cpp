// Contract-tier machinery and deep-validator tests: every validator must
// reject each class of corrupted input with the documented invariant slug,
// and the tiered macros must capture the violation site faithfully.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/validate.hpp"
#include "graph/csr.hpp"
#include "graph/validate.hpp"
#include "io/json.hpp"
#include "io/partition_io.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mesh/validate.hpp"
#include "obs/metrics.hpp"
#include "sfc/curve.hpp"
#include "sfc/parse.hpp"
#include "sfc/validate.hpp"
#include "util/contract.hpp"

namespace {

using sfp::diagnostic;

// ---------------------------------------------------------------------------
// Tiered contract macros
// ---------------------------------------------------------------------------

TEST(ContractTiers, RequireThrowsWithCapturedSite) {
  try {
    const int answer = 42;
    SFP_REQUIRE(answer == 0, "answer must be zero");
    FAIL() << "SFP_REQUIRE did not throw";
  } catch (const sfp::contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("answer == 0"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("answer must be zero"), std::string::npos) << what;
  }
}

sfp::contract_violation g_seen;  // written by the test handler below

TEST(ContractTiers, CustomHandlerSeesViolationThenThrowProceeds) {
  g_seen = {};
  const auto prev = sfp::set_violation_handler(
      [](const sfp::contract_violation& v) { g_seen = v; });
  EXPECT_THROW(SFP_REQUIRE(1 < 0, "handler test"), sfp::contract_error);
  sfp::set_violation_handler(prev);
  EXPECT_STREQ(g_seen.kind, "precondition");
  EXPECT_EQ(g_seen.expression, "1 < 0");
  EXPECT_GT(g_seen.line, 0);
  EXPECT_EQ(g_seen.message, "handler test");
}

TEST(ContractTiers, ObserverCountsViolationsInMetricsRegistry) {
  auto& counter = sfp::obs::registry::global().get_counter(
      "contract.violations.precondition");
  const std::int64_t before = counter.value();
  EXPECT_THROW(SFP_REQUIRE(false, "counted"), sfp::contract_error);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(ContractTiers, AssertTierMatchesBuildMode) {
#if !defined(NDEBUG) || defined(SFCPART_AUDIT)
  EXPECT_THROW(SFP_ASSERT(false, "active tier"), sfp::contract_error);
#else
  SFP_ASSERT(false, "compiled out");  // must be a no-op in this build
#endif
#if SFP_AUDIT_ENABLED
  EXPECT_THROW(SFP_AUDIT(false, "audit tier"), sfp::contract_error);
  EXPECT_THROW(
      SFP_AUDIT_DIAG(diagnostic::fail("test.slug", "forced failure")),
      sfp::contract_error);
#else
  SFP_AUDIT(false, "compiled out");
  SFP_AUDIT_DIAG(diagnostic::fail("test.slug", "compiled out"));
#endif
}

// ---------------------------------------------------------------------------
// graph::validate_csr / validate_csr_arrays
// ---------------------------------------------------------------------------

// Path 0-1-2-3, unit weights: the canonical valid fixture.
struct csr_arrays {
  std::vector<sfp::graph::eid> xadj{0, 1, 3, 5, 6};
  std::vector<sfp::graph::vid> adjncy{1, 0, 2, 1, 3, 2};
  std::vector<sfp::graph::weight> vwgt{1, 1, 1, 1};
  std::vector<sfp::graph::weight> adjwgt{1, 1, 1, 1, 1, 1};

  diagnostic validate() const {
    return sfp::graph::validate_csr_arrays(xadj, adjncy, vwgt, adjwgt);
  }
};

TEST(CsrValidator, AcceptsValidGraph) {
  const csr_arrays a;
  EXPECT_TRUE(a.validate().ok) << a.validate().to_string();
  const sfp::graph::csr g(a.xadj, a.adjncy, a.vwgt, a.adjwgt);
  EXPECT_TRUE(sfp::graph::validate_csr(g).ok);
}

TEST(CsrValidator, RejectsShapeMismatch) {
  csr_arrays a;
  a.xadj.pop_back();  // nv+1 rule broken
  EXPECT_EQ(a.validate().invariant, "csr.shape");
}

TEST(CsrValidator, RejectsNonMonotoneXadj) {
  csr_arrays a;
  a.xadj = {0, 1, 0, 5, 6};  // decreases at vertex 1
  EXPECT_EQ(a.validate().invariant, "csr.xadj-monotone");
}

TEST(CsrValidator, RejectsNonPositiveVertexWeight) {
  csr_arrays a;
  a.vwgt[2] = 0;
  const diagnostic d = a.validate();
  EXPECT_EQ(d.invariant, "csr.vertex-weight");
  EXPECT_EQ(d.index, 2);
}

TEST(CsrValidator, RejectsNeighborOutOfRange) {
  csr_arrays a;
  a.adjncy[0] = 9;
  EXPECT_EQ(a.validate().invariant, "csr.neighbor-range");
}

TEST(CsrValidator, RejectsSelfLoop) {
  csr_arrays a;
  a.adjncy[0] = 0;  // vertex 0 adjacent to itself
  EXPECT_EQ(a.validate().invariant, "csr.self-loop");
}

TEST(CsrValidator, RejectsUnsortedAdjacency) {
  csr_arrays a;
  std::swap(a.adjncy[1], a.adjncy[2]);  // vertex 1: {2, 0}
  EXPECT_EQ(a.validate().invariant, "csr.adjacency-sorted");
}

TEST(CsrValidator, RejectsNonPositiveEdgeWeight) {
  csr_arrays a;
  a.adjwgt[3] = -2;
  EXPECT_EQ(a.validate().invariant, "csr.edge-weight");
}

TEST(CsrValidator, RejectsMissingReverseEdge) {
  // 0->1 present, 1 only knows 2: asymmetric.
  const std::vector<sfp::graph::eid> xadj{0, 1, 2, 4, 5};
  const std::vector<sfp::graph::vid> adjncy{1, 2, 1, 3, 2};
  const std::vector<sfp::graph::weight> vwgt{1, 1, 1, 1};
  const std::vector<sfp::graph::weight> adjwgt{1, 1, 1, 1, 1};
  EXPECT_EQ(
      sfp::graph::validate_csr_arrays(xadj, adjncy, vwgt, adjwgt).invariant,
      "csr.symmetry");
}

TEST(CsrValidator, RejectsAsymmetricEdgeWeight) {
  csr_arrays a;
  a.adjwgt[0] = 2;  // 0->1 weighs 2, 1->0 still weighs 1
  EXPECT_EQ(a.validate().invariant, "csr.weight-symmetry");
}

// ---------------------------------------------------------------------------
// graph::validate_coarsening
// ---------------------------------------------------------------------------

struct coarsen_fixture {
  // Fine: path 0-1-2-3, all weights 1. Contract {0,1}->A, {2,3}->B:
  // coarse is A-B with vertex weights 2 and the single crossing edge 1-2.
  sfp::graph::csr fine{{0, 1, 3, 5, 6}, {1, 0, 2, 1, 3, 2},
                       {1, 1, 1, 1},    {1, 1, 1, 1, 1, 1}};
  std::vector<sfp::graph::vid> coarse_of{0, 0, 1, 1};

  static sfp::graph::csr coarse(sfp::graph::weight wa, sfp::graph::weight wb,
                                sfp::graph::weight cut) {
    return {{0, 1, 2}, {1, 0}, {wa, wb}, {cut, cut}};
  }
};

TEST(CoarseningValidator, AcceptsConservativeContraction) {
  const coarsen_fixture f;
  const diagnostic d =
      sfp::graph::validate_coarsening(f.fine, f.coarse(2, 2, 1), f.coarse_of);
  EXPECT_TRUE(d.ok) << d.to_string();
}

TEST(CoarseningValidator, RejectsMapOutOfRange) {
  coarsen_fixture f;
  f.coarse_of[3] = 7;
  EXPECT_EQ(sfp::graph::validate_coarsening(f.fine, f.coarse(2, 2, 1),
                                            f.coarse_of)
                .invariant,
            "coarsen.map-range");
}

TEST(CoarseningValidator, RejectsLostVertexWeight) {
  const coarsen_fixture f;
  EXPECT_EQ(sfp::graph::validate_coarsening(f.fine, f.coarse(3, 1, 1),
                                            f.coarse_of)
                .invariant,
            "coarsen.vertex-weight");
}

TEST(CoarseningValidator, RejectsWrongCutWeight) {
  const coarsen_fixture f;
  EXPECT_EQ(sfp::graph::validate_coarsening(f.fine, f.coarse(2, 2, 5),
                                            f.coarse_of)
                .invariant,
            "coarsen.cut-weight");
}

TEST(CoarseningValidator, RejectsSpuriousCoarseEdge) {
  // Fine has NO crossing edge (two disjoint edges 0-1, 2-3), yet the coarse
  // graph claims one.
  coarsen_fixture f;
  f.fine = {{0, 1, 2, 3, 4}, {1, 0, 3, 2}, {1, 1, 1, 1}, {1, 1, 1, 1}};
  EXPECT_EQ(sfp::graph::validate_coarsening(f.fine, f.coarse(2, 2, 1),
                                            f.coarse_of)
                .invariant,
            "coarsen.adjacency");
}

// ---------------------------------------------------------------------------
// mesh::validate_topology — corrupt one accessor of the view at a time
// ---------------------------------------------------------------------------

TEST(MeshValidator, AcceptsRealMeshes) {
  for (const int ne : {1, 2, 3, 4}) {
    const sfp::mesh::cubed_sphere m(ne);
    const diagnostic d = sfp::mesh::validate_topology(m);
    EXPECT_TRUE(d.ok) << "ne=" << ne << ": " << d.to_string();
  }
}

TEST(MeshValidator, RejectsWrongElementCount) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.num_elements = 23;
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.element-count");
}

TEST(MeshValidator, RejectsBrokenIdRoundtrip) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.element_id = [&m](sfp::mesh::element_ref r) {
    return (m.element_id(r) + 1) % m.num_elements();
  };
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.id-roundtrip");
}

TEST(MeshValidator, RejectsEdgeNeighborOutOfRange) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.edge_neighbor = [&m](int id, int e) {
    return (id == 5 && e == 2) ? -3 : m.edge_neighbor(id, e);
  };
  const diagnostic d = sfp::mesh::validate_topology(v);
  EXPECT_EQ(d.invariant, "mesh.edge-range");
  EXPECT_EQ(d.index, 5);
}

TEST(MeshValidator, RejectsAsymmetricEdgeNeighbor) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  // Element 0 claims a different (valid, non-self) neighbour across edge 0
  // than the real one; the link still names the impostor, so the mirror
  // checks run and the mutuality check is what fails.
  const int real = m.edge_neighbor(0, 0);
  const int impostor = (real + 1) % m.num_elements() == 0
                           ? (real + 2) % m.num_elements()
                           : (real + 1) % m.num_elements();
  v.edge_neighbor = [&m, impostor](int id, int e) {
    return (id == 0 && e == 0) ? impostor : m.edge_neighbor(id, e);
  };
  v.edge_link_of = [&m, impostor](int id, int e) {
    sfp::mesh::edge_link l = m.edge_link_of(id, e);
    if (id == 0 && e == 0) l.neighbor = impostor;
    return l;
  };
  const diagnostic d = sfp::mesh::validate_topology(v);
  EXPECT_EQ(d.invariant, "mesh.edge-symmetry");
}

TEST(MeshValidator, RejectsUnmirroredEdgeLink) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.edge_link_of = [&m](int id, int e) {
    sfp::mesh::edge_link l = m.edge_link_of(id, e);
    if (id == 0 && e == 1) l.reversed = !l.reversed;
    return l;
  };
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.edge-link");
}

TEST(MeshValidator, RejectsWrongCornerCount) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.corner_neighbors = [&m](int id) {
    std::vector<int> c = m.corner_neighbors(id);
    if (id == 0 && !c.empty()) c.pop_back();
    return c;
  };
  const diagnostic d = sfp::mesh::validate_topology(v);
  EXPECT_EQ(d.invariant, "mesh.corner-count");
  EXPECT_EQ(d.index, 0);
}

TEST(MeshValidator, RejectsCornerListingAnEdgeNeighbor) {
  const sfp::mesh::cubed_sphere m(2);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.corner_neighbors = [&m](int id) {
    std::vector<int> c = m.corner_neighbors(id);
    if (id == 0 && !c.empty()) c.back() = m.edge_neighbor(0, 0);
    return c;
  };
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.corner-disjoint");
}

TEST(MeshValidator, RejectsAsymmetricCornerNeighbor) {
  const sfp::mesh::cubed_sphere m(3);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  // Swap in a far-away element that is neither an edge neighbour of 0 nor
  // lists 0 back: range and disjointness pass, mutuality fails.
  const int far = m.num_elements() - 1;
  v.corner_neighbors = [&m, far](int id) {
    std::vector<int> c = m.corner_neighbors(id);
    if (id == 0 && !c.empty()) c.back() = far;
    return c;
  };
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.corner-symmetry");
}

TEST(MeshValidator, RejectsWrongCubeVertexIncidence) {
  // ne=1: all 24 corners sit on cube vertices and every corner list is
  // empty. Un-mark one corner on each of the two opposite polar faces (4 and
  // 5, which share no edge) and pair them as corner neighbours: every
  // per-element check still balances, but the global 8x3 incidence count
  // drops to 22.
  const sfp::mesh::cubed_sphere m(1);
  sfp::mesh::topology_view v = sfp::mesh::view_of(m);
  v.corner_is_cube_vertex = [&m](int id, int c) {
    if ((id == 4 || id == 5) && c == 0) return false;
    return m.corner_is_cube_vertex(id, c);
  };
  v.corner_neighbors = [](int id) {
    if (id == 4) return std::vector<int>{5};
    if (id == 5) return std::vector<int>{4};
    return std::vector<int>{};
  };
  EXPECT_EQ(sfp::mesh::validate_topology(v).invariant, "mesh.cube-vertex");
}

// ---------------------------------------------------------------------------
// sfc::validate_curve / validate_schedule
// ---------------------------------------------------------------------------

using sfp::sfc::cell;

TEST(CurveValidator, AcceptsHilbertSide2) {
  const std::vector<cell> u{{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  EXPECT_TRUE(sfp::sfc::validate_curve(u, 2).ok);
}

TEST(CurveValidator, RejectsWrongCellCount) {
  const std::vector<cell> u{{0, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(sfp::sfc::validate_curve(u, 2).invariant, "curve.cell-count");
}

TEST(CurveValidator, RejectsCellOutOfRange) {
  const std::vector<cell> u{{0, 0}, {0, 1}, {1, 1}, {2, 1}};
  EXPECT_EQ(sfp::sfc::validate_curve(u, 2).invariant, "curve.cell-range");
}

TEST(CurveValidator, RejectsRevisitedCell) {
  const std::vector<cell> u{{0, 0}, {0, 1}, {0, 0}, {1, 0}};
  EXPECT_EQ(sfp::sfc::validate_curve(u, 2).invariant, "curve.revisit");
}

TEST(CurveValidator, RejectsDiagonalStep) {
  const std::vector<cell> u{{0, 0}, {1, 1}, {0, 1}, {1, 0}};
  const diagnostic d = sfp::sfc::validate_curve(u, 2);
  EXPECT_EQ(d.invariant, "curve.unit-step");
  EXPECT_NE(d.detail.find("not 4-adjacent"), std::string::npos) << d.detail;
}

TEST(CurveValidator, RejectsWrongEntry) {
  const std::vector<cell> u{{1, 0}, {1, 1}, {0, 1}, {0, 0}};
  EXPECT_EQ(sfp::sfc::validate_curve(u, 2).invariant, "curve.entry");
}

TEST(CurveValidator, RejectsWrongExit) {
  const std::vector<cell> u{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_EQ(sfp::sfc::validate_curve(u, 2).invariant, "curve.exit");
}

TEST(ScheduleValidator, AcceptsGeneratedCurves) {
  using sfp::sfc::refinement;
  for (const auto& s :
       {sfp::sfc::schedule{refinement::hilbert2, refinement::hilbert2},
        sfp::sfc::schedule{refinement::peano3, refinement::hilbert2},
        sfp::sfc::schedule{refinement::cinco5}}) {
    const diagnostic d = sfp::sfc::validate_schedule(s);
    EXPECT_TRUE(d.ok) << d.to_string();
  }
}

TEST(ScheduleValidator, RejectsEmptySchedule) {
  EXPECT_EQ(sfp::sfc::validate_schedule({}).invariant, "schedule.empty");
}

TEST(ScheduleValidator, RejectsOverflowingSide) {
  const sfp::sfc::schedule s(16, sfp::sfc::refinement::hilbert2);  // 2^16
  EXPECT_EQ(sfp::sfc::validate_schedule(s).invariant, "schedule.side");
}

// ---------------------------------------------------------------------------
// core::validate_plan
// ---------------------------------------------------------------------------

std::vector<int> identity_order(int k) {
  std::vector<int> o(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) o[static_cast<std::size_t>(i)] = i;
  return o;
}

TEST(PlanValidator, AcceptsContiguousBalancedSlices) {
  const auto order = identity_order(8);
  const sfp::partition::partition p(2, {0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_TRUE(sfp::core::validate_plan(p, order).ok);
  // Part labels may be permuted along the curve — still one segment each.
  const sfp::partition::partition q(2, {1, 1, 1, 1, 0, 0, 0, 0});
  EXPECT_TRUE(sfp::core::validate_plan(q, order).ok);
}

TEST(PlanValidator, RejectsSizeMismatch) {
  const sfp::partition::partition p(2, {0, 0, 1, 1});
  EXPECT_EQ(sfp::core::validate_plan(p, identity_order(8)).invariant,
            "plan.size");
}

TEST(PlanValidator, RejectsLabelOutOfRange) {
  const sfp::partition::partition p(2, {0, 0, 0, 0, 1, 1, 1, 2});
  EXPECT_EQ(sfp::core::validate_plan(p, identity_order(8)).invariant,
            "plan.label-range");
}

TEST(PlanValidator, RejectsNonPermutationOrder) {
  std::vector<int> order = identity_order(8);
  order[3] = 4;  // element 3 never visited, element 4 visited twice
  const sfp::partition::partition p(2, {0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_EQ(sfp::core::validate_plan(p, order).invariant, "plan.ownership");
}

TEST(PlanValidator, RejectsEmptyPart) {
  const sfp::partition::partition p(2, {0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(sfp::core::validate_plan(p, identity_order(8)).invariant,
            "plan.part-empty");
}

TEST(PlanValidator, RejectsNonContiguousSegment) {
  const sfp::partition::partition p(2, {0, 0, 1, 1, 0, 0, 1, 1});
  EXPECT_EQ(sfp::core::validate_plan(p, identity_order(8)).invariant,
            "plan.segment-contiguity");
}

TEST(PlanValidator, RejectsImbalanceUnlessSlackDisablesIt) {
  const sfp::partition::partition p(2, {0, 0, 0, 0, 0, 0, 1, 1});
  EXPECT_EQ(sfp::core::validate_plan(p, identity_order(8)).invariant,
            "plan.balance");
  // Slack <= 0 turns the audit structure-only (recovery plans re-balance
  // later); everything but the weight bound must still hold.
  EXPECT_TRUE(
      sfp::core::validate_plan(p, identity_order(8), {}, 0.0).ok);
}

// ---------------------------------------------------------------------------
// Schedule-string parser (the third fuzz surface)
// ---------------------------------------------------------------------------

TEST(ScheduleParser, ParsesEquivalentSpellings) {
  using sfp::sfc::refinement;
  const sfp::sfc::schedule want{refinement::peano3, refinement::peano3,
                                refinement::hilbert2};
  for (const char* spec : {"p,p,h", "peano*2,hilbert", "3 3 2", "P, P, H",
                           "peano peano hilbert", "p^2 h"}) {
    EXPECT_EQ(sfp::sfc::parse_schedule(spec), want) << spec;
  }
}

TEST(ScheduleParser, FormatRoundTrips) {
  using sfp::sfc::refinement;
  const sfp::sfc::schedule s{refinement::cinco5, refinement::hilbert2,
                             refinement::peano3};
  EXPECT_EQ(sfp::sfc::parse_schedule(sfp::sfc::format_schedule(s)), s);
}

TEST(ScheduleParser, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", " ", ",", "bogus", "h*0", "h*21", "p**2", "42", "h*", "hilb",
        "h,p,q", "p*999"}) {
    sfp::sfc::schedule s;
    std::string error;
    EXPECT_FALSE(sfp::sfc::try_parse_schedule(spec, s, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    EXPECT_THROW(sfp::sfc::parse_schedule(spec), sfp::contract_error) << spec;
  }
}

TEST(ScheduleParser, RejectsSideAboveSafetyBound) {
  sfp::sfc::schedule s;
  std::string error;
  EXPECT_FALSE(sfp::sfc::try_parse_schedule("h*20,p", s, &error));  // 3·2^20
  EXPECT_NE(error.find("side"), std::string::npos) << error;
  EXPECT_TRUE(sfp::sfc::try_parse_schedule("h*20", s, &error));  // exactly 2^20
}

// ---------------------------------------------------------------------------
// Parser hardening regressions (found by the fuzz harnesses)
// ---------------------------------------------------------------------------

TEST(ParserHardening, JsonRejectsHostileNestingDepth) {
  // 300 unclosed '[' must be rejected by the depth guard, not by running
  // the stack out.
  EXPECT_THROW(sfp::io::parse_json(std::string(300, '[')),
               sfp::contract_error);
  // Moderate nesting stays accepted.
  std::string moderate;
  for (int i = 0; i < 100; ++i) moderate += '[';
  moderate += '1';
  for (int i = 0; i < 100; ++i) moderate += ']';
  EXPECT_TRUE(sfp::io::parse_json(moderate).is_array());
}

TEST(ParserHardening, PartitionLoadRejectsHostilePreambleCheaply) {
  // A preamble claiming 10^12 vertices over a two-row body must fail from
  // the row count, without sizing anything to the claim.
  std::istringstream is(
      "# sfcpart-partition v1 num_vertices=999999999999 num_parts=2\n"
      "element,part\n0,0\n1,1\n");
  EXPECT_THROW(sfp::io::load_partition(is), sfp::contract_error);
}

TEST(ParserHardening, PartitionLoadRejectsDuplicateAndExcessRows) {
  std::istringstream dup(
      "# sfcpart-partition v1 num_vertices=2 num_parts=2\n"
      "element,part\n0,0\n0,1\n");
  EXPECT_THROW(sfp::io::load_partition(dup), sfp::contract_error);
  std::istringstream excess(
      "# sfcpart-partition v1 num_vertices=2 num_parts=2\n"
      "element,part\n0,0\n1,1\n0,0\n");
  EXPECT_THROW(sfp::io::load_partition(excess), sfp::contract_error);
}

}  // namespace
