// End-to-end tests for tools/bench_guard: the exit-code contract CI
// scripts depend on (0 within tolerance, 1 drift/structure, 2 usage/I-O),
// the tolerance-floor slack boundary, --ignore, and the --update
// regeneration mode (fresh values win, ignored keys keep their old
// reference values). The binary path comes in via BENCH_GUARD_BIN.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "io/json.hpp"

namespace {

namespace fs = std::filesystem;

class BenchGuard : public ::testing::Test {
 protected:
  void SetUp() override {
    dir = fs::temp_directory_path() / "bench_guard_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  std::string write(const std::string& name, const std::string& text) {
    const fs::path p = dir / name;
    std::ofstream out(p, std::ios::binary);
    out << text;
    return p.string();
  }

  static int run(const std::string& extra_args) {
    const std::string cmd = std::string(BENCH_GUARD_BIN) + " " +
                            extra_args + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  }

  static sfp::io::json_value read_json(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return sfp::io::parse_json(buf.str());
  }

  fs::path dir;
};

TEST_F(BenchGuard, ExitZeroWhenWithinTolerance) {
  const std::string ref = write("ref.json", R"({"cut": 100, "lb": 1.02})");
  const std::string fresh =
      write("fresh.json", R"({"cut": 101, "lb": 1.03})");
  EXPECT_EQ(run("--fresh=" + fresh + " --reference=" + ref), 0);
}

TEST_F(BenchGuard, ExitOneOnDriftAndOnStructuralMismatch) {
  const std::string ref = write("ref.json", R"({"cut": 100})");
  // Numeric drift far past floor + tolerance*max.
  const std::string drift = write("drift.json", R"({"cut": 500})");
  EXPECT_EQ(run("--fresh=" + drift + " --reference=" + ref), 1);
  // Missing key.
  const std::string missing = write("missing.json", R"({})");
  EXPECT_EQ(run("--fresh=" + missing + " --reference=" + ref), 1);
  // Extra key.
  const std::string extra =
      write("extra.json", R"({"cut": 100, "new_metric": 1})");
  EXPECT_EQ(run("--fresh=" + extra + " --reference=" + ref), 1);
  // Kind change.
  const std::string kind = write("kind.json", R"({"cut": "100"})");
  EXPECT_EQ(run("--fresh=" + kind + " --reference=" + ref), 1);
  // Array length change.
  const std::string ref2 = write("ref2.json", R"({"xs": [1, 2]})");
  const std::string shorter = write("short.json", R"({"xs": [1]})");
  EXPECT_EQ(run("--fresh=" + shorter + " --reference=" + ref2), 1);
}

TEST_F(BenchGuard, ExitTwoOnUsageAndIoErrors) {
  const std::string ref = write("ref.json", R"({"cut": 100})");
  EXPECT_EQ(run("--fresh=" + ref), 2);  // missing --reference
  EXPECT_EQ(run("--reference=" + ref), 2);
  EXPECT_EQ(run("--fresh=" + ref + " --reference=" + dir.string() +
                "/no_such.json"),
            2);
  EXPECT_EQ(run("--fresh=" + ref + " --reference=" + ref +
                " --tolerance=-1"),
            2);
  const std::string bad = write("bad.json", "{not json");
  EXPECT_EQ(run("--fresh=" + bad + " --reference=" + ref), 2);
}

TEST_F(BenchGuard, SlackIsFloorPlusToleranceTimesMagnitude) {
  const std::string ref = write("ref.json", R"({"v": 10})");
  // tolerance 0, floor 2: |12 - 10| == 2 is allowed (<=), 12.5 is not.
  const std::string at = write("at.json", R"({"v": 12})");
  EXPECT_EQ(
      run("--fresh=" + at + " --reference=" + ref +
          " --tolerance=0 --floor=2"),
      0);
  const std::string past = write("past.json", R"({"v": 12.5})");
  EXPECT_EQ(
      run("--fresh=" + past + " --reference=" + ref +
          " --tolerance=0 --floor=2"),
      1);
  // floor 0, tolerance 0.5: slack scales with max(|fresh|, |ref|), so 15
  // vs 10 passes (slack 7.5) while 31 vs 10 fails (drift 21 > slack 15.5).
  const std::string rel = write("rel.json", R"({"v": 15})");
  EXPECT_EQ(
      run("--fresh=" + rel + " --reference=" + ref +
          " --tolerance=0.5 --floor=0"),
      0);
  const std::string far = write("far.json", R"({"v": 31})");
  EXPECT_EQ(
      run("--fresh=" + far + " --reference=" + ref +
          " --tolerance=0.5 --floor=0"),
      1);
}

TEST_F(BenchGuard, IgnoredKeysAreSkippedAtEveryDepth) {
  const std::string ref = write(
      "ref.json",
      R"({"cut": 100, "time_usec": 5, "inner": {"time_usec": 9, "q": 1}})");
  const std::string fresh = write(
      "fresh.json",
      R"({"cut": 100, "time_usec": 9999, "inner": {"time_usec": 1, "q": 1}})");
  // time_usec is ignored by default, wherever it appears.
  EXPECT_EQ(run("--fresh=" + fresh + " --reference=" + ref), 0);
  // Overriding --ignore puts time_usec back on the gate.
  EXPECT_EQ(run("--fresh=" + fresh + " --reference=" + ref +
                " --ignore=other_key"),
            1);
}

TEST_F(BenchGuard, UpdateRegeneratesPreservingIgnoredKeys) {
  const std::string ref = write(
      "ref.json",
      R"({"cut": 100, "time_usec": 5, "inner": {"time_usec": 9, "q": 1}})");
  const std::string fresh = write(
      "fresh.json",
      R"({"cut": 140, "time_usec": 777, "inner": {"time_usec": 8, "q": 3},
          "new_metric": 2})");
  ASSERT_EQ(run("--fresh=" + fresh + " --reference=" + ref + " --update"),
            0);
  const sfp::io::json_value back = read_json(ref);
  EXPECT_EQ(back.at("cut").number, 140);        // fresh value wins
  EXPECT_EQ(back.at("time_usec").number, 5);    // ignored key preserved
  EXPECT_EQ(back.at("inner").at("time_usec").number, 9);
  EXPECT_EQ(back.at("inner").at("q").number, 3);
  EXPECT_EQ(back.at("new_metric").number, 2);   // new keys appear
  // The regenerated reference now gates the fresh artifact cleanly.
  EXPECT_EQ(run("--fresh=" + fresh + " --reference=" + ref), 0);
}

TEST_F(BenchGuard, UpdateBootstrapsAMissingReference) {
  const std::string fresh = write("fresh.json", R"({"cut": 7})");
  const std::string ref = (dir / "new_ref.json").string();
  ASSERT_EQ(run("--fresh=" + fresh + " --reference=" + ref + " --update"),
            0);
  EXPECT_EQ(read_json(ref).at("cut").number, 7);
}

}  // namespace
