// Tests for the transport carve (runtime/transport.hpp) and the socket
// backend (runtime/socket_transport.hpp): the raw datagram surface, the
// loopback-TCP fabric with framing / heartbeats / reconnect, byte-stream
// fault injection, and the reliable-delivery edge cases that must behave
// identically over every backend (sequence wraparound, stale-epoch
// filtering, duplicate re-acks during reorder healing, retransmit jitter).
//
// Registered under the "transport-runtime" label so `ctest -L runtime`
// (and the tsan preset) picks it up alongside the other fabric tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/reliable.hpp"
#include "runtime/socket_transport.hpp"
#include "runtime/transport.hpp"
#include "runtime/world.hpp"

namespace {

using namespace sfp::runtime;
using namespace std::chrono_literals;
using sfp::rng;

// Pump try_recv_any until a message with `tag` arrives or `deadline` worth
// of waiting elapses. The raw surface is a bounded poll by design; tests
// wrap it with an explicit budget instead of trusting one long wait.
bool recv_within(transport& t, int tag, std::chrono::milliseconds deadline,
                 any_message* out) {
  const auto give_up = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < give_up) {
    if (t.try_recv_any(tag, 2000us, out)) return true;
  }
  return false;
}

// ---- shared vocabulary ------------------------------------------------------

TEST(TransportVocabulary, BackendNamesRoundTrip) {
  EXPECT_STREQ(to_string(transport_backend::inproc), "inproc");
  EXPECT_STREQ(to_string(transport_backend::socket), "socket");
}

TEST(TransportVocabulary, StreamFaultKindNames) {
  EXPECT_STREQ(to_string(stream_fault::kind::truncate), "truncate");
  EXPECT_STREQ(to_string(stream_fault::kind::split), "split");
  EXPECT_STREQ(to_string(stream_fault::kind::reset), "reset");
  EXPECT_STREQ(to_string(stream_fault::kind::stall), "stall");
}

// ---- in-process adapter -----------------------------------------------------

TEST(InprocAdapter, DelegatesToTheCommunicator) {
  world w(2);
  w.run([](communicator& c) {
    inproc_transport t(c);
    ASSERT_EQ(t.rank(), c.rank());
    ASSERT_EQ(t.size(), 2);
    if (c.rank() == 0) {
      t.send(1, 9, std::vector<double>{1.5, 2.5});
    } else {
      any_message m;
      ASSERT_TRUE(recv_within(t, 9, 2000ms, &m));
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 9);
      EXPECT_EQ(m.payload, (std::vector<double>{1.5, 2.5}));
    }
  });
  // The adapter is behavior-preserving: traffic lands in the world's own
  // counters, not some parallel set.
  EXPECT_EQ(w.total_counters().messages_sent, 1);
  EXPECT_EQ(w.total_counters().messages_received, 1);
}

// ---- socket fabric: basics --------------------------------------------------

TEST(SocketFabric, EchoAcrossTwoRanks) {
  socket_fabric fab(2);
  ASSERT_EQ(fab.size(), 2);
  fab.run([](transport& t) {
    ASSERT_EQ(t.size(), 2);
    if (t.rank() == 0) {
      t.send(1, 4, std::vector<double>{3.25, -1.5, 0.0});
      any_message m;
      ASSERT_TRUE(recv_within(t, 5, 5000ms, &m));
      EXPECT_EQ(m.src, 1);
      EXPECT_EQ(m.payload, (std::vector<double>{3.25, -1.5, 0.0}));
    } else {
      any_message m;
      ASSERT_TRUE(recv_within(t, 4, 5000ms, &m));
      EXPECT_EQ(m.src, 0);
      t.send(0, 5, m.payload);
    }
  });
  EXPECT_FALSE(fab.aborted());
  EXPECT_EQ(fab.total_counters().messages_sent, 2);
  EXPECT_EQ(fab.total_counters().messages_received, 2);
  const socket_stats stats = fab.total_stats();
  EXPECT_GE(stats.connects, 2);  // one link per direction
  EXPECT_EQ(stats.reconnects, 0);
  EXPECT_GE(stats.frames_sent, 2);
  EXPECT_GE(stats.frames_received, 2);
  EXPECT_EQ(stats.frames_rejected, 0);
  EXPECT_EQ(stats.send_failures, 0);
}

TEST(SocketFabric, LargePayloadSurvivesPartialReadsAndWrites) {
  // 512 KiB of payload does not fit a socket buffer: the framed writer and
  // reader must handle short writes and short reads without tearing.
  static constexpr std::size_t kDoubles = std::size_t{1} << 16;
  socket_fabric fab(2);
  fab.run([](transport& t) {
    if (t.rank() == 0) {
      std::vector<double> payload(kDoubles);
      for (std::size_t i = 0; i < kDoubles; ++i)
        payload[i] = 0.5 * static_cast<double>(i) - 7.0;
      t.send(1, 2, payload);
      // Wait for the ack-ish reply so the fabric is not torn down while the
      // big frame is still in flight.
      any_message m;
      ASSERT_TRUE(recv_within(t, 3, 10000ms, &m));
    } else {
      any_message m;
      ASSERT_TRUE(recv_within(t, 2, 10000ms, &m));
      ASSERT_EQ(m.payload.size(), kDoubles);
      bool intact = true;
      for (std::size_t i = 0; i < kDoubles; ++i) {
        if (m.payload[i] != 0.5 * static_cast<double>(i) - 7.0) {
          intact = false;
          break;
        }
      }
      EXPECT_TRUE(intact);
      t.send(0, 3, std::vector<double>{1.0});
    }
  });
  EXPECT_FALSE(fab.aborted());
  EXPECT_EQ(fab.total_stats().frames_rejected, 0);
}

TEST(SocketFabric, ReusableAcrossRuns) {
  socket_fabric fab(2);
  for (int round = 0; round < 2; ++round) {
    fab.run([](transport& t) {
      if (t.rank() == 0) {
        t.send(1, 1, std::vector<double>{42.0});
      } else {
        any_message m;
        ASSERT_TRUE(recv_within(t, 1, 5000ms, &m));
        EXPECT_EQ(m.payload.at(0), 42.0);
      }
    });
    EXPECT_FALSE(fab.aborted());
    // run() resets counters: each round reports only its own traffic.
    EXPECT_EQ(fab.total_counters().messages_sent, 1);
  }
}

TEST(SocketFabric, AbortWakesBlockedReceivers) {
  fault_plan plan;
  plan.kills.push_back({.rank = 0, .at_op = 1});
  socket_fabric_options opts;
  opts.faults = plan;
  socket_fabric fab(2, opts);
  std::atomic<int> aborts_seen{0};
  EXPECT_THROW(
      fab.run([&](transport& t) {
        if (t.rank() == 0) {
          t.send(1, 1, std::vector<double>{1.0});  // op 1: the kill fires
        } else {
          any_message m;
          try {
            // Blocked forever on a message that will never come; the
            // fabric abort must wake this instead of letting it hang.
            while (true) (void)t.try_recv_any(1, 10000us, &m);
          } catch (const world_aborted& e) {
            EXPECT_EQ(e.failed_rank(), 0);
            ++aborts_seen;
            throw;
          }
        }
      }),
      rank_killed);
  EXPECT_TRUE(fab.aborted());
  EXPECT_EQ(fab.failed_rank(), 0);
  EXPECT_EQ(aborts_seen.load(), 1);
  EXPECT_EQ(fab.total_counters().injected_kills, 1);
}

// ---- socket fabric: health checking -----------------------------------------

TEST(SocketFabric, HeartbeatsKeepIdleLinksAlive) {
  socket_fabric_options opts;
  opts.heartbeat_interval = 5ms;
  opts.heartbeat_timeout = 150ms;
  socket_fabric fab(2, opts);
  fab.run([](transport& t) {
    if (t.rank() == 0) {
      t.send(1, 1, std::vector<double>{1.0});
      // Idle for twice the death deadline: only heartbeats keep the link up.
      std::this_thread::sleep_for(400ms);
      t.send(1, 1, std::vector<double>{2.0});
    } else {
      any_message m;
      ASSERT_TRUE(recv_within(t, 1, 5000ms, &m));
      EXPECT_EQ(m.payload.at(0), 1.0);
      ASSERT_TRUE(recv_within(t, 1, 5000ms, &m));
      EXPECT_EQ(m.payload.at(0), 2.0);
    }
  });
  EXPECT_FALSE(fab.aborted());
  const socket_stats stats = fab.total_stats();
  EXPECT_GT(stats.heartbeats_sent, 0);
  EXPECT_EQ(stats.reconnects, 0);
  EXPECT_EQ(stats.send_failures, 0);
}

TEST(SocketFabric, SilentLinkDiesAndReconnectsWithEpochHandshake) {
  // Heartbeats effectively disabled: after the idle gap the receiver
  // declares the link dead and closes it. The sender's next write fails,
  // the reliable layer retransmits, and the redial runs the epoch
  // handshake — the message still arrives exactly once.
  socket_fabric_options opts;
  opts.heartbeat_interval = 10000ms;  // never fires inside this test
  opts.heartbeat_timeout = 100ms;
  socket_fabric fab(2, opts);
  std::mutex stats_mutex;
  reliable_stats reliable_sum;
  fab.run([&](transport& t) {
    reliable_options ropts;
    ropts.retransmit_timeout = 5000us;
    ropts.max_backoff = 20000us;
    ropts.recv_timeout = 8000ms;
    reliable_channel ch(t, ropts);
    if (t.rank() == 0) {
      ch.send(1, 1, std::vector<double>{1.0});
      ch.flush();
      std::this_thread::sleep_for(400ms);  // both links go silent and die
      ch.send(1, 1, std::vector<double>{2.0});
      ch.flush();
      ch.fence();
    } else {
      EXPECT_EQ(ch.recv(0, 1).at(0), 1.0);
      EXPECT_EQ(ch.recv(0, 1).at(0), 2.0);
      ch.flush();
      ch.fence();
    }
    std::lock_guard<std::mutex> lock(stats_mutex);
    reliable_sum += ch.stats();
  });
  EXPECT_FALSE(fab.aborted());
  const socket_stats stats = fab.total_stats();
  EXPECT_GE(stats.reconnects, 1);
  EXPECT_GE(stats.send_failures, 1);
  EXPECT_EQ(reliable_sum.data_received, 2 + /* fence rounds */ 2);
}

// ---- socket fabric: byte-stream fault injection -----------------------------

TEST(SocketFabric, StreamFaultsHealUnderReliableDelivery) {
  // One fault of every kind, pinned to specific data frames on specific
  // links. Truncate and reset poison a connection; split and stall only
  // delay bytes. Under the reliable layer all of it heals in order.
  constexpr int kMessages = 12;
  socket_fabric_options opts;
  opts.stream_fault_min_payload = wire::header_doubles + 1;
  opts.stall_duration = 2000us;
  opts.stream_faults.faults = {
      {.what = stream_fault::kind::truncate, .src = 0, .dst = 1, .nth = 0},
      {.what = stream_fault::kind::reset, .src = 0, .dst = 1, .nth = 3},
      {.what = stream_fault::kind::split, .src = 1, .dst = 0, .nth = 1},
      {.what = stream_fault::kind::stall, .src = 1, .dst = 0, .nth = 4},
  };
  socket_fabric fab(2, opts);
  std::mutex stats_mutex;
  reliable_stats reliable_sum;
  fab.run([&](transport& t) {
    reliable_options ropts;
    ropts.retransmit_timeout = 5000us;
    ropts.max_backoff = 20000us;
    ropts.recv_timeout = 8000ms;
    reliable_channel ch(t, ropts);
    const int peer = 1 - t.rank();
    for (int i = 0; i < kMessages; ++i) {
      std::vector<double> payload(8);
      for (std::size_t j = 0; j < payload.size(); ++j)
        payload[j] = 10.0 * t.rank() + i + 0.125 * static_cast<double>(j);
      ch.send(peer, 6, payload);
    }
    for (int i = 0; i < kMessages; ++i) {
      const std::vector<double> got = ch.recv(peer, 6);
      ASSERT_EQ(got.size(), 8u);
      for (std::size_t j = 0; j < got.size(); ++j)
        ASSERT_EQ(got[j], 10.0 * peer + i + 0.125 * static_cast<double>(j));
    }
    ch.flush();
    ch.fence();
    std::lock_guard<std::mutex> lock(stats_mutex);
    reliable_sum += ch.stats();
  });
  EXPECT_FALSE(fab.aborted());
  const socket_stats stats = fab.total_stats();
  EXPECT_EQ(stats.injected_stream_faults, 4);
  EXPECT_GE(stats.frames_rejected, 1);  // the truncated frame
  EXPECT_GE(stats.reconnects, 1);       // poisoned links redialed
  EXPECT_GT(reliable_sum.retransmits, 0);
  EXPECT_EQ(reliable_sum.data_received,
            2 * kMessages + /* fence rounds */ 2);
}

// ---- reliable edge cases, identical over every backend ----------------------

class ReliableOverBackend
    : public ::testing::TestWithParam<transport_backend> {
 protected:
  // Run `body` once per rank on a two-rank fabric of the parameterized
  // backend, with the same message-level fault plan either way.
  void run_pair(const fault_plan& faults,
                const std::function<void(transport&, int)>& body) {
    if (GetParam() == transport_backend::inproc) {
      world w(2, {.timeout = 10000ms, .faults = faults});
      w.run([&](communicator& c) {
        inproc_transport t(c);
        body(t, c.rank());
      });
      ASSERT_FALSE(w.aborted());
    } else {
      socket_fabric_options opts;
      opts.faults = faults;
      opts.stream_fault_min_payload = wire::header_doubles + 1;
      socket_fabric fab(2, opts);
      fab.run([&](transport& t) { body(t, t.rank()); });
      ASSERT_FALSE(fab.aborted());
    }
  }
};

TEST_P(ReliableOverBackend, SequenceNumbersWrapAroundCleanly) {
  // Start every stream three short of UINT64_MAX and push eight messages
  // through the wrap, with every data frame duplicated so the dedup path is
  // exercised across the boundary too.
  fault_plan plan;
  plan.seed = 41;
  fault_plan::message_fault mf;
  mf.duplicate_probability = 1.0;
  mf.min_payload = wire::header_doubles + 1;  // data frames only
  plan.message_faults.push_back(mf);

  constexpr int kMessages = 8;
  std::mutex stats_mutex;
  reliable_stats receiver_stats;
  run_pair(plan, [&](transport& t, int rank) {
    reliable_options ropts;
    ropts.first_seq = std::numeric_limits<std::uint64_t>::max() - 2;
    ropts.recv_timeout = 8000ms;
    reliable_channel ch(t, ropts);
    if (rank == 0) {
      for (int i = 0; i < kMessages; ++i)
        ch.send(1, 7, std::vector<double>{static_cast<double>(i)});
      ch.flush();
      ch.fence();
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const std::vector<double> got = ch.recv(0, 7);
        ASSERT_EQ(got.size(), 1u);
        ASSERT_EQ(got[0], static_cast<double>(i));
      }
      ch.flush();
      ch.fence();
      std::lock_guard<std::mutex> lock(stats_mutex);
      receiver_stats = ch.stats();
    }
  });
  EXPECT_EQ(receiver_stats.data_received, kMessages + /* fence */ 1);
  EXPECT_GE(receiver_stats.dedup_dropped, kMessages);
}

TEST_P(ReliableOverBackend, StaleEpochRetransmitIsRejected) {
  // A crafted frame from epoch 3 — a retransmit straggling in from a dead
  // recovery attempt — arrives before the real epoch-4 message with the
  // same sequence number. The epoch filter must drop it; if it leaked
  // through, the dedup would then discard the *real* message.
  run_pair({}, [&](transport& t, int rank) {
    reliable_options ropts;
    ropts.epoch = 4;
    ropts.recv_timeout = 8000ms;
    if (rank == 0) {
      envelope stale;
      stale.type = envelope::kind::data;
      stale.epoch = 3;
      stale.tag = 7;
      stale.seq = 0;  // same seq the real message will use
      const std::vector<double> image =
          wire::encode(stale, std::vector<double>{666.0});
      t.send(1, reliable_wire_tag, image);

      reliable_channel ch(t, ropts);
      ch.send(1, 7, std::vector<double>{42.0});
      ch.flush();
      ch.fence();
    } else {
      reliable_channel ch(t, ropts);
      const std::vector<double> got = ch.recv(0, 7);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42.0);  // the stale payload never surfaces
      EXPECT_GE(ch.stats().stale_dropped, 1);
      ch.flush();
      ch.fence();
    }
  });
}

TEST_P(ReliableOverBackend, DuplicatesAreReAckedDuringReorderHealing) {
  // Frame 0 is held back past frame 1 (reorder), and frame 1 is delivered
  // twice (duplicate). While the receiver is parked waiting for seq 0 it
  // must re-ack the duplicate of seq 1 instead of staying silent — a
  // silent dedup would leave the sender retransmitting into the gap.
  fault_plan plan;
  plan.seed = 43;
  fault_plan::message_fault reorder;
  reorder.src = 0;
  reorder.reorder_probability = 1.0;
  reorder.fire_from = 0;
  reorder.fire_count = 1;
  reorder.min_payload = wire::header_doubles + 1;
  plan.message_faults.push_back(reorder);
  fault_plan::message_fault duplicate;
  duplicate.src = 0;
  duplicate.duplicate_probability = 1.0;
  duplicate.fire_from = 1;
  duplicate.fire_count = 1;
  duplicate.min_payload = wire::header_doubles + 1;
  plan.message_faults.push_back(duplicate);

  constexpr int kMessages = 4;
  std::mutex stats_mutex;
  reliable_stats receiver_stats;
  run_pair(plan, [&](transport& t, int rank) {
    reliable_options ropts;
    ropts.recv_timeout = 8000ms;
    reliable_channel ch(t, ropts);
    if (rank == 0) {
      for (int i = 0; i < kMessages; ++i)
        ch.send(1, 7, std::vector<double>{static_cast<double>(i)});
      ch.flush();
      ch.fence();
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const std::vector<double> got = ch.recv(0, 7);
        ASSERT_EQ(got.size(), 1u);
        ASSERT_EQ(got[0], static_cast<double>(i));
      }
      ch.flush();
      ch.fence();
      std::lock_guard<std::mutex> lock(stats_mutex);
      receiver_stats = ch.stats();
    }
  });
  EXPECT_GE(receiver_stats.out_of_order, 1);
  EXPECT_GE(receiver_stats.dedup_dropped, 1);
  // The re-ack is visible in the accounting: at least one ack beyond the
  // one-per-accepted-delivery baseline.
  EXPECT_GE(receiver_stats.acks_sent,
            receiver_stats.data_received + receiver_stats.dedup_dropped);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReliableOverBackend,
                         ::testing::Values(transport_backend::inproc,
                                           transport_backend::socket),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// ---- retransmit backoff: capped exponential with deterministic jitter -------

TEST(RetransmitBackoff, GrowsExponentiallyAndCaps) {
  reliable_options opts;
  opts.retransmit_timeout = 200us;
  opts.max_backoff = 2000us;
  opts.retransmit_jitter = 0.0;
  rng r(1);
  EXPECT_EQ(compute_backoff(opts, 0, r), 200us);
  EXPECT_EQ(compute_backoff(opts, 1, r), 400us);
  EXPECT_EQ(compute_backoff(opts, 2, r), 800us);
  EXPECT_EQ(compute_backoff(opts, 3, r), 1600us);
  EXPECT_EQ(compute_backoff(opts, 4, r), 2000us);   // capped
  EXPECT_EQ(compute_backoff(opts, 40, r), 2000us);  // no shift overflow
}

TEST(RetransmitBackoff, JitterStaysWithinTheConfiguredBound) {
  reliable_options opts;
  opts.retransmit_timeout = 200us;
  opts.max_backoff = 2000us;
  opts.retransmit_jitter = 0.25;
  rng r(7);
  for (int attempts = 0; attempts <= 8; ++attempts) {
    const auto base = std::min<std::chrono::microseconds>(
        opts.retransmit_timeout * (1ll << attempts), opts.max_backoff);
    for (int draw = 0; draw < 32; ++draw) {
      const auto d = compute_backoff(opts, attempts, r);
      EXPECT_GE(d, base);
      EXPECT_LT(static_cast<double>(d.count()),
                static_cast<double>(base.count()) * (1.0 + 0.25));
    }
  }
}

TEST(RetransmitBackoff, JitterIsDeterministicUnderTheSameSeed) {
  reliable_options opts;
  opts.retransmit_jitter = 0.5;
  rng a(1234), b(1234), c(5678);
  bool differs_from_other_seed = false;
  for (int i = 0; i < 16; ++i) {
    const auto from_a = compute_backoff(opts, i % 6, a);
    const auto from_b = compute_backoff(opts, i % 6, b);
    const auto from_c = compute_backoff(opts, i % 6, c);
    EXPECT_EQ(from_a, from_b);
    if (from_a != from_c) differs_from_other_seed = true;
  }
  EXPECT_TRUE(differs_from_other_seed);
}

TEST(RetransmitBackoff, ZeroJitterConsumesNoRandomness) {
  reliable_options opts;
  opts.retransmit_jitter = 0.0;
  rng used(99), untouched(99);
  (void)compute_backoff(opts, 3, used);
  (void)compute_backoff(opts, 5, used);
  // The rng advanced only if a jitter draw happened; with jitter off the
  // two generators must still be in lockstep.
  EXPECT_EQ(used(), untouched());
}

}  // namespace
