// Tests for sfplint (src/analysis): the lexer, the include/module graph,
// every rule pass against small synthetic fixture trees (asserting exact
// rule slugs and file:line), the suppression/baseline machinery, the JSON
// report, and a whole-repo smoke test that proves the committed tree is
// clean modulo the committed baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/cfg.hpp"
#include "analysis/changed_lines.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/fix.hpp"
#include "analysis/include_graph.hpp"
#include "analysis/manifest.hpp"
#include "analysis/passes.hpp"
#include "analysis/report.hpp"
#include "analysis/sarif.hpp"
#include "analysis/source_model.hpp"
#include "graph/ops.hpp"
#include "io/json.hpp"
#include "util/contract.hpp"

using namespace sfp;
using namespace sfp::analysis;

namespace {

source_tree make_tree(
    std::vector<std::pair<std::string, std::string>> files) {
  source_tree t;
  t.root = "<fixture>";
  for (auto& [path, text] : files)
    t.files.push_back(make_source_file(path, text));
  return t;
}

layering_manifest fixture_manifest() {
  return manifest_from_json(io::parse_json(R"({
    "layers": [["util"], ["graph", "sfc"], ["mesh"], ["core"],
               ["mgp", "partition"], ["seam"], ["runtime"]],
    "sinks": {"obs": ["util"], "io": ["util", "obs"]}
  })"));
}

/// The findings with the given rule slug, in order.
std::vector<finding> with_rule(const std::vector<finding>& all,
                               const std::string& rule) {
  std::vector<finding> out;
  for (const auto& f : all)
    if (f.rule == rule) out.push_back(f);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer: strip_source
// ---------------------------------------------------------------------------

TEST(StripSource, BlanksCommentsButKeepsOffsetsAndNewlines) {
  const std::string in = "int a; // call rand() here\nint b; /* time( */ int c;\n";
  const std::string out = strip_source(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
  EXPECT_EQ(out[in.find('\n')], '\n');  // newlines survive in place
}

TEST(StripSource, BlanksStringAndCharLiteralBodies) {
  const std::string in = "auto s = \"rand()\"; char c = ';';\n";
  const std::string out = strip_source(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("rand"), std::string::npos);
  // Quote delimiters stay so later heuristics see literal boundaries.
  EXPECT_EQ(out[in.find('"')], '"');
  // The ';' inside the char literal must not terminate any statement scan.
  EXPECT_EQ(out.find("';'"), std::string::npos);
}

TEST(StripSource, KeepsIncludeTargetsOnPreprocessorLines) {
  const std::string in = "#include \"util/contract.hpp\"\nauto s = \"x\";\n";
  const std::string out = strip_source(in);
  EXPECT_NE(out.find("util/contract.hpp"), std::string::npos);
  EXPECT_EQ(out.find("auto s = \"x\""), std::string::npos);
}

TEST(StripSource, DigitSeparatorsAreNotCharLiterals) {
  const std::string in = "int n = 1'000'000; int m = rand();\n";
  const std::string out = strip_source(in);
  // If 1'000'000 opened a char literal, the rand() call would be blanked.
  EXPECT_NE(out.find("rand()"), std::string::npos);
}

TEST(StripSource, RawStringsAreBlanked) {
  const std::string in = "auto s = R\"(std::rand() inside)\";\nint f();\n";
  const std::string out = strip_source(in);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int f();"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Source model: make_source_file
// ---------------------------------------------------------------------------

TEST(SourceModel, PathDecompositionAndLineProvenance) {
  const source_file f = make_source_file(
      "src/core/widget.hpp", "#pragma once\nint f();\nint g();\n");
  EXPECT_EQ(f.tree, "src");
  EXPECT_EQ(f.module, "core");
  EXPECT_TRUE(f.is_header);
  EXPECT_EQ(f.num_lines(), 3);
  EXPECT_EQ(f.line(2), "int f();");
  EXPECT_EQ(f.line_of(f.stripped.find("int g")), 3);

  const source_file c = make_source_file("tools/sfplint_cli.cpp", "int x;\n");
  EXPECT_EQ(c.tree, "tools");
  EXPECT_EQ(c.module, "");
  EXPECT_FALSE(c.is_header);
}

TEST(SourceModel, CollectsInlineSuppressionTags) {
  const source_file f = make_source_file(
      "src/seam/x.cpp",
      "void f(world& w) {\n"
      "  w.barrier();  // lint: blocking-ok — drain point, peers joined\n"
      "  w.barrier();\n"
      "}\n");
  EXPECT_TRUE(f.has_tag(2, "blocking"));
  EXPECT_FALSE(f.has_tag(3, "blocking"));
  EXPECT_FALSE(f.has_tag(2, "raw-assert"));
}

// ---------------------------------------------------------------------------
// Include graph
// ---------------------------------------------------------------------------

TEST(IncludeGraph, BuildsModuleEdgesWithProvenance) {
  const source_tree t = make_tree({
      {"src/core/a.cpp",
       "#include \"core/a.hpp\"\n#include \"util/contract.hpp\"\n"},
      {"src/core/a.hpp", "#pragma once\n#include \"graph/csr.hpp\"\n"},
      {"src/util/contract.hpp", "#pragma once\n"},
      {"src/graph/csr.hpp", "#pragma once\n"},
  });
  const module_graph g = build_module_graph(t);
  ASSERT_EQ(g.modules.size(), 3u);  // core, graph, util — sorted
  EXPECT_EQ(g.modules[0], "core");
  ASSERT_EQ(g.edges.size(), 2u);  // same-module include dropped
  EXPECT_EQ(g.edges[0].from_module, "core");
  EXPECT_EQ(g.edges[0].to_module, "util");
  EXPECT_EQ(g.edges[0].file, "src/core/a.cpp");
  EXPECT_EQ(g.edges[0].line, 2);
  EXPECT_EQ(g.edges[1].target, "graph/csr.hpp");
  // Dogfooded undirected skeleton validates and counts both edges.
  EXPECT_EQ(g.undirected.num_vertices(), 3);
  EXPECT_EQ(g.undirected.num_edges(), 2);
  EXPECT_TRUE(find_include_cycle(g).empty());
}

TEST(IncludeGraph, FindsDirectedCycle) {
  const source_tree t = make_tree({
      {"src/core/c.hpp", "#pragma once\n#include \"graph/g.hpp\"\n"},
      {"src/graph/g.hpp", "#pragma once\n#include \"core/c.hpp\"\n"},
  });
  const std::vector<std::string> cycle =
      find_include_cycle(build_module_graph(t));
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST(Manifest, RanksSinksAndRejectsDuplicates) {
  const layering_manifest m = fixture_manifest();
  EXPECT_EQ(m.rank_of("util"), 0);
  EXPECT_EQ(m.rank_of("graph"), m.rank_of("sfc"));
  EXPECT_LT(m.rank_of("core"), m.rank_of("runtime"));
  EXPECT_EQ(m.rank_of("obs"), -1);
  EXPECT_TRUE(m.is_sink("io"));
  EXPECT_TRUE(m.sink_may_include("io", "obs"));
  EXPECT_FALSE(m.sink_may_include("obs", "graph"));
  EXPECT_TRUE(m.known("mesh"));
  EXPECT_FALSE(m.known("mystery"));

  EXPECT_THROW(manifest_from_json(io::parse_json(
                   R"({"layers": [["util"], ["util"]], "sinks": {}})")),
               contract_error);
}

// ---------------------------------------------------------------------------
// Pass: layering
// ---------------------------------------------------------------------------

TEST(LayeringPass, FlagsUpwardEdgeWithExactLocation) {
  const source_tree t = make_tree({
      {"src/util/bad.cpp", "int x;\n#include \"graph/csr.hpp\"\n"},
      {"src/graph/csr.hpp", "#pragma once\n"},
  });
  const auto findings =
      check_layering(build_module_graph(t), fixture_manifest());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/util/bad.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("'util' may not depend on 'graph'"),
            std::string::npos);
}

TEST(LayeringPass, AllowsDownwardPeerAndSinkEdges) {
  const source_tree t = make_tree({
      {"src/core/a.cpp", "#include \"util/contract.hpp\"\n"},   // downward
      {"src/graph/b.cpp", "#include \"sfc/curve.hpp\"\n"},      // same group
      {"src/mesh/c.cpp", "#include \"obs/metrics.hpp\"\n"},     // into sink
      {"src/io/d.cpp", "#include \"obs/metrics.hpp\"\n"},       // sink -> sink
      {"src/util/contract.hpp", "#pragma once\n"},
      {"src/sfc/curve.hpp", "#pragma once\n"},
      {"src/obs/metrics.hpp", "#pragma once\n"},
  });
  EXPECT_TRUE(
      check_layering(build_module_graph(t), fixture_manifest()).empty());
}

TEST(LayeringPass, FlagsSinkReachingOutsideItsDeclaredDeps) {
  const source_tree t = make_tree({
      {"src/obs/bad.cpp", "#include \"graph/csr.hpp\"\n"},
      {"src/graph/csr.hpp", "#pragma once\n"},
  });
  const auto findings =
      check_layering(build_module_graph(t), fixture_manifest());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].file, "src/obs/bad.cpp");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LayeringPass, ReportsCycleOnceWithModulePath) {
  const source_tree t = make_tree({
      {"src/core/c.hpp", "#pragma once\n#include \"graph/g.hpp\"\n"},
      {"src/graph/g.hpp", "#pragma once\n#include \"core/c.hpp\"\n"},
  });
  const auto findings =
      check_layering(build_module_graph(t), fixture_manifest());
  const auto cycles = with_rule(findings, "layering-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("core"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("graph"), std::string::npos);
  EXPECT_NE(cycles[0].message.find(" -> "), std::string::npos);
  EXPECT_GT(cycles[0].line, 0);  // anchored at a real include site
  // The upward half of the loop is also a plain layering violation.
  const auto edges = with_rule(findings, "layering");
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].file, "src/graph/g.hpp");
  EXPECT_EQ(edges[0].line, 2);
}

TEST(LayeringPass, ReportsUnknownModuleOnce) {
  const source_tree t = make_tree({
      {"src/mystery/a.cpp",
       "#include \"util/contract.hpp\"\n#include \"util/require.hpp\"\n"},
      {"src/util/contract.hpp", "#pragma once\n"},
  });
  const auto findings =
      check_layering(build_module_graph(t), fixture_manifest());
  const auto unknown = with_rule(findings, "layering-unknown");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].file, "src/mystery/a.cpp");
  EXPECT_NE(unknown[0].message.find("'mystery'"), std::string::npos);
  EXPECT_NE(unknown[0].message.find("tools/layering.json"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass: determinism
// ---------------------------------------------------------------------------

TEST(DeterminismPass, FlagsEachNondeterminismSourceAtItsLine) {
  const source_tree t = make_tree({
      {"src/core/bad.cpp",
       "int f() { return std::rand(); }\n"
       "void g() { std::srand(7); }\n"
       "std::random_device dev;\n"
       "long h() { return time(nullptr); }\n"
       "std::mt19937 gen;\n"
       "std::default_random_engine eng{};\n"},
  });
  const auto findings = check_determinism(t);
  ASSERT_EQ(findings.size(), 6u);
  for (int expected_line = 1; expected_line <= 6; ++expected_line) {
    EXPECT_EQ(findings[static_cast<std::size_t>(expected_line - 1)].rule,
              "determinism");
    EXPECT_EQ(findings[static_cast<std::size_t>(expected_line - 1)].line,
              expected_line);
  }
  EXPECT_NE(findings[0].message.find("rand()"), std::string::npos);
  EXPECT_NE(findings[4].message.find("unseeded std::mt19937"),
            std::string::npos);
}

TEST(DeterminismPass, SilentOnSeededEnginesMembersAndOtherModules) {
  const source_tree t = make_tree({
      // Seeded engines, member calls, and brand()-style names are fine.
      {"src/core/good.cpp",
       "std::mt19937 gen(42);\n"
       "double t(clock& c) { return c.time(); }\n"
       "int brand();\n"
       "int x = brand();\n"},
      // Same offending content outside the determinism module set.
      {"src/io/loader.cpp", "int f() { return std::rand(); }\n"},
      {"tools/gen.cpp", "int f() { return std::rand(); }\n"},
  });
  EXPECT_TRUE(check_determinism(t).empty());
}

// ---------------------------------------------------------------------------
// Pass: contract discipline
// ---------------------------------------------------------------------------

TEST(ContractPass, FlagsSideEffectfulConditions) {
  const source_tree t = make_tree({
      {"src/core/contracts.cpp",
       "#include \"util/contract.hpp\"\n"
       "void f(int n, int m) {\n"
       "  SFP_REQUIRE(++n > 0, \"increments the argument\");\n"
       "  SFP_REQUIRE(n == 3, \"pure comparison\");\n"
       "  SFP_ASSERT(n = m, \"assignment, not comparison\");\n"
       "  SFP_AUDIT(n <= m && n >= 0 && n != 7, \"pure comparisons\");\n"
       "}\n"},
  });
  const auto findings = check_contract_discipline(t);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "contract-purity");
  EXPECT_EQ(findings[0].file, "src/core/contracts.cpp");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("SFP_REQUIRE"), std::string::npos);
  EXPECT_EQ(findings[1].line, 5);
  EXPECT_NE(findings[1].message.find("SFP_ASSERT"), std::string::npos);
}

TEST(ContractPass, FlagsThrowInRuntimeOutsideDesignatedFiles) {
  const source_tree t = make_tree({
      {"src/runtime/widget.cpp",
       "void f() {\n  throw 1;\n}\n"},
      {"src/runtime/world.cpp",  // designated failure path: allowed
       "void g() {\n  throw 2;\n}\n"},
      {"src/core/other.cpp",  // rule is runtime-only
       "void h() {\n  throw 3;\n}\n"},
  });
  const auto findings = check_contract_discipline(t);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "runtime-throw");
  EXPECT_EQ(findings[0].file, "src/runtime/widget.cpp");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(ContractPass, FlagsAuditInsideHeaderLoopOnly) {
  const std::string body =
      "#pragma once\n"                                   // 1
      "#include \"util/contract.hpp\"\n"                 // 2
      "inline int sum(int n) {\n"                        // 3
      "  int s = 0;\n"                                   // 4
      "  for (int i = 0; i < n; ++i) {\n"                // 5
      "    SFP_AUDIT(s >= 0, \"inside the loop\");\n"    // 6
      "    s += i;\n"                                    // 7
      "  }\n"                                            // 8
      "  SFP_AUDIT(s >= 0, \"at the boundary\");\n"      // 9
      "  return s;\n"                                    // 10
      "}\n";
  const source_tree t = make_tree({
      {"src/core/hot.hpp", body},
      // Same code in a .cpp is out of scope for this rule.
      {"src/core/hot.cpp", body.substr(body.find('\n') + 1)},
  });
  const auto findings = check_contract_discipline(t);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "audit-header-loop");
  EXPECT_EQ(findings[0].file, "src/core/hot.hpp");
  EXPECT_EQ(findings[0].line, 6);
}

// ---------------------------------------------------------------------------
// Pass: header hygiene
// ---------------------------------------------------------------------------

TEST(HeaderPass, RequiresPragmaOnceAsFirstMeaningfulLine) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n#pragma once\n"},
      {"src/core/good.hpp", "// leading comment\n\n#pragma once\nint y;\n"},
      {"src/core/impl.cpp", "int z;\n"},  // rule is header-only
  });
  const auto findings = check_header_hygiene(t);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "pragma-once");
  EXPECT_EQ(findings[0].file, "src/core/nopragma.hpp");
  EXPECT_EQ(findings[0].line, 1);
}

// ---------------------------------------------------------------------------
// Pass: blocking calls (folded in from tools/lint.sh)
// ---------------------------------------------------------------------------

TEST(BlockingPass, FlagsBareBlockingCallsOutsideWrappers) {
  const source_tree t = make_tree({
      {"src/seam/foo.cpp",
       "void f(world& w) {\n"
       "  int x = 0;\n"
       "  w.barrier();\n"
       "}\n"},
      {"src/seam/exchange.cpp",  // the designated wrapper is allowed
       "void g(world& w) { w.barrier(); }\n"},
      {"src/core/not_scanned.cpp",  // rule only covers runtime/seam trees
       "void h(world& w) { w.barrier(); }\n"},
  });
  const auto findings = check_blocking_calls(t);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking");
  EXPECT_EQ(findings[0].file, "src/seam/foo.cpp");
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// Pass: raw assert (folded in from tools/lint.sh)
// ---------------------------------------------------------------------------

TEST(RawAssertPass, FlagsAssertCallsAndIncludesButNotStaticAssert) {
  const source_tree t = make_tree({
      {"src/util/a.cpp",
       "#include <cassert>\n"
       "void f(int x) { assert(x > 0); }\n"
       "static_assert(1 + 1 == 2, \"arithmetic\");\n"},
      {"tests/free.cpp", "void g(int x) { assert(x); }\n"},  // tests exempt
  });
  const auto findings = check_raw_assert(t);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "raw-assert");
  EXPECT_EQ(findings[0].file, "src/util/a.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
}

// ---------------------------------------------------------------------------
// Pass: retry-backoff
// ---------------------------------------------------------------------------

TEST(RetryBackoffPass, FlagsRetransmitLoopWithoutBackoff) {
  const source_tree t = make_tree({
      {"src/runtime/bad.cpp",
       "void f(channel& c) {\n"                          // 1
       "  while (c.has_unacked()) {\n"                   // 2
       "    c.retransmit_all();\n"                       // 3
       "  }\n"                                           // 4
       "}\n"},
  });
  const auto findings = check_retry_backoff(t);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "retry-backoff");
  EXPECT_EQ(findings[0].file, "src/runtime/bad.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("backoff"), std::string::npos);
}

TEST(RetryBackoffPass, SilentWhenTheLoopScalesABackoff) {
  const source_tree t = make_tree({
      {"src/runtime/good.cpp",
       "void f(channel& c) {\n"
       "  for (auto& e : c.unacked()) {\n"
       "    auto backoff = base * (1 << e.attempts);\n"
       "    c.retransmit(e, backoff);\n"
       "  }\n"
       "}\n"},
      // Retry loops outside src/runtime and src/seam are out of scope.
      {"tools/poll.cpp",
       "void g() { while (true) retry(); }\n"},
      // Loops with no retry vocabulary at all are out of scope.
      {"src/seam/calc.cpp",
       "int h(int n) { int s = 0; for (int i = 0; i < n; ++i) s += i; "
       "return s; }\n"},
  });
  EXPECT_TRUE(check_retry_backoff(t).empty());
}

TEST(RetryBackoffPass, FlagsStatementFormAndNestedLoops) {
  const source_tree t = make_tree({
      {"src/seam/nested.cpp",
       "void f(channel& c) {\n"                          // 1
       "  for (auto& e : c.unacked())\n"                 // 2
       "    c.retry(e);\n"                               // 3
       "  while (c.pending()) {\n"                       // 4
       "    auto backoff = c.next_backoff();\n"          // 5
       "    while (c.stuck()) c.resend_now();\n"         // 6
       "  }\n"                                           // 7
       "}\n"},
  });
  const auto findings = check_retry_backoff(t);
  // Line 2: statement-form retry loop, no backoff. Line 6: the inner loop
  // resends with no backoff in its own region; the outer loop's backoff at
  // line 5 keeps the outer loop silent but does not excuse the inner one.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 6);
}

// ---------------------------------------------------------------------------
// transport-discipline pass
// ---------------------------------------------------------------------------

namespace {

layering_manifest transport_manifest() {
  return manifest_from_json(io::parse_json(R"({
    "layers": [["util"], ["graph", "sfc"], ["mesh"], ["core"],
               ["mgp", "partition"], ["seam"], ["runtime"]],
    "sinks": {"obs": ["util"], "io": ["util", "obs"]},
    "transport": {"fabric_module": "runtime",
                  "fabric_types": ["world", "socket_fabric"]}
  })"));
}

}  // namespace

TEST(TransportDisciplinePass, FlagsConstructionOutsideTheFabricModule) {
  const source_tree t = make_tree({
      {"src/seam/bad.cpp",
       "void f(int n) {\n"                                // 1
       "  runtime::world w(n);\n"                         // 2
       "  runtime::socket_fabric fab{n};\n"               // 3
       "  use(runtime::world(n));\n"                      // 4 (temporary)
       "}\n"},
  });
  auto findings = check_transport_discipline(t, transport_manifest());
  std::sort(findings.begin(), findings.end());  // pass order is per-type
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "transport-discipline");
  EXPECT_EQ(findings[0].file, "src/seam/bad.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_EQ(findings[2].line, 4);
  EXPECT_NE(findings[0].message.find("runtime::world"), std::string::npos);
}

TEST(TransportDisciplinePass, SilentOnNonConstructionUsesAndFabricModule) {
  const source_tree t = make_tree({
      // Nested names, references, pointers, parameters: not constructions.
      {"src/seam/uses.cpp",
       "runtime::world::options make_opts();\n"
       "void g(const runtime::world& w, runtime::world* p);\n"
       "int rank_of(runtime::world& w) { return w.size(); }\n"},
      // The fabric module itself may construct its own types.
      {"src/runtime/world.cpp",
       "runtime::world make(int n) { runtime::world w(n); return w; }\n"},
      // Out-of-src trees (tests, tools) are out of scope.
      {"tests/fixture.cpp", "void t() { runtime::world w(2); }\n"},
  });
  EXPECT_TRUE(check_transport_discipline(t, transport_manifest()).empty());
  // A manifest with no transport section disables the pass entirely.
  const source_tree bad = make_tree({
      {"src/seam/bad.cpp", "void f() { runtime::world w(4); }\n"},
  });
  EXPECT_TRUE(check_transport_discipline(bad, fixture_manifest()).empty());
}

TEST(TransportDisciplinePass, InlineAnnotationSuppressesViaRunAll) {
  const source_tree t = make_tree({
      {"src/seam/noted.cpp",
       "void f(int n) {\n"
       "  runtime::world w(n);  // lint: transport-discipline-ok — runner\n"
       "  runtime::world v(n);\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, transport_manifest());
  const auto flagged = with_rule(r.findings, "transport-discipline");
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].line, 3);
  const auto quiet = with_rule(r.suppressed, "transport-discipline");
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0].line, 2);
}

// ---------------------------------------------------------------------------
// run_all: suppression convention
// ---------------------------------------------------------------------------

TEST(RunAll, InlineAnnotationMovesFindingToSuppressed) {
  const source_tree t = make_tree({
      {"src/seam/noted.cpp",
       "void f(world& w) {\n"
       "  w.barrier();  // lint: blocking-ok — drain point, peers joined\n"
       "  w.barrier();\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 3);  // the unannotated call still fails
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "blocking");
  EXPECT_EQ(r.suppressed[0].line, 2);
}

TEST(RunAll, WrongRuleSlugDoesNotSuppress) {
  const source_tree t = make_tree({
      {"src/seam/noted.cpp",
       "void f(world& w) {\n"
       "  w.barrier();  // lint: raw-assert-ok — wrong slug\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "blocking");
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(RunAll, CyclesAndUnknownModulesAreNeverSuppressible) {
  const source_tree t = make_tree({
      {"src/core/c.hpp",
       "#pragma once\n"
       "#include \"graph/g.hpp\"  // lint: layering-cycle-ok — nice try\n"},
      {"src/graph/g.hpp",
       "#pragma once\n"
       "#include \"core/c.hpp\"  // lint: layering-cycle-ok — nice try\n"},
      {"src/mystery/m.cpp",
       "#include \"util/x.hpp\"  // lint: layering-unknown-ok — nope\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_EQ(with_rule(r.findings, "layering-cycle").size(), 1u);
  EXPECT_EQ(with_rule(r.findings, "layering-unknown").size(), 1u);
}

TEST(RunAll, CleanFixtureTreeStaysSilent) {
  const source_tree t = make_tree({
      {"src/util/contract.hpp", "#pragma once\nint f();\n"},
      {"src/core/a.hpp", "#pragma once\n#include \"util/contract.hpp\"\n"},
      {"src/core/a.cpp",
       "#include \"core/a.hpp\"\nint impl() { return 1; }\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.suppressed.empty());
  EXPECT_EQ(r.files_scanned, 3u);
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

TEST(Baseline, MatchesByRuleFileAndOptionalSubstring) {
  analysis_result r;
  r.findings = {
      finding{"raw-assert", "src/util/a.cpp", 2, "raw assert() in f"},
      finding{"blocking", "src/seam/foo.cpp", 3, "bare blocking call"},
      finding{"blocking", "src/seam/foo.cpp", 9, "other message"},
  };
  const auto bl = baseline_from_json(io::parse_json(R"({
    "version": 1,
    "suppressions": [
      {"rule": "raw-assert", "file": "src/util/a.cpp"},
      {"rule": "blocking", "file": "src/seam/foo.cpp",
       "match": "bare blocking"}
    ]
  })"));
  ASSERT_EQ(bl.size(), 2u);
  const std::vector<finding> baselined = apply_baseline(r, bl);
  ASSERT_EQ(baselined.size(), 2u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 9);  // substring did not match this one
}

TEST(Baseline, RoundTripsThroughWriter) {
  const std::vector<finding> fs = {
      finding{"layering", "src/util/bad.cpp", 2, "breaks the layering"}};
  const auto back = baseline_from_json(baseline_to_json(fs));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, "layering");
  EXPECT_EQ(back[0].file, "src/util/bad.cpp");
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

TEST(Report, TextListsFindingsWithProvenanceAndSummary) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const std::string text = render_text(r, {});
  EXPECT_NE(text.find("src/core/nopragma.hpp:1: [pragma-once]"),
            std::string::npos);
  EXPECT_NE(text.find("sfplint: 1 files"), std::string::npos);
  EXPECT_NE(text.find("1 finding(s)"), std::string::npos);
}

TEST(Report, JsonRoundTripsAndCountsMatch) {
  const source_tree t = make_tree({
      {"src/core/a.cpp",
       "#include \"util/contract.hpp\"\nint f() { return std::rand(); }\n"},
      {"src/util/contract.hpp", "#pragma once\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.findings.size(), 1u);
  const io::json_value doc = report_to_json(r, {});
  // The writer's output must re-parse to the same structure.
  const io::json_value back = io::parse_json(io::write_json(doc, 2));
  EXPECT_EQ(back.at("tool").string, "sfplint");
  EXPECT_EQ(back.at("summary").at("files").number, 2);
  EXPECT_EQ(back.at("summary").at("findings").number, 1);
  ASSERT_EQ(back.at("findings").array.size(), 1u);
  const io::json_value& f = back.at("findings").array[0];
  EXPECT_EQ(f.at("rule").string, "determinism");
  EXPECT_EQ(f.at("file").string, "src/core/a.cpp");
  EXPECT_EQ(f.at("line").number, 2);
  EXPECT_FALSE(back.at("modules").array.empty());
}

// ---------------------------------------------------------------------------
// load_tree: filesystem entry point
// ---------------------------------------------------------------------------

TEST(LoadTree, ScansSubtreesSortedAndSkipsMissingOnes) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "sfplint_fixture_tree";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "util");
  fs::create_directories(root / "tools");
  {
    std::ofstream(root / "src" / "util" / "b.hpp") << "#pragma once\n";
    std::ofstream(root / "src" / "util" / "a.cpp")
        << "#include \"util/b.hpp\"\n";
    std::ofstream(root / "tools" / "cli.cpp") << "int main() {}\n";
    std::ofstream(root / "src" / "util" / "notes.md") << "not code\n";
  }
  const source_tree t = load_tree(root.string());
  ASSERT_EQ(t.files.size(), 3u);  // .md skipped, bench/ absent is fine
  EXPECT_EQ(t.files[0].path, "src/util/a.cpp");
  EXPECT_EQ(t.files[1].path, "src/util/b.hpp");
  EXPECT_EQ(t.files[2].path, "tools/cli.cpp");
  EXPECT_EQ(t.files[0].module, "util");
  EXPECT_TRUE(t.files[1].is_header);
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// Call graph: extraction + resolution
// ---------------------------------------------------------------------------

namespace {

int must_index(const call_graph& g, const std::string& qualified) {
  const int idx = g.index_of(qualified);
  EXPECT_GE(idx, 0) << "missing function " << qualified;
  return idx;
}

/// The resolved callee qualified-names of one function, sorted.
std::vector<std::string> callees(const call_graph& g,
                                 const std::string& qualified) {
  std::vector<std::string> out;
  const int idx = g.index_of(qualified);
  if (idx < 0) return out;
  for (const int t : g.callees_of[static_cast<std::size_t>(idx)])
    out.push_back(g.functions[static_cast<std::size_t>(t)].qualified);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

TEST(CallGraph, ExtractsDefinitionsAcrossScopes) {
  const source_tree t = make_tree({
      {"src/core/a.cpp",
       "namespace sfp::core {\n"                            // 1
       "namespace {\n"                                      // 2
       "int helper(int x) { return x + 1; }\n"              // 3
       "}  // namespace\n"                                  // 4
       "struct widget {\n"                                  // 5
       "  int size() const { return n; }\n"                 // 6
       "  widget() : n(0) {}\n"                             // 7
       "  int n;\n"                                         // 8
       "};\n"                                               // 9
       "int outer(int x) {\n"                               // 10
       "  auto lam = [&] { return helper(x); };\n"          // 11
       "  return lam() + helper(x);\n"                      // 12
       "}\n"                                                // 13
       "}  // namespace sfp::core\n"},
  });
  const call_graph g = build_call_graph(t);

  const int helper = must_index(g, "sfp::core::helper");
  const int size = must_index(g, "sfp::core::widget::size");
  const int ctor = must_index(g, "sfp::core::widget::widget");
  const int outer = must_index(g, "sfp::core::outer");
  EXPECT_EQ(g.functions[static_cast<std::size_t>(helper)].line, 3);
  EXPECT_TRUE(g.functions[static_cast<std::size_t>(helper)].file_local);
  EXPECT_TRUE(g.functions[static_cast<std::size_t>(size)].member);
  EXPECT_TRUE(g.functions[static_cast<std::size_t>(ctor)].member);
  EXPECT_FALSE(g.functions[static_cast<std::size_t>(outer)].member);
  EXPECT_FALSE(g.functions[static_cast<std::size_t>(outer)].file_local);

  // The lambda body belongs to outer: both helper() calls (line 11 inside
  // the lambda, line 12 direct) resolve from outer to the file-local def.
  const auto outs = callees(g, "sfp::core::outer");
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], "sfp::core::helper");
  int helper_calls = 0;
  for (const auto& c : g.calls)
    if (c.caller == outer && c.written == "helper") ++helper_calls;
  EXPECT_EQ(helper_calls, 2);

  // function_at maps a byte inside outer's body back to outer.
  const auto& fo = g.functions[static_cast<std::size_t>(outer)];
  EXPECT_EQ(g.function_at(fo.file, fo.body_begin + 1), outer);
  EXPECT_EQ(g.function_at(fo.file, 0), -1);  // namespace line: no body
}

TEST(CallGraph, FileLocalAndSameFilePreferenceAndSuffixResolution) {
  const source_tree t = make_tree({
      {"src/core/a.cpp",
       "namespace sfp::core {\n"
       "namespace { int pick() { return 1; } }\n"
       "int user_a(int v) { return pick() + v; }\n"
       "}\n"},
      {"src/core/b.cpp",
       "namespace sfp::core {\n"
       "namespace { int pick() { return 2; } }\n"
       "int user_b(int v) { return pick() + v; }\n"
       "int cross(int v) { return core::user_a(v); }\n"
       "int lost(int v) { return std::max(v, 0); }\n"
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  // Each anonymous-namespace pick() only resolves from its own file.
  const int user_a = must_index(g, "sfp::core::user_a");
  const int user_b = must_index(g, "sfp::core::user_b");
  for (const auto& c : g.calls) {
    if (c.written != "pick") continue;
    ASSERT_EQ(c.targets.size(), 1u);
    const function_def& d =
        g.functions[static_cast<std::size_t>(c.targets[0])];
    EXPECT_EQ(d.file, g.functions[static_cast<std::size_t>(c.caller)].file)
        << "file-local pick() leaked across files";
  }
  (void)user_a;
  (void)user_b;
  // Qualified suffix match: core::user_a binds across files.
  const auto cross_callees = callees(g, "sfp::core::cross");
  ASSERT_EQ(cross_callees.size(), 1u);
  EXPECT_EQ(cross_callees[0], "sfp::core::user_a");
  // std:: calls stay unresolved by design.
  EXPECT_TRUE(callees(g, "sfp::core::lost").empty());
  EXPECT_GE(g.unresolved_calls, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency model
// ---------------------------------------------------------------------------

TEST(ConcurrencyModel, TracksGuardScopesRawLocksAndReach) {
  const source_tree t = make_tree({
      {"src/runtime/m.cpp",
       "namespace sfp::runtime {\n"                         // 1
       "int read_v(box& b) {\n"                             // 2
       "  std::lock_guard<std::mutex> g(b.mu);\n"           // 3
       "  return b.v;\n"                                    // 4
       "}\n"                                                // 5
       "void raw_pair(box& b) {\n"                          // 6
       "  b.mu.lock();\n"                                   // 7
       "  b.v = 1;\n"                                       // 8
       "  b.mu.unlock();\n"                                 // 9
       "  b.v = 2;\n"                                       // 10
       "}\n"                                                // 11
       "int relay(box& b) { return read_v(b); }\n"          // 12
       "}\n"},
      {"src/io/ent.cpp",
       "namespace sfp::io {\n"
       "int entropy() { return rand(); }\n"
       "}\n"},
      {"src/core/seed.cpp",
       "namespace sfp::core {\n"
       "int seed_of() { return io::entropy(); }\n"
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);

  // read_v: one guard acquisition on b.mu, held to the end of the body.
  const int read_v = must_index(g, "sfp::runtime::read_v");
  ASSERT_EQ(m.acquisitions_of[static_cast<std::size_t>(read_v)].size(), 1u);
  const lock_acquisition& ga = m.acquisitions[static_cast<std::size_t>(
      m.acquisitions_of[static_cast<std::size_t>(read_v)][0])];
  EXPECT_EQ(ga.expr, "b.mu");
  EXPECT_EQ(ga.line, 3);
  EXPECT_FALSE(ga.raw);
  EXPECT_EQ(ga.hold_end,
            g.functions[static_cast<std::size_t>(read_v)].body_end);

  // raw_pair: the raw .lock() ends at the matching .unlock(), so the
  // assignment on line 10 is outside the hold range.
  const int raw_pair = must_index(g, "sfp::runtime::raw_pair");
  ASSERT_EQ(m.acquisitions_of[static_cast<std::size_t>(raw_pair)].size(),
            1u);
  const lock_acquisition& ra = m.acquisitions[static_cast<std::size_t>(
      m.acquisitions_of[static_cast<std::size_t>(raw_pair)][0])];
  EXPECT_TRUE(ra.raw);
  EXPECT_EQ(ra.line, 7);
  const source_file& f = t.files[0];
  EXPECT_LT(ra.hold_end, f.stripped.find("b.v = 2"));
  EXPECT_GT(ra.hold_end, f.stripped.find("b.v = 1"));

  // Lock closure flows through calls: relay() transitively holds b.mu.
  const int relay = must_index(g, "sfp::runtime::relay");
  EXPECT_EQ(m.lock_closure[static_cast<std::size_t>(relay)].size(), 1u);

  // Nondet reach: entropy() is direct, seed_of() transitive via the call,
  // and the chain names the whole path down to the rand() site.
  const int entropy = must_index(g, "sfp::io::entropy");
  const int seed_of = must_index(g, "sfp::core::seed_of");
  EXPECT_TRUE(m.nondet_transitively[static_cast<std::size_t>(entropy)]);
  EXPECT_TRUE(m.nondet_transitively[static_cast<std::size_t>(seed_of)]);
  const std::string chain = nondet_chain(t, g, m, seed_of);
  EXPECT_NE(chain.find("sfp::core::seed_of"), std::string::npos);
  EXPECT_NE(chain.find("sfp::io::entropy"), std::string::npos);
  EXPECT_NE(chain.find("rand() [src/io/ent.cpp:2]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass: determinism-transitive
// ---------------------------------------------------------------------------

TEST(DeterminismTransitivePass, FlagsCallChainIntoNondetAtTheCallSite) {
  const source_tree t = make_tree({
      {"src/io/ent.cpp",
       "namespace sfp::io {\n"
       "int entropy() { return rand(); }\n"
       "}\n"},
      {"src/core/seed.cpp",
       "namespace sfp::core {\n"                            // 1
       "int seed_of() {\n"                                  // 2
       "  return io::entropy();\n"                          // 3
       "}\n"                                                // 4
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  const auto findings = check_determinism_transitive(t, g, m);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-transitive");
  EXPECT_EQ(findings[0].file, "src/core/seed.cpp");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("io::entropy"), std::string::npos);
  EXPECT_NE(findings[0].message.find("rand()"), std::string::npos);
  // The direct rand() inside src/io is the `determinism` pass's business
  // (and io is not a determinism module), not this pass's.
  EXPECT_TRUE(check_determinism(t).empty());
}

TEST(DeterminismTransitivePass, SilentOnPureChainsAndNonKernelCallers) {
  const source_tree t = make_tree({
      // A pure helper chain in a kernel module: silent.
      {"src/core/pure.cpp",
       "namespace sfp::core {\n"
       "int add(int a, int b) { return a + b; }\n"
       "int twice(int a) { return add(a, a); }\n"
       "}\n"},
      // The nondet chain exists but the caller is not a kernel module.
      {"src/io/ent.cpp",
       "namespace sfp::io {\n"
       "int entropy() { return rand(); }\n"
       "int reseed() { return entropy(); }\n"
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  EXPECT_TRUE(check_determinism_transitive(t, g, m).empty());
}

// ---------------------------------------------------------------------------
// Pass: lock-order
// ---------------------------------------------------------------------------

namespace {

source_tree lock_cycle_tree() {
  return make_tree({
      {"src/core/locks.cpp",
       "namespace sfp::core {\n"                            // 1
       "void ab(pair_t& p) {\n"                             // 2
       "  std::lock_guard<std::mutex> g1(p.a);\n"           // 3
       "  std::lock_guard<std::mutex> g2(p.b);\n"           // 4
       "}\n"                                                // 5
       "void ba(pair_t& p) {\n"                             // 6
       "  std::lock_guard<std::mutex> g1(p.b);\n"           // 7
       "  std::lock_guard<std::mutex> g2(p.a);\n"           // 8
       "}\n"                                                // 9
       "}\n"},
  });
}

}  // namespace

TEST(LockOrderPass, FlagsAbBaCycleWithWitness) {
  const source_tree t = lock_cycle_tree();
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  const lock_order_graph lg = build_lock_order_graph(t, g, m);
  ASSERT_EQ(lg.mutexes.size(), 2u);
  ASSERT_EQ(lg.edges.size(), 2u);  // a->b and b->a
  ASSERT_FALSE(lg.cycle.empty());
  EXPECT_EQ(lg.cycle.front(), lg.cycle.back());

  const auto findings = check_lock_order(lg);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_EQ(findings[0].file, "src/core/locks.cpp");
  EXPECT_GT(findings[0].line, 0);
  EXPECT_NE(findings[0].message.find("p.a"), std::string::npos);
  EXPECT_NE(findings[0].message.find("p.b"), std::string::npos);
  EXPECT_NE(findings[0].message.find(" -> "), std::string::npos);
}

TEST(LockOrderPass, ConsistentOrderAndCallMediatedEdgesStayAcyclic) {
  const source_tree t = make_tree({
      {"src/core/locks.cpp",
       "namespace sfp::core {\n"
       "void lock_b_only(pair_t& p) {\n"
       "  std::lock_guard<std::mutex> g(p.b);\n"
       "}\n"
       "void ab(pair_t& p) {\n"
       "  std::lock_guard<std::mutex> g1(p.a);\n"
       "  lock_b_only(p);\n"
       "}\n"
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  const lock_order_graph lg = build_lock_order_graph(t, g, m);
  // The a->b edge comes from the CALL inside the hold range, not from a
  // second acquisition in the same body.
  ASSERT_EQ(lg.edges.size(), 1u);
  EXPECT_NE(lg.mutexes[static_cast<std::size_t>(lg.edges[0].from)]
                .find("p.a"),
            std::string::npos);
  EXPECT_NE(lg.mutexes[static_cast<std::size_t>(lg.edges[0].to)]
                .find("p.b"),
            std::string::npos);
  EXPECT_TRUE(lg.cycle.empty());
  EXPECT_TRUE(check_lock_order(lg).empty());
}

TEST(LockOrderPass, SelfEdgesFromShardedAliasesAreDropped) {
  // Two shard objects with the same member spelling alias to one
  // file-scoped identity; "s.mutex before s.mutex" must not become a
  // self-cycle (this is exactly the obs lock-sharded registry shape).
  const source_tree t = make_tree({
      {"src/obs/shards.cpp",
       "namespace sfp::obs {\n"
       "void bump(shard& s1, shard& s2) {\n"
       "  std::lock_guard<std::mutex> g1(s1.mutex);\n"
       "  std::lock_guard<std::mutex> g2(s2.mutex);\n"
       "}\n"
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  // s1.mutex and s2.mutex are distinct identities here; but the classic
  // alias case is the SAME spelling through a loop variable:
  const source_tree t2 = make_tree({
      {"src/obs/shards.cpp",
       "namespace sfp::obs {\n"
       "void bump_all(registry& r) {\n"
       "  for (auto& s : r.shards) {\n"
       "    std::lock_guard<std::mutex> g(s.mutex);\n"
       "    touch(s);\n"
       "  }\n"
       "  std::lock_guard<std::mutex> g2(r.shards[0].mutex);\n"
       "}\n"
       "void touch(shard& s) {\n"
       "  std::lock_guard<std::mutex> g(s.mutex);\n"
       "}\n"
       "}\n"},
  });
  const call_graph g2 = build_call_graph(t2);
  const concurrency_model m2 = build_concurrency_model(t2, g2);
  const lock_order_graph lg2 = build_lock_order_graph(t2, g2, m2);
  for (const lock_edge& e : lg2.edges) EXPECT_NE(e.from, e.to);
  EXPECT_TRUE(lg2.cycle.empty());
  (void)m;
}

// ---------------------------------------------------------------------------
// Pass: blocking-while-locked
// ---------------------------------------------------------------------------

TEST(BlockingWhileLockedPass, FlagsDirectBlockingInsideHoldRange) {
  const source_tree t = make_tree({
      {"src/seam/bw.cpp",
       "namespace sfp::seam {\n"                            // 1
       "void pump(std::mutex& m, channel& ch) {\n"          // 2
       "  std::lock_guard<std::mutex> g(m);\n"              // 3
       "  ch.recv(0);\n"                                    // 4
       "}\n"                                                // 5
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  const auto findings = check_blocking_while_locked(t, g, m);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "blocking-while-locked");
  EXPECT_EQ(findings[0].file, "src/seam/bw.cpp");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("recv"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'m'"), std::string::npos);
}

TEST(BlockingWhileLockedPass, FlagsTransitiveBlockingThroughACall) {
  const source_tree t = make_tree({
      {"src/seam/bw.cpp",
       "namespace sfp::seam {\n"                            // 1
       "void drain(channel& ch) {\n"                        // 2
       "  ch.recv(0);\n"                                    // 3
       "}\n"                                                // 4
       "void pump(std::mutex& m, channel& ch) {\n"          // 5
       "  std::lock_guard<std::mutex> g(m);\n"              // 6
       "  drain(ch);\n"                                     // 7
       "}\n"                                                // 8
       "}\n"},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  const auto findings = check_blocking_while_locked(t, g, m);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7);  // at the call site, not inside drain
  EXPECT_NE(findings[0].message.find("drain"), std::string::npos);
  EXPECT_NE(findings[0].message.find("recv()"), std::string::npos);
}

TEST(BlockingWhileLockedPass, SilentInWaitSitesAndOutsideHoldRanges) {
  const std::string body =
      "namespace sfp::runtime {\n"
      "void pump(std::mutex& m, channel& ch) {\n"
      "  { std::lock_guard<std::mutex> g(m); }\n"  // scope ends first
      "  ch.recv(0);\n"
      "}\n"
      "}\n";
  const source_tree t = make_tree({
      // Designated wait site: the fabric's own cv loops live here.
      {"src/runtime/world.cpp",
       "namespace sfp::runtime {\n"
       "void fence(std::mutex& m, cv_t& cv) {\n"
       "  std::unique_lock<std::mutex> lk(m);\n"
       "  cv.wait(lk);\n"
       "}\n"
       "}\n"},
      // Hold range closed before the blocking call: silent.
      {"src/runtime/tight.cpp", body},
  });
  const call_graph g = build_call_graph(t);
  const concurrency_model m = build_concurrency_model(t, g);
  EXPECT_TRUE(check_blocking_while_locked(t, g, m).empty());
}

// ---------------------------------------------------------------------------
// Pass: unchecked-status
// ---------------------------------------------------------------------------

TEST(UncheckedStatusPass, FlagsOnlyStatementPositionDrops) {
  const source_tree t = make_tree({
      {"src/runtime/drop.cpp",
       "void pump(transport& t) {\n"                        // 1
       "  t.try_recv_any(5);\n"                             // 2: dropped
       "  bool ok = t.try_recv_any(5);\n"                   // 3: captured
       "  if (t.try_recv_any(5)) { use(); }\n"              // 4: branched
       "  (void)t.try_recv_any(5);\n"                       // 5: explicit
       "  while (ch.try_recv(msg)) { use(); }\n"            // 6: branched
       "  ch.try_recv(msg);\n"                              // 7: dropped
       "}\n"},
      // Out-of-scope tree: statement drops in src/core are fine.
      {"src/core/elsewhere.cpp",
       "void f(transport& t) {\n"
       "  t.try_recv_any(5);\n"
       "}\n"},
  });
  // The pass scans per status-call name, so sort before asserting lines.
  std::vector<finding> findings = check_unchecked_status(t);
  std::sort(findings.begin(), findings.end());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "unchecked-status");
  EXPECT_EQ(findings[0].file, "src/runtime/drop.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 7);
  EXPECT_NE(findings[0].message.find("try_recv_any"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule registry: one catalogue, no drift
// ---------------------------------------------------------------------------

TEST(RuleRegistry, CatalogueHasUniqueSlugsAndKnownSuppressibility) {
  const auto& catalogue = rule_catalogue();
  std::vector<std::string> slugs;
  for (const rule_info& r : catalogue) {
    slugs.emplace_back(r.slug);
    EXPECT_NE(std::string(r.summary), "") << r.slug;
  }
  std::vector<std::string> sorted = slugs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate slug in the catalogue";
  ASSERT_NE(rule_by_slug("layering-cycle"), nullptr);
  EXPECT_FALSE(rule_by_slug("layering-cycle")->suppressible);
  EXPECT_FALSE(rule_by_slug("layering-unknown")->suppressible);
  ASSERT_NE(rule_by_slug("lock-order"), nullptr);
  EXPECT_TRUE(rule_by_slug("lock-order")->suppressible);
  EXPECT_EQ(rule_by_slug("no-such-rule"), nullptr);
  EXPECT_EQ(rule_by_slug(""), nullptr);
}

TEST(RuleRegistry, EveryRuleRunAllEmitsAppearsInTheCatalogueExactlyOnce) {
  // A mega-fixture that makes every pass fire at least once, then checks
  // the emitted slug set is exactly the catalogue — so neither side can
  // drift: a new pass without a catalogue entry fails here, and a
  // catalogue entry no pass can emit fails here too.
  const source_tree t = make_tree({
      // layering-unknown + layering + layering-cycle
      {"src/mystery/x.cpp", "#include \"util/u.hpp\"\n"},
      {"src/util/up.cpp", "#include \"graph/csr.hpp\"\n"},
      {"src/core/c.hpp", "#pragma once\n#include \"graph/g.hpp\"\n"},
      {"src/graph/g.hpp", "#pragma once\n#include \"core/c.hpp\"\n"},
      // determinism + contract-purity
      {"src/core/bad.cpp",
       "int f() { return std::rand(); }\n"
       "void g(int n) { SFP_REQUIRE(++n > 0, \"impure\"); }\n"},
      // runtime-throw
      {"src/runtime/thrower.cpp", "void f() {\n  throw 1;\n}\n"},
      // audit-header-loop
      {"src/core/hot.hpp",
       "#pragma once\n"
       "inline int sum(int n) {\n"
       "  int s = 0;\n"
       "  for (int i = 0; i < n; ++i) {\n"
       "    SFP_AUDIT(s >= 0, \"per-iteration\");\n"
       "    s += i;\n"
       "  }\n"
       "  return s;\n"
       "}\n"},
      // pragma-once
      {"src/core/nopragma.hpp", "int x;\n"},
      // blocking
      {"src/seam/foo.cpp", "void f(world& w) {\n  w.barrier();\n}\n"},
      // raw-assert
      {"src/util/a.cpp", "#include <cassert>\n"},
      // retry-backoff
      {"src/runtime/retry.cpp",
       "void f(channel& c) {\n"
       "  while (c.pending()) { c.retransmit_all(); }\n"
       "}\n"},
      // transport-discipline
      {"src/seam/fab.cpp", "void f(int n) {\n  runtime::world w(n);\n}\n"},
      // determinism-transitive (chain core -> io -> rand)
      {"src/io/ent.cpp",
       "namespace sfp::io {\nint entropy() { return rand(); }\n}\n"},
      {"src/core/seed.cpp",
       "namespace sfp::core {\nint seed_of() { return io::entropy(); }\n}\n"},
      // lock-order
      {"src/core/locks.cpp",
       "namespace sfp::core {\n"
       "void ab(pair_t& p) {\n"
       "  std::lock_guard<std::mutex> g1(p.a);\n"
       "  std::lock_guard<std::mutex> g2(p.b);\n"
       "}\n"
       "void ba(pair_t& p) {\n"
       "  std::lock_guard<std::mutex> g1(p.b);\n"
       "  std::lock_guard<std::mutex> g2(p.a);\n"
       "}\n"
       "}\n"},
      // blocking-while-locked
      {"src/seam/bw.cpp",
       "namespace sfp::seam {\n"
       "void pump(std::mutex& m, channel& ch) {\n"
       "  std::lock_guard<std::mutex> g(m);\n"
       "  ch.recv(0);\n"
       "}\n"
       "}\n"},
      // unchecked-status
      {"src/runtime/drop.cpp",
       "void pump(transport& t) {\n  t.try_recv_any(5);\n}\n"},
      // overflow-arith (v3 flow pass)
      {"src/core/ovf.cpp",
       "bool above(std::int64_t s, int nparts, std::int64_t total) {\n"
       "  return s * nparts >= total;\n"
       "}\n"},
      // resource-leak (v3 flow pass): early return skips the close
      {"src/runtime/leaky.cpp",
       "int dial() {\n"
       "  const int fd = socket(2, 1, 0);\n"
       "  if (handshake(fd) != 0) return -1;\n"
       "  return fd;\n"
       "}\n"},
      // use-after-move (v3 flow pass)
      {"src/core/uam.cpp",
       "void f(std::string name) {\n"
       "  sink(std::move(name));\n"
       "  log(name);\n"
       "}\n"},
      // suppression-format (v3): tag naming a rule that does not exist
      {"src/core/tagbad.cpp",
       "int y;  // lint: not-a-rule-ok — stale annotation\n"},
  });
  const analysis_result r = run_all(t, transport_manifest());
  std::vector<std::string> emitted;
  for (const auto& f : r.findings) emitted.push_back(f.rule);
  std::sort(emitted.begin(), emitted.end());
  emitted.erase(std::unique(emitted.begin(), emitted.end()), emitted.end());

  std::vector<std::string> catalogue;
  for (const rule_info& ri : rule_catalogue())
    catalogue.emplace_back(ri.slug);
  std::sort(catalogue.begin(), catalogue.end());
  EXPECT_EQ(emitted, catalogue);
}

// ---------------------------------------------------------------------------
// --rule filtering
// ---------------------------------------------------------------------------

TEST(FilterRules, KeepsOnlyTheNamedRules) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n"},
      {"src/core/bad.cpp", "int f() { return std::rand(); }\n"},
  });
  analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.findings.size(), 2u);
  filter_rules(r, {"determinism"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "determinism");
  filter_rules(r, {"pragma-once"});
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------------
// Baseline: --write-baseline round trip + suppressed-inline counting
// ---------------------------------------------------------------------------

TEST(Baseline, WriteBaselineRoundTripReportsEverythingAsBaselined) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n"},
      {"src/core/bad.cpp", "int f() { return std::rand(); }\n"},
  });
  analysis_result first = run_all(t, fixture_manifest());
  ASSERT_EQ(first.findings.size(), 2u);
  // What the CLI does for --write-baseline: serialize the findings, then
  // a fresh scan against the parsed-back baseline must come up clean
  // (exit code 0 path) with every finding accounted as baselined.
  const io::json_value doc = baseline_to_json(first.findings);
  const std::vector<baseline_entry> bl =
      baseline_from_json(io::parse_json(io::write_json(doc, 2)));
  ASSERT_EQ(bl.size(), 2u);
  analysis_result second = run_all(t, fixture_manifest());
  const std::vector<finding> baselined = apply_baseline(second, bl);
  EXPECT_TRUE(second.findings.empty());
  ASSERT_EQ(baselined.size(), 2u);
  const std::string text = render_text(second, baselined);
  EXPECT_NE(text.find("0 finding(s)"), std::string::npos);
  EXPECT_NE(text.find("2 baselined"), std::string::npos);
}

TEST(Baseline, SuppressedInlineCountingIsPerTaggedLine) {
  const source_tree t = make_tree({
      {"src/seam/noted.cpp",
       "void f(world& w) {\n"
       "  w.barrier();  // lint: blocking-ok — drain point\n"
       "  w.barrier();  // lint: blocking-ok — second drain\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed.size(), 2u);
  const std::string text = render_text(r, {});
  EXPECT_NE(text.find("2 suppressed inline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Report: callgraph / lockgraph sections
// ---------------------------------------------------------------------------

TEST(Report, JsonCarriesCallgraphAndLockgraphSections) {
  const source_tree t = lock_cycle_tree();
  const analysis_result r = run_all(t, fixture_manifest());
  const io::json_value back =
      io::parse_json(io::write_json(report_to_json(r, {}), 2));
  EXPECT_EQ(back.at("version").number, 3);
  const io::json_value& cg = back.at("callgraph");
  EXPECT_EQ(cg.at("functions").number, 2);  // ab and ba
  EXPECT_GE(cg.at("call_sites").number, 0);
  const io::json_value& lg = back.at("lockgraph");
  EXPECT_EQ(lg.at("mutexes").number, 2);
  EXPECT_EQ(lg.at("acquisitions").number, 4);
  ASSERT_EQ(lg.at("edges").array.size(), 2u);
  const io::json_value& e = lg.at("edges").array[0];
  EXPECT_FALSE(e.at("held").string.empty());
  EXPECT_FALSE(e.at("acquired").string.empty());
  EXPECT_EQ(e.at("file").string, "src/core/locks.cpp");
  ASSERT_GE(lg.at("cycle").array.size(), 3u);
  EXPECT_EQ(lg.at("cycle").array.front().string,
            lg.at("cycle").array.back().string);
  // v3 additions: CFG coverage summary and the per-rule stats block.
  const io::json_value& cfg = back.at("cfg");
  EXPECT_EQ(cfg.at("functions").number,
            static_cast<double>(r.cfgs.size()));
  EXPECT_GT(cfg.at("nodes").number, 0);
  EXPECT_GT(cfg.at("edges").number, 0);
  const io::json_value& stats = back.at("rule_stats");
  EXPECT_EQ(stats.object.size(), rule_catalogue().size());
  EXPECT_GE(stats.at("lock-order").at("findings").number, 1);
  EXPECT_EQ(stats.at("use-after-move").at("findings").number, 0);
}

TEST(Report, StatsTableListsEveryCatalogueRuleIncludingZeroRows) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const std::string table = render_stats(r, {});
  for (const rule_info& info : rule_catalogue())
    EXPECT_NE(table.find(info.slug), std::string::npos) << info.slug;
  // Header plus one row per rule.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'),
            static_cast<long>(rule_catalogue().size()) + 1);
}

// ---------------------------------------------------------------------------
// Statement CFG construction
// ---------------------------------------------------------------------------

namespace {

/// The CFG run_all built for the function with this name, or nullptr.
const function_cfg* cfg_named(const analysis_result& r,
                              const std::string& name) {
  for (const function_cfg& c : r.cfgs)
    if (r.calls.functions[static_cast<std::size_t>(c.function)].name ==
        name)
      return &c;
  return nullptr;
}

}  // namespace

TEST(Cfg, StraightLineBodyIsAChainFromEntryToExit) {
  const source_tree t = make_tree({
      {"src/core/straight.cpp",
       "int f(int a) {\n"
       "  int b = a + 1;\n"
       "  int c = b + 2;\n"
       "  return c;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const function_cfg* c = cfg_named(r, "f");
  ASSERT_NE(c, nullptr);
  // entry, exit, two stmts, one return.
  ASSERT_EQ(c->nodes.size(), 5u);
  EXPECT_EQ(c->nodes[0].k, cfg_node::kind::entry);
  EXPECT_EQ(c->nodes[1].k, cfg_node::kind::exit);
  EXPECT_EQ(c->num_edges(), 4u);
  // The return node is the only predecessor of exit.
  ASSERT_EQ(c->nodes[1].pred.size(), 1u);
  const cfg_node& ret =
      c->nodes[static_cast<std::size_t>(c->nodes[1].pred[0])];
  EXPECT_EQ(ret.k, cfg_node::kind::ret);
  EXPECT_EQ(ret.line, 4);
}

TEST(Cfg, IfElseMakesADiamondWithThenSuccessorMarked) {
  const source_tree t = make_tree({
      {"src/core/diamond.cpp",
       "int g(int a) {\n"
       "  if (a > 0) {\n"
       "    a = 1;\n"
       "  } else {\n"
       "    a = 2;\n"
       "  }\n"
       "  return a;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const function_cfg* c = cfg_named(r, "g");
  ASSERT_NE(c, nullptr);
  const cfg_node* branch = nullptr;
  for (const cfg_node& n : c->nodes)
    if (n.k == cfg_node::kind::branch) branch = &n;
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->line, 2);
  ASSERT_EQ(branch->succ.size(), 2u);
  ASSERT_GE(branch->then_succ, 0);
  const cfg_node& then_node =
      c->nodes[static_cast<std::size_t>(branch->then_succ)];
  EXPECT_EQ(then_node.line, 3);
  // Both arms rejoin at the return.
  const cfg_node& other = c->nodes[static_cast<std::size_t>(
      branch->succ[0] == branch->then_succ ? branch->succ[1]
                                           : branch->succ[0])];
  EXPECT_EQ(other.line, 5);
  ASSERT_EQ(then_node.succ.size(), 1u);
  ASSERT_EQ(other.succ.size(), 1u);
  EXPECT_EQ(then_node.succ[0], other.succ[0]);
}

TEST(Cfg, WhileLoopHasABackEdgeAndAFallthroughExit) {
  const source_tree t = make_tree({
      {"src/core/loopy.cpp",
       "int h(int n) {\n"
       "  int s = 0;\n"
       "  while (s < n) {\n"
       "    s += 1;\n"
       "  }\n"
       "  return s;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const function_cfg* c = cfg_named(r, "h");
  ASSERT_NE(c, nullptr);
  int head = -1;
  for (std::size_t n = 0; n < c->nodes.size(); ++n)
    if (c->nodes[n].k == cfg_node::kind::loop) head = static_cast<int>(n);
  ASSERT_GE(head, 0);
  const cfg_node& loop = c->nodes[static_cast<std::size_t>(head)];
  ASSERT_GE(loop.then_succ, 0);
  const cfg_node& body =
      c->nodes[static_cast<std::size_t>(loop.then_succ)];
  EXPECT_EQ(body.line, 4);
  // Back edge: the body flows into the loop head again.
  EXPECT_NE(std::find(body.succ.begin(), body.succ.end(), head),
            body.succ.end());
  // Fallthrough: the head also reaches the return.
  bool reaches_ret = false;
  for (const int s : loop.succ)
    if (c->nodes[static_cast<std::size_t>(s)].k == cfg_node::kind::ret)
      reaches_ret = true;
  EXPECT_TRUE(reaches_ret);
}

TEST(Cfg, CollectLocalsSeesParametersDeclarationsAndBindings) {
  const source_tree t = make_tree({
      {"src/core/locals.cpp",
       "void f(std::int64_t total, int& out) {\n"
       "  int small = 0;\n"
       "  for (auto& [key, val] : table) {\n"
       "    small += val;\n"
       "  }\n"
       "  out = small;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.calls.functions.size(), 1u);
  const function_def& fn = r.calls.functions[0];
  const source_file& f = t.files[0];
  const std::string blanked = blank_preprocessor(f.stripped);
  const std::vector<local_decl> locals = collect_locals(f, blanked, fn);
  const auto named = [&locals](const std::string& n) -> const local_decl* {
    for (const local_decl& d : locals)
      if (d.name == n) return &d;
    return nullptr;
  };
  ASSERT_NE(named("total"), nullptr);
  EXPECT_TRUE(named("total")->parameter);
  EXPECT_EQ(named("total")->type, "std::int64_t");
  ASSERT_NE(named("out"), nullptr);
  EXPECT_TRUE(named("out")->reference);
  ASSERT_NE(named("small"), nullptr);
  EXPECT_EQ(named("small")->type, "int");
  // Structured binding names are locals too (reference semantics).
  ASSERT_NE(named("key"), nullptr);
  ASSERT_NE(named("val"), nullptr);
  EXPECT_TRUE(named("val")->reference);
}

// ---------------------------------------------------------------------------
// Dataflow solver
// ---------------------------------------------------------------------------

namespace {

/// entry(0) -> branch(2) -> {then(3), else(4)} -> join(5) -> exit(1).
function_cfg diamond_cfg() {
  function_cfg c;
  c.nodes.resize(6);
  c.nodes[0].k = cfg_node::kind::entry;
  c.nodes[1].k = cfg_node::kind::exit;
  c.nodes[2].k = cfg_node::kind::branch;
  const auto link = [&c](int a, int b) {
    c.nodes[static_cast<std::size_t>(a)].succ.push_back(b);
    c.nodes[static_cast<std::size_t>(b)].pred.push_back(a);
  };
  link(0, 2);
  link(2, 3);
  link(2, 4);
  link(3, 5);
  link(4, 5);
  link(5, 1);
  c.nodes[2].then_succ = 3;
  return c;
}

}  // namespace

TEST(Dataflow, ForwardMayUnionsOverPaths) {
  const function_cfg c = diamond_cfg();
  dataflow_problem p;
  p.num_facts = 1;
  p.forward = true;
  p.may = true;
  p.gen = make_fact_sets(c, 1);
  p.kill = make_fact_sets(c, 1);
  p.gen[3][0] = 1;  // fact born on the then-arm only
  const dataflow_result s = solve_dataflow(c, p);
  EXPECT_EQ(s.in[4][0], 0);  // never reaches the else-arm
  EXPECT_EQ(s.in[5][0], 1);  // may-join: one path suffices
  EXPECT_EQ(s.in[1][0], 1);
}

TEST(Dataflow, ForwardMustIntersectsOverPaths) {
  const function_cfg c = diamond_cfg();
  dataflow_problem p;
  p.num_facts = 2;
  p.forward = true;
  p.may = false;
  p.gen = make_fact_sets(c, 2);
  p.kill = make_fact_sets(c, 2);
  p.boundary.assign(2, 0);
  p.gen[3][0] = 1;  // fact 0 on the then-arm only
  p.gen[3][1] = 1;  // fact 1 on both arms
  p.gen[4][1] = 1;
  const dataflow_result s = solve_dataflow(c, p);
  EXPECT_EQ(s.in[5][0], 0);  // must-join: one arm missing kills it
  EXPECT_EQ(s.in[5][1], 1);
}

TEST(Dataflow, EdgeKillDropsAFactOnOneBranchOnly) {
  const function_cfg c = diamond_cfg();
  dataflow_problem p;
  p.num_facts = 1;
  p.forward = true;
  p.may = true;
  p.gen = make_fact_sets(c, 1);
  p.kill = make_fact_sets(c, 1);
  p.boundary.assign(1, 1);  // fact holds at entry
  p.edge_kill[{2, 3}] = {1};  // the branch condition refutes it then-wards
  const dataflow_result s = solve_dataflow(c, p);
  EXPECT_EQ(s.in[3][0], 0);
  EXPECT_EQ(s.in[4][0], 1);
  EXPECT_EQ(s.in[5][0], 1);  // may-join keeps the surviving path
}

TEST(Dataflow, BackwardMustRequiresTheFactOnEveryPath) {
  const function_cfg c = diamond_cfg();
  dataflow_problem p;
  p.num_facts = 2;
  p.forward = false;
  p.may = false;
  p.gen = make_fact_sets(c, 2);
  p.kill = make_fact_sets(c, 2);
  p.boundary.assign(2, 0);
  p.gen[3][0] = 1;  // read on the then-arm only
  p.gen[3][1] = 1;  // read on both arms
  p.gen[4][1] = 1;
  const dataflow_result s = solve_dataflow(c, p);
  EXPECT_EQ(s.out[2][0], 0);  // some successor path never reads it
  EXPECT_EQ(s.out[2][1], 1);  // every successor path reads it
}

// ---------------------------------------------------------------------------
// overflow-arith pass
// ---------------------------------------------------------------------------

TEST(OverflowArithPass, FlagsProductsOfScaledOperandsAndTaintedChains) {
  const source_tree t = make_tree({
      {"src/core/ovf.cpp",
       "bool above(std::int64_t s, int nparts, std::int64_t total) {\n"
       "  return s * nparts >= total;\n"                            // 2
       "}\n"
       "std::int64_t chain(std::int64_t k, std::int64_t w) {\n"
       "  auto half = k / 2;\n"                                     // 5
       "  return half * w;\n"                                       // 6
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "overflow-arith");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/core/ovf.cpp");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("s * nparts"), std::string::npos);
  EXPECT_EQ(findings[1].line, 6);  // taint flowed through `half`
}

TEST(OverflowArithPass, FlagsUncastNarrowingFromScaledValues) {
  const source_tree t = make_tree({
      {"src/sfc/nar.cpp",
       "int shrink(std::int64_t total) {\n"
       "  int t = total / 3;\n"                                     // 2
       "  return t;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "overflow-arith");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("'t'"), std::string::npos);
}

TEST(OverflowArithPass, SilentOnCheckedCastSubscriptAndComparisonUses) {
  const source_tree t = make_tree({
      {"src/core/clean.cpp",
       // checked_mul is the sanctioned spelling.
       "bool above(std::int64_t s, int nparts, std::int64_t total) {\n"
       "  return checked_mul(s, nparts) >= total;\n"
       "}\n"
       // static_cast at a proven-small boundary is deliberate.
       "int shrink(std::int64_t total) {\n"
       "  const int t = static_cast<int>(total / 3);\n"
       "  return t;\n"
       "}\n"
       // A subscript *index* does not scale the element it selects,
       // and a comparison operand produces a bool, not a product.
       "int pick(const std::vector<int>& a, std::size_t i) {\n"
       "  const int left = i > 0 ? a[i - 1] : -1;\n"
       "  return left;\n"
       "}\n"
       // Float arithmetic cannot wrap int64.
       "double dist(double x, std::size_t i) {\n"
       "  const double dx = x - 1.0;\n"
       "  return dx * dx;\n"
       "}\n"},
      // Out-of-scope module: the pass only covers core + sfc.
      {"src/runtime/other.cpp",
       "bool above(std::int64_t s, int nparts, std::int64_t total) {\n"
       "  return s * nparts >= total;\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "overflow-arith").empty());
}

TEST(OverflowArithPass, SuppressibleInline) {
  const source_tree t = make_tree({
      {"src/core/ovf.cpp",
       "bool above(std::int64_t s, int nparts) {\n"
       "  return s * nparts > 0;  // lint: overflow-arith-ok — bounded\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "overflow-arith").empty());
  EXPECT_EQ(with_rule(r.suppressed, "overflow-arith").size(), 1u);
}

// ---------------------------------------------------------------------------
// resource-leak pass
// ---------------------------------------------------------------------------

TEST(ResourceLeakPass, FlagsDescriptorsLostOnEarlyReturnPaths) {
  const source_tree t = make_tree({
      {"src/runtime/leaky.cpp",
       "int dial() {\n"
       "  const int fd = socket(2, 1, 0);\n"                        // 2
       "  if (handshake(fd) != 0) return -1;\n"  // leaks fd
       "  return fd;\n"                          // ownership transfer
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "resource-leak");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/runtime/leaky.cpp");
  EXPECT_EQ(findings[0].line, 2);  // anchored at the acquire
  EXPECT_NE(findings[0].message.find("'fd'"), std::string::npos);
}

TEST(ResourceLeakPass, SilentWhenEveryPathClosesStoresOrChecksFirst) {
  const source_tree t = make_tree({
      {"src/runtime/tidy.cpp",
       // The error-branch refinement: fd < 0 means nothing to close.
       "int dial() {\n"
       "  const int fd = socket(2, 1, 0);\n"
       "  if (fd < 0) return -1;\n"
       "  if (handshake(fd) != 0) {\n"
       "    close_fd(fd);\n"
       "    return -1;\n"
       "  }\n"
       "  return fd;\n"
       "}\n"
       // Storing the descriptor hands ownership to someone else.
       "void adopt(conn& c) {\n"
       "  const int fd = accept(c.lfd, nullptr, nullptr);\n"
       "  c.fd = fd;\n"
       "}\n"},
      // RAII wrappers never bind a raw int: out of scope by construction.
      {"src/runtime/raii.cpp",
       "void wrapped() {\n"
       "  unique_fd fd(socket(2, 1, 0));\n"
       "  use(fd);\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "resource-leak").empty())
      << render_text(r, {});
}

TEST(ResourceLeakPass, SuppressibleInline) {
  const source_tree t = make_tree({
      {"src/runtime/handoff.cpp",
       "void serve() {\n"
       "  const int fd = accept(3, nullptr, nullptr);  "
       "// lint: resource-leak-ok — reader thread owns it\n"
       "  spawn_reader(fd);\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "resource-leak").empty());
  EXPECT_EQ(with_rule(r.suppressed, "resource-leak").size(), 1u);
}

// ---------------------------------------------------------------------------
// use-after-move pass
// ---------------------------------------------------------------------------

TEST(UseAfterMovePass, FlagsReadsReachableFromAMove) {
  const source_tree t = make_tree({
      {"src/core/uam.cpp",
       "void f(std::string name) {\n"
       "  sink(std::move(name));\n"                                 // 2
       "  log(name);\n"                                             // 3
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "use-after-move");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("'name'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("line 2"), std::string::npos);
}

TEST(UseAfterMovePass, ConditionalMoveStillFlagsTheJoinRead) {
  const source_tree t = make_tree({
      {"src/core/branchy.cpp",
       "void f(std::string name, bool fast) {\n"
       "  if (fast) {\n"
       "    sink(std::move(name));\n"
       "  }\n"
       "  log(name);\n"                                             // 5
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "use-after-move");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);  // may-analysis: one bad path suffices
}

TEST(UseAfterMovePass, SilentOnReassignSelfMoveAndSiblingScopes) {
  const source_tree t = make_tree({
      {"src/core/fine.cpp",
       // Reassignment rebinds before the read.
       "void f(std::string name) {\n"
       "  sink(std::move(name));\n"
       "  name = fresh();\n"
       "  log(name);\n"
       "}\n"
       // Self-reassignment through a transform never leaves a hole.
       "void g(std::vector<int> tails) {\n"
       "  tails = transform(std::move(tails));\n"
       "  use(tails);\n"
       "}\n"
       // Same-named locals in loop iterations rebind at the declaration.
       "void h(const std::vector<int>& xs) {\n"
       "  for (const int x : xs) {\n"
       "    item v;\n"
       "    v.payload = x;\n"
       "    push(std::move(v));\n"
       "  }\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "use-after-move").empty())
      << render_text(r, {});
}

TEST(UseAfterMovePass, SuppressibleInline) {
  const source_tree t = make_tree({
      {"src/core/meant.cpp",
       "void f(std::string name) {\n"
       "  sink(std::move(name));\n"
       "  log(name);  // lint: use-after-move-ok — logs the husk on purpose\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "use-after-move").empty());
  EXPECT_EQ(with_rule(r.suppressed, "use-after-move").size(), 1u);
}

// ---------------------------------------------------------------------------
// unchecked-status: the path-sensitive upgrade
// ---------------------------------------------------------------------------

TEST(StatusPathsPass, FlagsAStatusReadOnOnlySomePaths) {
  const source_tree t = make_tree({
      {"src/runtime/somepaths.cpp",
       "void pump(transport& t, bool verbose) {\n"
       "  bool ok = t.try_recv(5);\n"                               // 2
       "  if (verbose) {\n"
       "    log(ok);\n"
       "  }\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "unchecked-status");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("every path"), std::string::npos);
}

TEST(StatusPathsPass, SilentWhenEveryPathReadsTheStatus) {
  const source_tree t = make_tree({
      {"src/runtime/allpaths.cpp",
       "void pump(transport& t) {\n"
       "  bool ok = t.try_recv(5);\n"
       "  if (!ok) {\n"
       "    return;\n"
       "  }\n"
       "  deliver();\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "unchecked-status").empty())
      << render_text(r, {});
}

// ---------------------------------------------------------------------------
// suppression-format pass
// ---------------------------------------------------------------------------

TEST(SuppressionFormatPass, ClassifiesEveryDeviationFromTheCanonicalForm) {
  const source_tree t = make_tree({
      {"src/core/tags.cpp",
       "int a;  // lint: blocking\n"                     // 1 malformed
       "int b;  // lint: not-a-rule-ok — x\n"            // 2 unknown rule
       "int c;  // lint: blocking-ok\n"                  // 3 no reason
       "int d;  // lint: blocking-ok - drain point\n"    // 4 bad separator
       "int e;  // lint: blocking-ok — drain point\n"},  // 5 canonical
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const auto findings = with_rule(r.findings, "suppression-format");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_NE(findings[1].message.find("unknown rule"), std::string::npos);
  EXPECT_EQ(findings[2].line, 3);
  EXPECT_NE(findings[2].message.find("no reason"), std::string::npos);
  EXPECT_EQ(findings[3].line, 4);
  EXPECT_NE(findings[3].message.find("separator"), std::string::npos);
}

TEST(SuppressionFormatPass, IgnoresProseMentionsOfTheTagGrammar) {
  const source_tree t = make_tree({
      {"src/core/prose.cpp",
       "// Suppress with `lint: <slug>-ok — <reason>` like sfplint: docs\n"
       "int x;\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  EXPECT_TRUE(with_rule(r.findings, "suppression-format").empty())
      << render_text(r, {});
}

// ---------------------------------------------------------------------------
// Baseline covers the v3 rules too
// ---------------------------------------------------------------------------

TEST(Baseline, FlowRuleFindingsAreBaselineable) {
  const source_tree t = make_tree({
      {"src/core/uam.cpp",
       "void f(std::string name) {\n"
       "  sink(std::move(name));\n"
       "  log(name);\n"
       "}\n"},
      {"src/runtime/leaky.cpp",
       "int dial() {\n"
       "  const int fd = socket(2, 1, 0);\n"
       "  if (handshake(fd) != 0) return -1;\n"
       "  return fd;\n"
       "}\n"},
  });
  analysis_result first = run_all(t, fixture_manifest());
  ASSERT_EQ(first.findings.size(), 2u);
  const std::vector<baseline_entry> bl = baseline_from_json(io::parse_json(
      io::write_json(baseline_to_json(first.findings), 2)));
  analysis_result second = run_all(t, fixture_manifest());
  const std::vector<finding> baselined = apply_baseline(second, bl);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(baselined.size(), 2u);
}

// ---------------------------------------------------------------------------
// Autofix planning and application
// ---------------------------------------------------------------------------

TEST(Fix, RepairsPragmaOnceAndSeparatorsIdempotently) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "sfplint_fix_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  {
    std::ofstream h(root / "src" / "core" / "bare.hpp", std::ios::binary);
    h << "int x;\n";
    std::ofstream c(root / "src" / "core" / "tagged.cpp", std::ios::binary);
    c << "int y;  // lint: blocking-ok -- drain point\n";
  }
  const source_tree tree = load_tree(root.string());
  const analysis_result r = run_all(tree, fixture_manifest());
  const fix_plan plan = plan_fixes(tree, r.findings);
  ASSERT_EQ(plan.edits.size(), 2u);
  EXPECT_TRUE(plan.skipped.empty());
  apply_fixes(root.string(), plan);

  const source_tree repaired = load_tree(root.string());
  const analysis_result r2 = run_all(repaired, fixture_manifest());
  EXPECT_TRUE(with_rule(r2.findings, "pragma-once").empty());
  EXPECT_TRUE(with_rule(r2.findings, "suppression-format").empty());
  // Idempotence: a second plan over the repaired tree is empty.
  EXPECT_TRUE(plan_fixes(repaired, r2.findings).edits.empty());

  std::ifstream fixed(root / "src" / "core" / "tagged.cpp",
                      std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(fixed)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("// lint: blocking-ok \xE2\x80\x94 drain point"),
            std::string::npos)
      << text;
  fs::remove_all(root);
}

TEST(Fix, SkipsWhatItCannotRepairMechanically) {
  const source_tree t = make_tree({
      {"src/core/stuck.cpp",
       "int a;  // lint: blocking-ok\n"           // no reason to keep
       "int b;  // lint: not-a-rule-ok - x\n"},   // unknown rule
  });
  const analysis_result r = run_all(t, fixture_manifest());
  const fix_plan plan = plan_fixes(t, r.findings);
  EXPECT_TRUE(plan.edits.empty());
  ASSERT_EQ(plan.skipped.size(), 2u);
  const std::string rendered = render_fix_plan(plan);
  EXPECT_NE(rendered.find("no reason"), std::string::npos);
  EXPECT_NE(rendered.find("not autofixable"), std::string::npos);
  EXPECT_NE(rendered.find("0 edit(s), 2 skipped"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SARIF export
// ---------------------------------------------------------------------------

TEST(Sarif, DocumentCarriesSchemaDriverRulesAndSuppressions) {
  const source_tree t = make_tree({
      {"src/core/nopragma.hpp", "int x;\n"},
      {"src/seam/noted.cpp",
       "void f(world& w) {\n"
       "  w.barrier();  // lint: blocking-ok — drain point\n"
       "}\n"},
  });
  const analysis_result r = run_all(t, fixture_manifest());
  ASSERT_EQ(r.findings.size(), 1u);
  ASSERT_EQ(r.suppressed.size(), 1u);
  finding fake = r.findings[0];
  const io::json_value doc = io::parse_json(
      io::write_json(sarif_document(r, {fake}), 2));
  EXPECT_EQ(doc.at("$schema").string,
            "https://json.schemastore.org/sarif-2.1.0.json");
  EXPECT_EQ(doc.at("version").string, "2.1.0");
  ASSERT_EQ(doc.at("runs").array.size(), 1u);
  const io::json_value& run = doc.at("runs").array[0];
  const io::json_value& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").string, "sfplint");
  EXPECT_EQ(driver.at("rules").array.size(), rule_catalogue().size());
  // findings + suppressed + baselined all surface as results.
  ASSERT_EQ(run.at("results").array.size(), 3u);
  const io::json_value& res = run.at("results").array[0];
  EXPECT_EQ(res.at("ruleId").string, "pragma-once");
  EXPECT_EQ(res.at("level").string, "error");
  const io::json_value& loc =
      res.at("locations").array[0].at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").string,
            "src/core/nopragma.hpp");
  EXPECT_EQ(loc.at("region").at("startLine").number, 1);
  // ruleIndex agrees with the catalogue position of the ruleId.
  const std::size_t idx =
      static_cast<std::size_t>(res.at("ruleIndex").number);
  EXPECT_EQ(rule_catalogue()[idx].slug, res.at("ruleId").string);
  const io::json_value& sup = run.at("results").array[1];
  EXPECT_EQ(sup.at("suppressions").array[0].at("kind").string, "inSource");
  const io::json_value& ext = run.at("results").array[2];
  EXPECT_EQ(ext.at("suppressions").array[0].at("kind").string, "external");
}

// ---------------------------------------------------------------------------
// Differential mode: changed-line filtering
// ---------------------------------------------------------------------------

TEST(ChangedLines, ParsesUnifiedDiffHunksIncludingDeletions) {
  const std::string diff =
      "diff --git a/src/core/a.cpp b/src/core/a.cpp\n"
      "--- a/src/core/a.cpp\n"
      "+++ b/src/core/a.cpp\n"
      "@@ -10,2 +12,3 @@ void f() {\n"
      "+x\n+y\n+z\n"
      "@@ -40 +44 @@ void g() {\n"
      "+w\n"
      "diff --git a/src/core/gone.cpp b/src/core/gone.cpp\n"
      "--- a/src/core/gone.cpp\n"
      "+++ /dev/null\n"
      "@@ -1,5 +0,0 @@\n"
      "diff --git a/src/core/del.cpp b/src/core/del.cpp\n"
      "--- a/src/core/del.cpp\n"
      "+++ b/src/core/del.cpp\n"
      "@@ -7,2 +7,0 @@ void h() {\n";
  const changed_lines c = parse_unified_diff(diff);
  EXPECT_TRUE(c.contains("src/core/a.cpp", 12));
  EXPECT_TRUE(c.contains("src/core/a.cpp", 14));
  EXPECT_FALSE(c.contains("src/core/a.cpp", 15));
  EXPECT_TRUE(c.contains("src/core/a.cpp", 44));
  EXPECT_FALSE(c.contains("src/core/a.cpp", 45));
  EXPECT_FALSE(c.contains("src/core/gone.cpp", 1));  // deleted file
  EXPECT_FALSE(c.contains("src/core/del.cpp", 7));   // deletion-only hunk
  EXPECT_FALSE(c.contains("src/core/other.cpp", 12));
}

TEST(ChangedLines, CollectsFromARealGitRevision) {
  namespace fs = std::filesystem;
  const fs::path root = fs::temp_directory_path() / "sfplint_diff_test";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  const auto sh = [&root](const std::string& cmd) {
    const std::string full = "cd '" + root.string() + "' && " + cmd +
                             " >/dev/null 2>&1";
    ASSERT_EQ(std::system(full.c_str()), 0) << cmd;
  };
  {
    std::ofstream f(root / "src" / "core" / "a.cpp", std::ios::binary);
    f << "int a;\nint b;\nint c;\n";
  }
  sh("git init -q && git add -A");
  sh("git -c user.email=t@t -c user.name=t commit -qm seed");
  {
    std::ofstream f(root / "src" / "core" / "a.cpp", std::ios::binary);
    f << "int a;\nint bb;\nint c;\nint d;\n";
  }
  std::string err;
  const changed_lines c =
      collect_git_changed_lines(root.string(), "HEAD", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_TRUE(c.contains("src/core/a.cpp", 2));
  EXPECT_TRUE(c.contains("src/core/a.cpp", 4));
  EXPECT_FALSE(c.contains("src/core/a.cpp", 1));
  EXPECT_FALSE(c.contains("src/core/a.cpp", 3));

  // Bad revision: a clear error, no findings filter.
  const changed_lines bad =
      collect_git_changed_lines(root.string(), "no-such-rev", &err);
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(bad.empty());

  // Shell metacharacters in the revision are rejected outright.
  const changed_lines evil =
      collect_git_changed_lines(root.string(), "HEAD'; rm -rf /", &err);
  EXPECT_EQ(err, "invalid characters in revision");
  EXPECT_TRUE(evil.empty());
  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// Whole-repo smoke test: the committed tree must be clean.
// ---------------------------------------------------------------------------

#ifdef SFCPART_SOURCE_DIR
TEST(RepoSmoke, CommittedTreeIsCleanModuloBaseline) {
  const std::string root = SFCPART_SOURCE_DIR;
  const source_tree tree = load_tree(root);
  ASSERT_GT(tree.files.size(), 100u) << "repo scan looks truncated";
  const layering_manifest manifest =
      load_manifest(root + "/tools/layering.json");
  analysis_result r = run_all(tree, manifest);
  const std::vector<baseline_entry> bl =
      load_baseline(root + "/tools/sfplint_baseline.json");
  const std::vector<finding> baselined = apply_baseline(r, bl);
  EXPECT_TRUE(r.findings.empty()) << render_text(r, baselined);
  // The dogfooded module graph is one connected component.
  EXPECT_TRUE(graph::is_connected(r.graph.undirected));
  // Every justified exception carries its rule tag inline.
  for (const auto& s : r.suppressed) EXPECT_FALSE(s.rule.empty());
  // The cross-TU semantic model covers the repo: hundreds of extracted
  // definitions, a usable resolution rate, a populated lock model, and an
  // acyclic whole-repo lock order. (The function-level graph is NOT one
  // component — isolated leaf helpers are normal — so no connectivity
  // assertion here, unlike the module graph.)
  EXPECT_GT(r.calls.functions.size(), 300u);
  EXPECT_GT(r.calls.resolved_calls, 1000u);
  EXPECT_GT(r.concurrency.acquisitions.size(), 10u);
  EXPECT_GE(r.lock_order.edges.size(), 1u);
  EXPECT_TRUE(r.lock_order.cycle.empty());
}
#endif
