// Tests for the equiangular projection option, mesh quality diagnostics,
// and the VTK exporter.

#include <gtest/gtest.h>

#include <numbers>
#include <sstream>

#include "core/sfc_partition.hpp"
#include "io/vtk.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mesh/quality.hpp"
#include "seam/shallow_water.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::mesh;

TEST(Projection, TopologyIdenticalAcrossProjections) {
  const cubed_sphere eq(4, projection::equidistant);
  const cubed_sphere ea(4, projection::equiangular);
  for (int id = 0; id < eq.num_elements(); ++id) {
    for (int e = 0; e < 4; ++e)
      EXPECT_EQ(eq.edge_neighbor(id, e), ea.edge_neighbor(id, e));
    EXPECT_EQ(eq.corner_neighbors(id), ea.corner_neighbors(id));
  }
}

TEST(Projection, MappingBasics) {
  const cubed_sphere eq(2, projection::equidistant);
  const cubed_sphere ea(2, projection::equiangular);
  EXPECT_DOUBLE_EQ(eq.map_face_coord(0.5), 0.5);
  EXPECT_DOUBLE_EQ(eq.map_face_coord_deriv(0.3), 1.0);
  // Equiangular: tan maps ±1 to ±1, 0 to 0, and stretches toward the edges.
  EXPECT_NEAR(ea.map_face_coord(1.0), 1.0, 1e-12);
  EXPECT_NEAR(ea.map_face_coord(-1.0), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ea.map_face_coord(0.0), 0.0);
  EXPECT_LT(ea.map_face_coord(0.5), 0.5);  // tan(pi/8) ~ 0.414
  EXPECT_GT(ea.map_face_coord_deriv(1.0), ea.map_face_coord_deriv(0.0));
}

TEST(Projection, AreasStillSumToSphere) {
  for (const auto proj : {projection::equidistant, projection::equiangular}) {
    const cubed_sphere m(6, proj);
    double total = 0;
    for (int e = 0; e < m.num_elements(); ++e)
      total += m.element_area_sphere(e);
    EXPECT_NEAR(total, 4.0 * std::numbers::pi, 1e-9);
  }
}

TEST(Projection, EquiangularIsFarMoreUniform) {
  // The classic result: equidistant area ratio grows toward ~5.2, while
  // equiangular stays below ~1.45 at climate resolutions.
  const auto q_eq = analyze_quality(cubed_sphere(16, projection::equidistant));
  const auto q_ea = analyze_quality(cubed_sphere(16, projection::equiangular));
  EXPECT_GT(q_eq.area_ratio, 3.0);
  EXPECT_LT(q_ea.area_ratio, 1.6);
  EXPECT_LT(q_ea.area_ratio, 0.5 * q_eq.area_ratio);
  // Aspect ratios are essentially identical between mappings (the win is in
  // areas, not shapes): within 2% of each other.
  EXPECT_NEAR(q_ea.max_aspect, q_eq.max_aspect, 0.02 * q_eq.max_aspect);
}

TEST(Projection, Williamson2SteadyOnEquiangularMesh) {
  // The SEAM models consume the mesh's projection through map_face_coord;
  // the steady geostrophic state must hold on the equiangular mesh too.
  const cubed_sphere m(3, projection::equiangular);
  seam::shallow_water_model model(m, 6);
  const double u0 = 0.1, h0 = 10.0;
  model.set_williamson2(u0, h0);
  const auto reference = [&](vec3 p) {
    return h0 - (model.params().rotation * u0 + 0.5 * u0 * u0) * p.z * p.z /
                    model.params().gravity;
  };
  const double dt = model.cfl_dt(0.25);
  for (int s = 0; s < 40; ++s) model.step(dt);
  EXPECT_LE(model.depth_error(reference), 5e-4);
}

TEST(Quality, ReportShape) {
  const auto q = analyze_quality(cubed_sphere(4));
  EXPECT_GT(q.min_area, 0);
  EXPECT_GE(q.max_area, q.min_area);
  EXPECT_GE(q.area_ratio, 1.0);
  EXPECT_NEAR(q.total_area, 4.0 * std::numbers::pi, 1e-9);
  EXPECT_GE(q.max_aspect, 1.0);
  EXPECT_GE(q.max_aspect, q.mean_aspect);
}

TEST(Quality, EdgeLengthsReasonable) {
  const cubed_sphere m(4);
  for (int e = 0; e < m.num_elements(); ++e) {
    for (int edge = 0; edge < 4; ++edge) {
      const double len = element_edge_length(m, e, edge);
      EXPECT_GT(len, 0.05);
      EXPECT_LT(len, 1.0);  // well under a quadrant
    }
  }
  EXPECT_THROW(element_edge_length(m, 0, 4), contract_error);
}

// ---- vtk ----------------------------------------------------------------------

TEST(Vtk, WritesWellFormedFile) {
  const cubed_sphere m(2);
  const auto part = core::sfc_partition(m, 6);
  io::vtk_cell_field owner{"owner", {}};
  owner.values.assign(part.part_of.begin(), part.part_of.end());
  std::ostringstream os;
  io::write_vtk(os, m, {owner});
  const std::string s = os.str();
  EXPECT_NE(s.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(s.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  // Shared corner points are deduplicated: a closed quad surface with
  // F = 24 faces has F + 2 = 26 vertices.
  EXPECT_NE(s.find("POINTS 26 double"), std::string::npos);
  EXPECT_NE(s.find("CELLS 24 120"), std::string::npos);
  EXPECT_NE(s.find("SCALARS owner double 1"), std::string::npos);
}

TEST(Vtk, RejectsBadFields) {
  const cubed_sphere m(2);
  std::ostringstream os;
  EXPECT_THROW(io::write_vtk(os, m, {{"short", {1.0, 2.0}}}), contract_error);
  std::vector<double> ok(static_cast<std::size_t>(m.num_elements()), 0.0);
  EXPECT_THROW(io::write_vtk(os, m, {{"bad name", ok}}), contract_error);
}

}  // namespace
