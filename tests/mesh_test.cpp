// Tests for the cubed-sphere mesh: id mapping, cross-face topology derived
// from the integer lattice, geometry of the gnomonic projection, and the
// dual (communication) graph.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "graph/ops.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mesh/layout.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::mesh;

TEST(Mesh, ElementCountMatchesPaperResolutions) {
  // Paper Table 1: K = 6 Ne².
  EXPECT_EQ(cubed_sphere(8).num_elements(), 384);
  EXPECT_EQ(cubed_sphere(9).num_elements(), 486);
  EXPECT_EQ(cubed_sphere(16).num_elements(), 1536);
  EXPECT_EQ(cubed_sphere(18).num_elements(), 1944);
}

TEST(Mesh, IdMappingRoundTrips) {
  const cubed_sphere m(5);
  for (int id = 0; id < m.num_elements(); ++id) {
    const element_ref r = m.element_of(id);
    EXPECT_EQ(m.element_id(r), id);
    EXPECT_GE(r.face, 0);
    EXPECT_LT(r.face, 6);
    EXPECT_GE(r.i, 0);
    EXPECT_LT(r.i, 5);
  }
  EXPECT_THROW(m.element_of(-1), contract_error);
  EXPECT_THROW(m.element_of(m.num_elements()), contract_error);
  EXPECT_THROW(m.element_id(6, 0, 0), contract_error);
  EXPECT_THROW(m.element_id(0, 5, 0), contract_error);
}

class MeshTopology : public ::testing::TestWithParam<int> {};

TEST_P(MeshTopology, EveryElementHasFourEdgeNeighbors) {
  const cubed_sphere m(GetParam());
  for (int id = 0; id < m.num_elements(); ++id) {
    std::set<int> nbrs;
    for (int e = 0; e < 4; ++e) {
      const int n = m.edge_neighbor(id, e);
      ASSERT_GE(n, 0);
      ASSERT_LT(n, m.num_elements());
      EXPECT_NE(n, id);
      nbrs.insert(n);
    }
    EXPECT_EQ(nbrs.size(), 4u) << "element " << id
                               << " has duplicate edge neighbours";
  }
}

TEST_P(MeshTopology, EdgeNeighborhoodIsSymmetric) {
  const cubed_sphere m(GetParam());
  for (int id = 0; id < m.num_elements(); ++id) {
    for (int e = 0; e < 4; ++e) {
      const edge_link link = m.edge_link_of(id, e);
      const edge_link back = m.edge_link_of(link.neighbor, link.neighbor_edge);
      EXPECT_EQ(back.neighbor, id);
      EXPECT_EQ(back.neighbor_edge, e);
      EXPECT_EQ(back.reversed, link.reversed);
    }
  }
}

TEST_P(MeshTopology, CornerNeighborCounts) {
  // Interior-ish elements have 4 diagonal neighbours; elements touching a
  // cube vertex have only 3 (three faces meet there). Exactly 24 elements
  // touch cube vertices (8 vertices × 3 faces) when Ne >= 2.
  const int ne = GetParam();
  if (ne < 2) return;
  const cubed_sphere m(ne);
  int with3 = 0, with4 = 0;
  for (int id = 0; id < m.num_elements(); ++id) {
    const auto& cn = m.corner_neighbors(id);
    ASSERT_TRUE(cn.size() == 3 || cn.size() == 4)
        << "element " << id << " has " << cn.size() << " corner neighbours";
    (cn.size() == 3 ? with3 : with4)++;
  }
  EXPECT_EQ(with3, 24);
  EXPECT_EQ(with4, m.num_elements() - 24);
}

TEST_P(MeshTopology, CubeVertexDetection) {
  const int ne = GetParam();
  const cubed_sphere m(ne);
  int vertex_corners = 0;
  for (int id = 0; id < m.num_elements(); ++id)
    for (int c = 0; c < 4; ++c)
      vertex_corners += m.corner_is_cube_vertex(id, c);
  // Each of the 8 cube vertices is a corner of exactly 3 elements.
  EXPECT_EQ(vertex_corners, 24);
}

TEST_P(MeshTopology, CornerLinksAreConsistent) {
  const cubed_sphere m(GetParam());
  for (int id = 0; id < m.num_elements(); ++id) {
    for (int c = 0; c < 4; ++c) {
      const auto links = m.corner_links(id, c);
      const std::size_t expected = m.corner_is_cube_vertex(id, c) ? 2 : 3;
      EXPECT_EQ(links.size(), expected);
      // Reciprocity: if (other, oc) shares our corner, we appear in theirs.
      for (const auto& [other, oc] : links) {
        const auto back = m.corner_links(other, oc);
        bool found = false;
        for (const auto& [b, bc] : back) found |= (b == id && bc == c);
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST_P(MeshTopology, SameFaceInteriorNeighborsMatchGridStencil) {
  const int ne = GetParam();
  if (ne < 3) return;
  const cubed_sphere m(ne);
  // A strictly interior element's neighbours are the familiar 4 + 4 stencil
  // on the same face.
  const int id = m.element_id(2, 1, 1);
  std::set<int> expect_edge, expect_corner;
  for (int dj = -1; dj <= 1; ++dj)
    for (int di = -1; di <= 1; ++di) {
      if (di == 0 && dj == 0) continue;
      const int nbr = m.element_id(2, 1 + di, 1 + dj);
      (std::abs(di) + std::abs(dj) == 1 ? expect_edge : expect_corner)
          .insert(nbr);
    }
  std::set<int> got_edge;
  for (int e = 0; e < 4; ++e) got_edge.insert(m.edge_neighbor(id, e));
  EXPECT_EQ(got_edge, expect_edge);
  const auto& cn = m.corner_neighbors(id);
  EXPECT_EQ(std::set<int>(cn.begin(), cn.end()), expect_corner);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshTopology, ::testing::Values(1, 2, 3, 4, 8),
                         ::testing::PrintToStringParamName());

TEST(MeshGeometry, CentersLieOnUnitSphere) {
  const cubed_sphere m(4);
  for (int id = 0; id < m.num_elements(); ++id) {
    EXPECT_NEAR(norm(m.element_center_sphere(id)), 1.0, 1e-12);
    EXPECT_NEAR(norm(m.reference_to_sphere(id, -1, 1)), 1.0, 1e-12);
  }
}

TEST(MeshGeometry, AreasSumToFullSphere) {
  for (const int ne : {1, 2, 4, 8}) {
    const cubed_sphere m(ne);
    double total = 0;
    for (int id = 0; id < m.num_elements(); ++id)
      total += m.element_area_sphere(id);
    EXPECT_NEAR(total, 4.0 * std::numbers::pi, 1e-9) << "Ne=" << ne;
  }
}

TEST(MeshGeometry, GnomonicCellsShrinkTowardFaceCorners) {
  // Equiangular distortion: the gnomonic projection of equal cube cells
  // gives smaller spherical areas near face corners than at face centers.
  const cubed_sphere m(8);
  const double center = m.element_area_sphere(m.element_id(0, 3, 3));
  const double corner = m.element_area_sphere(m.element_id(0, 0, 0));
  EXPECT_GT(center, corner);
}

TEST(MeshGeometry, FaceCentersPointAlongAxes) {
  const cubed_sphere m(2);
  const auto f0 = cubed_sphere::frame_of_face(0);
  EXPECT_DOUBLE_EQ(f0.center.x, 1.0);
  const auto f4 = cubed_sphere::frame_of_face(4);
  EXPECT_DOUBLE_EQ(f4.center.z, 1.0);
  EXPECT_THROW(cubed_sphere::frame_of_face(6), contract_error);
}

TEST(MeshDualGraph, StructureAndWeights) {
  const cubed_sphere m(4);
  const auto g = m.dual_graph(8, 1);
  g.validate();
  EXPECT_EQ(g.num_vertices(), m.num_elements());
  EXPECT_TRUE(graph::is_connected(g));
  // Total degree: every element 4 edge-neighbours; corner neighbours 3 or 4.
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 7);
    EXPECT_LE(g.degree(v), 8);
  }
  // Edge count: 4*K/2 edge pairs + (sum corner)/2.
  const int k = m.num_elements();
  const graph::eid corner_pairs = (4 * (k - 24) + 3 * 24) / 2;
  EXPECT_EQ(g.num_edges(), 2 * k + corner_pairs);
}

TEST(MeshDualGraph, WithoutCornersIsFourRegular) {
  const cubed_sphere m(3);
  const auto g = m.dual_graph(1, 1, /*include_corners=*/false);
  g.validate();
  for (graph::vid v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(g.num_edges(), 2 * m.num_elements());
}

TEST(MeshDualGraph, CornerWeightShowsUp) {
  const cubed_sphere m(4);
  const auto g = m.dual_graph(8, 2);
  // Pick an interior element; its weights must be four 8s and four 2s.
  const int id = m.element_id(1, 1, 1);
  int w8 = 0, w2 = 0;
  for (const graph::weight w : g.neighbor_weights(id))
    (w == 8 ? w8 : w2) += 1;
  EXPECT_EQ(w8, 4);
  EXPECT_EQ(w2, 4);
}

TEST(MeshLayout, FlattenIsInjective) {
  const cubed_sphere m(3);
  std::set<std::pair<int, int>> seen;
  for (int id = 0; id < m.num_elements(); ++id) {
    const flat_pos p = flatten(m, id);
    EXPECT_TRUE(seen.insert({p.x, p.y}).second);
    const flat_pos ext = flat_extent(m);
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, ext.x);
    EXPECT_GE(p.y, 0);
    EXPECT_LT(p.y, ext.y);
  }
}

TEST(MeshLayout, RenderLabels) {
  const cubed_sphere m(2);
  std::vector<int> labels(static_cast<std::size_t>(m.num_elements()));
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 10);
  const std::string art = render_flat_labels(m, labels);
  EXPECT_FALSE(art.empty());
  EXPECT_THROW(render_flat_labels(m, std::vector<int>(3)), contract_error);
}

TEST(Mesh, RejectsBadConstruction) {
  EXPECT_THROW(cubed_sphere(0), contract_error);
  EXPECT_THROW(cubed_sphere(-2), contract_error);
}

}  // namespace
