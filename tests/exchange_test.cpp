// Tests for the halo-exchange plan and the distributed shallow-water runner.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "partition/partition.hpp"
#include "seam/assembly.hpp"
#include "seam/distributed.hpp"
#include "seam/exchange.hpp"
#include "seam/shallow_water.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

TEST(ExchangePlan, CoversEveryElementExactlyOnce) {
  const mesh::cubed_sphere m(3);
  const assembly dofs(m, 4);
  const auto part = core::sfc_partition(m, 9);
  const auto plan = exchange_plan::build(dofs, part);
  ASSERT_EQ(plan.ranks.size(), 9u);
  std::set<int> seen;
  for (const auto& rp : plan.ranks) {
    for (const int e : rp.owned) EXPECT_TRUE(seen.insert(e).second);
    EXPECT_TRUE(std::is_sorted(rp.owned.begin(), rp.owned.end()));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(m.num_elements()));
}

TEST(ExchangePlan, PeerListsAreSymmetric) {
  const mesh::cubed_sphere m(4);
  const assembly dofs(m, 3);
  const auto part = core::sfc_partition(m, 12);
  const auto plan = exchange_plan::build(dofs, part);
  for (std::size_t p = 0; p < plan.ranks.size(); ++p) {
    for (const auto& peer : plan.ranks[p].peers) {
      // The peer must list us with the same number of shared dofs.
      const auto& back_peers =
          plan.ranks[static_cast<std::size_t>(peer.rank)].peers;
      const auto it = std::find_if(
          back_peers.begin(), back_peers.end(),
          [&](const auto& bp) { return bp.rank == static_cast<int>(p); });
      ASSERT_NE(it, back_peers.end());
      EXPECT_EQ(it->dof_local.size(), peer.dof_local.size());
      // And the *global* dofs behind the local indices must match in order.
      for (std::size_t k = 0; k < peer.dof_local.size(); ++k) {
        const std::int64_t mine =
            plan.ranks[p].touched_dofs[static_cast<std::size_t>(
                peer.dof_local[k])];
        const std::int64_t theirs =
            plan.ranks[static_cast<std::size_t>(peer.rank)]
                .touched_dofs[static_cast<std::size_t>(it->dof_local[k])];
        ASSERT_EQ(mine, theirs);
      }
    }
  }
}

TEST(ExchangePlan, SharedDofsTouchedByBothSides) {
  const mesh::cubed_sphere m(2);
  const assembly dofs(m, 4);
  const auto part = core::sfc_partition(m, 6);
  const auto plan = exchange_plan::build(dofs, part);
  EXPECT_GT(plan.total_exchange_volume(), 0);
  EXPECT_GE(plan.max_peers(), 1);
  EXPECT_LE(plan.max_peers(), 5);
}

TEST(ExchangePlan, SingleRankHasNoPeers) {
  const mesh::cubed_sphere m(2);
  const assembly dofs(m, 3);
  partition::partition all_one(1, std::vector<graph::vid>(
                                      static_cast<std::size_t>(m.num_elements()), 0));
  const auto plan = exchange_plan::build(dofs, all_one);
  EXPECT_TRUE(plan.ranks[0].peers.empty());
  EXPECT_EQ(plan.total_exchange_volume(), 0);
}

TEST(ExchangePlan, RejectsEmptyRank) {
  const mesh::cubed_sphere m(2);
  const assembly dofs(m, 3);
  partition::partition bad(3, std::vector<graph::vid>(
                                  static_cast<std::size_t>(m.num_elements()), 0));
  bad.part_of[0] = 1;  // part 2 stays empty
  EXPECT_THROW(exchange_plan::build(dofs, bad), contract_error);
}

// ---- distributed shallow water ----------------------------------------------

class DistributedSwe : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSwe, MatchesSerialExecution) {
  const int nranks = GetParam();
  const mesh::cubed_sphere m(2);
  shallow_water_model model(m, 4);
  model.set_williamson2(0.1, 10.0);
  // Perturb so the run is genuinely unsteady.
  model.set_state(
      [&](mesh::vec3 p) {
        return 10.0 - 0.105 * p.z * p.z + 0.01 * std::exp(-4.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
      },
      [](mesh::vec3 p) { return mesh::vec3{-0.1 * p.y, 0.1 * p.x, 0}; });
  const double dt = model.cfl_dt(0.25);
  const int nsteps = 6;

  const auto part = core::sfc_partition(m, nranks);
  dist_stats stats;
  const swe_state dist = run_distributed_swe(model, part, dt, nsteps, &stats);

  shallow_water_model serial = std::move(model);
  for (int s = 0; s < nsteps; ++s) serial.step(dt);

  double max_diff = 0;
  for (std::size_t i = 0; i < dist.h.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(dist.h[i] - serial.depth()[i]));
    max_diff = std::max(max_diff, std::abs(dist.ux[i] - serial.velocity_x()[i]));
    max_diff = std::max(max_diff, std::abs(dist.uy[i] - serial.velocity_y()[i]));
    max_diff = std::max(max_diff, std::abs(dist.uz[i] - serial.velocity_z()[i]));
  }
  EXPECT_LT(max_diff, 1e-11) << "ranks=" << nranks;
  if (nranks > 1) {
    EXPECT_GT(stats.messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedSwe, ::testing::Values(1, 2, 4, 8),
                         ::testing::PrintToStringParamName());

TEST(DistributedSwe, KwayPartitionAlsoWorks) {
  const mesh::cubed_sphere m(2);
  shallow_water_model model(m, 3);
  model.set_williamson2(0.1, 10.0);
  const double dt = model.cfl_dt(0.25);
  mgp::options opt;
  opt.algo = mgp::method::kway;
  const auto part = mgp::partition_graph(m.dual_graph(), 5, opt);
  const swe_state dist = run_distributed_swe(model, part, dt, 4);

  shallow_water_model serial = std::move(model);
  for (int s = 0; s < 4; ++s) serial.step(dt);
  double max_diff = 0;
  for (std::size_t i = 0; i < dist.h.size(); ++i)
    max_diff = std::max(max_diff, std::abs(dist.h[i] - serial.depth()[i]));
  EXPECT_LT(max_diff, 1e-11);
}

TEST(Distributed, MeasuredVolumeMatchesPlanExactly) {
  // The wire traffic of a real distributed run is fully determined by the
  // exchange plan: one DSS per RK stage for advection (3 per step), four
  // fields times three stages for shallow water (12 per step), each DSS
  // moving exactly total_exchange_volume() doubles.
  const mesh::cubed_sphere m(2);
  const int nranks = 5, nsteps = 3;
  const auto part = core::sfc_partition(m, nranks);

  {
    advection_model model(m, 4);
    model.set_field([](mesh::vec3 p) { return p.x; });
    const auto plan = exchange_plan::build(model.dofs(), part);
    dist_stats stats;
    run_distributed(model, part, model.cfl_dt(0.3), nsteps, &stats);
    EXPECT_EQ(stats.doubles_sent, 3 * nsteps * plan.total_exchange_volume());
  }
  {
    shallow_water_model model(m, 4);
    model.set_williamson2(0.1, 10.0);
    const auto plan = exchange_plan::build(model.dofs(), part);
    dist_stats stats;
    run_distributed_swe(model, part, model.cfl_dt(0.25), nsteps, &stats);
    EXPECT_EQ(stats.doubles_sent, 12 * nsteps * plan.total_exchange_volume());
  }
}

TEST(Distributed, DssBitwiseIdenticalUnderInjectedDelays) {
  // Message delays and duplicates reorder *delivery*, but recv matches on
  // (source, tag) and each DSS uses a fresh tag, so the accumulation order —
  // and therefore every bit of the result — must not change.
  const mesh::cubed_sphere m(2);
  advection_model model(m, 4);
  model.set_field([](mesh::vec3 p) { return p.x * p.y + 0.5 * p.z; });
  const auto part = core::sfc_partition(m, 6);
  const double dt = model.cfl_dt(0.3);
  const int nsteps = 4;

  const std::vector<double> clean = run_distributed(model, part, dt, nsteps);

  runtime::world::options chaos;
  chaos.faults.seed = 42;
  auto& mf = chaos.faults.message_faults.emplace_back();
  mf.delay_probability = 0.4;
  mf.delay = std::chrono::microseconds(300);
  mf.duplicate_probability = 0.3;
  dist_stats stats;
  const std::vector<double> delayed =
      run_distributed(model, part, dt, nsteps, &stats, chaos);

  ASSERT_EQ(clean.size(), delayed.size());
  for (std::size_t i = 0; i < clean.size(); ++i)
    ASSERT_EQ(clean[i], delayed[i]) << "node " << i;  // bitwise, not approx

  // And the chaos schedule itself is reproducible: a second run under the
  // same seed produces the same bits again.
  const std::vector<double> again =
      run_distributed(model, part, dt, nsteps, nullptr, chaos);
  EXPECT_EQ(delayed, again);
}

TEST(DistributedSwe, Preconditions) {
  const mesh::cubed_sphere m(2);
  shallow_water_model model(m, 3);
  model.set_williamson2(0.1, 10.0);
  const auto part = core::sfc_partition(m, 4);
  EXPECT_THROW(run_distributed_swe(model, part, -1.0, 2), contract_error);
  EXPECT_THROW(run_distributed_swe(model, part, 0.01, -2), contract_error);
}

}  // namespace
