// Tests for the machine/execution-time model: calibration against the
// paper's published numbers and the monotonic behaviours the figures rely on.

#include <gtest/gtest.h>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::perf;

TEST(Machine, CalibrationMatchesPaper) {
  const machine_model m;
  // Paper §4: 841 Mflop/s is 16% of POWER4 peak.
  EXPECT_NEAR(m.sustained_fraction(), 0.16, 0.005);
}

TEST(Workload, InterfaceBytesMatchTable2Scale) {
  // Table 2: TCV of 16.8–17.7 MB for K=1536 on 768 processors. With ~7
  // interfaces per boundary element and all 1536 elements on part
  // boundaries, per-interface bytes must be ~1.6 KB.
  const seam_workload w;
  EXPECT_GT(w.bytes_per_interface(), 1200.0);
  EXPECT_LT(w.bytes_per_interface(), 2200.0);
}

TEST(Workload, FlopsScaleWithConfiguration) {
  seam_workload small;
  seam_workload big = small;
  big.np = 16;
  EXPECT_GT(big.flops_per_element(), 4.0 * small.flops_per_element());
  big = small;
  big.nlev *= 2;
  EXPECT_DOUBLE_EQ(big.flops_per_element(), 2.0 * small.flops_per_element());
}

TEST(Simulate, SerialMatchesHandComputation) {
  const machine_model m;
  const seam_workload w;
  const step_time t = serial_step(384, m, w);
  EXPECT_DOUBLE_EQ(t.total_s, 384.0 * w.flops_per_element() / 841.0e6);
  EXPECT_DOUBLE_EQ(t.comm_s, 0.0);
  // Sustained rate on one processor is by construction 841 Mflop/s.
  EXPECT_NEAR(sustained_gflops(384, w, t), 0.841, 1e-9);
}

TEST(Simulate, PerfectPartitionScalesUntilCommBites) {
  const mesh::cubed_sphere mesh(8);
  const auto dual = mesh.dual_graph(8, 1);
  const machine_model m;
  const seam_workload w;
  const step_time t1 = serial_step(mesh.num_elements(), m, w);

  double prev_speedup = 0.0;
  for (const int nproc : {2, 4, 8, 16, 32, 96}) {
    const auto p = core::sfc_partition(mesh, nproc);
    const step_time tp = simulate_step(dual, p, m, w);
    const double s = speedup(t1, tp);
    EXPECT_GT(s, prev_speedup) << nproc;  // still strong scaling regime
    EXPECT_LT(s, nproc + 1e-9);           // never superlinear in this model
    prev_speedup = s;
  }
  // Efficiency at 96 procs (4 elements each) should remain decent but below
  // ideal because communication is now visible.
  EXPECT_GT(prev_speedup, 48.0);
  EXPECT_LT(prev_speedup, 96.0);
}

TEST(Simulate, ImbalanceCostsTime) {
  const mesh::cubed_sphere mesh(4);
  const auto dual = mesh.dual_graph(8, 1);
  const machine_model m;
  const seam_workload w;
  // Balanced: 2 elements everywhere; imbalanced: one part gets 4.
  const auto balanced = core::sfc_partition(mesh, 48);
  partition::partition skewed = balanced;
  // Move two extra elements onto part 0 (steal from parts 1 and 2).
  int moved = 0;
  for (auto& label : skewed.part_of) {
    if (moved < 2 && (label == 1 || label == 2)) {
      label = 0;
      ++moved;
    }
  }
  const auto tb = simulate_step(dual, balanced, m, w);
  const auto ts = simulate_step(dual, skewed, m, w);
  EXPECT_GT(ts.total_s, tb.total_s);
  // The critical rank computes more elements, roughly 3/2 of balanced
  // compute time at minimum (part 0 went from 2 to 3-4 elements).
  EXPECT_GT(ts.compute_s, 1.4 * tb.compute_s);
}

TEST(Simulate, MoreNeighborsMoreLatency) {
  // Two artificial partitions of a path graph with identical balance and
  // cut weight but different peer counts for part 0.
  graph::builder b(8);
  for (graph::vid v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1, 1);
  const auto g = b.build();
  const machine_model m;
  seam_workload w;
  // Blocks: {0,1},{2,3},{4,5},{6,7}: each middle part has 2 peers.
  partition::partition blocks(4, {0, 0, 1, 1, 2, 2, 3, 3});
  // Interleaved: {0,4},{1,5},{2,6},{3,7}: parts touch more peers.
  partition::partition interleaved(4, {0, 1, 0, 2, 1, 3, 2, 3});
  const auto tb = simulate_step(g, blocks, m, w);
  const auto ti = simulate_step(g, interleaved, m, w);
  EXPECT_GT(ti.comm_s, tb.comm_s);
  EXPECT_GT(ti.total_s, tb.total_s);
}

TEST(Simulate, AverageNeverExceedsMax) {
  const mesh::cubed_sphere mesh(4);
  const auto dual = mesh.dual_graph(8, 1);
  const auto p = core::sfc_partition(mesh, 16);
  const auto t = simulate_step(dual, p, machine_model{}, seam_workload{});
  EXPECT_LE(t.avg_rank_s, t.total_s + 1e-15);
  EXPECT_GE(t.critical_rank, 0);
  EXPECT_LT(t.critical_rank, 16);
  EXPECT_NEAR(t.total_s, t.compute_s + t.comm_s, 1e-15);
}

TEST(Simulate, Preconditions) {
  const mesh::cubed_sphere mesh(2);
  const auto dual = mesh.dual_graph();
  machine_model bad;
  bad.sustained_flops = 0;
  const auto p = core::sfc_partition(mesh, 4);
  EXPECT_THROW(simulate_step(dual, p, bad, seam_workload{}), contract_error);
  EXPECT_THROW(serial_step(0, machine_model{}, seam_workload{}),
               contract_error);
  EXPECT_THROW(speedup(step_time{}, step_time{}), contract_error);
}

}  // namespace
