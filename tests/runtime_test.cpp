// Tests for the virtual-rank runtime: point-to-point ordering, barrier,
// reductions, and stress under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/world.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::runtime;

TEST(World, SingleRankRuns) {
  world w(1);
  bool ran = false;
  w.run([&](communicator& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(World, RejectsZeroRanks) { EXPECT_THROW(world(0), sfp::contract_error); }

TEST(World, PingPong) {
  world w(2);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      const std::vector<double> payload{1.0, 2.0, 3.0};
      c.send(1, 7, payload);
      const auto back = c.recv(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[0], 2.0);
    } else {
      auto msg = c.recv(0, 7);
      for (auto& v : msg) v *= 2.0;
      c.send(0, 8, msg);
    }
  });
}

TEST(World, MessagesBetweenSamePairAreOrdered) {
  world w(2);
  w.run([](communicator& c) {
    constexpr int kCount = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        const std::vector<double> v{static_cast<double>(i)};
        c.send(1, 0, v);
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        const auto v = c.recv(0, 0);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_DOUBLE_EQ(v[0], static_cast<double>(i));
      }
    }
  });
}

TEST(World, TagsAreIndependentChannels) {
  world w(2);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/2, std::vector<double>{22.0});
      c.send(1, /*tag=*/1, std::vector<double>{11.0});
    } else {
      // Receive in the opposite order of sending; tags must match content.
      EXPECT_DOUBLE_EQ(c.recv(0, 1)[0], 11.0);
      EXPECT_DOUBLE_EQ(c.recv(0, 2)[0], 22.0);
    }
  });
}

TEST(World, BarrierSynchronizes) {
  constexpr int kRanks = 8;
  world w(kRanks);
  std::atomic<int> phase_counter{0};
  w.run([&](communicator& c) {
    for (int round = 0; round < 20; ++round) {
      ++phase_counter;
      c.barrier();
      // After the barrier every rank must observe all increments of this
      // round (counter is a multiple of kRanks at the phase boundary).
      EXPECT_EQ(phase_counter.load() % kRanks, 0)
          << "rank " << c.rank() << " round " << round;
      c.barrier();
    }
  });
}

TEST(World, AllreduceSumAndMax) {
  constexpr int kRanks = 7;
  world w(kRanks);
  w.run([](communicator& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(mine), 28.0);  // 1+..+7
    EXPECT_DOUBLE_EQ(c.allreduce_max(mine), 7.0);
    // Back-to-back reductions must not interfere.
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 7.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(-mine), -1.0);
  });
}

TEST(World, RepeatedReductionsStress) {
  constexpr int kRanks = 5;
  world w(kRanks);
  w.run([](communicator& c) {
    for (int i = 0; i < 200; ++i) {
      const double expect = static_cast<double>(i) * kRanks;
      EXPECT_DOUBLE_EQ(c.allreduce_sum(static_cast<double>(i)), expect);
    }
  });
}

TEST(World, ManyToOneTraffic) {
  constexpr int kRanks = 6;
  world w(kRanks);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      double total = 0;
      for (int src = 1; src < kRanks; ++src) {
        const auto v = c.recv(src, 3);
        total = std::accumulate(v.begin(), v.end(), total);
      }
      EXPECT_DOUBLE_EQ(total, 5.0 * 100.0);
    } else {
      const std::vector<double> v(100, 1.0);
      c.send(0, 3, v);
    }
  });
}

TEST(World, ExceptionInRankPropagates) {
  world w(2);
  EXPECT_THROW(w.run([](communicator& c) {
    if (c.rank() == 1) throw std::runtime_error("rank 1 died");
    // rank 0 exits normally; nothing blocks on rank 1
  }),
               std::runtime_error);
}

TEST(World, ManyRanksAllToAllStress) {
  // 24 virtual ranks, several rounds of full all-to-all traffic plus
  // reductions — a deadlock/lost-message stress of the mailbox fabric.
  constexpr int kRanks = 24;
  world w(kRanks);
  w.run([](communicator& c) {
    for (int round = 0; round < 5; ++round) {
      for (int dst = 0; dst < kRanks; ++dst) {
        if (dst == c.rank()) continue;
        const std::vector<double> payload{
            static_cast<double>(c.rank() * 1000 + round)};
        c.send(dst, round, payload);
      }
      double sum = 0;
      for (int src = 0; src < kRanks; ++src) {
        if (src == c.rank()) continue;
        const auto msg = c.recv(src, round);
        ASSERT_EQ(msg.size(), 1u);
        ASSERT_DOUBLE_EQ(msg[0], static_cast<double>(src * 1000 + round));
        sum += msg[0];
      }
      // Cross-check with a collective.
      const double expect_total =
          c.allreduce_sum(static_cast<double>(c.rank() * 1000 + round));
      ASSERT_DOUBLE_EQ(sum + c.rank() * 1000 + round, expect_total);
      c.barrier();
    }
  });
}

TEST(World, EmptyMessageAllowed) {
  world w(2);
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 0, std::vector<double>{});
    } else {
      EXPECT_TRUE(c.recv(0, 0).empty());
    }
  });
}

}  // namespace
