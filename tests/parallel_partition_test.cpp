// The serial-parity wall for the distributed SFC partitioner: the parallel
// slicer (core/parallel_partition.hpp over runtime/partition_fabric.hpp)
// must produce *bit-identical* plans to the serial core::sfc_partition for
// every (Ne, schedule, Nproc, weights) combination — element for element —
// across rank counts, over both transport backends, and through message
// chaos. Every parallel plan is also piped through core::validate_plan, so
// the structural invariants (ownership, contiguity, balance) are audited
// independently of the serial comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/parallel_partition.hpp"
#include "core/sfc_partition.hpp"
#include "core/validate.hpp"
#include "mesh/cubed_sphere.hpp"
#include "runtime/partition_fabric.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using runtime::parallel_partition_report;
using runtime::parallel_partition_run_options;
using runtime::run_parallel_partition;
using runtime::transport_backend;

std::vector<graph::weight> heavy_tail_weights(int k, std::uint64_t seed) {
  sfp::rng r(seed);
  std::vector<graph::weight> w(static_cast<std::size_t>(k));
  for (auto& x : w) {
    x = 1 + static_cast<graph::weight>(r.below(9));
    if (r.below(16) == 0) x *= 100;  // occasional 2-orders-heavier element
  }
  return w;
}

void expect_matches_serial(const parallel_partition_report& report,
                           const partition::partition& serial,
                           const core::cube_curve& curve,
                           std::span<const graph::weight> weights,
                           const std::string& what) {
  ASSERT_EQ(report.plan.part_of.size(), serial.part_of.size()) << what;
  EXPECT_EQ(report.plan.num_parts, serial.num_parts) << what;
  for (std::size_t e = 0; e < serial.part_of.size(); ++e)
    ASSERT_EQ(report.plan.part_of[e], serial.part_of[e])
        << what << " diverges at element " << e;
  const auto diag = core::validate_plan(report.plan, curve, weights);
  EXPECT_TRUE(diag.ok) << what << " failed " << diag.invariant << ": "
                       << diag.detail;
  // Boundaries are the plan in compressed form: strictly increasing, and
  // labeling any element against them reproduces its label.
  ASSERT_EQ(report.boundaries.size(),
            static_cast<std::size_t>(report.plan.num_parts) - 1);
  for (std::size_t i = 1; i < report.boundaries.size(); ++i)
    EXPECT_GT(report.boundaries[i], report.boundaries[i - 1]) << what;
}

// ---------------------------------------------------------------------------
// The wall: Ne sweep x {uniform, heavy-tail} x Nproc sweep x rank counts,
// all over the in-process backend (the socket backend gets its own
// parameterized smoke below — running the full sweep over TCP would take
// minutes for no additional algorithmic coverage).

TEST(ParallelPartitionParity, SweepMatchesSerialElementForElement) {
  const int kNe[] = {2, 3, 4, 6, 9};           // 2^n * 3^m small sizes
  const int kNparts[] = {2, 3, 5, 7, 9, 16, 17};
  const int kRanks[] = {1, 2, 4, 7};
  for (const int ne : kNe) {
    const mesh::cubed_sphere mesh(ne);
    const core::cube_curve curve = core::build_cube_curve(mesh);
    const core::cube_curve_spec spec = core::spec_of(curve);
    const int k = mesh.num_elements();

    std::vector<std::vector<graph::weight>> weight_cases;
    weight_cases.emplace_back();  // empty = uniform
    weight_cases.push_back(
        heavy_tail_weights(k, 1000 + static_cast<std::uint64_t>(ne)));

    for (const auto& weights : weight_cases) {
      for (const int nparts : kNparts) {
        if (nparts > k) continue;
        const partition::partition serial =
            core::sfc_partition(curve, nparts, weights);
        for (const int nranks : kRanks) {
          parallel_partition_run_options opts;
          // Small windows force real refinement rounds even at these sizes.
          opts.partition.histogram_fanout = 4;
          opts.partition.window_elements = 8;
          const parallel_partition_report report = run_parallel_partition(
              mesh, spec, nparts, weights, nranks, opts);
          expect_matches_serial(
              report, serial, curve, weights,
              "Ne=" + std::to_string(ne) + " nparts=" +
                  std::to_string(nparts) + " ranks=" +
                  std::to_string(nranks) +
                  (weights.empty() ? " uniform" : " heavy-tail"));
        }
      }
    }
  }
}

TEST(ParallelPartitionParity, MoreRanksThanElements) {
  // Ne = 1: K = 6 elements over 7 ranks — empty blocks participate in
  // every collective and the plan still matches the serial slicer.
  const mesh::cubed_sphere mesh(1);
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  for (const int nparts : {2, 3, 6}) {
    const partition::partition serial = core::sfc_partition(curve, nparts);
    const parallel_partition_report report =
        run_parallel_partition(mesh, spec, nparts, {}, 7);
    expect_matches_serial(report, serial, curve, {},
                          "Ne=1 nparts=" + std::to_string(nparts) +
                              " ranks=7");
  }
}

TEST(ParallelPartitionParity, StatsAccountForEveryElement) {
  const mesh::cubed_sphere mesh(4);
  const core::cube_curve_spec spec = core::build_cube_curve_spec(mesh);
  const parallel_partition_report report =
      run_parallel_partition(mesh, spec, 5, {}, 4);
  std::int64_t owned = 0;
  for (const auto& st : report.rank_stats) owned += st.local_elements;
  EXPECT_EQ(owned, mesh.num_elements());
  // The splitter search ran in lockstep: every rank saw the same rounds.
  for (const auto& st : report.rank_stats)
    EXPECT_EQ(st.rounds, report.rank_stats[0].rounds);
}

// ---------------------------------------------------------------------------
// Backend-parameterized smoke: the identical run over in-process mailboxes
// and loopback TCP, plus a chaos schedule that drops data frames and must
// heal through retransmission without perturbing the plan.

class ParallelPartitionOverBackend
    : public ::testing::TestWithParam<transport_backend> {};

TEST_P(ParallelPartitionOverBackend, SmallSweepMatchesSerial) {
  const mesh::cubed_sphere mesh(3);  // K = 54: small on purpose (TCP)
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const std::vector<graph::weight> weights = heavy_tail_weights(54, 42);
  for (const int nparts : {2, 7}) {
    const partition::partition serial =
        core::sfc_partition(curve, nparts, weights);
    parallel_partition_run_options opts;
    opts.backend = GetParam();
    const parallel_partition_report report =
        run_parallel_partition(mesh, spec, nparts, weights, 3, opts);
    expect_matches_serial(report, serial, curve, weights,
                          std::string(to_string(GetParam())) + " nparts=" +
                              std::to_string(nparts));
    EXPECT_GT(report.reliable.data_received, 0);
  }
}

TEST_P(ParallelPartitionOverBackend, HealsThroughMessageDropsAndMatchesSerial) {
  const mesh::cubed_sphere mesh(3);
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const std::vector<graph::weight> weights = heavy_tail_weights(54, 7);
  const partition::partition serial =
      core::sfc_partition(curve, 5, weights);

  parallel_partition_run_options opts;
  opts.backend = GetParam();
  opts.faults.seed = 99;
  runtime::fault_plan::message_fault drop;
  drop.drop_probability = 0.2;
  // Pin the chaos to reliable *data* frames (header + payload): ack-frame
  // interleaving is timing-dependent and would make the schedule unstable.
  drop.min_payload = runtime::wire::header_doubles + 1;
  opts.faults.message_faults.push_back(drop);

  const parallel_partition_report report =
      run_parallel_partition(mesh, spec, 5, weights, 4, opts);
  expect_matches_serial(report, serial, curve, weights,
                        std::string(to_string(GetParam())) + " under drops");
  // The chaos actually bit, and the reliable layer healed it.
  EXPECT_GT(report.counters.injected_drops, 0);
  EXPECT_GT(report.reliable.retransmits, 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ParallelPartitionOverBackend,
                         ::testing::Values(transport_backend::inproc,
                                           transport_backend::socket),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Rank kills: fail-stop deaths mid-run. A quorum-surviving run must regroup
// and still produce the serial plan bit-identically; a sub-quorum run must
// abort cleanly instead of hanging (the run-options timeout bounds any
// stuck rank, so completion of these tests is itself the hang check).

parallel_partition_run_options kill_run_options(transport_backend backend) {
  parallel_partition_run_options opts;
  opts.backend = backend;
  // Fast retransmit exhaustion makes corpse detection definite within a
  // fraction of a second; the short base recv timeout keeps the regroup
  // silence budgets (counted in recv rounds) in wall-clock bounds.
  opts.reliable.retransmit_timeout = std::chrono::microseconds(5000);
  opts.reliable.max_backoff = std::chrono::microseconds(20000);
  opts.reliable.max_retransmits = 12;
  opts.reliable.recv_timeout = std::chrono::milliseconds(100);
  opts.timeout = std::chrono::milliseconds(20000);
  return opts;
}

TEST_P(ParallelPartitionOverBackend, SurvivesRankZeroKillAndMatchesSerial) {
  const mesh::cubed_sphere mesh(3);
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const std::vector<graph::weight> weights = heavy_tail_weights(54, 11);
  const partition::partition serial = core::sfc_partition(curve, 5, weights);

  parallel_partition_run_options opts = kill_run_options(GetParam());
  opts.faults.kills.push_back({0, 2});  // root dies mid-collective

  const parallel_partition_report report =
      run_parallel_partition(mesh, spec, 5, weights, 4, opts);
  ASSERT_FALSE(report.aborted);
  EXPECT_EQ(report.counters.injected_kills, 1);
  EXPECT_GE(report.recoveries, 1);
  EXPECT_GE(report.group_epoch, 1u);
  EXPECT_TRUE(std::find(report.lost_ranks.begin(), report.lost_ranks.end(),
                        0) != report.lost_ranks.end());
  expect_matches_serial(report, serial, curve, weights,
                        std::string(to_string(GetParam())) +
                            " rank-0 kill succession");
}

TEST(ParallelPartitionKills, TwoDeathsAtExactQuorumStillMatchSerial) {
  // Regression schedule: ranks 0 and 2 die at staggered ops, leaving
  // {1, 3} — exactly min_members. The late-detecting survivor used to be
  // falsely evicted when the coordinator's collect window expired before
  // the survivor's (longer) root-silence budget; the plan must instead
  // match the serial slicer over the two-rank group.
  const mesh::cubed_sphere mesh(3);
  const core::cube_curve curve = core::build_cube_curve(mesh);
  const core::cube_curve_spec spec = core::spec_of(curve);
  const partition::partition serial = core::sfc_partition(curve, 5);

  parallel_partition_run_options opts =
      kill_run_options(transport_backend::inproc);
  opts.faults.kills.push_back({0, 6});
  opts.faults.kills.push_back({2, 3});

  const parallel_partition_report report =
      run_parallel_partition(mesh, spec, 5, {}, 4, opts);
  ASSERT_FALSE(report.aborted);
  EXPECT_EQ(report.counters.injected_kills, 2);
  EXPECT_GE(report.recoveries, 1);
  EXPECT_EQ(report.lost_ranks.size(), 2u);
  expect_matches_serial(report, serial, curve, {},
                        "two kills at exact quorum");
}

TEST_P(ParallelPartitionOverBackend, SubQuorumKillsAbortCleanlyWithoutHang) {
  const mesh::cubed_sphere mesh(3);
  const core::cube_curve_spec spec = core::build_cube_curve_spec(mesh);

  parallel_partition_run_options opts = kill_run_options(GetParam());
  opts.faults.kills.push_back({0, 1});
  opts.faults.kills.push_back({1, 2});  // 1 survivor < min_members = 2

  const parallel_partition_report report =
      run_parallel_partition(mesh, spec, 5, {}, 3, opts);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.counters.injected_kills, 2);
  EXPECT_EQ(report.lost_ranks.size(), 3u);  // two corpses + the aborter
}

}  // namespace
