// Tests for the RCB geometric partitioner baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mesh/cubed_sphere.hpp"
#include "mgp/geometric.hpp"
#include "partition/metrics.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using namespace sfp::mgp;

std::vector<point3> cube_sphere_centers(const mesh::cubed_sphere& m) {
  std::vector<point3> pts(static_cast<std::size_t>(m.num_elements()));
  for (int e = 0; e < m.num_elements(); ++e) {
    const mesh::vec3 c = m.element_center_sphere(e);
    pts[static_cast<std::size_t>(e)] = {c.x, c.y, c.z};
  }
  return pts;
}

TEST(Rcb, EqualCountsOnUniformWeights) {
  const mesh::cubed_sphere m(4);
  const auto pts = cube_sphere_centers(m);
  for (const int k : {2, 4, 8, 16, 32, 96}) {
    const auto p = recursive_coordinate_bisection(pts, {}, k);
    const auto sizes = partition::part_sizes(p);
    const auto mx = *std::max_element(sizes.begin(), sizes.end());
    const auto mn = *std::min_element(sizes.begin(), sizes.end());
    EXPECT_LE(mx - mn, 1) << "k=" << k;
    EXPECT_TRUE(partition::all_parts_nonempty(p));
  }
}

TEST(Rcb, WeightedSplitBalancesWeight) {
  std::vector<point3> pts;
  std::vector<graph::weight> w;
  // 10 collinear points, last one heavy.
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i), 0.0, 0.0});
    w.push_back(i == 9 ? 9 : 1);
  }
  const auto p = recursive_coordinate_bisection(pts, w, 2);
  // Total weight 18; the heavy point alone should form the right side
  // together with at most one light companion.
  graph::weight w0 = 0, w1 = 0;
  for (int i = 0; i < 10; ++i)
    ((p.part_of[static_cast<std::size_t>(i)] == 0) ? w0 : w1) +=
        w[static_cast<std::size_t>(i)];
  EXPECT_LE(std::abs(w0 - w1), 2);
}

TEST(Rcb, PartsAreSpatiallyCompact) {
  // Each part's bounding-box diagonal must be far below the domain's: RCB
  // parts are axis-aligned boxes.
  const mesh::cubed_sphere m(8);
  const auto pts = cube_sphere_centers(m);
  const auto p = recursive_coordinate_bisection(pts, {}, 24);
  for (int part = 0; part < 24; ++part) {
    point3 lo{2, 2, 2}, hi{-2, -2, -2};
    int count = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (p.part_of[i] != part) continue;
      ++count;
      for (int a = 0; a < 3; ++a) {
        lo[static_cast<std::size_t>(a)] = std::min(lo[static_cast<std::size_t>(a)], pts[i][static_cast<std::size_t>(a)]);
        hi[static_cast<std::size_t>(a)] = std::max(hi[static_cast<std::size_t>(a)], pts[i][static_cast<std::size_t>(a)]);
      }
    }
    ASSERT_GT(count, 0);
    const double diag = std::hypot(hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]);
    EXPECT_LT(diag, 1.8) << "part " << part;  // sphere diameter = 2
  }
}

TEST(Rcb, CutQualityBeatsRandomAssignment) {
  const mesh::cubed_sphere m(8);
  const auto pts = cube_sphere_centers(m);
  const auto dual = m.dual_graph();
  const auto p = recursive_coordinate_bisection(pts, {}, 16);
  const auto m_rcb = partition::compute_metrics(dual, p);

  rng r(4);
  partition::partition random_p(16, {});
  random_p.part_of.resize(pts.size());
  for (auto& label : random_p.part_of)
    label = static_cast<graph::vid>(r.below(16));
  const auto m_rand = partition::compute_metrics(dual, random_p);
  EXPECT_LT(m_rcb.edgecut_weight, m_rand.edgecut_weight / 2);
}

TEST(Rcb, DeterministicAndValid) {
  const mesh::cubed_sphere m(4);
  const auto pts = cube_sphere_centers(m);
  const auto a = recursive_coordinate_bisection(pts, {}, 7);
  const auto b = recursive_coordinate_bisection(pts, {}, 7);
  EXPECT_EQ(a.part_of, b.part_of);
  partition::validate(a, m.dual_graph());
}

TEST(Rcb, Preconditions) {
  std::vector<point3> pts{{0, 0, 0}, {1, 0, 0}};
  EXPECT_THROW(recursive_coordinate_bisection({}, {}, 1), contract_error);
  EXPECT_THROW(recursive_coordinate_bisection(pts, {}, 3), contract_error);
  EXPECT_THROW(recursive_coordinate_bisection(pts, {}, 0), contract_error);
  std::vector<graph::weight> bad_w{1};
  EXPECT_THROW(recursive_coordinate_bisection(pts, bad_w, 2), contract_error);
}

}  // namespace
