// Tests for partition metrics: edgecut, TCV, spcv, and the paper's LB.

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "partition/partition.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::partition;

using part_t = sfp::partition::partition;

part_t make(int parts, std::vector<graph::vid> labels) {
  return part_t(parts, std::move(labels));
}

TEST(PartitionType, Validation) {
  const auto g = graph::grid_graph(2, 2);
  EXPECT_NO_THROW(validate(make(2, {0, 1, 0, 1}), g));
  EXPECT_THROW(validate(make(2, {0, 1, 0}), g), contract_error);
  EXPECT_THROW(validate(make(2, {0, 1, 0, 2}), g), contract_error);
  EXPECT_THROW(validate(make(0, {0, 0, 0, 0}), g), contract_error);
}

TEST(PartitionType, SizesAndWeights) {
  graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.set_vertex_weight(3, 5);
  const auto g = b.build();
  const auto p = make(2, {0, 0, 0, 1});
  EXPECT_EQ(part_sizes(p), (std::vector<std::int64_t>{3, 1}));
  EXPECT_EQ(part_weights(p, g), (std::vector<graph::weight>{3, 5}));
  EXPECT_TRUE(all_parts_nonempty(p));
  EXPECT_FALSE(all_parts_nonempty(make(3, {0, 0, 2, 2})));
}

TEST(Metrics, SinglePartHasNoCommunication) {
  const auto g = graph::grid_graph(3, 3);
  const auto m = compute_metrics(g, make(1, std::vector<graph::vid>(9, 0)));
  EXPECT_EQ(m.edgecut_edges, 0);
  EXPECT_EQ(m.edgecut_weight, 0);
  EXPECT_DOUBLE_EQ(m.tcv_interfaces, 0.0);
  EXPECT_DOUBLE_EQ(m.lb_elems, 0.0);
  EXPECT_EQ(m.max_peers, 0);
}

TEST(Metrics, HalvedGrid) {
  // 4x2 grid split into left/right 2x2 halves: cut = 2 edges.
  const auto g = graph::grid_graph(4, 2);
  const auto p = make(2, {0, 0, 1, 1, 0, 0, 1, 1});
  const auto m = compute_metrics(g, p);
  EXPECT_EQ(m.edgecut_edges, 2);
  EXPECT_EQ(m.edgecut_weight, 2);
  EXPECT_DOUBLE_EQ(m.lb_elems, 0.0);
  // Boundary vertices: 1,5 in part 0 and 2,6 in part 1, each touching one
  // remote part -> TCV (interface units) = 4, spcv = 2 per part.
  EXPECT_DOUBLE_EQ(m.tcv_interfaces, 4.0);
  EXPECT_DOUBLE_EQ(m.send_interfaces[0], 2.0);
  EXPECT_DOUBLE_EQ(m.send_interfaces[1], 2.0);
  EXPECT_DOUBLE_EQ(m.lb_comm, 0.0);
  EXPECT_EQ(m.num_peers[0], 1);
  EXPECT_EQ(m.max_peers, 1);
  EXPECT_DOUBLE_EQ(m.tcv_bytes(100.0), 400.0);
}

TEST(Metrics, WeightedEdgesCountInWeightedVolume) {
  graph::builder b(2);
  b.add_edge(0, 1, 8);
  const auto g = b.build();
  const auto m = compute_metrics(g, make(2, {0, 1}));
  EXPECT_EQ(m.edgecut_edges, 1);
  EXPECT_EQ(m.edgecut_weight, 8);
  EXPECT_DOUBLE_EQ(m.send_weighted[0], 8.0);
  EXPECT_DOUBLE_EQ(m.send_weighted[1], 8.0);
  EXPECT_DOUBLE_EQ(m.tcv_weighted, 16.0);
  // Interface units: each vertex touches one remote part.
  EXPECT_DOUBLE_EQ(m.tcv_interfaces, 2.0);
}

TEST(Metrics, InterfaceCountingUsesDistinctParts) {
  // Star: center 0 adjacent to 1,2,3 in three different parts. The center
  // contributes 3 interfaces, each leaf 1.
  graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const auto g = b.build();
  const auto m = compute_metrics(g, make(4, {0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(m.send_interfaces[0], 3.0);
  EXPECT_DOUBLE_EQ(m.send_interfaces[1], 1.0);
  EXPECT_DOUBLE_EQ(m.tcv_interfaces, 6.0);
  EXPECT_EQ(m.num_peers[0], 3);
  EXPECT_EQ(m.max_peers, 3);
}

TEST(Metrics, LoadImbalanceDetected) {
  const auto g = graph::grid_graph(4, 1);
  const auto m = compute_metrics(g, make(2, {0, 0, 0, 1}));
  // Sizes {3,1}: LB = (3-2)/3 = 1/3.
  EXPECT_NEAR(m.lb_elems, 1.0 / 3.0, 1e-12);
}

TEST(Metrics, CommPattern) {
  const auto g = graph::grid_graph(4, 1);  // path 0-1-2-3
  const auto p = make(3, {0, 1, 1, 2});
  const auto pattern = comm_pattern(g, p);
  ASSERT_EQ(pattern.size(), 3u);
  ASSERT_EQ(pattern[0].size(), 1u);
  EXPECT_EQ(pattern[0][0].first, 1);
  EXPECT_DOUBLE_EQ(pattern[0][0].second, 1.0);
  ASSERT_EQ(pattern[1].size(), 2u);  // part 1 talks to 0 and 2
  EXPECT_EQ(pattern[1][0].first, 0);
  EXPECT_EQ(pattern[1][1].first, 2);
}

TEST(Metrics, CubedSphereFullyDistributed) {
  // One element per processor (the paper's extreme limit): every element is
  // a boundary vertex, spcv equals its neighbour count.
  const mesh::cubed_sphere mesh(2);
  const auto g = mesh.dual_graph(8, 1);
  std::vector<graph::vid> labels(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<graph::vid>(i);
  const auto m = compute_metrics(g, make(g.num_vertices(), std::move(labels)));
  EXPECT_EQ(m.edgecut_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(m.lb_elems, 0.0);
  for (graph::vid v = 0; v < g.num_vertices(); ++v)
    EXPECT_DOUBLE_EQ(m.send_interfaces[static_cast<std::size_t>(v)],
                     static_cast<double>(g.degree(v)));
}

TEST(Metrics, SymmetricVolumes) {
  // Send volumes summed over parts equal twice... exactly: every cut edge
  // contributes its weight to both endpoint parts' send_weighted.
  const auto g = graph::grid_graph_8(4, 4, 8, 1);
  const auto p = make(2, [] {
    std::vector<graph::vid> l(16, 0);
    for (int i = 8; i < 16; ++i) l[static_cast<std::size_t>(i)] = 1;
    return l;
  }());
  const auto m = compute_metrics(g, p);
  EXPECT_DOUBLE_EQ(m.send_weighted[0], m.send_weighted[1]);
  EXPECT_DOUBLE_EQ(m.tcv_weighted, 2.0 * static_cast<double>(m.edgecut_weight));
}

}  // namespace
