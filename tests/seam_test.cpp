// Tests for the SEAM mini-app substrate: GLL quadrature/differentiation,
// global DOF assembly + DSS, the advection dynamical core, and the
// distributed runner's equivalence with serial execution.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>
#include <vector>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "seam/advection.hpp"
#include "seam/assembly.hpp"
#include "seam/distributed.hpp"
#include "seam/gll.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

// ---- GLL ---------------------------------------------------------------------

class GllRule : public ::testing::TestWithParam<int> {};

TEST_P(GllRule, NodesSortedSymmetricWithEndpoints) {
  const auto rule = make_gll(GetParam());
  const int np = rule.np();
  EXPECT_DOUBLE_EQ(rule.nodes.front(), -1.0);
  EXPECT_DOUBLE_EQ(rule.nodes.back(), 1.0);
  for (int i = 1; i < np; ++i)
    EXPECT_LT(rule.nodes[static_cast<std::size_t>(i - 1)],
              rule.nodes[static_cast<std::size_t>(i)]);
  for (int i = 0; i < np; ++i) {
    EXPECT_NEAR(rule.nodes[static_cast<std::size_t>(i)],
                -rule.nodes[static_cast<std::size_t>(np - 1 - i)], 1e-14);
    EXPECT_NEAR(rule.weights[static_cast<std::size_t>(i)],
                rule.weights[static_cast<std::size_t>(np - 1 - i)], 1e-14);
    EXPECT_GT(rule.weights[static_cast<std::size_t>(i)], 0.0);
  }
}

TEST_P(GllRule, WeightsSumToTwo) {
  const auto rule = make_gll(GetParam());
  double sum = 0;
  for (const double w : rule.weights) sum += w;
  EXPECT_NEAR(sum, 2.0, 1e-13);
}

TEST_P(GllRule, QuadratureExactForDegree2NpMinus3) {
  const auto rule = make_gll(GetParam());
  const int np = rule.np();
  // ∫_{-1}^{1} x^d dx = 0 (odd) or 2/(d+1) (even), exact for d <= 2np-3.
  for (int d = 0; d <= 2 * np - 3; ++d) {
    double acc = 0;
    for (int i = 0; i < np; ++i)
      acc += rule.weights[static_cast<std::size_t>(i)] *
             std::pow(rule.nodes[static_cast<std::size_t>(i)], d);
    const double exact = (d % 2 == 1) ? 0.0 : 2.0 / (d + 1);
    EXPECT_NEAR(acc, exact, 1e-12) << "np=" << np << " degree " << d;
  }
}

TEST_P(GllRule, DifferentiationExactForPolynomials) {
  const auto rule = make_gll(GetParam());
  const int np = rule.np();
  // D must differentiate x^d exactly for d <= np-1.
  for (int d = 0; d < np; ++d) {
    std::vector<double> q(static_cast<std::size_t>(np));
    for (int i = 0; i < np; ++i)
      q[static_cast<std::size_t>(i)] =
          std::pow(rule.nodes[static_cast<std::size_t>(i)], d);
    for (int i = 0; i < np; ++i) {
      double der = 0;
      for (int m = 0; m < np; ++m)
        der += rule.diff[static_cast<std::size_t>(i * np + m)] *
               q[static_cast<std::size_t>(m)];
      const double exact =
          d == 0 ? 0.0
                 : d * std::pow(rule.nodes[static_cast<std::size_t>(i)], d - 1);
      EXPECT_NEAR(der, exact, 1e-10) << "np=" << np << " degree " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GllRule, ::testing::Values(2, 3, 4, 5, 8, 12),
                         ::testing::PrintToStringParamName());

TEST(Gll, RejectsTooFewPoints) {
  EXPECT_THROW(make_gll(1), contract_error);
}

TEST(Gll, LegendreKnownValues) {
  EXPECT_DOUBLE_EQ(legendre(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(legendre(1, 0.3), 0.3);
  EXPECT_NEAR(legendre(2, 0.5), 0.5 * (3 * 0.25 - 1), 1e-15);
  EXPECT_NEAR(legendre(5, 1.0), 1.0, 1e-15);  // P_n(1) = 1
}

// ---- assembly ------------------------------------------------------------------

class Assembly : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Assembly, DofCountMatchesClosedSurfaceFormula) {
  const auto [ne, np] = GetParam();
  const mesh::cubed_sphere m(ne);
  const assembly a(m, np);
  // Closed quad surface: V - E + F = 2 with F = 6 Ne², E = 2 F, V = F + 2.
  // Dofs: F·(np-2)² interior + E·(np-2) edge + V corner.
  const std::int64_t faces = 6LL * ne * ne;
  const std::int64_t edges = 2 * faces;
  const std::int64_t verts = faces + 2;
  const std::int64_t inner = static_cast<std::int64_t>(np - 2) * (np - 2);
  EXPECT_EQ(a.num_dofs(), faces * inner + edges * (np - 2) + verts);
}

TEST_P(Assembly, MultiplicitiesAreConsistent) {
  const auto [ne, np] = GetParam();
  const mesh::cubed_sphere m(ne);
  const assembly a(m, np);
  std::int64_t total = 0;
  for (std::int64_t d = 0; d < a.num_dofs(); ++d) {
    const int mult = a.multiplicity(d);
    EXPECT_TRUE(mult == 1 || mult == 2 || mult == 3 || mult == 4)
        << "dof " << d;
    total += mult;
  }
  EXPECT_EQ(total, a.field_size());
}

INSTANTIATE_TEST_SUITE_P(Cases, Assembly,
                         ::testing::Values(std::pair(1, 4), std::pair(2, 2),
                                           std::pair(2, 4), std::pair(3, 5),
                                           std::pair(4, 8)));

TEST(AssemblyDss, SharedNodesAgreeForSmoothField) {
  // Evaluating a smooth function of position gives identical values on all
  // copies of a shared node — the assembly must see zero continuity gap.
  const mesh::cubed_sphere m(3);
  const advection_model model(m, 5);
  // set_field evaluates f(position) then averages; gap must be ~0 even
  // before averaging, but after it must be exactly representable.
  EXPECT_LE(model.dofs().continuity_gap(model.field()), 1e-15);
}

TEST(AssemblyDss, AverageProjectsAndIsIdempotent) {
  const mesh::cubed_sphere m(2);
  const assembly a(m, 4);
  std::vector<double> f(static_cast<std::size_t>(a.field_size()));
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<double>(i % 17) - 8.0;  // discontinuous junk
  EXPECT_GT(a.continuity_gap(f), 0.0);
  a.dss_average(f);
  EXPECT_LE(a.continuity_gap(f), 1e-12);
  std::vector<double> g = f;
  a.dss_average(g);
  for (std::size_t i = 0; i < f.size(); ++i) ASSERT_NEAR(g[i], f[i], 1e-15);
}

TEST(AssemblyDss, SumEqualsAverageTimesMultiplicity) {
  const mesh::cubed_sphere m(2);
  const assembly a(m, 3);
  std::vector<double> f(static_cast<std::size_t>(a.field_size()), 1.0);
  a.dss_sum(f);
  // Every node's value becomes its dof's multiplicity.
  for (int e = 0; e < a.num_elements(); ++e)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i) {
        const auto idx = static_cast<std::size_t>((e * 3 + j) * 3 + i);
        EXPECT_DOUBLE_EQ(f[idx],
                         static_cast<double>(a.multiplicity(a.dof_of(e, i, j))));
      }
}

// ---- advection ------------------------------------------------------------------

TEST(Advection, ConstantFieldIsExactlySteady) {
  const mesh::cubed_sphere m(3);
  advection_model model(m, 5);
  model.set_field([](mesh::vec3) { return 4.25; });
  const double dt = model.cfl_dt();
  for (int s = 0; s < 5; ++s) model.step(dt);
  for (const double v : model.field()) ASSERT_DOUBLE_EQ(v, 4.25);
}

TEST(Advection, StableAndContinuousOverManySteps) {
  const mesh::cubed_sphere m(3);
  advection_model model(m, 5);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-8.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double initial_max = model.max_abs();
  const double dt = model.cfl_dt(0.4);
  for (int s = 0; s < 50; ++s) model.step(dt);
  EXPECT_LE(model.dofs().continuity_gap(model.field()), 1e-12);
  EXPECT_LT(model.max_abs(), 1.5 * initial_max);  // no blow-up
  EXPECT_GT(model.max_abs(), 0.2 * initial_max);  // no collapse
}

TEST(Advection, BlobRotatesTheRightWay) {
  // Solid-body rotation about +z moves a blob at (1,0,0) toward +y.
  const mesh::cubed_sphere m(4);
  advection_model model(m, 6, /*omega=*/1.0);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-12.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const mesh::vec3 c0 = model.centroid();
  EXPECT_GT(c0.x, 0.8);
  EXPECT_NEAR(c0.y, 0.0, 0.05);
  const double dt = model.cfl_dt(0.4);
  const double target_angle = 0.3;  // radians of rotation
  const int steps = static_cast<int>(target_angle / dt) + 1;
  for (int s = 0; s < steps; ++s) model.step(dt);
  const mesh::vec3 c1 = model.centroid();
  const double angle = std::atan2(c1.y, c1.x);
  EXPECT_GT(angle, 0.15);
  EXPECT_LT(angle, 0.5);
  EXPECT_NEAR(c1.z, 0.0, 0.05);  // stays on the equator
}

TEST(Advection, MassApproximatelyConserved) {
  // Advective-form transport with DSS is not exactly conservative, but for
  // smooth solid-body rotation the drift over a short integration must be
  // tiny relative to the total.
  const mesh::cubed_sphere m(3);
  advection_model model(m, 6);
  model.set_field([](mesh::vec3 p) { return 2.0 + p.x + 0.5 * p.y * p.z; });
  const double m0 = model.mass();
  const double dt = model.cfl_dt(0.3);
  for (int s = 0; s < 30; ++s) model.step(dt);
  EXPECT_NEAR(model.mass(), m0, 5e-3 * std::abs(m0));
}

TEST(Advection, MassOfConstantEqualsSphereArea) {
  const mesh::cubed_sphere m(3);
  advection_model model(m, 6);
  model.set_field([](mesh::vec3) { return 1.0; });
  EXPECT_NEAR(model.mass(), 4.0 * std::numbers::pi, 1e-6);
}

// ---- distributed -----------------------------------------------------------------

class DistributedRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistributedRanks, MatchesSerialExecution) {
  const int nranks = GetParam();
  const mesh::cubed_sphere m(2);  // 24 elements
  advection_model model(m, 4);
  model.set_field([](mesh::vec3 p) { return p.x * p.x + 0.3 * p.y - p.z; });
  const double dt = model.cfl_dt(0.4);
  const int nsteps = 8;

  const auto part = core::sfc_partition(m, nranks);
  dist_stats stats;
  const auto dist_field = run_distributed(model, part, dt, nsteps, &stats);

  advection_model serial = std::move(model);
  for (int s = 0; s < nsteps; ++s) serial.step(dt);

  ASSERT_EQ(dist_field.size(), serial.field().size());
  double max_diff = 0;
  for (std::size_t i = 0; i < dist_field.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(dist_field[i] - serial.field()[i]));
  EXPECT_LT(max_diff, 1e-12) << "ranks=" << nranks;

  if (nranks > 1) {
    EXPECT_GT(stats.messages, 0);
    EXPECT_GT(stats.doubles_sent, 0);
  } else {
    EXPECT_EQ(stats.messages, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedRanks,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 24),
                         ::testing::PrintToStringParamName());

TEST(Distributed, EquiangularMeshAlsoWorks) {
  // The distributed runner and the metric terms are projection-aware.
  const mesh::cubed_sphere m(2, mesh::projection::equiangular);
  advection_model model(m, 4);
  model.set_field([](mesh::vec3 p) { return p.x + 0.2 * p.z; });
  const double dt = model.cfl_dt(0.4);
  const auto part = core::sfc_partition(m, 6);
  const auto dist_field = run_distributed(model, part, dt, 5);

  advection_model serial = std::move(model);
  for (int s = 0; s < 5; ++s) serial.step(dt);
  double max_diff = 0;
  for (std::size_t i = 0; i < dist_field.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(dist_field[i] - serial.field()[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(Distributed, MgpPartitionAlsoWorks) {
  // The distributed runner is partitioner-agnostic: run with a KWAY
  // partition too.
  const mesh::cubed_sphere m(2);
  advection_model model(m, 3);
  model.set_field([](mesh::vec3 p) { return p.z; });
  const double dt = model.cfl_dt(0.4);
  mgp::options opt;
  opt.algo = mgp::method::kway;
  const auto part = mgp::partition_graph(m.dual_graph(), 5, opt);
  const auto dist_field = run_distributed(model, part, dt, 4);

  advection_model serial = std::move(model);
  for (int s = 0; s < 4; ++s) serial.step(dt);
  double max_diff = 0;
  for (std::size_t i = 0; i < dist_field.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(dist_field[i] - serial.field()[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(Distributed, Preconditions) {
  const mesh::cubed_sphere m(2);
  advection_model model(m, 3);
  model.set_field([](mesh::vec3) { return 1.0; });
  const auto part = core::sfc_partition(m, 4);
  EXPECT_THROW(run_distributed(model, part, -0.1, 1), contract_error);
  EXPECT_THROW(run_distributed(model, part, 0.1, -1), contract_error);
}

}  // namespace
