// Tests for the shallow-water spectral-element solver: resting states,
// Williamson test case 2 (steady geostrophic flow), conservation, tangency,
// and continuity.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/cubed_sphere.hpp"
#include "seam/shallow_water.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

TEST(ShallowWater, LakeAtRestStaysAtRest) {
  // h = const, u = 0 is an exact discrete steady state: all derivative
  // terms vanish node-wise.
  const mesh::cubed_sphere mesh(3);
  shallow_water_model model(mesh, 5);
  model.set_state([](mesh::vec3) { return 7.0; },
                  [](mesh::vec3) { return mesh::vec3{0, 0, 0}; });
  const double dt = model.cfl_dt(0.3);
  for (int s = 0; s < 10; ++s) model.step(dt);
  for (const double h : model.depth()) ASSERT_NEAR(h, 7.0, 1e-12);
  EXPECT_LE(model.max_normal_velocity(), 1e-12);
  for (const double u : model.velocity_x()) ASSERT_NEAR(u, 0.0, 1e-11);
}

TEST(ShallowWater, Williamson2IsSteady) {
  // Steady zonal geostrophic flow: the discrete solution should track the
  // analytic steady state with only spectral + time-integration error.
  const mesh::cubed_sphere mesh(4);
  shallow_water_model model(mesh, 6);
  const double u0 = 0.1, h0 = 10.0;
  model.set_williamson2(u0, h0);
  const auto reference = [&](mesh::vec3 p) {
    return h0 - (model.params().rotation * u0 + 0.5 * u0 * u0) * p.z * p.z /
                    model.params().gravity;
  };
  EXPECT_LE(model.depth_error(reference), 1e-12);  // exact at t = 0

  const double dt = model.cfl_dt(0.25);
  const int steps = 60;
  for (int s = 0; s < steps; ++s) model.step(dt);
  // Depth variation in the reference state is (Ωu0 + u0²/2) ≈ 0.105; demand
  // the drift stays far below it.
  EXPECT_LE(model.depth_error(reference), 2e-4)
      << "steady state drifted after " << steps << " steps of dt=" << dt;
  EXPECT_LE(model.max_normal_velocity(), 1e-12);
  EXPECT_LE(model.continuity_gap(), 1e-12);
}

TEST(ShallowWater, Williamson2ConvergesWithOrder) {
  // Spatial refinement (higher np) must reduce the steady-state drift.
  const double u0 = 0.1, h0 = 10.0;
  double prev_error = 0;
  int idx = 0;
  for (const int np : {4, 6, 8}) {
    const mesh::cubed_sphere mesh(3);
    shallow_water_model model(mesh, np);
    model.set_williamson2(u0, h0);
    const auto reference = [&](mesh::vec3 p) {
      return h0 - (model.params().rotation * u0 + 0.5 * u0 * u0) * p.z *
                      p.z / model.params().gravity;
    };
    const double t_end = 0.05;
    const double dt = model.cfl_dt(0.2);
    const int steps = static_cast<int>(t_end / dt) + 1;
    for (int s = 0; s < steps; ++s) model.step(t_end / steps);
    const double err = model.depth_error(reference);
    if (idx > 0) {
      EXPECT_LT(err, 0.75 * prev_error) << "np=" << np;
    }
    prev_error = err;
    ++idx;
  }
}

TEST(ShallowWater, MassConservedByFluxForm) {
  const mesh::cubed_sphere mesh(3);
  shallow_water_model model(mesh, 6);
  // A non-trivial unsteady state: bumpy depth, rotating flow.
  model.set_state(
      [](mesh::vec3 p) { return 10.0 + 0.1 * p.x + 0.05 * p.y * p.z; },
      [](mesh::vec3 p) { return mesh::vec3{-0.1 * p.y, 0.1 * p.x, 0.0}; });
  const double m0 = model.mass();
  const double dt = model.cfl_dt(0.25);
  for (int s = 0; s < 40; ++s) model.step(dt);
  EXPECT_NEAR(model.mass(), m0, 2e-5 * std::abs(m0));
}

TEST(ShallowWater, MassOfUniformDepthIsAreaTimesDepth) {
  const mesh::cubed_sphere mesh(2);
  shallow_water_model model(mesh, 6);
  model.set_state([](mesh::vec3) { return 3.0; },
                  [](mesh::vec3) { return mesh::vec3{0, 0, 0}; });
  EXPECT_NEAR(model.mass(), 3.0 * 4.0 * std::numbers::pi, 1e-5);
}

TEST(ShallowWater, EnergyBoundedOnUnsteadyFlow) {
  // Total energy is conserved by the continuous equations; the discrete
  // advective form drifts slightly but must not grow systematically.
  const mesh::cubed_sphere mesh(3);
  shallow_water_model model(mesh, 6);
  model.set_state(
      [](mesh::vec3 p) { return 10.0 + 0.2 * p.z * p.z; },
      [](mesh::vec3 p) { return mesh::vec3{-0.2 * p.y, 0.2 * p.x, 0.0}; });
  const double e0 = model.total_energy();
  const double dt = model.cfl_dt(0.25);
  for (int s = 0; s < 40; ++s) model.step(dt);
  EXPECT_NEAR(model.total_energy(), e0, 1e-3 * std::abs(e0));
}

TEST(ShallowWater, GravityWaveRadiatesFromBump) {
  // Drop a height bump on a resting fluid: the depth extremum at the bump
  // must decrease as waves carry energy away (and nothing blows up).
  const mesh::cubed_sphere mesh(3);
  shallow_water_model model(mesh, 6, {/*gravity=*/1.0, /*rotation=*/0.0});
  model.set_state(
      [](mesh::vec3 p) {
        const double d2 = (p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z;
        return 5.0 + 0.5 * std::exp(-10.0 * d2);
      },
      [](mesh::vec3) { return mesh::vec3{0, 0, 0}; });
  double max0 = 0;
  for (const double h : model.depth()) max0 = std::max(max0, h);
  const double dt = model.cfl_dt(0.25);
  for (int s = 0; s < 60; ++s) model.step(dt);
  double max1 = 0, min1 = 1e9;
  for (const double h : model.depth()) {
    max1 = std::max(max1, h);
    min1 = std::min(min1, h);
  }
  EXPECT_LT(max1, max0);       // bump disperses
  EXPECT_GT(max1, 5.0);        // but fluid remains perturbed
  EXPECT_GT(min1, 4.0);        // no blow-up / drainage
  EXPECT_LE(model.continuity_gap(), 1e-12);
}

TEST(ShallowWater, CoriolisDeflectsFlow) {
  // A meridional (pole-ward) jet on a rotating sphere is deflected and
  // develops a zonal component; without rotation it stays meridional far
  // longer. Measure mean |u·east| away from the poles after a few steps.
  const auto mean_zonal_speed = [](double rotation) {
    const mesh::cubed_sphere mesh(3);
    shallow_water_model model(mesh, 5, {1.0, rotation});
    model.set_state([](mesh::vec3) { return 10.0; },
                    [](mesh::vec3 p) {
                      const mesh::vec3 east{-p.y, p.x, 0};
                      const mesh::vec3 north = mesh::cross(p, east);
                      return 0.05 * north;  // meridional jet
                    });
    const double dt = model.cfl_dt(0.25);
    for (int s = 0; s < 20; ++s) model.step(dt);
    const auto ux = model.velocity_x();
    const auto uy = model.velocity_y();
    // Zonal component = (p × u)·ẑ / (distance from axis); use the
    // z-angular-momentum density x·u_y − y·u_x, which is exactly zero for
    // the initial meridional jet.
    double proxy = 0;
    for (std::size_t k = 0; k < ux.size(); ++k) {
      const mesh::vec3 p = model.node_position(k);
      proxy += std::abs(p.x * uy[k] - p.y * ux[k]);
    }
    return proxy / static_cast<double>(ux.size());
  };
  const double with_rotation = mean_zonal_speed(5.0);
  const double without = mean_zonal_speed(0.0);
  EXPECT_GT(with_rotation, 3.0 * without + 1e-5);
}

TEST(ShallowWater, Preconditions) {
  const mesh::cubed_sphere mesh(2);
  EXPECT_THROW(shallow_water_model(mesh, 4, {-1.0, 1.0}), contract_error);
  shallow_water_model model(mesh, 4);
  EXPECT_THROW(model.step(-0.1), contract_error);
  EXPECT_THROW(model.cfl_dt(0.0), contract_error);
}

}  // namespace
