// Tests for the I/O module: CSV round-trips and strict numeric parsing,
// partition persistence, gnuplot artifact generation, and the JSON writer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>

#include "core/sfc_partition.hpp"
#include "io/csv.hpp"
#include "io/gnuplot.hpp"
#include "io/json.hpp"
#include "io/partition_io.hpp"
#include "mesh/cubed_sphere.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::io;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Csv, WriteAndReadBack) {
  csv_writer w({"nproc", "speedup", "method"});
  w.new_row().add(8).add(7.962, 4).add("SFC");
  w.new_row().add(std::int64_t{768}).add(489.0, 4).add("KWAY");
  std::ostringstream os;
  w.write(os);

  std::istringstream is(os.str());
  const csv_data data = read_csv(is);
  ASSERT_EQ(data.headers.size(), 3u);
  EXPECT_EQ(data.column("speedup"), 1u);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][0], "8");
  EXPECT_EQ(data.rows[1][2], "KWAY");
  EXPECT_THROW(data.column("missing"), contract_error);
}

TEST(Csv, RejectsMalformedCells) {
  csv_writer w({"a"});
  w.new_row();
  EXPECT_THROW(w.add("has,comma"), contract_error);
  EXPECT_THROW(csv_writer({"bad,header"}), contract_error);
  EXPECT_THROW(csv_writer({}), contract_error);
  csv_writer w2({"a"});
  EXPECT_THROW(w2.add("x"), contract_error);  // no row started
}

TEST(Csv, FileRoundTrip) {
  const std::string path = temp_path("sfcpart_csv_test.csv");
  csv_writer w({"x", "y"});
  w.new_row().add(1).add(2.5, 3);
  w.write_file(path);
  const csv_data data = read_csv_file(path);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][1], "2.5");
  std::filesystem::remove(path);
  EXPECT_THROW(read_csv_file(path), contract_error);
}

TEST(PartitionIo, RoundTripsExactly) {
  const mesh::cubed_sphere m(4);
  const auto p = core::sfc_partition(m, 24);
  std::ostringstream os;
  save_partition(os, p);
  std::istringstream is(os.str());
  const auto q = load_partition(is);
  EXPECT_EQ(q.num_parts, p.num_parts);
  EXPECT_EQ(q.part_of, p.part_of);
}

TEST(PartitionIo, FileRoundTrip) {
  const std::string path = temp_path("sfcpart_partition_test.csv");
  const mesh::cubed_sphere m(2);
  const auto p = core::sfc_partition(m, 6);
  save_partition_file(path, p);
  const auto q = load_partition_file(path);
  EXPECT_EQ(q.part_of, p.part_of);
  std::filesystem::remove(path);
}

TEST(PartitionIo, RejectsCorruptStreams) {
  const auto expect_bad = [](const std::string& content) {
    std::istringstream is(content);
    EXPECT_THROW(load_partition(is), contract_error) << content;
  };
  expect_bad("");
  expect_bad("garbage\nelement,part\n0,0\n");
  expect_bad("# sfcpart-partition v1 num_vertices=2 num_parts=1\nwrong\n0,0\n1,0\n");
  // Label out of range.
  expect_bad(
      "# sfcpart-partition v1 num_vertices=2 num_parts=1\nelement,part\n0,0\n1,5\n");
  // Missing element.
  expect_bad(
      "# sfcpart-partition v1 num_vertices=2 num_parts=1\nelement,part\n0,0\n");
  // Duplicate element.
  expect_bad(
      "# sfcpart-partition v1 num_vertices=2 num_parts=1\nelement,part\n0,0\n0,0\n");
}

TEST(Gnuplot, WritesDatAndScript) {
  const std::string base = temp_path("sfcpart_gnuplot_test");
  plot_spec spec;
  spec.title = "Speedup";
  spec.ylabel = "speedup";
  spec.series.push_back({"SFC", {2, 4, 8}, {2.0, 4.0, 7.9}});
  spec.series.push_back({"METIS", {2, 4, 8}, {2.0, 3.9, 7.5}});
  write_gnuplot(base, spec);

  std::ifstream gp(base + ".gp");
  ASSERT_TRUE(gp.good());
  std::stringstream script;
  script << gp.rdbuf();
  EXPECT_NE(script.str().find("index 1"), std::string::npos);
  EXPECT_NE(script.str().find("SFC"), std::string::npos);

  std::ifstream dat(base + ".dat");
  ASSERT_TRUE(dat.good());
  std::stringstream data;
  data << dat.rdbuf();
  EXPECT_NE(data.str().find("# METIS"), std::string::npos);

  std::filesystem::remove(base + ".gp");
  std::filesystem::remove(base + ".dat");
}

TEST(CsvParse, Int64AcceptsWholeCellsOnly) {
  EXPECT_EQ(parse_int64("42"), 42);
  EXPECT_EQ(parse_int64("-7"), -7);
  EXPECT_EQ(parse_int64("  13\t"), 13);  // surrounding blanks are fine
  EXPECT_EQ(parse_int64("9223372036854775807"),
            std::numeric_limits<std::int64_t>::max());

  EXPECT_THROW(parse_int64(""), contract_error);
  EXPECT_THROW(parse_int64("   "), contract_error);
  EXPECT_THROW(parse_int64("12abc"), contract_error);    // trailing garbage
  EXPECT_THROW(parse_int64("1 2"), contract_error);      // interior blank
  EXPECT_THROW(parse_int64("3.5"), contract_error);      // not an integer
  EXPECT_THROW(parse_int64("abc"), contract_error);
  // One past int64 max: must throw, not wrap.
  EXPECT_THROW(parse_int64("9223372036854775808"), contract_error);
  EXPECT_THROW(parse_int64("99999999999999999999"), contract_error);
}

TEST(CsvParse, DoubleRejectsGarbageOverflowAndNonFinite) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double(" -1e-3 "), -1e-3);
  EXPECT_DOUBLE_EQ(parse_double("7"), 7.0);

  EXPECT_THROW(parse_double(""), contract_error);
  EXPECT_THROW(parse_double("1.5.2"), contract_error);   // trailing garbage
  EXPECT_THROW(parse_double("1.5x"), contract_error);
  EXPECT_THROW(parse_double("1e999"), contract_error);   // overflow
  EXPECT_THROW(parse_double("nan"), contract_error);     // non-finite
  EXPECT_THROW(parse_double("inf"), contract_error);
}

TEST(CsvParse, TypedAccessorsCheckBoundsAndRaggedRows) {
  std::stringstream ss("id,score\n3,1.5\n4\n");
  const csv_data d = read_csv(ss);
  EXPECT_EQ(d.int64_at(0, "id"), 3);
  EXPECT_DOUBLE_EQ(d.double_at(0, "score"), 1.5);
  EXPECT_EQ(d.int64_at(1, "id"), 4);
  EXPECT_THROW(d.double_at(1, "score"), contract_error);  // ragged row
  EXPECT_THROW(d.int64_at(2, "id"), contract_error);      // row out of range
  EXPECT_THROW(d.int64_at(0, "missing"), contract_error);
  EXPECT_THROW(d.int64_at(0, "score"), contract_error);   // "1.5" not integer
}

TEST(Json, WriterRoundTripsThroughParser) {
  json_value doc = json_object();
  doc.object["name"] = json_string("a \"quoted\"\nvalue");
  doc.object["count"] = json_number(42);
  doc.object["ratio"] = json_number(0.1);
  doc.object["big"] = json_number(9007199254740992.0);  // 2^53
  doc.object["ok"] = json_bool(true);
  doc.object["none"] = json_value{};
  doc.object["items"] = json_array();
  doc.object["items"].array.push_back(json_number(-3));
  doc.object["items"].array.push_back(json_string(""));

  for (const int indent : {0, 2}) {
    const json_value back = parse_json(write_json(doc, indent));
    EXPECT_EQ(back.at("name").string, doc.at("name").string);
    EXPECT_EQ(back.at("count").number, 42);
    EXPECT_DOUBLE_EQ(back.at("ratio").number, 0.1);
    EXPECT_EQ(back.at("big").number, 9007199254740992.0);
    EXPECT_TRUE(back.at("ok").boolean);
    EXPECT_TRUE(back.at("none").is_null());
    ASSERT_EQ(back.at("items").array.size(), 2u);
    EXPECT_EQ(back.at("items").array[0].number, -3);
  }
}

TEST(Json, WriterFormatsIntegralNumbersWithoutDecimalPoint) {
  json_value v = json_array();
  v.array.push_back(json_number(1234567));
  v.array.push_back(json_number(2.5));
  const std::string text = write_json(v);
  EXPECT_NE(text.find("1234567"), std::string::npos);
  EXPECT_EQ(text.find("1234567."), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
}

TEST(Json, WriterRejectsNonFiniteNumbers) {
  EXPECT_THROW(write_json(json_number(std::nan(""))), contract_error);
  EXPECT_THROW(write_json(json_number(
                   std::numeric_limits<double>::infinity())),
               contract_error);
}

TEST(Json, WriteFileProducesParseableDocument) {
  const std::string path = temp_path("sfcpart_json_writer_test.json");
  json_value doc = json_object();
  doc.object["k"] = json_string("v");
  write_json_file(doc, path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(parse_json(buf.str()).at("k").string, "v");
  std::filesystem::remove(path);
}

TEST(Gnuplot, RejectsBadSeries) {
  plot_spec empty;
  EXPECT_THROW(write_gnuplot(temp_path("x"), empty), contract_error);
  plot_spec mismatched;
  mismatched.series.push_back({"s", {1, 2}, {1}});
  EXPECT_THROW(write_gnuplot(temp_path("x"), mismatched), contract_error);
}

}  // namespace
