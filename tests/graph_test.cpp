// Unit and property tests for the CSR graph substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using namespace sfp::graph;

TEST(Builder, TriangleBasics) {
  builder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(0, 2, 4);
  b.set_vertex_weight(2, 7);
  const csr g = b.build();
  g.validate();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.vertex_weight(0), 1);
  EXPECT_EQ(g.vertex_weight(2), 7);
  EXPECT_EQ(g.total_vertex_weight(), 9);
  EXPECT_EQ(g.degree(0), 2);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<vid>(n0.begin(), n0.end()), (std::vector<vid>{1, 2}));
  const auto w0 = g.neighbor_weights(0);
  EXPECT_EQ(std::vector<weight>(w0.begin(), w0.end()),
            (std::vector<weight>{2, 4}));
}

TEST(Builder, MergesDuplicateEdges) {
  builder b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 5);  // same undirected edge, reversed
  const csr g = b.build();
  g.validate();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.neighbor_weights(0)[0], 7);
}

TEST(Builder, RejectsBadInput) {
  builder b(2);
  EXPECT_THROW(b.add_edge(0, 0), contract_error);   // self loop
  EXPECT_THROW(b.add_edge(0, 2), contract_error);   // out of range
  EXPECT_THROW(b.add_edge(0, 1, 0), contract_error);  // non-positive weight
  EXPECT_THROW(b.set_vertex_weight(5, 1), contract_error);
  EXPECT_THROW(builder(0), contract_error);
}

TEST(Builder, IsolatedVerticesAllowed) {
  builder b(4);
  b.add_edge(0, 1);
  const csr g = b.build();
  g.validate();
  EXPECT_EQ(g.degree(2), 0);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_FALSE(is_connected(g));
}

// ---- generators -------------------------------------------------------------

TEST(Generators, GridGraphCounts) {
  const csr g = grid_graph(4, 3);
  g.validate();
  EXPECT_EQ(g.num_vertices(), 12);
  // Edges: 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GridGraphDegrees) {
  const csr g = grid_graph(3, 3);
  // Corners have degree 2, edges 3, center 4.
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(4), 4);
}

TEST(Generators, Grid8Weights) {
  const csr g = grid_graph_8(3, 3, 8, 1);
  g.validate();
  // Center vertex (id 4) has 4 axis neighbours (weight 8) and 4 diagonal
  // (weight 1).
  EXPECT_EQ(g.degree(4), 8);
  weight axis = 0, diag = 0;
  const auto w = g.neighbor_weights(4);
  for (const weight ww : w) (ww == 8 ? axis : diag) += 1;
  EXPECT_EQ(axis, 4);
  EXPECT_EQ(diag, 4);
}

TEST(Generators, RingGraph) {
  const csr g = ring_graph(5);
  g.validate();
  EXPECT_EQ(g.num_edges(), 5);
  for (vid v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomConnectedGraphIsConnectedAndValid) {
  rng r(11);
  for (int trial = 0; trial < 5; ++trial) {
    const csr g = random_connected_graph(50, 100, 9, r);
    g.validate();
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_vertices(), 50);
    EXPECT_GE(g.num_edges(), 49);
  }
}

// ---- ops ---------------------------------------------------------------------

TEST(Ops, ContractGrid) {
  // Contract a 4x1 path {0,1,2,3} into pairs {0,1} -> 0 and {2,3} -> 1.
  const csr g = grid_graph(4, 1);
  const std::vector<vid> coarse_of{0, 0, 1, 1};
  const csr c = contract(g, coarse_of, 2);
  c.validate();
  EXPECT_EQ(c.num_vertices(), 2);
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.vertex_weight(0), 2);
  EXPECT_EQ(c.vertex_weight(1), 2);
  EXPECT_EQ(c.neighbor_weights(0)[0], 1);  // single cut edge weight 1
}

TEST(Ops, ContractMergesParallelEdges) {
  // Square 0-1-3-2-0; contract {0,1} and {2,3}: the two vertical edges
  // (0-2 and 1-3) merge into one coarse edge of weight 2.
  const csr g = grid_graph(2, 2);
  const std::vector<vid> coarse_of{0, 0, 1, 1};
  const csr c = contract(g, coarse_of, 2);
  c.validate();
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.neighbor_weights(0)[0], 2);
}

TEST(Ops, ContractPreservesTotalVertexWeight) {
  rng r(3);
  const csr g = random_connected_graph(40, 60, 5, r);
  std::vector<vid> coarse_of(40);
  for (vid v = 0; v < 40; ++v) coarse_of[static_cast<std::size_t>(v)] = v / 4;
  const csr c = contract(g, coarse_of, 10);
  c.validate();
  EXPECT_EQ(c.total_vertex_weight(), g.total_vertex_weight());
}

TEST(Ops, InducedSubgraph) {
  const csr g = grid_graph(3, 3);
  const std::vector<vid> keep{0, 1, 3, 4};  // top-left 2x2 block
  std::vector<vid> old_of_new;
  const csr s = induced_subgraph(g, keep, old_of_new);
  s.validate();
  EXPECT_EQ(s.num_vertices(), 4);
  EXPECT_EQ(s.num_edges(), 4);  // the 2x2 square
  EXPECT_EQ(old_of_new, keep);
}

TEST(Ops, ConnectedComponents) {
  builder b(5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const csr g = b.build();
  std::vector<vid> comp;
  EXPECT_EQ(connected_components(g, comp), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(Ops, CutWeight) {
  const csr g = grid_graph(2, 2);
  // Vertical split {0,2} vs {1,3} cuts the two horizontal edges.
  const std::vector<vid> blocks{0, 1, 0, 1};
  EXPECT_EQ(cut_weight(g, blocks), 2);
  const std::vector<vid> all_same{0, 0, 0, 0};
  EXPECT_EQ(cut_weight(g, all_same), 0);
}

TEST(Ops, ContractRejectsBadMap) {
  const csr g = grid_graph(2, 2);
  const std::vector<vid> bad{0, 0, 0, 5};
  EXPECT_THROW(contract(g, bad, 2), contract_error);
  const std::vector<vid> empty_coarse{0, 0, 0, 0};
  EXPECT_THROW(contract(g, empty_coarse, 2), contract_error);  // part 1 empty
}

}  // namespace
