// Tests for generator synthesis: derived tables must obey the same
// invariants as the hand-built Hilbert/m-Peano generators, and the curves
// they produce must verify at every factor and in arbitrary nestings —
// the "Cinco" extension (factor 5, as later added to NCAR's HOMME) and
// beyond.

#include <gtest/gtest.h>

#include <set>

#include "sfc/curve.hpp"
#include "sfc/generator.hpp"
#include "sfc/verify.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::sfc;

/// Structural validation of a generator table for factor f, mirroring the
/// corner-chaining rules derive_generator() searches under.
void validate_table(const std::vector<child_frame>& table, int f) {
  ASSERT_EQ(table.size(), static_cast<std::size_t>(f * f));
  std::set<std::pair<int, int>> covered;
  for (std::size_t k = 0; k < table.size(); ++k) {
    const child_frame& c = table[k];
    // A' and B' must be perpendicular unit steps.
    EXPECT_EQ(std::abs(c.aa) + std::abs(c.ab), 1);
    EXPECT_EQ(std::abs(c.ba) + std::abs(c.bb), 1);
    EXPECT_EQ(c.aa * c.ba + c.ab * c.bb, 0);
    // Covered cell: lower-left corner of the frame's span.
    const int cx = c.oa + std::min(0, c.aa + c.ba);
    const int cy = c.ob + std::min(0, c.ab + c.bb);
    EXPECT_GE(cx, 0);
    EXPECT_LT(cx, f);
    EXPECT_GE(cy, 0);
    EXPECT_LT(cy, f);
    EXPECT_TRUE(covered.insert({cx, cy}).second) << "duplicate cell at " << k;
    // Chain: exit corner of k equals entry corner of k+1.
    if (k + 1 < table.size()) {
      EXPECT_EQ(c.oa + c.aa, table[k + 1].oa) << "chain broken at " << k;
      EXPECT_EQ(c.ob + c.ab, table[k + 1].ob) << "chain broken at " << k;
    }
  }
  // Entry at the origin corner; exit at origin + A.
  EXPECT_EQ(table.front().oa, 0);
  EXPECT_EQ(table.front().ob, 0);
  EXPECT_EQ(table.back().oa + table.back().aa, f);
  EXPECT_EQ(table.back().ob + table.back().ab, 0);
}

TEST(Generator, HandTablesAreStructurallyValid) {
  validate_table(generator_for(2), 2);
  validate_table(generator_for(3), 3);
}

class DerivedGenerator : public ::testing::TestWithParam<int> {};

TEST_P(DerivedGenerator, SynthesisSucceedsAndIsValid) {
  const int f = GetParam();
  const auto table = derive_generator(f);
  ASSERT_FALSE(table.empty()) << "no generator found for factor " << f;
  validate_table(table, f);
}

TEST_P(DerivedGenerator, SingleLevelCurveVerifies) {
  const int f = GetParam();
  const auto curve = generate_factors({f});
  const auto r = verify_curve(curve, f);
  EXPECT_TRUE(r.ok) << "factor " << f << ": " << r.error;
}

TEST_P(DerivedGenerator, TwoLevelSelfNestingVerifies) {
  const int f = GetParam();
  if (f > 7) return;  // keep test runtime bounded (f^4 cells)
  const auto curve = generate_factors({f, f});
  const auto r = verify_curve(curve, f * f);
  EXPECT_TRUE(r.ok) << "factor " << f << ": " << r.error;
}

INSTANTIATE_TEST_SUITE_P(Factors, DerivedGenerator,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
                         ::testing::PrintToStringParamName());

TEST(Generator, MixedFactorNestingsVerify) {
  // Any mix of factors with generators nests into a valid curve — the
  // invariant behind the paper's Hilbert-Peano construction, generalized.
  const std::vector<std::vector<int>> schedules = {
      {5, 2},       // side 10
      {2, 5},       // side 10, opposite order
      {5, 3},       // side 15
      {5, 2, 2},    // side 20
      {5, 3, 2},    // side 30 (HOMME's Ne=30 case)
      {7, 2},       // side 14 — beyond HOMME
      {3, 5, 2},    // side 30, different order
  };
  for (const auto& factors : schedules) {
    int side = 1;
    for (const int f : factors) side *= f;
    const auto curve = generate_factors(factors);
    const auto r = verify_curve(curve, side);
    EXPECT_TRUE(r.ok) << "side " << side << ": " << r.error;
  }
}

TEST(Generator, CachedLookupMatchesDerivation) {
  const auto& cached = generator_for(5);
  const auto derived = derive_generator(5);
  EXPECT_EQ(cached, derived);
}

TEST(Generator, Preconditions) {
  EXPECT_THROW(derive_generator(1), sfp::contract_error);
  EXPECT_THROW(derive_generator(17), sfp::contract_error);
  EXPECT_FALSE(has_generator(1));
  EXPECT_TRUE(has_generator(5));
  EXPECT_TRUE(has_generator(2));
}

// ---- extended schedules ------------------------------------------------------

TEST(ExtendedSchedule, CoversFactorFive) {
  for (const int side : {5, 10, 15, 20, 25, 30, 45, 60, 90}) {
    const auto s = extended_schedule_for(side);
    ASSERT_TRUE(s.has_value()) << side;
    EXPECT_EQ(side_of(*s), side);
    const auto curve = generate(*s);
    const auto r = verify_curve(curve, side);
    EXPECT_TRUE(r.ok) << "side " << side << ": " << r.error;
  }
  EXPECT_TRUE(is_sfc_compatible_extended(10));
  EXPECT_FALSE(is_sfc_compatible(10));
  EXPECT_FALSE(is_sfc_compatible_extended(7));   // 7 needs generate_factors
  EXPECT_FALSE(is_sfc_compatible_extended(1));
}

TEST(ExtendedSchedule, NamesIncludeCinco) {
  EXPECT_EQ(schedule_name(*extended_schedule_for(5)), "cinco");
  EXPECT_EQ(schedule_name(*extended_schedule_for(30)), "hilbert-peano-cinco");
  EXPECT_EQ(schedule_name(*extended_schedule_for(12)), "hilbert-peano");
}

TEST(ExtendedSchedule, LargerFactorsRefineFirst) {
  const auto s = extended_schedule_for(30);
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ((*s)[0], refinement::cinco5);
  EXPECT_EQ((*s)[1], refinement::peano3);
  EXPECT_EQ((*s)[2], refinement::hilbert2);
}

}  // namespace
