// Cross-module randomized property tests: drive the full pipeline —
// mesh → curve → partition → metrics → simulated time — through random
// configurations and assert the invariants that must hold for *every* one.
// All randomness is seeded; failures reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "sfc/curve.hpp"
#include "sfc/verify.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;

/// Brute-force edgecut/TCV recomputation to cross-check compute_metrics.
struct brute_metrics {
  std::int64_t edgecut_edges = 0;
  graph::weight edgecut_weight = 0;
  double tcv_interfaces = 0;
};

brute_metrics brute_force(const graph::csr& g,
                          const partition::partition& p) {
  brute_metrics m;
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    std::set<graph::vid> remote;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto pv = p.part_of[static_cast<std::size_t>(v)];
      const auto pu = p.part_of[static_cast<std::size_t>(nbrs[i])];
      if (pv == pu) continue;
      remote.insert(pu);
      if (v < nbrs[i]) {
        ++m.edgecut_edges;
        m.edgecut_weight += wgts[i];
      }
    }
    m.tcv_interfaces += static_cast<double>(remote.size());
  }
  return m;
}

TEST(Fuzz, MetricsMatchBruteForceOnRandomGraphs) {
  rng seeds(2024);
  for (int trial = 0; trial < 20; ++trial) {
    rng r(seeds());
    const auto n = static_cast<graph::vid>(10 + r.below(120));
    const auto g = graph::random_connected_graph(
        n, static_cast<graph::eid>(r.below(300)), 7, r);
    const int k = 1 + static_cast<int>(r.below(static_cast<std::uint64_t>(n)));
    partition::partition p;
    p.num_parts = k;
    p.part_of.resize(static_cast<std::size_t>(n));
    for (auto& label : p.part_of)
      label = static_cast<graph::vid>(r.below(static_cast<std::uint64_t>(k)));
    const auto fast = partition::compute_metrics(g, p);
    const auto slow = brute_force(g, p);
    ASSERT_EQ(fast.edgecut_edges, slow.edgecut_edges) << "trial " << trial;
    ASSERT_EQ(fast.edgecut_weight, slow.edgecut_weight) << "trial " << trial;
    ASSERT_DOUBLE_EQ(fast.tcv_interfaces, slow.tcv_interfaces)
        << "trial " << trial;
    // Structural invariants.
    ASSERT_LE(fast.edgecut_edges, g.num_edges());
    ASSERT_GE(fast.lb_elems, 0.0);
    ASSERT_LT(fast.lb_elems, 1.0);
  }
}

TEST(Fuzz, MgpInvariantsOnRandomGraphs) {
  rng seeds(777);
  for (int trial = 0; trial < 12; ++trial) {
    rng r(seeds());
    const auto n = static_cast<graph::vid>(12 + r.below(150));
    const auto g = graph::random_connected_graph(
        n, static_cast<graph::eid>(r.below(400)), 9, r);
    const int k =
        2 + static_cast<int>(r.below(static_cast<std::uint64_t>(n - 1)));
    for (const auto algo :
         {mgp::method::recursive_bisection, mgp::method::kway}) {
      mgp::options opt;
      opt.algo = algo;
      opt.seed = seeds();
      const auto p = mgp::partition_graph(g, k, opt);
      partition::validate(p, g);
      ASSERT_TRUE(partition::all_parts_nonempty(p))
          << mgp::method_name(algo) << " n=" << n << " k=" << k;
      // The cut can never exceed the total edge weight.
      const auto m = partition::compute_metrics(g, p);
      graph::weight total_w = 0;
      for (graph::vid v = 0; v < n; ++v)
        for (const auto w : g.neighbor_weights(v)) total_w += w;
      ASSERT_LE(m.edgecut_weight, total_w / 2);
    }
  }
}

TEST(Fuzz, SfcPipelineOnRandomConfigurations) {
  rng seeds(31337);
  const int sides[] = {2, 3, 4, 6, 8, 9, 12};
  for (int trial = 0; trial < 12; ++trial) {
    rng r(seeds());
    const int ne = sides[r.below(7)];
    const mesh::cubed_sphere mesh(ne);
    const int k = mesh.num_elements();
    const auto curve = core::build_cube_curve(mesh);
    std::string error;
    ASSERT_TRUE(core::verify_cube_curve(mesh, curve.order, &error)) << error;

    // Random valid nproc (not necessarily a divisor).
    const int nproc =
        1 + static_cast<int>(r.below(static_cast<std::uint64_t>(k)));
    // Random positive weights.
    std::vector<graph::weight> w(static_cast<std::size_t>(k));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(6));
    const auto p = core::sfc_partition(curve, nproc, w);
    partition::validate(p, mesh.dual_graph());
    ASSERT_TRUE(partition::all_parts_nonempty(p))
        << "ne=" << ne << " nproc=" << nproc;
    // Labels monotone along the curve (contiguous segments).
    graph::vid prev = 0;
    for (const int e : curve.order) {
      const auto label = p.part_of[static_cast<std::size_t>(e)];
      ASSERT_GE(label, prev);
      prev = label;
    }
  }
}

TEST(Fuzz, SimulatedTimeInvariants) {
  rng seeds(55);
  const mesh::cubed_sphere mesh(8);
  const auto dual = mesh.dual_graph();
  const perf::machine_model machine;
  const perf::seam_workload workload;
  const auto serial = perf::serial_step(mesh.num_elements(), machine, workload);
  for (int trial = 0; trial < 10; ++trial) {
    rng r(seeds());
    const int k = 2 + static_cast<int>(r.below(383));
    partition::partition p;
    p.num_parts = k;
    p.part_of.resize(384);
    // Random partition, then force every part non-empty by seeding one
    // element per part.
    for (auto& label : p.part_of)
      label = static_cast<graph::vid>(r.below(static_cast<std::uint64_t>(k)));
    for (int part = 0; part < k; ++part)
      p.part_of[static_cast<std::size_t>(part)] = part;
    const auto t = perf::simulate_step(dual, p, machine, workload);
    // A parallel step can never beat perfect division of the serial work,
    // and can never be slower than doing everything on the critical rank's
    // own (compute+comm includes at least one element).
    ASSERT_GE(t.total_s * k, serial.total_s * 0.999);
    ASSERT_GT(t.compute_s, 0.0);
    ASSERT_GE(t.comm_s, 0.0);
    ASSERT_LE(t.avg_rank_s, t.total_s + 1e-15);
    ASSERT_NEAR(t.total_s, t.compute_s + t.comm_s, 1e-12);
  }
}

TEST(Fuzz, ContractThenCutIsConsistent) {
  // Coarsening invariant used by the multilevel partitioner: a partition of
  // the coarse graph, projected to the fine graph, has the same cut weight.
  rng seeds(99);
  for (int trial = 0; trial < 10; ++trial) {
    rng r(seeds());
    const auto n = static_cast<graph::vid>(16 + r.below(80));
    const auto g = graph::random_connected_graph(
        n, static_cast<graph::eid>(r.below(200)), 5, r);
    // Random contraction map onto n/2 coarse vertices (ensure surjective).
    const graph::vid nc = n / 2;
    std::vector<graph::vid> coarse_of(static_cast<std::size_t>(n));
    for (graph::vid v = 0; v < nc; ++v)
      coarse_of[static_cast<std::size_t>(v)] = v;  // surjectivity
    for (graph::vid v = nc; v < n; ++v)
      coarse_of[static_cast<std::size_t>(v)] =
          static_cast<graph::vid>(r.below(static_cast<std::uint64_t>(nc)));
    const auto cg = graph::contract(g, coarse_of, nc);
    cg.validate();
    ASSERT_EQ(cg.total_vertex_weight(), g.total_vertex_weight());

    std::vector<graph::vid> coarse_labels(static_cast<std::size_t>(nc));
    for (auto& label : coarse_labels)
      label = static_cast<graph::vid>(r.below(3));
    std::vector<graph::vid> fine_labels(static_cast<std::size_t>(n));
    for (graph::vid v = 0; v < n; ++v)
      fine_labels[static_cast<std::size_t>(v)] =
          coarse_labels[static_cast<std::size_t>(
              coarse_of[static_cast<std::size_t>(v)])];
    ASSERT_EQ(graph::cut_weight(cg, coarse_labels),
              graph::cut_weight(g, fine_labels))
        << "trial " << trial;
  }
}

TEST(Fuzz, RandomSchedulesAlwaysVerify) {
  rng seeds(4242);
  for (int trial = 0; trial < 15; ++trial) {
    rng r(seeds());
    // Random factor list with product <= 64.
    std::vector<int> factors;
    int side = 1;
    while (true) {
      const int f = 2 + static_cast<int>(r.below(4));  // 2..5
      if (side * f > 64) break;
      side *= f;
      factors.push_back(f);
    }
    if (factors.empty()) factors.push_back(2), side = 2;
    const auto curve = sfc::generate_factors(factors);
    const auto res = sfc::verify_curve(curve, side);
    ASSERT_TRUE(res.ok) << "trial " << trial << ": " << res.error;
  }
}

}  // namespace
