// Regression tests for core::plan_recovery edge cases: collapsing to a
// single survivor (nparts=2), failure of the rank owning the curve head or
// tail (only one absorbing neighbour exists), weighted segments, and the
// structural invariants every plan must satisfy — survivor_of is a
// bijection onto the surviving pre-failure labels and exactly the failed
// part's elements migrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/escalation.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/partition.hpp"

namespace {

using namespace sfp;

// Check every invariant a recovery plan promises, for any (part, failed).
void expect_valid_plan(const core::cube_curve& curve,
                       const partition::partition& before, int failed,
                       const core::recovery_plan& plan,
                       std::span<const graph::weight> weights = {}) {
  const int nparts = before.num_parts;
  ASSERT_EQ(plan.part.num_parts, nparts - 1);
  ASSERT_EQ(plan.part.part_of.size(), before.part_of.size());
  EXPECT_TRUE(partition::all_parts_nonempty(plan.part));

  // survivor_of is a bijection: new labels [0, nparts-1) onto exactly the
  // old labels minus the failed one, in ascending order (labels compact
  // around the hole, so relative order is preserved).
  ASSERT_EQ(plan.survivor_of.size(), static_cast<std::size_t>(nparts - 1));
  std::vector<graph::vid> expected;
  for (graph::vid l = 0; l < nparts; ++l)
    if (l != failed) expected.push_back(l);
  EXPECT_EQ(plan.survivor_of, expected);

  // Exactly the failed part's elements change physical owner; every other
  // element stays on the process that already hosts it.
  std::int64_t failed_elems = 0;
  graph::weight failed_weight = 0;
  for (std::size_t e = 0; e < before.part_of.size(); ++e) {
    const graph::vid old_label = before.part_of[e];
    const graph::vid new_label = plan.part.part_of[e];
    const graph::weight w = weights.empty() ? 1 : weights[e];
    if (old_label == failed) {
      ++failed_elems;
      failed_weight += w;
    } else {
      EXPECT_EQ(plan.survivor_of[static_cast<std::size_t>(new_label)],
                old_label)
          << "surviving element " << e << " migrated";
    }
  }
  EXPECT_EQ(plan.migration.moved_elements, failed_elems);
  EXPECT_EQ(plan.migration.moved_weight, failed_weight);
  EXPECT_DOUBLE_EQ(
      plan.migration.moved_fraction,
      static_cast<double>(failed_elems) /
          static_cast<double>(before.part_of.size()));

  // The new partition is still contiguous along the curve (a re-slice,
  // not a scatter): labels are non-decreasing in curve order.
  graph::vid prev = 0;
  for (const int e : curve.order) {
    const graph::vid l = plan.part.part_of[static_cast<std::size_t>(e)];
    EXPECT_GE(l, prev) << "label decreased along the curve at element " << e;
    prev = l;
  }
}

TEST(PlanRecovery, TwoPartsFailFirstLeavesSingleSurvivor) {
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 2);
  const auto plan = core::plan_recovery(curve, p0, 0);
  expect_valid_plan(curve, p0, 0, plan);
  // The lone survivor is pre-failure rank 1 and owns every element.
  EXPECT_EQ(plan.survivor_of, std::vector<graph::vid>{1});
  for (const auto l : plan.part.part_of) EXPECT_EQ(l, 0);
  // It absorbed exactly rank 0's half.
  EXPECT_EQ(plan.migration.moved_elements, m.num_elements() / 2);
}

TEST(PlanRecovery, TwoPartsFailSecondLeavesSingleSurvivor) {
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const auto p0 = core::sfc_partition(curve, 2);
  const auto plan = core::plan_recovery(curve, p0, 1);
  expect_valid_plan(curve, p0, 1, plan);
  EXPECT_EQ(plan.survivor_of, std::vector<graph::vid>{0});
  for (const auto l : plan.part.part_of) EXPECT_EQ(l, 0);
}

TEST(PlanRecovery, CurveHeadFailureAbsorbedByRightNeighbourOnly) {
  // Rank 0 owns the head of the curve: there is no left neighbour, so its
  // whole segment must flow right into pre-failure rank 1.
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 12;
  const auto p0 = core::sfc_partition(curve, nparts);
  const auto plan = core::plan_recovery(curve, p0, 0);
  expect_valid_plan(curve, p0, 0, plan);
  for (std::size_t e = 0; e < p0.part_of.size(); ++e) {
    if (p0.part_of[e] == 0) {
      EXPECT_EQ(plan.survivor_of[static_cast<std::size_t>(
                    plan.part.part_of[e])],
                1);
    }
  }
}

TEST(PlanRecovery, CurveTailFailureAbsorbedByLeftNeighbourOnly) {
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 12;
  const auto p0 = core::sfc_partition(curve, nparts);
  const int failed = nparts - 1;
  const auto plan = core::plan_recovery(curve, p0, failed);
  expect_valid_plan(curve, p0, failed, plan);
  for (std::size_t e = 0; e < p0.part_of.size(); ++e) {
    if (p0.part_of[e] == failed) {
      EXPECT_EQ(plan.survivor_of[static_cast<std::size_t>(
                    plan.part.part_of[e])],
                failed - 1);
    }
  }
}

TEST(PlanRecovery, InteriorFailureSplitsBetweenBothNeighbours) {
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 12;
  const auto p0 = core::sfc_partition(curve, nparts);
  const int failed = 5;
  const auto plan = core::plan_recovery(curve, p0, failed);
  expect_valid_plan(curve, p0, failed, plan);
  // With unit weights and an even segment, each neighbour takes half.
  std::int64_t to_left = 0, to_right = 0;
  for (std::size_t e = 0; e < p0.part_of.size(); ++e) {
    if (p0.part_of[e] != failed) continue;
    const graph::vid survivor =
        plan.survivor_of[static_cast<std::size_t>(plan.part.part_of[e])];
    if (survivor == failed - 1) ++to_left;
    else if (survivor == failed + 1) ++to_right;
    else FAIL() << "element left a non-adjacent part: " << survivor;
  }
  EXPECT_GT(to_left, 0);
  EXPECT_GT(to_right, 0);
  EXPECT_LE(std::abs(to_left - to_right), 1);
}

TEST(PlanRecovery, WeightedSegmentsSplitAtWeightMidpoint) {
  // Heavily skewed weights: the failed segment's split point follows
  // weight, not element count, and migration accounting uses the weights.
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const int k = m.num_elements();
  std::vector<graph::weight> w(static_cast<std::size_t>(k), 1);
  // Make the first half of the curve 10x heavier.
  for (std::size_t pos = 0; pos < curve.order.size() / 2; ++pos)
    w[static_cast<std::size_t>(curve.order[pos])] = 10;
  const int nparts = 8;
  const auto p0 = core::sfc_partition(curve, nparts, w);
  for (const int failed : {0, 3, nparts - 1}) {
    const auto plan = core::plan_recovery(curve, p0, failed, w);
    expect_valid_plan(curve, p0, failed, plan, w);
  }
}

TEST(PlanRecovery, EveryRankFailureYieldsValidPlan) {
  // Sweep: losing any single rank must produce a structurally valid plan.
  const mesh::cubed_sphere m(4);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 16;
  const auto p0 = core::sfc_partition(curve, nparts);
  for (int failed = 0; failed < nparts; ++failed) {
    SCOPED_TRACE("failed=" + std::to_string(failed));
    const auto plan = core::plan_recovery(curve, p0, failed);
    expect_valid_plan(curve, p0, failed, plan);
  }
}

// ---- escalation policy ------------------------------------------------------

TEST(Escalation, KilledRankIsTheVictim) {
  const auto d = core::decide_escalation(core::failure_kind::rank_killed,
                                         /*thrower=*/2, /*peer=*/-1,
                                         /*attempt=*/0, /*max_recoveries=*/1,
                                         /*nranks=*/4);
  EXPECT_TRUE(d.recover);
  EXPECT_EQ(d.victim, 2);
}

TEST(Escalation, UnreachablePeerIsTheVictimNotTheThrower) {
  // The thrower is the healthy side that gave up retransmitting; recovery
  // must drop the silent peer.
  const auto d = core::decide_escalation(core::failure_kind::peer_unreachable,
                                         /*thrower=*/0, /*peer=*/3, 0, 1, 4);
  EXPECT_TRUE(d.recover);
  EXPECT_EQ(d.victim, 3);
}

TEST(Escalation, TimeoutFallsBackToTheThrower) {
  const auto d = core::decide_escalation(core::failure_kind::comm_timeout,
                                         /*thrower=*/1, /*peer=*/-1, 0, 1, 4);
  EXPECT_TRUE(d.recover);
  EXPECT_EQ(d.victim, 1);
}

TEST(Escalation, NeverRecoversPastTheBudgetOrBelowTwoRanks) {
  EXPECT_FALSE(core::decide_escalation(core::failure_kind::rank_killed, 0, -1,
                                       /*attempt=*/1, /*max_recoveries=*/1, 4)
                   .recover);
  EXPECT_FALSE(core::decide_escalation(core::failure_kind::rank_killed, 0, -1,
                                       0, 1, /*nranks=*/1)
                   .recover);
}

TEST(Escalation, UnknownFailuresAndInvalidVictimsRethrow) {
  EXPECT_FALSE(
      core::decide_escalation(core::failure_kind::unknown, 2, 3, 0, 5, 4)
          .recover);
  // A peer id outside the world (or never set) cannot be recovered around.
  const auto d = core::decide_escalation(core::failure_kind::peer_unreachable,
                                         0, /*peer=*/-1, 0, 5, 4);
  EXPECT_FALSE(d.recover);
  EXPECT_EQ(d.victim, -1);
}

}  // namespace
