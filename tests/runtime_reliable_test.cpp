// Tests for the reliable-delivery transport: CRC32C, the wire envelope,
// exactly-once in-order delivery under drop/duplicate/corrupt/truncate/
// reorder injection, retransmit exhaustion, and the fault-injection
// extensions (payload corruption, truncation, reordering) it heals.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/fault.hpp"
#include "runtime/reliable.hpp"
#include "runtime/world.hpp"

namespace {

using namespace sfp::runtime;
using namespace std::chrono_literals;

// ---- crc32c -----------------------------------------------------------------

TEST(Crc32c, MatchesKnownVector) {
  // RFC 3720 appendix test vector: CRC32C("123456789") = 0xe3069283.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32c(digits, 9), 0xe3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(nullptr, 0), 0u); }

TEST(Crc32c, SingleBitFlipChangesChecksum) {
  std::vector<double> payload = {1.0, 2.0, 3.0};
  const std::uint32_t clean =
      crc32c(payload.data(), payload.size() * sizeof(double));
  std::uint64_t bits;
  std::memcpy(&bits, &payload[1], sizeof(bits));
  bits ^= 1ull << 17;
  std::memcpy(&payload[1], &bits, sizeof(bits));
  EXPECT_NE(clean, crc32c(payload.data(), payload.size() * sizeof(double)));
}

// ---- wire envelope ----------------------------------------------------------

TEST(WireEnvelope, RoundTripsHeaderAndPayload) {
  envelope h;
  h.type = envelope::kind::data;
  h.epoch = 7;
  h.tag = 42;
  h.seq = 123456;
  const std::vector<double> payload = {3.14, -2.71, 0.0, 1e300};
  const std::vector<double> image = wire::encode(h, payload);
  ASSERT_EQ(image.size(), wire::header_doubles + payload.size());

  envelope parsed;
  std::vector<double> body;
  ASSERT_TRUE(wire::decode(image, /*verify_checksum=*/true, &parsed, &body));
  EXPECT_EQ(parsed.type, envelope::kind::data);
  EXPECT_EQ(parsed.epoch, 7u);
  EXPECT_EQ(parsed.tag, 42);
  EXPECT_EQ(parsed.seq, 123456u);
  EXPECT_EQ(body, payload);
}

TEST(WireEnvelope, NegativeTagSurvivesRoundTrip) {
  envelope h;
  h.tag = -1003;  // fence rounds use reserved negative tags
  const std::vector<double> image = wire::encode(h, {});
  envelope parsed;
  std::vector<double> body;
  ASSERT_TRUE(wire::decode(image, true, &parsed, &body));
  EXPECT_EQ(parsed.tag, -1003);
  EXPECT_TRUE(body.empty());
}

TEST(WireEnvelope, DetectsPayloadBitFlip) {
  envelope h;
  std::vector<double> image = wire::encode(h, {{1.0, 2.0}});
  std::uint64_t bits;
  std::memcpy(&bits, &image[wire::header_doubles], sizeof(bits));
  bits ^= 1ull << 3;
  std::memcpy(&image[wire::header_doubles], &bits, sizeof(bits));
  envelope parsed;
  std::vector<double> body;
  EXPECT_FALSE(wire::decode(image, true, &parsed, &body));
  // The test hook that the chaos soak must catch: verification off lets the
  // mangled payload through.
  EXPECT_TRUE(wire::decode(image, /*verify_checksum=*/false, &parsed, &body));
}

TEST(WireEnvelope, DetectsHeaderBitFlip) {
  envelope h;
  h.seq = 9;
  std::vector<double> image = wire::encode(h, {{5.0}});
  std::uint64_t bits;
  std::memcpy(&bits, &image[3], sizeof(bits));  // the seq word
  bits ^= 1ull << 0;
  std::memcpy(&image[3], &bits, sizeof(bits));
  envelope parsed;
  std::vector<double> body;
  EXPECT_FALSE(wire::decode(image, true, &parsed, &body));
}

TEST(WireEnvelope, DetectsTruncationEvenWithoutChecksum) {
  envelope h;
  std::vector<double> image = wire::encode(h, {{1.0, 2.0, 3.0}});
  image.resize(image.size() - 2);  // lose trailing payload
  envelope parsed;
  std::vector<double> body;
  EXPECT_FALSE(wire::decode(image, false, &parsed, &body));
  image.resize(2);  // cut into the header itself
  EXPECT_FALSE(wire::decode(image, false, &parsed, &body));
}

TEST(WireEnvelope, RejectsGarbageAndWrongMagic) {
  envelope parsed;
  std::vector<double> body;
  EXPECT_FALSE(wire::decode(std::vector<double>{1.0, 2.0}, true, &parsed, &body));
  EXPECT_FALSE(wire::decode(std::vector<double>(6, 0.25), true, &parsed, &body));
}

// ---- fault-injection extensions --------------------------------------------

TEST(FaultInjection, CorruptionDrawsAreDeterministic) {
  fault_plan plan;
  plan.seed = 99;
  fault_plan::message_fault mf;
  mf.corrupt_probability = 0.5;
  mf.truncate_probability = 0.5;
  mf.reorder_probability = 0.5;
  plan.message_faults.push_back(mf);

  fault_injector a(plan, 3);
  fault_injector b(plan, 3);
  for (int i = 0; i < 64; ++i) {
    const auto x = a.on_send(0, 5, 16);
    const auto y = b.on_send(0, 5, 16);
    EXPECT_EQ(x.corrupt, y.corrupt);
    EXPECT_EQ(x.corrupt_element, y.corrupt_element);
    EXPECT_EQ(x.corrupt_bit, y.corrupt_bit);
    EXPECT_EQ(x.truncate, y.truncate);
    EXPECT_EQ(x.truncate_to, y.truncate_to);
    EXPECT_EQ(x.reorder, y.reorder);
  }
}

TEST(FaultInjection, RawRecvSeesCorruptedPayloadAndCountersTrack) {
  fault_plan plan;
  plan.seed = 5;
  fault_plan::message_fault mf;
  mf.src = 0;
  mf.corrupt_probability = 1.0;
  plan.message_faults.push_back(mf);

  world w(2, {.timeout = 2000ms, .faults = plan});
  w.run([](communicator& c) {
    const std::vector<double> payload(8, 1.0);
    if (c.rank() == 0) {
      c.send(1, 3, payload);
    } else {
      const std::vector<double> got = c.recv(0, 3);
      ASSERT_EQ(got.size(), payload.size());
      EXPECT_NE(got, payload);  // exactly one bit differs somewhere
    }
  });
  EXPECT_EQ(w.total_counters().injected_corruptions, 1);
}

TEST(FaultInjection, TruncationShortensRawPayload) {
  fault_plan plan;
  plan.seed = 11;
  fault_plan::message_fault mf;
  mf.truncate_probability = 1.0;
  plan.message_faults.push_back(mf);

  world w(2, {.timeout = 2000ms, .faults = plan});
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 3, std::vector<double>(10, 2.0));
    } else {
      EXPECT_LT(c.recv(0, 3).size(), 10u);
    }
  });
  EXPECT_EQ(w.total_counters().injected_truncations, 1);
}

TEST(FaultInjection, ReorderSwapsAdjacentSends) {
  fault_plan plan;
  plan.seed = 2;
  fault_plan::message_fault mf;
  mf.reorder_probability = 1.0;  // every send swaps with its successor
  plan.message_faults.push_back(mf);

  world w(2, {.timeout = 2000ms, .faults = plan});
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 3, std::vector<double>{1.0});
      c.send(1, 3, std::vector<double>{2.0});
    } else {
      EXPECT_EQ(c.recv(0, 3).at(0), 2.0);
      EXPECT_EQ(c.recv(0, 3).at(0), 1.0);
    }
  });
  EXPECT_EQ(w.total_counters().injected_reorders, 1);
}

// ---- reliable channel: clean fabric ----------------------------------------

TEST(ReliableChannel, DeliversInOrderOnCleanFabric) {
  world w(3);
  w.run([](communicator& c) {
    reliable_channel ch(c);
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < 5; ++i)
      ch.send(right, 7, std::vector<double>{static_cast<double>(i)});
    for (int i = 0; i < 5; ++i) {
      const std::vector<double> got = ch.recv(left, 7);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], static_cast<double>(i));
    }
    ch.flush();
    ch.fence();
  });
  EXPECT_FALSE(w.aborted());
}

TEST(ReliableChannel, MultiplexesLogicalTagsOverOneWireTag) {
  world w(2);
  w.run([](communicator& c) {
    reliable_channel ch(c);
    if (c.rank() == 0) {
      ch.send(1, 10, std::vector<double>{10.0});
      ch.send(1, 20, std::vector<double>{20.0});
      ch.flush();
      ch.fence();
    } else {
      // Receive in the opposite order of the sends: the logical-tag demux
      // must park tag-10 traffic while tag 20 is being waited on.
      EXPECT_EQ(ch.recv(0, 20).at(0), 20.0);
      EXPECT_EQ(ch.recv(0, 10).at(0), 10.0);
      ch.flush();
      ch.fence();
    }
  });
  EXPECT_FALSE(w.aborted());
}

// ---- reliable channel: healing injected faults ------------------------------

void exchange_under(const fault_plan& plan, reliable_stats* out_stats) {
  constexpr int kMessages = 20;
  constexpr int kDoubles = 6;
  world w(4, {.timeout = 10000ms, .faults = plan});
  std::atomic<long> healed_checks{0};
  reliable_stats stats_sum;
  std::mutex stats_mutex;
  w.run([&](communicator& c) {
    reliable_options opts;
    opts.recv_timeout = 8000ms;
    reliable_channel ch(c, opts);
    const int right = (c.rank() + 1) % c.size();
    const int left = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < kMessages; ++i) {
      std::vector<double> payload(kDoubles);
      for (int j = 0; j < kDoubles; ++j)
        payload[static_cast<std::size_t>(j)] = 100.0 * c.rank() + i + 0.25 * j;
      ch.send(right, 5, payload);
    }
    for (int i = 0; i < kMessages; ++i) {
      const std::vector<double> got = ch.recv(left, 5);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kDoubles));
      for (int j = 0; j < kDoubles; ++j)
        ASSERT_EQ(got[static_cast<std::size_t>(j)],
                  100.0 * left + i + 0.25 * j);
      ++healed_checks;
    }
    ch.flush();
    ch.fence();
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats_sum += ch.stats();
  });
  EXPECT_FALSE(w.aborted());
  EXPECT_EQ(healed_checks.load(), 4 * kMessages);
  if (out_stats) *out_stats = stats_sum;
}

TEST(ReliableChannel, HealsDrops) {
  fault_plan plan;
  plan.seed = 31;
  fault_plan::message_fault mf;
  mf.drop_probability = 0.25;
  plan.message_faults.push_back(mf);
  reliable_stats stats;
  exchange_under(plan, &stats);
  EXPECT_GT(stats.retransmits, 0);
}

TEST(ReliableChannel, HealsCorruptionAndTruncation) {
  fault_plan plan;
  plan.seed = 32;
  fault_plan::message_fault mf;
  mf.corrupt_probability = 0.2;
  mf.truncate_probability = 0.1;
  plan.message_faults.push_back(mf);
  reliable_stats stats;
  exchange_under(plan, &stats);
  EXPECT_GT(stats.corruption_detected, 0);
  EXPECT_GT(stats.retransmits, 0);
}

TEST(ReliableChannel, HealsDuplicatesAndReorders) {
  fault_plan plan;
  plan.seed = 33;
  fault_plan::message_fault mf;
  mf.duplicate_probability = 0.3;
  mf.reorder_probability = 0.2;
  plan.message_faults.push_back(mf);
  reliable_stats stats;
  exchange_under(plan, &stats);
  EXPECT_GT(stats.dedup_dropped, 0);
}

TEST(ReliableChannel, HealsTheFullChaosMix) {
  fault_plan plan;
  plan.seed = 34;
  fault_plan::message_fault mf;
  mf.drop_probability = 0.15;
  mf.duplicate_probability = 0.15;
  mf.corrupt_probability = 0.15;
  mf.truncate_probability = 0.1;
  mf.reorder_probability = 0.1;
  plan.message_faults.push_back(mf);
  exchange_under(plan, nullptr);
}

TEST(ReliableChannel, ChecksumHookLetsCorruptionThrough) {
  // With verification disabled (the deliberately-broken transport the chaos
  // soak must catch), a corrupted payload is delivered mangled instead of
  // being dropped and retransmitted.
  fault_plan plan;
  plan.seed = 8;
  fault_plan::message_fault mf;
  mf.src = 0;
  mf.corrupt_probability = 1.0;
  plan.message_faults.push_back(mf);

  world w(2, {.timeout = 5000ms, .faults = plan});
  w.run([](communicator& c) {
    reliable_options opts;
    opts.verify_checksums = false;
    reliable_channel ch(c, opts);
    const std::vector<double> payload(8, 1.0);
    if (c.rank() == 0) {
      ch.send(1, 3, payload);
      ch.flush();
      ch.fence();
    } else {
      const std::vector<double> got = ch.recv(0, 3);
      ASSERT_EQ(got.size(), payload.size());
      EXPECT_NE(got, payload);
      ch.flush();
      ch.fence();
    }
  });
  EXPECT_FALSE(w.aborted());
}

TEST(ReliableChannel, TotalLossExhaustsRetransmitsAndNamesThePeer) {
  fault_plan plan;
  plan.seed = 1;
  fault_plan::message_fault mf;
  mf.src = 0;
  mf.dst = 1;
  mf.drop_probability = 1.0;  // the 0→1 link is severed
  plan.message_faults.push_back(mf);

  world w(2, {.timeout = 10000ms, .faults = plan});
  std::atomic<int> unreachable_peer{-2};
  EXPECT_THROW(
      w.run([&](communicator& c) {
        reliable_options opts;
        opts.max_retransmits = 4;
        opts.retransmit_timeout = std::chrono::microseconds{100};
        opts.max_backoff = std::chrono::microseconds{400};
        reliable_channel ch(c, opts);
        if (c.rank() == 0) {
          ch.send(1, 3, std::vector<double>{1.0});
          try {
            ch.flush();
          } catch (const peer_unreachable_error& e) {
            unreachable_peer = e.peer();
            throw;
          }
        } else {
          ch.recv(0, 3);
        }
      }),
      peer_unreachable_error);
  EXPECT_EQ(unreachable_peer.load(), 1);
}

// ---- recv-side timeouts under simultaneous multi-peer drops -----------------

// Every inbound link of rank 0 severed at once. The raw transport has no
// recourse: the first blocking recv must hit the world timeout instead of
// waiting forever, and the timeout is accounted to the receiving rank.
TEST(MultiPeerDrops, RawRecvTimesOutWhenEveryInboundLinkIsSevered) {
  fault_plan plan;
  plan.seed = 5;
  fault_plan::message_fault mf;
  mf.dst = 0;  // src = -1: all three peers drop simultaneously
  mf.drop_probability = 1.0;
  plan.message_faults.push_back(mf);

  world w(4, {.timeout = 300ms, .faults = plan});
  std::atomic<int> timed_out_rank{-1};
  EXPECT_THROW(
      w.run([&](communicator& c) {
        if (c.rank() == 0) {
          try {
            for (int peer = 1; peer < c.size(); ++peer) (void)c.recv(peer, 7);
          } catch (const comm_timeout_error& e) {
            timed_out_rank = e.rank();
            throw;
          }
        } else {
          c.send(0, 7, std::vector<double>{1.0 * c.rank()});
        }
      }),
      comm_timeout_error);
  EXPECT_EQ(timed_out_rank.load(), 0);
  EXPECT_GE(w.counters(0).timeouts, 1);
  EXPECT_EQ(w.counters(0).messages_received, 0);
}

// Same severed links, but only the *first* data frame on each: the reliable
// channel retransmits on every link concurrently and rank 0 sees all three
// payloads in order — no recv timeout, no escalation.
TEST(MultiPeerDrops, ReliableChannelHealsSimultaneousFirstFrameLoss) {
  fault_plan plan;
  plan.seed = 5;
  for (int src = 1; src < 4; ++src) {
    fault_plan::message_fault mf;
    mf.src = src;
    mf.dst = 0;
    mf.drop_probability = 1.0;
    mf.fire_from = 0;
    mf.fire_count = 1;  // one-shot: the retransmit gets through
    mf.min_payload = wire::header_doubles + 1;  // spare the acks
    plan.message_faults.push_back(mf);
  }

  world w(4, {.timeout = 10000ms, .faults = plan});
  std::atomic<long> received{0};
  std::atomic<long> retransmits{0};
  w.run([&](communicator& c) {
    reliable_options opts;
    opts.retransmit_timeout = std::chrono::microseconds{500};
    opts.recv_timeout = 8000ms;
    reliable_channel ch(c, opts);
    if (c.rank() == 0) {
      for (int peer = 1; peer < c.size(); ++peer) {
        const std::vector<double> got = ch.recv(peer, 7);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got.at(0), 10.0 * peer);
        ++received;
      }
    } else {
      ch.send(0, 7, std::vector<double>{10.0 * c.rank(), 0.5});
      ch.flush();
      retransmits += ch.stats().retransmits;
    }
    ch.fence();
  });
  EXPECT_FALSE(w.aborted());
  EXPECT_EQ(received.load(), 3);
  EXPECT_GE(retransmits.load(), 3);  // every peer healed its own link
}

// Permanently severed links: the receiver's recv_timeout converts the wait
// into peer_unreachable_error naming the silent peer, even while a second
// peer's link is down at the same time.
TEST(MultiPeerDrops, ReliableRecvTimeoutNamesTheSilentPeer) {
  fault_plan plan;
  plan.seed = 5;
  for (int src : {1, 2}) {
    fault_plan::message_fault mf;
    mf.src = src;
    mf.dst = 0;
    mf.drop_probability = 1.0;  // both links fully dead
    plan.message_faults.push_back(mf);
  }

  world w(3, {.timeout = 10000ms, .faults = plan});
  std::atomic<int> named_peer{-2};
  EXPECT_THROW(
      w.run([&](communicator& c) {
        reliable_options opts;
        opts.retransmit_timeout = std::chrono::microseconds{200};
        opts.max_backoff = std::chrono::microseconds{800};
        opts.max_retransmits = 100;  // senders outlive the receiver's patience
        opts.recv_timeout = 300ms;
        reliable_channel ch(c, opts);
        if (c.rank() == 0) {
          try {
            (void)ch.recv(1, 7);
          } catch (const peer_unreachable_error& e) {
            named_peer = e.peer();
            throw;
          }
        } else {
          ch.send(0, 7, std::vector<double>{1.0});
          // No flush: retransmit exhaustion on the senders would race the
          // receiver's recv_timeout for which exception wins.
        }
      }),
      peer_unreachable_error);
  EXPECT_EQ(named_peer.load(), 1);
}

TEST(ReliableChannel, StaleEpochTrafficIsDropped) {
  world w(2, {.timeout = 5000ms, .faults = {}});
  w.run([](communicator& c) {
    if (c.rank() == 0) {
      // Epoch-3 sender: its data must be invisible to an epoch-4 receiver.
      reliable_options old_epoch;
      old_epoch.epoch = 3;
      reliable_channel stale(c, old_epoch);
      stale.send(1, 3, std::vector<double>{1.0});
      // No flush: the peer will never ack a stale-epoch message.
      reliable_options cur;
      cur.epoch = 4;
      reliable_channel ch(c, cur);
      ch.send(1, 3, std::vector<double>{2.0});
      ch.flush();
    } else {
      reliable_options cur;
      cur.epoch = 4;
      reliable_channel ch(c, cur);
      EXPECT_EQ(ch.recv(0, 3).at(0), 2.0);
      EXPECT_GE(ch.stats().stale_dropped, 1);
    }
  });
  EXPECT_FALSE(w.aborted());
}

TEST(ReliableChannel, StatsPublishToObsRegistry) {
  fault_plan plan;
  plan.seed = 31;
  fault_plan::message_fault mf;
  mf.drop_probability = 0.25;
  plan.message_faults.push_back(mf);
  auto& reg = sfp::obs::registry::global();
  const std::int64_t before = reg.get_counter("reliable.retransmits").value();
  reliable_stats stats;
  exchange_under(plan, &stats);  // channels publish deltas in destructors
  const std::int64_t after = reg.get_counter("reliable.retransmits").value();
  // The destructor publishes everything, including retransmits its own
  // shutdown linger performed after the stats were snapshotted.
  EXPECT_GE(after - before, stats.retransmits);
  EXPECT_GT(after - before, 0);
}

}  // namespace
