// Tests for the METIS-4-style C API facade.

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/metis_compat.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::mgp::compat;

/// CSR arrays in the METIS convention, extracted from our graph type.
struct metis_arrays {
  idxtype nvtxs;
  std::vector<idxtype> xadj, adjncy, vwgt, adjwgt;
};

metis_arrays to_metis(const graph::csr& g) {
  metis_arrays m;
  m.nvtxs = g.num_vertices();
  m.xadj.assign(g.xadj().begin(), g.xadj().end());
  m.adjncy.assign(g.adjncy().begin(), g.adjncy().end());
  m.vwgt.assign(g.vwgt().begin(), g.vwgt().end());
  m.adjwgt.assign(g.adjwgt().begin(), g.adjwgt().end());
  return m;
}

TEST(MetisCompat, RecursivePartitionsGrid) {
  const auto g = graph::grid_graph(8, 8);
  const auto m = to_metis(g);
  const int nparts = 4, wgtflag = 0, numflag = 0;
  const int options[5] = {0, 0, 0, 0, 0};
  int edgecut = -1;
  std::vector<idxtype> part(static_cast<std::size_t>(m.nvtxs), -1);
  part_graph_recursive(&m.nvtxs, m.xadj.data(), m.adjncy.data(), nullptr,
                       nullptr, &wgtflag, &numflag, &nparts, options,
                       &edgecut, part.data());
  // Valid labels, all parts present, sane cut.
  std::vector<int> counts(4, 0);
  for (const idxtype p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 4);
    ++counts[static_cast<std::size_t>(p)];
  }
  for (const int c : counts) EXPECT_GE(c, 14);  // 64/4 = 16 ideal
  EXPECT_GT(edgecut, 0);
  EXPECT_LT(edgecut, 40);  // random would cut ~84 of 112 edges
}

TEST(MetisCompat, KwayHonorsWeights) {
  // Two heavy vertices must not land in the same part when weights are on.
  graph::builder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.set_vertex_weight(0, 100);
  b.set_vertex_weight(3, 100);
  const auto g = b.build();
  const auto m = to_metis(g);
  const int nparts = 2, wgtflag = kBothWeights, numflag = 0;
  int edgecut = -1;
  std::vector<idxtype> part(4, -1);
  part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(), m.vwgt.data(),
                  m.adjwgt.data(), &wgtflag, &numflag, &nparts, nullptr,
                  &edgecut, part.data());
  EXPECT_NE(part[0], part[3]);
}

TEST(MetisCompat, VKwayReportsVolume) {
  const mesh::cubed_sphere mesh(4);
  const auto g = mesh.dual_graph();
  const auto m = to_metis(g);
  const int nparts = 12, wgtflag = kEdgeWeights, numflag = 0;
  int volume = -1;
  std::vector<idxtype> part(static_cast<std::size_t>(m.nvtxs), -1);
  part_graph_vkway(&m.nvtxs, m.xadj.data(), m.adjncy.data(), nullptr,
                   m.adjwgt.data(), &wgtflag, &numflag, &nparts, nullptr,
                   &volume, part.data());
  EXPECT_GT(volume, 0);
  EXPECT_LT(volume, m.nvtxs * 8);  // bounded by total interface capacity
}

TEST(MetisCompat, SeedViaOptions) {
  const auto g = graph::grid_graph(6, 6);
  const auto m = to_metis(g);
  const int nparts = 3, wgtflag = 0, numflag = 0;
  int cut1 = 0, cut2 = 0, cut3 = 0;
  std::vector<idxtype> p1(36), p2(36), p3(36);
  const int opts_a[5] = {1, 12345, 0, 0, 0};
  const int opts_b[5] = {1, 12345, 0, 0, 0};
  const int opts_c[5] = {1, 99999, 0, 0, 0};
  part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(), nullptr, nullptr,
                  &wgtflag, &numflag, &nparts, opts_a, &cut1, p1.data());
  part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(), nullptr, nullptr,
                  &wgtflag, &numflag, &nparts, opts_b, &cut2, p2.data());
  part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(), nullptr, nullptr,
                  &wgtflag, &numflag, &nparts, opts_c, &cut3, p3.data());
  EXPECT_EQ(p1, p2);  // same seed, same result
  EXPECT_EQ(cut1, cut2);
}

TEST(MetisCompat, RejectsFortranNumbering) {
  const auto g = graph::grid_graph(2, 2);
  const auto m = to_metis(g);
  const int nparts = 2, wgtflag = 0, numflag = 1;
  int edgecut = 0;
  std::vector<idxtype> part(4);
  EXPECT_THROW(part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(),
                               nullptr, nullptr, &wgtflag, &numflag, &nparts,
                               nullptr, &edgecut, part.data()),
               contract_error);
}

TEST(MetisCompat, RejectsNullWeightArraysWhenRequested) {
  const auto g = graph::grid_graph(2, 2);
  const auto m = to_metis(g);
  const int nparts = 2, wgtflag = kVertexWeights, numflag = 0;
  int edgecut = 0;
  std::vector<idxtype> part(4);
  EXPECT_THROW(part_graph_kway(&m.nvtxs, m.xadj.data(), m.adjncy.data(),
                               nullptr, nullptr, &wgtflag, &numflag, &nparts,
                               nullptr, &edgecut, part.data()),
               contract_error);
}

}  // namespace
