// End-to-end fault-tolerance of the distributed SEAM advection mini-app:
// a rank dies mid-simulation, the survivors re-slice the cube curve,
// restart from the last sealed checkpoint, and must reproduce the
// fault-free tracer solution.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "runtime/fault.hpp"
#include "runtime/reliable.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

advection_model make_model(const mesh::cubed_sphere& m) {
  advection_model model(m, 4);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-6.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  return model;
}

TEST(Resilience, CleanRunMatchesPlainDistributedBitwise) {
  // With no faults the resilient runner does the same arithmetic as
  // run_distributed (checkpoints and barriers change no math).
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);

  const auto plain = run_distributed(model, part, dt, 6);
  recovery_report report;
  const auto resilient = run_distributed_resilient(model, curve, part, dt, 6,
                                                   {}, &report);
  EXPECT_EQ(plain, resilient);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.failed_rank, -1);
  EXPECT_EQ(report.final_partition.num_parts, 4);
}

TEST(Resilience, RecoversFromRankLossMidSimulation) {
  // The headline scenario: 4 ranks, rank 2 is killed mid-run, the three
  // survivors re-slice the same curve over 3 segments and finish. The
  // recovered tracer field must match the fault-free solution to 1e-12 and
  // only about 1/nparts of the elements may have migrated.
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 4;
  const auto part = core::sfc_partition(curve, nparts);
  const double dt = model.cfl_dt(0.3);
  const int nsteps = 8;

  const auto reference = run_distributed(model, part, dt, nsteps);

  resilience_options ropts;
  ropts.faults.kills.push_back({/*rank=*/2, /*at_op=*/40});
  ropts.max_recoveries = 1;
  recovery_report report;
  dist_stats stats;
  const auto recovered = run_distributed_resilient(
      model, curve, part, dt, nsteps, ropts, &report, &stats);

  // A failure actually happened and was survived.
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failed_rank, 2);
  EXPECT_GT(report.counters.injected_kills, 0);
  EXPECT_GT(report.counters.aborts_observed, 0);
  EXPECT_EQ(report.final_partition.num_parts, nparts - 1);
  EXPECT_GE(report.restart_step, 0);
  EXPECT_LT(report.restart_step, nsteps);

  // Recovery moved only the failed segment.
  EXPECT_EQ(report.migration.moved_elements,
            static_cast<std::int64_t>(m.num_elements()) / nparts);
  EXPECT_LE(report.migration.moved_fraction, 1.5 / nparts);
  ASSERT_EQ(report.survivor_of.size(), 3u);
  EXPECT_EQ(report.survivor_of[0], 0);
  EXPECT_EQ(report.survivor_of[1], 1);
  EXPECT_EQ(report.survivor_of[2], 3);

  // The physics is intact.
  ASSERT_EQ(recovered.size(), reference.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_diff = std::max(max_diff, std::abs(recovered[i] - reference[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(Resilience, RecoveryIsDeterministicAcrossRuns) {
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);

  resilience_options ropts;
  ropts.faults.kills.push_back({/*rank=*/1, /*at_op=*/25});
  recovery_report r1, r2;
  const auto a = run_distributed_resilient(model, curve, part, dt, 6, ropts, &r1);
  const auto b = run_distributed_resilient(model, curve, part, dt, 6, ropts, &r2);
  EXPECT_EQ(a, b);  // bitwise
  EXPECT_EQ(r1.failed_rank, r2.failed_rank);
  EXPECT_EQ(r1.restart_step, r2.restart_step);
  EXPECT_EQ(r1.migration.moved_elements, r2.migration.moved_elements);
  EXPECT_EQ(r1.counters.injected_kills, r2.counters.injected_kills);
}

TEST(Resilience, SecondFailureExceedsBudgetAndRethrows) {
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);

  resilience_options ropts;
  ropts.faults.kills.push_back({/*rank=*/0, /*at_op=*/10});
  ropts.max_recoveries = 0;  // no budget: the kill must surface
  EXPECT_THROW(
      run_distributed_resilient(model, curve, part, dt, 6, ropts),
      runtime::rank_killed);
}

TEST(Resilience, TimeoutOptionGuardsAgainstLostMessages) {
  // Lost messages (drop injection) plus a deadline: the run aborts with a
  // timeout instead of hanging, and without a recovery budget it surfaces.
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);

  resilience_options ropts;
  ropts.timeout = std::chrono::milliseconds(100);
  auto& mf = ropts.faults.message_faults.emplace_back();
  mf.src = 0;
  mf.drop_probability = 1.0;
  ropts.max_recoveries = 0;
  EXPECT_THROW(
      run_distributed_resilient(model, curve, part, dt, 4, ropts),
      runtime::comm_timeout_error);
}

// ---- reliable transport: the self-healing rung of the ladder ---------------

resilience_options reliable_ropts(std::uint64_t seed) {
  resilience_options ropts;
  ropts.faults.seed = seed;
  ropts.timeout = std::chrono::milliseconds(10000);
  ropts.reliable_transport = true;
  ropts.reliable.recv_timeout = std::chrono::milliseconds(8000);
  return ropts;
}

TEST(ReliableResilience, TransientChaosHealsInPlaceWithZeroRecoveries) {
  // The tentpole acceptance scenario: a seeded schedule of drop + corrupt +
  // duplicate + reorder faults (no kills) on every link. The reliable
  // transport must heal everything in place — one attempt, no aborts, no
  // re-slice — and reproduce the fault-free advection field to 1e-12.
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);
  const int nsteps = 6;

  const auto reference = run_distributed(model, part, dt, nsteps);

  resilience_options ropts = reliable_ropts(2024);
  auto& mf = ropts.faults.message_faults.emplace_back();
  mf.drop_probability = 0.1;
  mf.corrupt_probability = 0.1;
  mf.duplicate_probability = 0.1;
  mf.reorder_probability = 0.05;
  mf.truncate_probability = 0.05;

  recovery_report report;
  const auto healed = run_distributed_resilient(model, curve, part, dt,
                                                nsteps, ropts, &report);

  EXPECT_EQ(report.attempts, 1);        // zero re-slices
  EXPECT_EQ(report.failed_rank, -1);
  EXPECT_EQ(report.counters.aborts_observed, 0);
  EXPECT_EQ(report.final_partition.num_parts, 4);
  // The chaos actually hit the wire and the transport actually worked.
  EXPECT_GT(report.counters.injected_drops + report.counters.injected_corruptions +
                report.counters.injected_duplicates,
            0);
  EXPECT_GT(report.reliable.retransmits, 0);
  EXPECT_GT(report.reliable.corruption_detected, 0);
  EXPECT_GT(report.reliable.dedup_dropped, 0);

  ASSERT_EQ(healed.size(), reference.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_diff = std::max(max_diff, std::abs(healed[i] - reference[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(ReliableResilience, KillStillEscalatesToPlanRecovery) {
  // Transient faults heal, but genuine rank death must still climb the
  // ladder: checkpoint rollback + curve re-slice, same as the raw path.
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const int nparts = 4;
  const auto part = core::sfc_partition(curve, nparts);
  const double dt = model.cfl_dt(0.3);
  const int nsteps = 6;

  const auto reference = run_distributed(model, part, dt, nsteps);

  resilience_options ropts = reliable_ropts(7);
  ropts.timeout = std::chrono::milliseconds(4000);
  ropts.reliable.recv_timeout = std::chrono::milliseconds(2000);
  ropts.faults.kills.push_back({/*rank=*/1, /*at_op=*/33});
  auto& mf = ropts.faults.message_faults.emplace_back();
  mf.drop_probability = 0.05;
  mf.corrupt_probability = 0.05;

  recovery_report report;
  const auto recovered = run_distributed_resilient(model, curve, part, dt,
                                                   nsteps, ropts, &report);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failed_rank, 1);
  EXPECT_EQ(report.final_partition.num_parts, nparts - 1);
  EXPECT_GT(report.counters.injected_kills, 0);

  double max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_diff = std::max(max_diff, std::abs(recovered[i] - reference[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(ReliableResilience, SeveredLinkEscalatesViaPeerUnreachable) {
  // A permanently dead link (every retransmit dropped) cannot be healed:
  // the sender exhausts its budget, names the peer, and the escalation
  // policy recovers around the *peer* — not the healthy thrower.
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  const double dt = model.cfl_dt(0.3);

  resilience_options ropts = reliable_ropts(3);
  ropts.timeout = std::chrono::milliseconds(10000);
  // The budget must exhaust fast on the severed link but stay generous
  // enough that a *healthy* link never exhausts it just because its
  // receiver thread was starved for a few milliseconds — this test runs
  // alongside the rest of the suite on an oversubscribed CPU. ~50 ms of
  // total budget keeps the test quick and the healthy links safe.
  ropts.reliable.max_retransmits = 6;
  ropts.reliable.retransmit_timeout = std::chrono::microseconds(1000);
  ropts.reliable.max_backoff = std::chrono::microseconds(10000);
  ropts.reliable.recv_timeout = std::chrono::milliseconds(6000);
  auto& mf = ropts.faults.message_faults.emplace_back();
  mf.dst = 2;  // every data frame *to* rank 2 vanishes: rank 2 is the corpse
  mf.drop_probability = 1.0;
  // Data frames only. Dropping the acks to rank 2 as well would leave rank
  // 2's own (delivered) sends unacked, and rank 2 exhausting *its*
  // retransmit budget races the real senders for which rank gets named —
  // sometimes electing a healthy victim.
  mf.min_payload = runtime::wire::header_doubles + 1;

  recovery_report report;
  const auto recovered = run_distributed_resilient(model, curve, part, dt, 4,
                                                   ropts, &report);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failed_rank, 2);  // the unreachable peer, by policy
  EXPECT_EQ(report.final_partition.num_parts, 3);

  const auto reference = run_distributed(model, part, dt, 4);
  double max_diff = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    max_diff = std::max(max_diff, std::abs(recovered[i] - reference[i]));
  EXPECT_LT(max_diff, 1e-12);
}

TEST(Resilience, Preconditions) {
  const mesh::cubed_sphere m(2);
  const auto model = make_model(m);
  const auto curve = core::build_cube_curve(m);
  const auto part = core::sfc_partition(curve, 4);
  EXPECT_THROW(run_distributed_resilient(model, curve, part, -0.1, 2),
               contract_error);
  EXPECT_THROW(run_distributed_resilient(model, curve, part, 0.01, -1),
               contract_error);
  resilience_options bad;
  bad.max_recoveries = -1;
  EXPECT_THROW(run_distributed_resilient(model, curve, part, 0.01, 2, bad),
               contract_error);
}

}  // namespace
