// Property tests for the space-filling-curve generators (paper Section 3).
//
// The central invariants — full coverage, 4-adjacency of consecutive cells,
// entry at (0,0) and exit at (P-1,0) — are exercised over every SFC-
// compatible side up to 108 and every nesting order, which covers pure
// Hilbert, pure m-Peano, and all mixed Hilbert-Peano schedules.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sfc/curve.hpp"
#include "sfc/render.hpp"
#include "sfc/verify.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp::sfc;

TEST(Schedule, FactorsSides) {
  EXPECT_TRUE(is_sfc_compatible(2));
  EXPECT_TRUE(is_sfc_compatible(3));
  EXPECT_TRUE(is_sfc_compatible(8));    // paper Ne=8  -> Hilbert level 3
  EXPECT_TRUE(is_sfc_compatible(9));    // paper Ne=9  -> m-Peano level 2
  EXPECT_TRUE(is_sfc_compatible(16));   // paper Ne=16 -> Hilbert level 4
  EXPECT_TRUE(is_sfc_compatible(18));   // paper Ne=18 -> Hilbert-Peano
  EXPECT_FALSE(is_sfc_compatible(1));
  EXPECT_FALSE(is_sfc_compatible(5));
  EXPECT_FALSE(is_sfc_compatible(7));
  EXPECT_FALSE(is_sfc_compatible(10));  // 2 * 5
  EXPECT_FALSE(is_sfc_compatible(0));
  EXPECT_FALSE(is_sfc_compatible(-4));
}

TEST(Schedule, PaperTable1Levels) {
  // Paper Table 1: Ne=8 has Hilbert levels 3, m-Peano 0; Ne=9 has 0/2;
  // Ne=16 has 4/0; Ne=18 has 1/2.
  const auto count = [](const schedule& s) {
    int n2 = 0, n3 = 0;
    for (const refinement r : s) (r == refinement::hilbert2 ? n2 : n3)++;
    return std::pair(n2, n3);
  };
  EXPECT_EQ(count(*schedule_for(8)), std::pair(3, 0));
  EXPECT_EQ(count(*schedule_for(9)), std::pair(0, 2));
  EXPECT_EQ(count(*schedule_for(16)), std::pair(4, 0));
  EXPECT_EQ(count(*schedule_for(18)), std::pair(1, 2));
}

TEST(Schedule, SideRoundTrips) {
  for (const int side : {2, 3, 4, 6, 8, 9, 12, 16, 18, 24, 27, 32, 36, 48, 54,
                         64, 72, 81, 96, 108}) {
    const auto s = schedule_for(side);
    ASSERT_TRUE(s.has_value()) << side;
    EXPECT_EQ(side_of(*s), side);
  }
}

TEST(Schedule, NestingOrdersPlaceLevelsAsRequested) {
  const auto s_peano = *schedule_for(12, nesting_order::peano_first);
  ASSERT_EQ(s_peano.size(), 3u);  // 12 = 3 * 2 * 2
  EXPECT_EQ(s_peano[0], refinement::peano3);
  EXPECT_EQ(s_peano[1], refinement::hilbert2);

  const auto s_hil = *schedule_for(12, nesting_order::hilbert_first);
  EXPECT_EQ(s_hil[0], refinement::hilbert2);
  EXPECT_EQ(s_hil[2], refinement::peano3);

  const auto s_mix = *schedule_for(36, nesting_order::interleaved);
  ASSERT_EQ(s_mix.size(), 4u);  // 36 = 3*2*3*2 interleaved
  EXPECT_EQ(s_mix[0], refinement::peano3);
  EXPECT_EQ(s_mix[1], refinement::hilbert2);
  EXPECT_EQ(s_mix[2], refinement::peano3);
  EXPECT_EQ(s_mix[3], refinement::hilbert2);
}

TEST(Curve, Level1HilbertIsTheClassicU) {
  const auto c = hilbert_curve(1);
  ASSERT_EQ(c.size(), 4u);
  // Enter (0,0), sweep the U, exit (1,0).
  EXPECT_EQ(c[0], (cell{0, 0}));
  EXPECT_EQ(c[1], (cell{0, 1}));
  EXPECT_EQ(c[2], (cell{1, 1}));
  EXPECT_EQ(c[3], (cell{1, 0}));
}

TEST(Curve, Level1PeanoMeanders) {
  const auto c = peano_curve(1);
  ASSERT_EQ(c.size(), 9u);
  EXPECT_EQ(c.front(), (cell{0, 0}));
  EXPECT_EQ(c.back(), (cell{2, 0}));
  EXPECT_TRUE(verify_curve(c, 3).ok);
}

TEST(Curve, Level2HilbertVerifies) {
  const auto c = hilbert_curve(2);
  const auto r = verify_curve(c, 4);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Curve, Level2PeanoVerifies) {
  const auto c = peano_curve(2);
  const auto r = verify_curve(c, 9);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Curve, PaperFigure5Size36) {
  // Paper Figure 5: a level-2 Hilbert-Peano curve connecting 36 sub-domains
  // (6x6 grid: one m-Peano level then one Hilbert level).
  const auto c = hilbert_peano_curve(6);
  ASSERT_EQ(c.size(), 36u);
  const auto r = verify_curve(c, 6);
  EXPECT_TRUE(r.ok) << r.error;
}

// Exhaustive sweep: every SFC-compatible side up to 108, every nesting order.
class CurveProperty
    : public ::testing::TestWithParam<std::tuple<int, nesting_order>> {};

TEST_P(CurveProperty, CoverageAdjacencyEndpoints) {
  const auto [side, order] = GetParam();
  const auto s = schedule_for(side, order);
  ASSERT_TRUE(s.has_value());
  const auto curve = generate(*s);
  const auto r = verify_curve(curve, side);
  EXPECT_TRUE(r.ok) << "side " << side << ": " << r.error;
}

TEST_P(CurveProperty, IndexIsInverse) {
  const auto [side, order] = GetParam();
  const auto curve = generate(*schedule_for(side, order));
  const auto index = curve_index(curve, side);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const cell c = curve[i];
    EXPECT_EQ(index[static_cast<std::size_t>(c.y) *
                        static_cast<std::size_t>(side) +
                    static_cast<std::size_t>(c.x)],
              static_cast<std::int64_t>(i));
  }
}

std::vector<int> sfc_sides_up_to(int limit) {
  std::vector<int> sides;
  for (int p = 2; p <= limit; ++p)
    if (is_sfc_compatible(p)) sides.push_back(p);
  return sides;
}

std::string curve_param_name(
    const ::testing::TestParamInfo<std::tuple<int, nesting_order>>& info) {
  const char* names[] = {"peano_first", "hilbert_first", "interleaved"};
  return "side" + std::to_string(std::get<0>(info.param)) + "_" +
         names[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllSides, CurveProperty,
    ::testing::Combine(::testing::ValuesIn(sfc_sides_up_to(108)),
                       ::testing::Values(nesting_order::peano_first,
                                         nesting_order::hilbert_first,
                                         nesting_order::interleaved)),
    curve_param_name);

TEST(Curve, LocalityBeatsRowMajor) {
  // A qualitative SFC property the partitioner relies on: contiguous curve
  // segments are spatially compact. Compare the mean squared distance of
  // cells 16 apart along the curve vs along a row-major order.
  const int side = 32;
  const auto curve = hilbert_curve(5);
  const auto dist2_at_lag = [&](auto&& pos, int lag) {
    double acc = 0;
    const int n = side * side - lag;
    for (int i = 0; i < n; ++i) {
      const cell a = pos(i), b = pos(i + lag);
      const double dx = a.x - b.x, dy = a.y - b.y;
      acc += dx * dx + dy * dy;
    }
    return acc / n;
  };
  const auto on_curve = [&](int i) { return curve[static_cast<std::size_t>(i)]; };
  const auto row_major = [&](int i) { return cell{i % side, i / side}; };
  EXPECT_LT(dist2_at_lag(on_curve, 16), 0.25 * dist2_at_lag(row_major, 16));
}

TEST(CurveIndex, RejectsCorruptCurves) {
  auto c = hilbert_curve(1);
  c[2] = c[1];  // duplicate visit
  EXPECT_THROW(curve_index(c, 2), sfp::contract_error);
  EXPECT_THROW(curve_index(hilbert_curve(1), 3), sfp::contract_error);
}

TEST(Verify, DetectsDiagonalStep) {
  std::vector<cell> c{{0, 0}, {1, 1}, {1, 0}, {0, 1}};
  const auto r = verify_coverage_and_adjacency(c, 2);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not 4-adjacent"), std::string::npos);
}

TEST(Verify, DetectsWrongEndpoints) {
  // A valid snake that exits at (1,1) instead of (1,0).
  std::vector<cell> c{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_TRUE(verify_coverage_and_adjacency(c, 2).ok);
  EXPECT_FALSE(verify_curve(c, 2).ok);
}

TEST(Names, ScheduleNames) {
  EXPECT_EQ(schedule_name(*schedule_for(8)), "hilbert");
  EXPECT_EQ(schedule_name(*schedule_for(27)), "m-peano");
  EXPECT_EQ(schedule_name(*schedule_for(18)), "hilbert-peano");
}

TEST(Render, CurveArtHasExpectedSize) {
  const auto art = render_curve(hilbert_curve(2), 4);
  // 4 rows, each with 4 glyphs + 3 fillers + newline.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(Render, OrderGridShowsAllIndices) {
  const auto art = render_order(peano_curve(1), 3);
  for (const char* token : {"0", "4", "8"})
    EXPECT_NE(art.find(token), std::string::npos) << token;
}

}  // namespace
