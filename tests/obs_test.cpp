// Tests for the observability layer: the metrics registry (sharding,
// histogram bucket invariants, reset-in-place), span tracing (per-thread
// buffers, retirement, overflow accounting), the exporters' golden
// structure (the Chrome-trace JSON and metrics JSON parse back and satisfy
// the format's invariants), end-to-end capture of an instrumented
// distributed run, and the disabled-path overhead bound.
//
// Labelled "runtime": the concurrency tests here are exactly what the tsan
// preset must see — rank threads recording spans and bumping shared
// counters while the main thread enables/collects.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "io/json.hpp"
#include "io/trace_io.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "obs/obs.hpp"
#include "runtime/world.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;

// ---- metrics registry -------------------------------------------------------

TEST(Metrics, HandlesAreStableAndSharedByName) {
  obs::registry reg;
  obs::counter& a = reg.get_counter("x");
  obs::counter& b = reg.get_counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.inc();
  EXPECT_EQ(reg.get_counter("x").value(), 4);
  reg.reset();
  EXPECT_EQ(a.value(), 0);  // reset zeroes in place, handle still valid
  a.inc();
  EXPECT_EQ(reg.get_counter("x").value(), 1);
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  obs::registry reg;
  reg.get_counter("zeta").add(1);
  reg.get_counter("alpha").add(2);
  reg.get_gauge("mid").set(0.5);
  reg.get_histogram("h").observe(100);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].sum, 100);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i; top absorbs.
  EXPECT_EQ(obs::histogram::bucket_of(-5), 0);
  EXPECT_EQ(obs::histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::histogram::bucket_of(1023), 10);
  EXPECT_EQ(obs::histogram::bucket_of(1024), 11);
  EXPECT_EQ(obs::histogram::bucket_of(std::int64_t{1} << 62),
            obs::histogram::kBuckets - 1);
}

TEST(Metrics, HistogramBucketsSumToCount) {
  obs::histogram h;
  std::uint64_t v = 1;  // unsigned: the LCG wraps, signed overflow is UB
  for (int i = 0; i < 1000; ++i) {
    h.observe(static_cast<std::int64_t>(v % 4096) - 8);  // negatives..positives
    v = v * 131 + 7;
  }
  std::int64_t total = 0;
  for (int b = 0; b < obs::histogram::kBuckets; ++b) total += h.bucket(b);
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.count(), 1000);
}

TEST(Metrics, ConcurrentUpdatesFromManyThreads) {
  // The tsan-facing contract: handle updates are data-race free, and no
  // update is lost. Half the threads hammer one shared counter, half their
  // own, all against one histogram.
  obs::registry reg;
  obs::counter& shared = reg.get_counter("shared");
  obs::histogram& hist = reg.get_histogram("hist");
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::counter& own = reg.get_counter("own." + std::to_string(t));
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        own.inc();
        hist.observe(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.value(), kThreads * kIters);
  EXPECT_EQ(hist.count(), kThreads * kIters);
  std::int64_t total = 0;
  for (int b = 0; b < obs::histogram::kBuckets; ++b) total += hist.bucket(b);
  EXPECT_EQ(total, hist.count());
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.get_counter("own." + std::to_string(t)).value(), kIters);
}

// ---- tracing ----------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  obs::trace::disable();
  { SFP_TRACE_SCOPE("invisible"); }
  obs::session s(/*reset_metrics=*/false);
  const auto dump = s.finish();
  for (const auto& th : dump.threads) EXPECT_TRUE(th.events.empty());
}

TEST(Trace, SessionCapturesNestedScopes) {
  obs::session s(/*reset_metrics=*/false);
  obs::trace::set_thread_name("test-main");
  {
    SFP_TRACE_SCOPE_CAT("outer", "t");
    SFP_TRACE_SCOPE_CAT("inner", "t");
  }
  const auto dump = s.finish();
  const obs::thread_trace* mine = nullptr;
  for (const auto& th : dump.threads)
    if (th.name == "test-main") mine = &th;
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 2u);
  // Destruction order: inner closes (and records) first.
  EXPECT_STREQ(mine->events[0].name, "inner");
  EXPECT_STREQ(mine->events[1].name, "outer");
  // inner is contained in outer.
  const auto& in = mine->events[0];
  const auto& out = mine->events[1];
  EXPECT_GE(in.start_ns, out.start_ns);
  EXPECT_LE(in.start_ns + in.dur_ns, out.start_ns + out.dur_ns);
}

TEST(Trace, EnableClearsPreviousSession) {
  {
    obs::session s1(/*reset_metrics=*/false);
    SFP_TRACE_SCOPE("from-session-1");
  }
  obs::session s2(/*reset_metrics=*/false);
  const auto dump = s2.finish();
  for (const auto& th : dump.threads)
    for (const auto& ev : th.events)
      EXPECT_STRNE(ev.name, "from-session-1");
}

TEST(Trace, ExitedThreadsAreRetainedInCollection) {
  obs::session s(/*reset_metrics=*/false);
  std::thread([] {
    obs::trace::set_thread_name("ephemeral");
    SFP_TRACE_SCOPE("short-lived");
  }).join();
  const auto dump = s.finish();
  bool found = false;
  for (const auto& th : dump.threads)
    if (th.name == "ephemeral") {
      found = true;
      ASSERT_EQ(th.events.size(), 1u);
      EXPECT_STREQ(th.events[0].name, "short-lived");
    }
  EXPECT_TRUE(found);
}

TEST(Trace, OverflowDropsNewestAndCounts) {
  obs::session s(/*reset_metrics=*/false);
  constexpr int kWayTooMany = (1 << 16) + 500;
  for (int i = 0; i < kWayTooMany; ++i) { SFP_TRACE_SCOPE("spam"); }
  const auto dump = s.finish();
  std::int64_t events = 0, dropped = 0;
  for (const auto& th : dump.threads) {
    events += static_cast<std::int64_t>(th.events.size());
    dropped += th.dropped;
  }
  EXPECT_EQ(events + dropped, kWayTooMany);
  EXPECT_GT(dropped, 0);
}

TEST(Trace, TimedScopeFeedsHistogramEvenWhenDisabled) {
  obs::trace::disable();
  obs::registry::global().reset();
  { SFP_OBS_TIMED_SCOPE("obs_test.phase"); }
  const auto& h = obs::registry::global().get_histogram("obs_test.phase.us");
  EXPECT_EQ(h.count(), 1);
}

// ---- golden structure of the exporters --------------------------------------

// Run a small instrumented distributed workload under a session and return
// the collected dump (metrics land in the global registry).
obs::trace_dump traced_advection_run(int ne = 4, int nproc = 6,
                                     int nsteps = 2) {
  obs::session s;  // resets global metrics
  obs::trace::set_thread_name("main");
  const mesh::cubed_sphere mesh(ne);
  const auto curve = core::build_cube_curve(mesh);
  const auto part = core::sfc_partition(curve, nproc);
  (void)mgp::partition_graph(mesh.dual_graph(), nproc, {});
  seam::advection_model model(mesh, 4);
  model.set_field([](mesh::vec3 p) { return p.x * p.x + p.y; });
  seam::dist_stats stats;
  (void)seam::run_distributed(model, part, model.cfl_dt(0.3), nsteps, &stats);
  return s.finish();
}

TEST(TraceExport, ChromeTraceParsesAndEventsAreWellFormed) {
  const auto dump = traced_advection_run();
  std::ostringstream os;
  io::write_chrome_trace(os, dump);
  const auto doc = io::parse_json(os.str());

  ASSERT_TRUE(doc.is_object());
  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());
  int complete = 0, metadata = 0;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").string;
    ASSERT_TRUE(ev.at("name").is_string());
    ASSERT_TRUE(ev.at("pid").is_number());
    ASSERT_TRUE(ev.at("tid").is_number());
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev.at("name").string, "thread_name");
      continue;
    }
    // Every non-metadata event is a complete span with ts/dur.
    ASSERT_EQ(ph, "X") << "unexpected phase " << ph;
    ++complete;
    ASSERT_TRUE(ev.at("ts").is_number());
    ASSERT_TRUE(ev.at("dur").is_number());
    EXPECT_GE(ev.at("ts").number, 0.0);
    EXPECT_GE(ev.at("dur").number, 0.0);
    ASSERT_TRUE(ev.at("cat").is_string());
  }
  EXPECT_GT(complete, 0);
  EXPECT_GT(metadata, 0);  // main + every rank thread is named
}

TEST(TraceExport, SpansAreWellNestedPerThread) {
  // RAII scopes cannot produce partially-overlapping spans on one thread:
  // sorted by start (ties: longer first), each successive span is either
  // disjoint from or fully contained in the enclosing one.
  const auto dump = traced_advection_run();
  for (const auto& th : dump.threads) {
    auto evs = th.events;
    std::sort(evs.begin(), evs.end(),
              [](const obs::trace_event& a, const obs::trace_event& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.dur_ns > b.dur_ns;
              });
    std::vector<std::int64_t> stack;  // end timestamps of open spans
    for (const auto& ev : evs) {
      const std::int64_t end = ev.start_ns + ev.dur_ns;
      while (!stack.empty() && ev.start_ns >= stack.back()) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(end, stack.back())
            << "span " << ev.name << " on thread '" << th.name
            << "' partially overlaps its enclosing span";
      }
      stack.push_back(end);
    }
  }
}

TEST(TraceExport, MetricsJsonParsesAndHistogramsAreConsistent) {
  (void)traced_advection_run();
  const auto snap = obs::registry::global().snapshot();
  std::ostringstream os;
  io::write_metrics_json(os, snap);
  const auto doc = io::parse_json(os.str());

  ASSERT_TRUE(doc.is_object());
  const auto& counters = doc.at("counters");
  const auto& histograms = doc.at("histograms");
  ASSERT_TRUE(counters.is_object());
  ASSERT_TRUE(histograms.is_object());

  // Every histogram's bucket counts sum to its count.
  for (const auto& [name, h] : histograms.object) {
    const auto& buckets = h.at("buckets");
    ASSERT_TRUE(buckets.is_array()) << name;
    double total = 0;
    for (const auto& b : buckets.array) total += b.number;
    EXPECT_DOUBLE_EQ(total, h.at("count").number) << name;
  }

  // The instrumented layers all reported: per-tag wire volume, per-peer
  // halo volume, and mgp phase timings.
  const auto has_prefix = [](const std::map<std::string, io::json_value>& m,
                             const std::string& prefix) {
    for (const auto& [k, v] : m) {
      (void)v;
      if (k.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix(counters.object, "runtime.send.bytes.tag"));
  EXPECT_TRUE(has_prefix(counters.object, "seam.halo.doubles.rank"));
  EXPECT_TRUE(has_prefix(histograms.object, "mgp.coarsen"));
  EXPECT_TRUE(has_prefix(histograms.object, "mgp.refine"));
  EXPECT_TRUE(has_prefix(histograms.object, "runtime.recv.queue_wait"));
  EXPECT_GT(counters.at("runtime.messages_sent").number, 0.0);
  // Conservation: the world's aggregate equals what it delivered.
  EXPECT_DOUBLE_EQ(counters.at("runtime.doubles_sent").number,
                   counters.at("runtime.doubles_received").number);
}

TEST(TraceExport, CounterEventsCarryPerKindInjectedFaultMetrics) {
  // A chaotic resilient run under a session, exported with its metrics
  // snapshot: the per-kind fault-injection and reliable-channel totals must
  // appear as Chrome counter ("ph":"C") events so they render as counter
  // tracks next to the timeline.
  obs::session s;
  obs::trace::set_thread_name("main");
  const mesh::cubed_sphere mesh(2);
  const auto curve = core::build_cube_curve(mesh);
  const auto part = core::sfc_partition(curve, 4);
  seam::advection_model model(mesh, 4);
  model.set_field([](mesh::vec3 p) { return p.x * p.x + p.y; });
  seam::resilience_options ropts;
  ropts.faults.seed = 11;
  ropts.timeout = std::chrono::milliseconds(10000);
  ropts.reliable_transport = true;
  ropts.reliable.recv_timeout = std::chrono::milliseconds(8000);
  auto& mf = ropts.faults.message_faults.emplace_back();
  mf.drop_probability = 0.2;
  mf.corrupt_probability = 0.2;
  mf.duplicate_probability = 0.2;
  (void)seam::run_distributed_resilient(model, curve, part, model.cfl_dt(0.3),
                                        2, ropts);
  const auto dump = s.finish();
  const auto snap = obs::registry::global().snapshot();

  std::ostringstream os;
  io::write_chrome_trace(os, dump, &snap);
  const auto doc = io::parse_json(os.str());
  std::map<std::string, double> tracks;
  for (const auto& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string != "C") continue;
    ASSERT_TRUE(ev.at("args").is_object());
    const auto& value = ev.at("args").at("value");
    ASSERT_TRUE(value.is_number());
    EXPECT_GT(value.number, 0.0);  // zero counters are suppressed
    tracks[ev.at("name").string] = value.number;
  }
  // Split per-kind: each injected fault kind gets its own track, and the
  // reliable channel's healing shows up alongside.
  EXPECT_GT(tracks["runtime.injected.drops"], 0.0);
  EXPECT_GT(tracks["runtime.injected.corruptions"], 0.0);
  EXPECT_GT(tracks["runtime.injected.duplicates"], 0.0);
  EXPECT_GT(tracks["reliable.retransmits"], 0.0);
  EXPECT_GT(tracks["reliable.corruption_detected"], 0.0);
  EXPECT_EQ(tracks.count("runtime.injected.kills"), 0u);  // zero: no track

  // Without a snapshot the export carries no counter events (the existing
  // well-formedness test relies on that).
  std::ostringstream bare;
  io::write_chrome_trace(bare, dump);
  EXPECT_EQ(bare.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceExport, RankThreadsAreNamedAndCarrySeamSpans) {
  const auto dump = traced_advection_run(4, 6, 2);
  int rank_threads = 0;
  for (const auto& th : dump.threads) {
    if (th.name.rfind("rank ", 0) != 0) continue;
    ++rank_threads;
    bool has_step = false, has_exchange = false;
    for (const auto& ev : th.events) {
      if (std::string_view(ev.name) == "seam.step") has_step = true;
      if (std::string_view(ev.name) == "seam.exchange") has_exchange = true;
    }
    EXPECT_TRUE(has_step) << th.name;
    EXPECT_TRUE(has_exchange) << th.name;
  }
  EXPECT_EQ(rank_threads, 6);
}

// ---- tracing under the virtual-rank runtime (tsan target) -------------------

TEST(TraceRuntime, ConcurrentRankRecordingIsClean) {
  // Many ranks record spans and metrics concurrently while the main thread
  // owns the session; collect() runs after the world joined. This is the
  // test the tsan preset exercises hardest.
  obs::session s;
  runtime::world w(8);
  w.run([](runtime::communicator& c) {
    for (int i = 0; i < 50; ++i) {
      SFP_TRACE_SCOPE_CAT("work", "test");
      obs::registry::global()
          .get_counter("obs_test.rank." + std::to_string(c.rank()))
          .inc();
      c.barrier();
    }
  });
  const auto dump = s.finish();
  std::int64_t recorded = 0, dropped = 0;
  for (const auto& th : dump.threads) {
    for (const auto& ev : th.events)
      if (std::string_view(ev.name) == "work") ++recorded;
    dropped += th.dropped;
  }
  EXPECT_EQ(recorded + dropped, 8 * 50);
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(obs::registry::global()
                  .get_counter("obs_test.rank." + std::to_string(r))
                  .value(),
              50);
}

// ---- overhead ---------------------------------------------------------------

TEST(Overhead, DisabledInstrumentationStaysWithinBudgetOfHotLoop) {
  // The compiled-in, disabled macro path (one relaxed load + branch per
  // scope, one relaxed add per counter) must not distort a hot loop by
  // more than 5%. sfc_partition already carries exactly one trace scope
  // and one counter; time the loop as-is, then with that instrumentation
  // *doubled* (one extra disabled scope + counter add per call). If
  // doubling the instrumentation stays within the 5% budget (plus an
  // absolute epsilon against microsecond scheduler jitter), the single
  // copy the library ships is comfortably below it. Min-of-N timing cuts
  // the noise that would otherwise make a ratio test flaky.
  obs::trace::disable();
  const mesh::cubed_sphere m(8);
  const auto curve = core::build_cube_curve(m);
  obs::counter& extra = obs::registry::global().get_counter("obs_test.extra");

  const auto time_min_of = [](int reps, const auto& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min(best,
                      std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };

  constexpr int kInner = 200;
  (void)core::sfc_partition(curve, 96);  // warm caches + static handles

  const double baseline = time_min_of(9, [&] {
    for (int i = 0; i < kInner; ++i)
      (void)core::sfc_partition(curve, 96);
  });
  const double doubled = time_min_of(9, [&] {
    for (int i = 0; i < kInner; ++i) {
      SFP_TRACE_SCOPE_CAT("obs_test.extra", "test");
      extra.inc();
      (void)core::sfc_partition(curve, 96);
    }
  });
  EXPECT_LT(doubled, baseline * 1.05 + 2e-3)
      << "doubled-instrumentation=" << doubled << "s baseline=" << baseline
      << "s";
}

}  // namespace
