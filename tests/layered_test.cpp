// Tests for the layered (multi-level) advection substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "seam/exchange.hpp"
#include "seam/layered.hpp"
#include "util/require.hpp"

namespace {

using namespace sfp;
using namespace sfp::seam;

TEST(Layered, ShearProfileIsLinearAndCentered) {
  const mesh::cubed_sphere m(2);
  const layered_advection model(m, 3, 5, /*omega0=*/2.0, /*shear=*/0.5);
  EXPECT_DOUBLE_EQ(model.omega_at(2), 2.0);        // mid column
  EXPECT_DOUBLE_EQ(model.omega_at(0), 2.0 * 0.75);  // bottom: 1 - 0.25
  EXPECT_DOUBLE_EQ(model.omega_at(4), 2.0 * 1.25);  // top: 1 + 0.25
  EXPECT_THROW(model.omega_at(5), contract_error);
}

TEST(Layered, SingleLevelMatchesPlainModel) {
  const mesh::cubed_sphere m(2);
  layered_advection stacked(m, 4, 1, 1.0, 0.0);
  advection_model plain(m, 4, 1.0);
  const auto init = [](mesh::vec3 p) { return p.x + 0.5 * p.y * p.z; };
  stacked.set_field([&](mesh::vec3 p, int) { return init(p); });
  plain.set_field(init);
  const double dt = plain.cfl_dt(0.4);
  for (int s = 0; s < 5; ++s) {
    stacked.step(dt);
    plain.step(dt);
  }
  const auto a = stacked.layer(0);
  const auto b = plain.field();
  double max_diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  EXPECT_LT(max_diff, 1e-13);
}

TEST(Layered, LayersRotateAtTheirOwnRates) {
  // After the same wall time, the top layer's blob must lead the bottom
  // layer's in rotation angle (shear).
  const mesh::cubed_sphere m(4);
  layered_advection model(m, 5, 3, 1.0, 1.0);  // omega: 0.5, 1.0, 1.5
  model.set_field([](mesh::vec3 p, int) {
    return std::exp(-10.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double dt = model.cfl_dt(0.3);
  const int steps = static_cast<int>(0.4 / dt) + 1;
  for (int s = 0; s < steps; ++s) model.step(dt);

  const auto angle_of_layer = [&](int l) {
    // Tracer-weighted centroid angle from the layer data.
    const auto q = model.layer(l);
    const auto& pos = model.base().geometry().position;
    double cx = 0, cy = 0, total = 0;
    for (std::size_t k = 0; k < q.size(); ++k) {
      cx += q[k] * pos[k].x;
      cy += q[k] * pos[k].y;
      total += q[k];
    }
    return std::atan2(cy / total, cx / total);
  };
  const double bottom = angle_of_layer(0);
  const double middle = angle_of_layer(1);
  const double top = angle_of_layer(2);
  EXPECT_GT(middle, bottom + 0.05);
  EXPECT_GT(top, middle + 0.05);
}

TEST(Layered, EachLayerMassStable) {
  const mesh::cubed_sphere m(3);
  layered_advection model(m, 5, 4, 1.0, 0.5);
  model.set_field(
      [](mesh::vec3 p, int l) { return 1.0 + 0.1 * l + 0.2 * p.x; });
  std::vector<double> m0;
  for (int l = 0; l < 4; ++l) m0.push_back(model.layer_mass(l));
  const double dt = model.cfl_dt(0.3);
  for (int s = 0; s < 20; ++s) model.step(dt);
  for (int l = 0; l < 4; ++l)
    EXPECT_NEAR(model.layer_mass(l), m0[static_cast<std::size_t>(l)],
                5e-3 * std::abs(m0[static_cast<std::size_t>(l)]))
        << "layer " << l;
}

TEST(Layered, ConstantLayersStaySeparate) {
  // No inter-layer coupling: distinct constants remain exactly distinct.
  const mesh::cubed_sphere m(2);
  layered_advection model(m, 4, 3, 1.0, 0.5);
  model.set_field([](mesh::vec3, int l) { return static_cast<double>(l); });
  const double dt = model.cfl_dt(0.4);
  for (int s = 0; s < 6; ++s) model.step(dt);
  for (int l = 0; l < 3; ++l)
    for (const double v : model.layer(l))
      ASSERT_DOUBLE_EQ(v, static_cast<double>(l));
}

TEST(Layered, DistributedMatchesSerialAndVolumeScalesWithNlev) {
  const mesh::cubed_sphere m(2);
  const int nlev = 3, nsteps = 4, nranks = 6;
  layered_advection model(m, 4, nlev, 1.0, 0.6);
  model.set_field([](mesh::vec3 p, int l) {
    return p.x * (1 + l) + 0.2 * p.y - 0.1 * l * p.z;
  });
  const double dt = model.cfl_dt(0.3);
  const auto part = core::sfc_partition(m, nranks);

  dist_stats stats;
  const auto dist = run_distributed_layered(model, part, dt, nsteps, &stats);

  layered_advection serial = std::move(model);
  for (int s = 0; s < nsteps; ++s) serial.step(dt);

  ASSERT_EQ(dist.size(), static_cast<std::size_t>(nlev));
  for (int l = 0; l < nlev; ++l) {
    const auto ref = serial.layer(l);
    double max_diff = 0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      max_diff = std::max(
          max_diff, std::abs(dist[static_cast<std::size_t>(l)][i] - ref[i]));
    EXPECT_LT(max_diff, 1e-12) << "layer " << l;
  }

  // Wire volume: 3 RK stages per step per layer, each one full exchange.
  const auto plan = exchange_plan::build(serial.base().dofs(), part);
  EXPECT_EQ(stats.doubles_sent,
            3LL * nsteps * nlev * plan.total_exchange_volume());
}

TEST(Layered, Preconditions) {
  const mesh::cubed_sphere m(2);
  EXPECT_THROW(layered_advection(m, 4, 0), contract_error);
  EXPECT_THROW(layered_advection(m, 4, 3, 0.0), contract_error);
  layered_advection model(m, 4, 2);
  EXPECT_THROW(model.step(0.0), contract_error);
  EXPECT_THROW(model.layer(2), contract_error);
  EXPECT_THROW(model.layer_mass(-1), contract_error);
}

}  // namespace
