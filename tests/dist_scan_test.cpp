// Unit tests for the distributed-scan primitive (core/dist_scan.hpp) and
// the splitter machinery of the parallel partitioner
// (core/parallel_partition.hpp): the integer-exact collectives, the block
// distribution, the repair recurrence, and the histogram splitter search —
// including its edge cases: all-zero weights, one giant element, fewer
// elements than ranks (empty blocks), block sizes that don't divide, and
// threshold ties that land several cuts on the same position.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/dist_scan.hpp"
#include "core/parallel_partition.hpp"
#include "core/sfc_partition.hpp"
#include "runtime/partition_fabric.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using sfp::core::allgather_concat;
using sfp::core::allreduce_sum;
using sfp::core::element_block_begin;
using sfp::core::exscan_sum;
using sfp::core::find_raw_splitters;
using sfp::core::repair_boundaries;
using sfp::core::solo_comm;

// ---------------------------------------------------------------------------
// Collectives.

TEST(SoloComm, CollectivesAreIdentities) {
  solo_comm solo;
  EXPECT_EQ(allreduce_sum(solo, 42), 42);
  std::vector<std::int64_t> v{7, -3, 0};
  allreduce_sum(solo, v);
  EXPECT_EQ(v, (std::vector<std::int64_t>{7, -3, 0}));
  EXPECT_EQ(exscan_sum(solo, 99), 0);
  EXPECT_EQ(allgather_concat(solo, v), v);
}

/// Run `body(comm)` once per rank over an in-process world with a reliable
/// channel per rank — the same stack the partition driver uses.
template <typename Body>
void run_peer_group(int nranks, Body&& body) {
  runtime::world w(nranks);
  w.run([&](runtime::communicator& comm) {
    runtime::reliable_channel channel(comm);
    runtime::reliable_peer_comm peers(channel, comm.rank(), comm.size());
    body(peers);
    channel.flush();
    channel.fence();
  });
}

TEST(DistScan, AllreduceSumScalarIdenticalOnAllRanks) {
  constexpr int kRanks = 4;
  std::vector<std::int64_t> got(kRanks, 0);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    const std::int64_t mine = (comm.rank() + 1) * (comm.rank() + 1);
    got[static_cast<std::size_t>(comm.rank())] = allreduce_sum(comm, mine);
  });
  for (const auto s : got) EXPECT_EQ(s, 1 + 4 + 9 + 16);
}

TEST(DistScan, AllreduceSumVectorElementwise) {
  constexpr int kRanks = 3;
  std::vector<std::vector<std::int64_t>> got(kRanks);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    std::vector<std::int64_t> mine{comm.rank(), 10 * comm.rank(), -1};
    allreduce_sum(comm, mine);
    got[static_cast<std::size_t>(comm.rank())] = mine;
  });
  for (const auto& v : got) EXPECT_EQ(v, (std::vector<std::int64_t>{3, 30, -3}));
}

TEST(DistScan, ExscanIsExclusivePrefix) {
  constexpr int kRanks = 4;
  std::vector<std::int64_t> got(kRanks, -1);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    got[static_cast<std::size_t>(comm.rank())] =
        exscan_sum(comm, comm.rank() + 1);
  });
  EXPECT_EQ(got, (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(DistScan, AllgatherConcatKeepsRankOrderAndEmptyContributions) {
  constexpr int kRanks = 4;
  std::vector<std::vector<std::int64_t>> got(kRanks);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    std::vector<std::int64_t> mine;
    if (comm.rank() != 2)  // rank 2 contributes nothing
      for (int i = 0; i <= comm.rank(); ++i) mine.push_back(comm.rank() * 10 + i);
    got[static_cast<std::size_t>(comm.rank())] = allgather_concat(comm, mine);
  });
  const std::vector<std::int64_t> want{0, 10, 11, 30, 31, 32, 33};
  for (const auto& v : got) EXPECT_EQ(v, want);
}

// ---------------------------------------------------------------------------
// Block distribution.

TEST(BlockDistribution, BalancedWhenNotDivisible) {
  // K = 10 over 4 ranks: the first K mod P blocks are one larger.
  EXPECT_EQ(element_block_begin(10, 4, 0), 0);
  EXPECT_EQ(element_block_begin(10, 4, 1), 3);
  EXPECT_EQ(element_block_begin(10, 4, 2), 6);
  EXPECT_EQ(element_block_begin(10, 4, 3), 8);
  EXPECT_EQ(element_block_begin(10, 4, 4), 10);
}

TEST(BlockDistribution, EmptyBlocksWhenFewerElementsThanRanks) {
  // K = 2 over 5 ranks: ranks 2..4 own nothing.
  std::vector<std::int64_t> sizes;
  for (int r = 0; r < 5; ++r)
    sizes.push_back(element_block_begin(2, 5, r + 1) -
                    element_block_begin(2, 5, r));
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{1, 1, 0, 0, 0}));
}

// ---------------------------------------------------------------------------
// Repair recurrence.

TEST(RepairBoundaries, AllZeroRawCutsSpreadOnePartPerPosition) {
  const std::vector<std::int64_t> raw{0, 0, 0};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(RepairBoundaries, SentinelCutsAreForcedOntoTheTail) {
  const std::vector<std::int64_t> raw{10, 10, 10};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{7, 8, 9}));
}

TEST(RepairBoundaries, WellSeparatedCutsPassThrough) {
  const std::vector<std::int64_t> raw{2, 5, 8};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{2, 5, 8}));
}

// ---------------------------------------------------------------------------
// Splitter search. Ground truth: the serial midpoint rule evaluated
// directly — the first position whose M(i) = 2·S(i)+w(i) crosses each
// part's threshold — and, end-to-end, the serial slicer itself.

std::vector<std::int64_t> direct_raw_cuts(
    const std::vector<graph::weight>& w_by_pos, int nparts) {
  const auto n = static_cast<std::int64_t>(w_by_pos.size());
  graph::weight total = 0;
  for (const auto w : w_by_pos) total += w;
  std::vector<std::int64_t> raw(static_cast<std::size_t>(nparts) - 1, n);
  graph::weight s = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const graph::weight m = 2 * s + w_by_pos[static_cast<std::size_t>(i)];
    for (std::int64_t p = 1; p < nparts; ++p)
      if (raw[static_cast<std::size_t>(p - 1)] == n &&
          m * nparts >= 2 * p * total)
        raw[static_cast<std::size_t>(p - 1)] = i;
    s += w_by_pos[static_cast<std::size_t>(i)];
  }
  return raw;
}

/// Solo-run find_raw_splitters over weights laid out by curve position
/// (keys are the identity permutation), with a tiny window to force
/// several refinement rounds.
std::vector<std::int64_t> solo_splitters(
    const std::vector<graph::weight>& w_by_pos, int nparts) {
  solo_comm solo;
  std::vector<std::int64_t> keys(w_by_pos.size());
  std::iota(keys.begin(), keys.end(), 0);
  graph::weight total = 0;
  for (const auto w : w_by_pos) total += w;
  core::parallel_partition_options opts;
  opts.histogram_fanout = 2;
  opts.window_elements = 2;
  return find_raw_splitters(solo, keys, w_by_pos,
                            static_cast<std::int64_t>(w_by_pos.size()), total,
                            nparts, opts);
}

TEST(SplitterSearch, MatchesDirectMidpointRuleOnRandomWeights) {
  sfp::rng r(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::int64_t>(5 + r.below(40));
    std::vector<graph::weight> w(static_cast<std::size_t>(n));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(50));
    for (const int nparts : {2, 3, 7}) {
      if (nparts > n) continue;
      EXPECT_EQ(solo_splitters(w, nparts), direct_raw_cuts(w, nparts))
          << "trial " << trial << " nparts " << nparts;
    }
  }
}

TEST(SplitterSearch, AllZeroWeightsCutEverySplitterAtZero) {
  // Zero total weight: every threshold is zero, so every part's cut is the
  // first position; repair then spreads one part per position.
  const std::vector<graph::weight> w(6, 0);
  const auto raw = solo_splitters(w, 4);
  EXPECT_EQ(raw, (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_EQ(repair_boundaries(raw, 6, 4), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SplitterSearch, SingleGiantElementTiesAllCutsOnIt) {
  // One element holds nearly all the weight: the midpoint thresholds of
  // parts 1 and 2 fall inside its interval (tying their cuts on it), and
  // part 3's threshold lies beyond every midpoint (the sentinel cut).
  std::vector<graph::weight> w{1, 1, 1, 997};
  const auto raw = solo_splitters(w, 4);
  EXPECT_EQ(raw, direct_raw_cuts(w, 4));
  EXPECT_EQ(raw, (std::vector<std::int64_t>{3, 3, 4}));
  // Repair resolves the tie deterministically: strictly increasing
  // boundaries that keep every part non-empty.
  EXPECT_EQ(repair_boundaries(raw, 4, 4), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SplitterSearch, GiantElementMidCurveMatchesSerialSlicer) {
  std::vector<graph::weight> w{2, 3, 1000, 1, 1, 2, 3, 1};
  const auto raw = solo_splitters(w, 5);
  EXPECT_EQ(raw, direct_raw_cuts(w, 5));
  // End-to-end against the serial slicer on the identity order.
  std::vector<int> order(w.size());
  std::iota(order.begin(), order.end(), 0);
  const auto serial = core::partition_from_order(order, w, 5);
  const auto b = repair_boundaries(raw, static_cast<std::int64_t>(w.size()), 5);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto label = std::upper_bound(b.begin(), b.end(),
                                        static_cast<std::int64_t>(i)) -
                       b.begin();
    EXPECT_EQ(label, serial.part_of[i]) << "position " << i;
  }
}

TEST(SplitterSearch, DistributedMatchesSoloAcrossUnevenAndEmptyBlocks) {
  // The same search distributed over ranks must return the identical cuts —
  // with block sizes that don't divide (K = 11 over 3) and with empty
  // blocks (K = 5 over 8).
  sfp::rng r(7);
  for (const auto& [k, nranks] : {std::pair{11, 3}, std::pair{5, 8}}) {
    std::vector<graph::weight> w(static_cast<std::size_t>(k));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(30));
    const int nparts = std::min(4, k);
    const auto want = solo_splitters(w, nparts);

    graph::weight total = 0;
    for (const auto x : w) total += x;
    std::vector<std::vector<std::int64_t>> got(
        static_cast<std::size_t>(nranks));
    run_peer_group(nranks, [&](core::peer_comm& comm) {
      const std::int64_t begin = element_block_begin(k, nranks, comm.rank());
      const std::int64_t end =
          element_block_begin(k, nranks, comm.rank() + 1);
      std::vector<std::int64_t> keys;
      std::vector<graph::weight> mine;
      for (std::int64_t i = begin; i < end; ++i) {
        keys.push_back(i);
        mine.push_back(w[static_cast<std::size_t>(i)]);
      }
      core::parallel_partition_options opts;
      opts.histogram_fanout = 2;
      opts.window_elements = 2;
      got[static_cast<std::size_t>(comm.rank())] =
          find_raw_splitters(comm, keys, mine, k, total, nparts, opts);
    });
    for (const auto& raw : got) EXPECT_EQ(raw, want) << "K=" << k;
  }
}

}  // namespace
