// Unit tests for the distributed-scan primitive (core/dist_scan.hpp) and
// the splitter machinery of the parallel partitioner
// (core/parallel_partition.hpp): the integer-exact collectives, the block
// distribution, the repair recurrence, and the histogram splitter search —
// including its edge cases: all-zero weights, one giant element, fewer
// elements than ranks (empty blocks), block sizes that don't divide, and
// threshold ties that land several cuts on the same position.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/dist_scan.hpp"
#include "core/parallel_partition.hpp"
#include "core/sfc_partition.hpp"
#include "runtime/partition_fabric.hpp"
#include "util/rng.hpp"

namespace {

using namespace sfp;
using sfp::core::allgather_concat;
using sfp::core::allreduce_sum;
using sfp::core::element_block_begin;
using sfp::core::exscan_sum;
using sfp::core::find_raw_splitters;
using sfp::core::repair_boundaries;
using sfp::core::solo_comm;

// ---------------------------------------------------------------------------
// Collectives.

TEST(SoloComm, CollectivesAreIdentities) {
  solo_comm solo;
  EXPECT_EQ(allreduce_sum(solo, 42), 42);
  std::vector<std::int64_t> v{7, -3, 0};
  allreduce_sum(solo, v);
  EXPECT_EQ(v, (std::vector<std::int64_t>{7, -3, 0}));
  EXPECT_EQ(exscan_sum(solo, 99), 0);
  EXPECT_EQ(allgather_concat(solo, v), v);
}

/// Run `body(comm)` once per rank over an in-process world with a reliable
/// channel per rank — the same stack the partition driver uses.
template <typename Body>
void run_peer_group(int nranks, Body&& body) {
  runtime::world w(nranks);
  w.run([&](runtime::communicator& comm) {
    runtime::reliable_channel channel(comm);
    runtime::reliable_peer_comm peers(channel, comm.rank(), comm.size());
    body(peers);
    channel.flush();
    channel.fence();
  });
}

TEST(DistScan, AllreduceSumScalarIdenticalOnAllRanks) {
  constexpr int kRanks = 4;
  std::vector<std::int64_t> got(kRanks, 0);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    const std::int64_t mine = (comm.rank() + 1) * (comm.rank() + 1);
    got[static_cast<std::size_t>(comm.rank())] = allreduce_sum(comm, mine);
  });
  for (const auto s : got) EXPECT_EQ(s, 1 + 4 + 9 + 16);
}

TEST(DistScan, AllreduceSumVectorElementwise) {
  constexpr int kRanks = 3;
  std::vector<std::vector<std::int64_t>> got(kRanks);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    std::vector<std::int64_t> mine{comm.rank(), 10 * comm.rank(), -1};
    allreduce_sum(comm, mine);
    got[static_cast<std::size_t>(comm.rank())] = mine;
  });
  for (const auto& v : got) EXPECT_EQ(v, (std::vector<std::int64_t>{3, 30, -3}));
}

TEST(DistScan, ExscanIsExclusivePrefix) {
  constexpr int kRanks = 4;
  std::vector<std::int64_t> got(kRanks, -1);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    got[static_cast<std::size_t>(comm.rank())] =
        exscan_sum(comm, comm.rank() + 1);
  });
  EXPECT_EQ(got, (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(DistScan, AllgatherConcatKeepsRankOrderAndEmptyContributions) {
  constexpr int kRanks = 4;
  std::vector<std::vector<std::int64_t>> got(kRanks);
  run_peer_group(kRanks, [&](core::peer_comm& comm) {
    std::vector<std::int64_t> mine;
    if (comm.rank() != 2)  // rank 2 contributes nothing
      for (int i = 0; i <= comm.rank(); ++i) mine.push_back(comm.rank() * 10 + i);
    got[static_cast<std::size_t>(comm.rank())] = allgather_concat(comm, mine);
  });
  const std::vector<std::int64_t> want{0, 10, 11, 30, 31, 32, 33};
  for (const auto& v : got) EXPECT_EQ(v, want);
}

// ---------------------------------------------------------------------------
// Block distribution.

TEST(BlockDistribution, BalancedWhenNotDivisible) {
  // K = 10 over 4 ranks: the first K mod P blocks are one larger.
  EXPECT_EQ(element_block_begin(10, 4, 0), 0);
  EXPECT_EQ(element_block_begin(10, 4, 1), 3);
  EXPECT_EQ(element_block_begin(10, 4, 2), 6);
  EXPECT_EQ(element_block_begin(10, 4, 3), 8);
  EXPECT_EQ(element_block_begin(10, 4, 4), 10);
}

TEST(BlockDistribution, EmptyBlocksWhenFewerElementsThanRanks) {
  // K = 2 over 5 ranks: ranks 2..4 own nothing.
  std::vector<std::int64_t> sizes;
  for (int r = 0; r < 5; ++r)
    sizes.push_back(element_block_begin(2, 5, r + 1) -
                    element_block_begin(2, 5, r));
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{1, 1, 0, 0, 0}));
}

// ---------------------------------------------------------------------------
// Repair recurrence.

TEST(RepairBoundaries, AllZeroRawCutsSpreadOnePartPerPosition) {
  const std::vector<std::int64_t> raw{0, 0, 0};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(RepairBoundaries, SentinelCutsAreForcedOntoTheTail) {
  const std::vector<std::int64_t> raw{10, 10, 10};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{7, 8, 9}));
}

TEST(RepairBoundaries, WellSeparatedCutsPassThrough) {
  const std::vector<std::int64_t> raw{2, 5, 8};
  EXPECT_EQ(repair_boundaries(raw, 10, 4),
            (std::vector<std::int64_t>{2, 5, 8}));
}

// ---------------------------------------------------------------------------
// Splitter search. Ground truth: the serial midpoint rule evaluated
// directly — the first position whose M(i) = 2·S(i)+w(i) crosses each
// part's threshold — and, end-to-end, the serial slicer itself.

std::vector<std::int64_t> direct_raw_cuts(
    const std::vector<graph::weight>& w_by_pos, int nparts) {
  const auto n = static_cast<std::int64_t>(w_by_pos.size());
  graph::weight total = 0;
  for (const auto w : w_by_pos) total += w;
  std::vector<std::int64_t> raw(static_cast<std::size_t>(nparts) - 1, n);
  graph::weight s = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const graph::weight m = 2 * s + w_by_pos[static_cast<std::size_t>(i)];
    for (std::int64_t p = 1; p < nparts; ++p)
      if (raw[static_cast<std::size_t>(p - 1)] == n &&
          m * nparts >= 2 * p * total)
        raw[static_cast<std::size_t>(p - 1)] = i;
    s += w_by_pos[static_cast<std::size_t>(i)];
  }
  return raw;
}

/// Solo-run find_raw_splitters over weights laid out by curve position
/// (keys are the identity permutation), with a tiny window to force
/// several refinement rounds.
std::vector<std::int64_t> solo_splitters(
    const std::vector<graph::weight>& w_by_pos, int nparts) {
  solo_comm solo;
  std::vector<std::int64_t> keys(w_by_pos.size());
  std::iota(keys.begin(), keys.end(), 0);
  graph::weight total = 0;
  for (const auto w : w_by_pos) total += w;
  core::parallel_partition_options opts;
  opts.histogram_fanout = 2;
  opts.window_elements = 2;
  return find_raw_splitters(solo, keys, w_by_pos,
                            static_cast<std::int64_t>(w_by_pos.size()), total,
                            nparts, opts);
}

TEST(SplitterSearch, MatchesDirectMidpointRuleOnRandomWeights) {
  sfp::rng r(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::int64_t>(5 + r.below(40));
    std::vector<graph::weight> w(static_cast<std::size_t>(n));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(50));
    for (const int nparts : {2, 3, 7}) {
      if (nparts > n) continue;
      EXPECT_EQ(solo_splitters(w, nparts), direct_raw_cuts(w, nparts))
          << "trial " << trial << " nparts " << nparts;
    }
  }
}

TEST(SplitterSearch, AllZeroWeightsCutEverySplitterAtZero) {
  // Zero total weight: every threshold is zero, so every part's cut is the
  // first position; repair then spreads one part per position.
  const std::vector<graph::weight> w(6, 0);
  const auto raw = solo_splitters(w, 4);
  EXPECT_EQ(raw, (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_EQ(repair_boundaries(raw, 6, 4), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SplitterSearch, SingleGiantElementTiesAllCutsOnIt) {
  // One element holds nearly all the weight: the midpoint thresholds of
  // parts 1 and 2 fall inside its interval (tying their cuts on it), and
  // part 3's threshold lies beyond every midpoint (the sentinel cut).
  std::vector<graph::weight> w{1, 1, 1, 997};
  const auto raw = solo_splitters(w, 4);
  EXPECT_EQ(raw, direct_raw_cuts(w, 4));
  EXPECT_EQ(raw, (std::vector<std::int64_t>{3, 3, 4}));
  // Repair resolves the tie deterministically: strictly increasing
  // boundaries that keep every part non-empty.
  EXPECT_EQ(repair_boundaries(raw, 4, 4), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SplitterSearch, GiantElementMidCurveMatchesSerialSlicer) {
  std::vector<graph::weight> w{2, 3, 1000, 1, 1, 2, 3, 1};
  const auto raw = solo_splitters(w, 5);
  EXPECT_EQ(raw, direct_raw_cuts(w, 5));
  // End-to-end against the serial slicer on the identity order.
  std::vector<int> order(w.size());
  std::iota(order.begin(), order.end(), 0);
  const auto serial = core::partition_from_order(order, w, 5);
  const auto b = repair_boundaries(raw, static_cast<std::int64_t>(w.size()), 5);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const auto label = std::upper_bound(b.begin(), b.end(),
                                        static_cast<std::int64_t>(i)) -
                       b.begin();
    EXPECT_EQ(label, serial.part_of[i]) << "position " << i;
  }
}

TEST(SplitterSearch, DistributedMatchesSoloAcrossUnevenAndEmptyBlocks) {
  // The same search distributed over ranks must return the identical cuts —
  // with block sizes that don't divide (K = 11 over 3) and with empty
  // blocks (K = 5 over 8).
  sfp::rng r(7);
  for (const auto& [k, nranks] : {std::pair{11, 3}, std::pair{5, 8}}) {
    std::vector<graph::weight> w(static_cast<std::size_t>(k));
    for (auto& x : w) x = 1 + static_cast<graph::weight>(r.below(30));
    const int nparts = std::min(4, k);
    const auto want = solo_splitters(w, nparts);

    graph::weight total = 0;
    for (const auto x : w) total += x;
    std::vector<std::vector<std::int64_t>> got(
        static_cast<std::size_t>(nranks));
    run_peer_group(nranks, [&](core::peer_comm& comm) {
      const std::int64_t begin = element_block_begin(k, nranks, comm.rank());
      const std::int64_t end =
          element_block_begin(k, nranks, comm.rank() + 1);
      std::vector<std::int64_t> keys;
      std::vector<graph::weight> mine;
      for (std::int64_t i = begin; i < end; ++i) {
        keys.push_back(i);
        mine.push_back(w[static_cast<std::size_t>(i)]);
      }
      core::parallel_partition_options opts;
      opts.histogram_fanout = 2;
      opts.window_elements = 2;
      got[static_cast<std::size_t>(comm.rank())] =
          find_raw_splitters(comm, keys, mine, k, total, nparts, opts);
    });
    for (const auto& raw : got) EXPECT_EQ(raw, want) << "K=" << k;
  }
}

// ---------------------------------------------------------------------------
// Survivor regroup over injected rank kills: the regroup_comm wrapper must
// shrink the group around the corpses and let the survivors re-execute the
// collective deterministically — or, below quorum, abort cleanly instead of
// hanging. Every test here doubles as a hang check: the world's blocking
// timeout bounds any stuck rank, so mere completion is part of the contract.

/// Per-rank outcome of one faulted regroup run.
struct regroup_run {
  bool completed = false;  ///< body finished under some surviving group
  bool aborted = false;    ///< quorum_lost (evicted or below min_members)
  bool dead = false;       ///< the injected kill fired on this rank
  std::uint64_t epoch = 0;
  std::vector<int> members;
  std::vector<std::int64_t> value;  ///< whatever the body computed
};

/// Reliable tuning matched to kill tests: fast retransmit exhaustion makes
/// corpse detection definite within ~a quarter second, and the short base
/// recv timeout keeps the silence-patience budget in wall-clock bounds.
runtime::reliable_options kill_test_reliable() {
  runtime::reliable_options r;
  r.retransmit_timeout = std::chrono::microseconds(5000);
  r.max_backoff = std::chrono::microseconds(20000);
  r.max_retransmits = 12;
  r.recv_timeout = std::chrono::milliseconds(100);
  return r;
}

/// Run `body(group)` per rank with kills injected, re-executing from
/// scratch on every group reconfiguration — the same retry discipline the
/// partition fabric uses, minus the escalation ladder.
template <typename Body>
std::vector<regroup_run> run_regroup_group(int nranks,
                                           runtime::fault_plan faults,
                                           core::regroup_options ropts,
                                           Body&& body) {
  std::vector<regroup_run> out(static_cast<std::size_t>(nranks));
  runtime::world::options wopts;
  wopts.timeout = std::chrono::milliseconds(20000);
  wopts.faults = std::move(faults);
  runtime::world w(nranks, wopts);
  w.run([&](runtime::communicator& comm) {
    regroup_run& r = out[static_cast<std::size_t>(comm.rank())];
    runtime::reliable_channel channel(comm, kill_test_reliable());
    try {
      runtime::reliable_peer_comm peers(channel, comm.rank(), comm.size());
      core::regroup_comm group(peers, ropts);
      for (int attempt = 0; attempt < nranks; ++attempt) {
        try {
          r.value = body(group);
          group.barrier();
          r.completed = true;
          break;
        } catch (const core::group_reconfigured&) {
          continue;  // re-execute over the shrunken group
        }
      }
      r.epoch = group.view().epoch;
      r.members = group.view().members;
      // Tail flush: releases to ranks that already left may never be
      // acked; scrub those instead of escalating — deposits made, we are
      // only leaving.
      for (;;) {
        try {
          channel.flush();
          break;
        } catch (const runtime::peer_unreachable_error& e) {
          channel.forget_peer(e.peer());
        }
      }
    } catch (const core::quorum_lost&) {
      r.aborted = true;
      channel.abandon();
    } catch (const runtime::rank_killed&) {
      r.dead = true;
      channel.abandon();
    }
  });
  return out;
}

core::regroup_options quorum(int min_members) {
  core::regroup_options r;
  r.min_members = min_members;
  return r;
}

runtime::fault_plan kills(
    std::initializer_list<runtime::fault_plan::kill_spec> specs) {
  runtime::fault_plan plan;
  plan.kills.assign(specs.begin(), specs.end());
  return plan;
}

TEST(Regroup, RankZeroDeathElectsLowestSurvivorAsRoot) {
  // Rank 0 dies on its first send — mid-collective, while every leaf is
  // waiting on the root. Succession must hand the root role to rank 1
  // (lowest survivor) and the re-executed allreduce must cover exactly the
  // survivors' contributions.
  const auto runs =
      run_regroup_group(4, kills({{0, 1}}), quorum(2), [](core::regroup_comm& g) {
        const int world = g.view().members[static_cast<std::size_t>(g.rank())];
        return std::vector<std::int64_t>{
            allreduce_sum(g, static_cast<std::int64_t>(world + 1))};
      });
  EXPECT_TRUE(runs[0].dead);
  for (int r = 1; r < 4; ++r) {
    ASSERT_TRUE(runs[r].completed) << "rank " << r;
    EXPECT_EQ(runs[r].epoch, 1u) << "rank " << r;
    EXPECT_EQ(runs[r].members, (std::vector<int>{1, 2, 3})) << "rank " << r;
    // Sum over survivors {1,2,3}: 2 + 3 + 4.
    EXPECT_EQ(runs[r].value, (std::vector<std::int64_t>{9})) << "rank " << r;
  }
}

TEST(Regroup, TwoDeathsInOneRunStillReachQuorum) {
  // Two corpses, one run: ranks 0 and 2 die at different ops. Whether the
  // agreement settles in one round or two, the surviving pair {1, 3} is
  // exactly at quorum and must finish with a consistent result.
  const auto runs = run_regroup_group(
      4, kills({{0, 1}, {2, 2}}), quorum(2), [](core::regroup_comm& g) {
        const int world = g.view().members[static_cast<std::size_t>(g.rank())];
        return std::vector<std::int64_t>{
            allreduce_sum(g, static_cast<std::int64_t>(world + 1))};
      });
  EXPECT_TRUE(runs[0].dead);
  EXPECT_TRUE(runs[2].dead);
  for (const int r : {1, 3}) {
    ASSERT_TRUE(runs[r].completed) << "rank " << r;
    EXPECT_GE(runs[r].epoch, 1u) << "rank " << r;
    EXPECT_EQ(runs[r].members, (std::vector<int>{1, 3})) << "rank " << r;
    EXPECT_EQ(runs[r].value, (std::vector<std::int64_t>{6})) << "rank " << r;
  }
}

TEST(Regroup, DeathBelowQuorumAbortsCleanlyWithoutHanging) {
  // min_members = 3, two deaths leave {1, 3}: every survivor must unwind
  // via quorum_lost — promptly, not by timing out the world — and no rank
  // may complete under an undersized group.
  const auto runs = run_regroup_group(
      4, kills({{0, 1}, {2, 2}}), quorum(3), [](core::regroup_comm& g) {
        const int world = g.view().members[static_cast<std::size_t>(g.rank())];
        return std::vector<std::int64_t>{
            allreduce_sum(g, static_cast<std::int64_t>(world + 1))};
      });
  EXPECT_TRUE(runs[0].dead);
  EXPECT_TRUE(runs[2].dead);
  for (const int r : {1, 3}) {
    EXPECT_TRUE(runs[r].aborted) << "rank " << r;
    EXPECT_FALSE(runs[r].completed) << "rank " << r;
  }
}

TEST(Regroup, KillDuringExscanRecoversWithConsistentOffsets) {
  // Rank 2 dies on its first send — its exscan contribution (or its ack),
  // so the fan-in at the root is what detects the corpse. Survivors
  // re-execute: offsets must be the exclusive prefix over dense order of
  // the surviving members only.
  const auto runs = run_regroup_group(
      4, kills({{2, 1}}), quorum(2), [](core::regroup_comm& g) {
        const int world = g.view().members[static_cast<std::size_t>(g.rank())];
        return std::vector<std::int64_t>{
            exscan_sum(g, static_cast<std::int64_t>(world + 1))};
      });
  EXPECT_TRUE(runs[2].dead);
  // Survivors {0, 1, 3} contribute {1, 2, 4}; exclusive prefix: 0, 1, 3.
  const std::int64_t want[4] = {0, 1, -1, 3};
  for (const int r : {0, 1, 3}) {
    ASSERT_TRUE(runs[r].completed) << "rank " << r;
    EXPECT_EQ(runs[r].members, (std::vector<int>{0, 1, 3})) << "rank " << r;
    EXPECT_EQ(runs[r].value, (std::vector<std::int64_t>{want[r]}))
        << "rank " << r;
  }
}

TEST(Regroup, KillDuringAllgatherRecoversWithSurvivorConcat) {
  // The body runs a fault-free exscan first, then the allgather; rank 2's
  // kill is pinned past its exscan traffic so death lands in the gather
  // phase. The re-executed run must concatenate exactly the survivors'
  // words in dense rank order.
  const auto runs = run_regroup_group(
      4, kills({{2, 4}}), quorum(2), [](core::regroup_comm& g) {
        const int world = g.view().members[static_cast<std::size_t>(g.rank())];
        (void)exscan_sum(g, static_cast<std::int64_t>(world + 1));
        const std::int64_t mine[1] = {10 * (world + 1)};
        return allgather_concat(g, mine);
      });
  EXPECT_TRUE(runs[2].dead);
  for (const int r : {0, 1, 3}) {
    ASSERT_TRUE(runs[r].completed) << "rank " << r;
    EXPECT_EQ(runs[r].epoch, 1u) << "rank " << r;
    EXPECT_EQ(runs[r].value, (std::vector<std::int64_t>{10, 20, 40}))
        << "rank " << r;
  }
}

}  // namespace
