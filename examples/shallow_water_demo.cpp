// Shallow-water demo: the equation set SEAM descends from (Taylor, Tribbia
// & Iskandarani 1997 — the paper's reference [9]) running on the
// cubed-sphere. Integrates Williamson test case 2 (steady geostrophic flow)
// and reports how well the discrete model holds the analytic steady state,
// plus mass/energy conservation.
//
//   ./shallow_water_demo [--ne=4] [--np=6] [--steps=100]

#include <cstdio>

#include "mesh/cubed_sphere.hpp"
#include "seam/shallow_water.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 4));
  const int np = static_cast<int>(args.get_int_or("np", 6));
  const int steps = static_cast<int>(args.get_int_or("steps", 100));

  const mesh::cubed_sphere mesh(ne);
  seam::shallow_water_model model(mesh, np);
  const double u0 = 0.1, h0 = 10.0;
  model.set_williamson2(u0, h0);
  const auto reference = [&](mesh::vec3 p) {
    return h0 - (model.params().rotation * u0 + 0.5 * u0 * u0) * p.z * p.z /
                    model.params().gravity;
  };

  const double dt = model.cfl_dt(0.25);
  const double mass0 = model.mass();
  const double energy0 = model.total_energy();
  std::printf("Williamson TC2 on Ne=%d, np=%d (K=%d elements, %lld dofs), "
              "dt=%.4f\n",
              ne, np, mesh.num_elements(),
              static_cast<long long>(model.dofs().num_dofs()), dt);
  std::printf("%-8s %-14s %-14s %-14s\n", "step", "h error (Linf)",
              "mass drift", "energy drift");
  for (int s = 0; s <= steps; ++s) {
    if (s % (steps / 5 == 0 ? 1 : steps / 5) == 0) {
      std::printf("%-8d %-14.3e %-14.3e %-14.3e\n", s,
                  model.depth_error(reference),
                  (model.mass() - mass0) / mass0,
                  (model.total_energy() - energy0) / energy0);
    }
    if (s < steps) model.step(dt);
  }
  std::printf("\ntangency violation: %.2e, continuity gap: %.2e\n",
              model.max_normal_velocity(), model.continuity_gap());
  std::printf("The steady state holds to discretization error — the "
              "spectral element dynamical core works; partitioning it is "
              "what the rest of this library is about.\n");
  return 0;
}
