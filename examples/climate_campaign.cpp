// Climate-campaign planner: given a target resolution, sweep the valid
// processor counts and report where the SFC partitioning pays off and what
// throughput (simulated years per wallclock day on the P690-like machine)
// each configuration achieves — the capacity-planning question behind the
// paper's introduction (century-long integrations at coarse resolution and
// high parallelism).
//
//   ./climate_campaign [--ne=16] [--dt-seconds=120]

#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/partitioner.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 16));
  const double dt_seconds = args.get_double_or("dt-seconds", 120.0);

  if (!core::sfc_supports(ne)) {
    std::printf("Ne=%d is not 2^n*3^m — pick 8, 9, 12, 16, 18, 24, ...\n", ne);
    return 1;
  }
  const mesh::cubed_sphere mesh(ne);
  const auto dual = mesh.dual_graph();
  const auto curve = core::build_cube_curve(mesh);
  const perf::machine_model machine;
  const perf::seam_workload workload;
  const int k = mesh.num_elements();

  std::printf("campaign planner: Ne=%d (K=%d elements), model dt=%.0f s\n\n",
              ne, k, dt_seconds);

  table t({"Nproc", "elems/proc", "step (usec)", "sim-years/day",
           "parallel eff %", "vs best METIS"});
  const auto serial = perf::serial_step(k, machine, workload);
  for (const int nproc : core::equal_load_nprocs(ne)) {
    if (nproc < 8) continue;
    const auto sfc = core::sfc_partition(curve, nproc);
    const auto t_sfc = perf::simulate_step(dual, sfc, machine, workload);

    double best_mgp = 0;
    for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc)) {
      (void)algo;
      const auto tm = perf::simulate_step(dual, part, machine, workload);
      if (best_mgp == 0 || tm.total_s < best_mgp) best_mgp = tm.total_s;
    }

    const double steps_per_day = 86400.0 / t_sfc.total_s;
    const double sim_years_per_day =
        steps_per_day * dt_seconds / (365.0 * 86400.0);
    t.new_row()
        .add(nproc)
        .add(k / nproc)
        .add(t_sfc.total_s * 1e6, 0)
        .add(sim_years_per_day, 1)
        .add(100.0 * serial.total_s / (nproc * t_sfc.total_s), 1)
        .add(std::to_string(static_cast<int>(
                 100.0 * (best_mgp / t_sfc.total_s - 1.0) + 0.5)) +
             "% faster");
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Century run: pick the smallest Nproc whose sim-years/day "
              "exceeds your deadline's requirement; SFC partitions keep the\n"
              "advantage column non-negative precisely in the O(1)-O(10) "
              "elements/processor regime the paper targets.\n");
  return 0;
}
