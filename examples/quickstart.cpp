// Quickstart: partition a cubed-sphere with a space-filling curve in ~30
// lines of API — build the mesh, stitch the global Hilbert curve, slice it
// into processors, and inspect the partition quality.
//
//   ./quickstart [--ne=8] [--nproc=24]

#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mesh/layout.hpp"
#include "partition/metrics.hpp"
#include "sfc/curve.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 8));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 24));

  if (!core::sfc_supports(ne)) {
    std::printf("Ne=%d is not 2^n*3^m; SFC partitioning does not apply "
                "(the paper's restriction).\n", ne);
    return 1;
  }

  // 1. The computational domain: 6 faces of Ne x Ne spectral elements.
  const mesh::cubed_sphere mesh(ne);
  std::printf("cubed-sphere: Ne=%d, K=%d elements\n", ne, mesh.num_elements());

  // 2. One continuous space-filling curve over all six faces.
  const core::cube_curve curve = core::build_cube_curve(mesh);
  std::printf("curve: %s, %s, face order %d %d %d %d %d %d\n",
              sfc::schedule_name(curve.face_schedule).c_str(),
              curve.closed ? "closed" : "open", curve.face_order[0],
              curve.face_order[1], curve.face_order[2], curve.face_order[3],
              curve.face_order[4], curve.face_order[5]);

  // 3. Slice the curve into Nproc equal segments.
  const auto part = core::sfc_partition(curve, nproc);

  // 4. Inspect quality on the element communication graph.
  const auto metrics =
      partition::compute_metrics(mesh.dual_graph(), part);
  std::printf("partition into %d processors:\n", nproc);
  std::printf("  LB(nelemd) = %.4f   (0 = perfect balance)\n",
              metrics.lb_elems);
  std::printf("  LB(spcv)   = %.4f\n", metrics.lb_comm);
  std::printf("  edgecut    = %lld cut element pairs\n",
              static_cast<long long>(metrics.edgecut_edges));
  std::printf("  max peers  = %d neighbour processors\n\n", metrics.max_peers);

  // 5. Visualize ownership on the flattened cube (labels mod 10).
  std::vector<int> owner(part.part_of.begin(), part.part_of.end());
  std::printf("element owners on the flattened cube (mod 10):\n%s",
              mesh::render_flat_labels(mesh, owner, 10).c_str());
  return 0;
}
