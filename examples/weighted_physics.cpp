// Weighted-physics scenario: a full day of simulation where the physics
// cost follows the sun (day-side columns cost 2x), comparing three
// operational strategies over the diurnal cycle:
//   1. static unweighted SFC partition (the paper's algorithm);
//   2. static *weighted* partition built for the initial sun position;
//   3. periodic weighted rebalancing on the curve (with label remapping).
// Reports the modeled time per step each strategy pays at each phase, plus
// the cumulative migration the rebalancing strategy spent.
//
//   ./weighted_physics [--ne=16] [--nproc=192] [--phases=8]

#include <cmath>
#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/rebalance.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 16));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 192));
  const int phases = static_cast<int>(args.get_int_or("phases", 8));

  if (!core::sfc_supports_extended(ne)) {
    std::printf("Ne=%d is not SFC-compatible\n", ne);
    return 1;
  }
  const mesh::cubed_sphere mesh(ne);
  const int k = mesh.num_elements();
  const auto curve = core::build_cube_curve_extended(mesh);
  const perf::machine_model machine;
  const perf::seam_workload workload;

  // Dual graph with unit vertex weights; physics weights live separately and
  // rotate with the sun. Compute time scales with owned *weight*, so we
  // model it by scaling the workload per strategy via weighted part loads.
  const auto dual = mesh.dual_graph();

  const auto weights_at = [&](double phase) {
    std::vector<graph::weight> w(static_cast<std::size_t>(k), 2);
    for (int e = 0; e < k; ++e) {
      const mesh::vec3 c = mesh.element_center_sphere(e);
      if (c.x * std::cos(phase) + c.y * std::sin(phase) > 0)
        w[static_cast<std::size_t>(e)] = 4;
    }
    return w;
  };
  // Weighted step time: compute term uses max part *weight* instead of max
  // element count; comm term from the simulator.
  const auto weighted_step_us = [&](const partition::partition& p,
                                    const std::vector<graph::weight>& w) {
    graph::builder gb(k);
    gb.add_edge(0, 1);
    for (int e = 0; e < k; ++e)
      gb.set_vertex_weight(e, w[static_cast<std::size_t>(e)]);
    const auto part_w = partition::part_weights(p, gb.build());
    graph::weight max_w = 0;
    for (const auto pw : part_w) max_w = std::max(max_w, pw);
    // weight 2 == one baseline element of work.
    const double compute = 0.5 * static_cast<double>(max_w) *
                           workload.flops_per_element() /
                           machine.sustained_flops;
    const auto t = perf::simulate_step(dual, p, machine, workload);
    return (compute + t.comm_s) * 1e6;
  };

  std::printf("diurnal cycle on Ne=%d (K=%d), %d processors, day-side "
              "physics 2x\n\n", ne, k, nproc);

  const auto static_plain = core::sfc_partition(curve, nproc);
  const auto static_weighted =
      core::sfc_partition(curve, nproc, weights_at(0.0));
  partition::partition adaptive = static_weighted;

  table t({"phase (deg)", "static-unweighted (us)", "static-weighted (us)",
           "rebalanced (us)", "migrated elements"});
  std::int64_t total_migrated = 0;
  for (int i = 0; i <= phases; ++i) {
    const double phase = 2.0 * 3.14159265358979 * i / phases;
    const auto w = weights_at(phase);
    core::migration_stats stats;
    adaptive = core::rebalance(curve, adaptive, w, nproc, &stats);
    total_migrated += stats.moved_elements;
    t.new_row()
        .add(static_cast<int>(360.0 * i / phases))
        .add(weighted_step_us(static_plain, w), 0)
        .add(weighted_step_us(static_weighted, w), 0)
        .add(weighted_step_us(adaptive, w), 0)
        .add(stats.moved_elements);
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("total migrated over the cycle: %lld element moves "
              "(%.1f%% of K per rebalance on average)\n",
              static_cast<long long>(total_migrated),
              100.0 * static_cast<double>(total_migrated) /
                  ((phases + 1.0) * k));
  std::printf("Strategy 2 is only right twice a day; strategy 3 pays "
              "migration to stay balanced around the clock.\n");
  return 0;
}
