// Curve gallery: renders the three curve families of the paper (Figures 2,
// 4, 5) as ASCII art, plus the traversal order of a stitched cubed-sphere
// curve on the flattened cube (Figure 6).
//
//   ./curve_gallery [--ne=6]

#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mesh/layout.hpp"
#include "sfc/curve.hpp"
#include "sfc/render.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 6));

  std::printf("Level-2 Hilbert curve (paper Figure 2, 4x4):\n%s\n",
              sfc::render_curve(sfc::hilbert_curve(2), 4).c_str());
  std::printf("Level-1 m-Peano curve (paper Figure 4, 3x3):\n%s\n",
              sfc::render_curve(sfc::peano_curve(1), 3).c_str());
  std::printf("Level-2 m-Peano curve (9x9):\n%s\n",
              sfc::render_curve(sfc::peano_curve(2), 9).c_str());
  std::printf("Hilbert-Peano curve on 6x6 = 36 sub-domains "
              "(paper Figure 5):\n%s\n",
              sfc::render_curve(sfc::hilbert_peano_curve(6), 6).c_str());
  std::printf("...and its traversal order:\n%s\n",
              sfc::render_order(sfc::hilbert_peano_curve(6), 6).c_str());

  if (core::sfc_supports(ne)) {
    const mesh::cubed_sphere mesh(ne);
    const auto curve = core::build_cube_curve(mesh);
    std::vector<int> pos(static_cast<std::size_t>(mesh.num_elements()));
    for (std::size_t i = 0; i < curve.order.size(); ++i)
      pos[static_cast<std::size_t>(curve.order[i])] = static_cast<int>(i);
    std::printf("Continuous curve over the whole cubed-sphere, Ne=%d "
                "(paper Figure 6): traversal position of each element on "
                "the flattened cube:\n%s",
                ne, mesh::render_flat_labels(mesh, pos).c_str());
    std::printf("(%s curve; %s)\n",
                sfc::schedule_name(curve.face_schedule).c_str(),
                curve.closed ? "the last element neighbours the first — a "
                               "closed loop around the sphere"
                             : "open curve");
  }
  return 0;
}
