// Distributed climate-kernel demo: runs the spectral-element advection
// mini-app (a rotating Gaussian blob) distributed across virtual ranks under
// an SFC partition, verifies the result against serial execution, and
// reports the communication the partition induced.
//
//   ./advection_demo [--ne=4] [--np=6] [--ranks=8] [--steps=20]

#include <cmath>
#include <cstdio>

#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "partition/metrics.hpp"
#include "seam/advection.hpp"
#include "seam/distributed.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 4));
  const int np = static_cast<int>(args.get_int_or("np", 6));
  const int ranks = static_cast<int>(args.get_int_or("ranks", 8));
  const int steps = static_cast<int>(args.get_int_or("steps", 20));

  const mesh::cubed_sphere mesh(ne);
  std::printf("mesh: Ne=%d (K=%d elements), np=%d GLL points/edge, "
              "%d virtual ranks, %d steps\n",
              ne, mesh.num_elements(), np, ranks, steps);

  seam::advection_model model(mesh, np);
  model.set_field([](mesh::vec3 p) {
    return std::exp(-12.0 * ((p.x - 1) * (p.x - 1) + p.y * p.y + p.z * p.z));
  });
  const double dt = model.cfl_dt(0.4);
  const double mass0 = model.mass();
  const mesh::vec3 c0 = model.centroid();
  std::printf("initial blob centroid: (%.3f, %.3f, %.3f), mass %.6f\n",
              c0.x, c0.y, c0.z, mass0);

  const auto part = core::sfc_partition(mesh, ranks);
  seam::dist_stats stats;
  const auto dist_field =
      seam::run_distributed(model, part, dt, steps, &stats);

  // Serial reference for verification.
  for (int s = 0; s < steps; ++s) model.step(dt);
  double max_diff = 0;
  for (std::size_t i = 0; i < dist_field.size(); ++i)
    max_diff =
        std::max(max_diff, std::abs(dist_field[i] - model.field()[i]));

  const mesh::vec3 c1 = model.centroid();
  std::printf("after %d steps (dt=%.4f): centroid (%.3f, %.3f, %.3f), "
              "rotated %.3f rad, mass drift %.2e\n",
              steps, dt, c1.x, c1.y, c1.z, std::atan2(c1.y, c1.x),
              (model.mass() - mass0) / mass0);
  std::printf("distributed vs serial max difference: %.2e %s\n", max_diff,
              max_diff < 1e-12 ? "(bit-level agreement)" : "");
  std::printf("communication: %lld messages, %.1f KB payload total, "
              "%.1f ms compute / %.1f ms exchange across ranks\n",
              static_cast<long long>(stats.messages),
              static_cast<double>(stats.doubles_sent) * 8.0 / 1024.0,
              stats.compute_seconds * 1e3, stats.exchange_seconds * 1e3);
  return max_diff < 1e-9 ? 0 : 2;
}
