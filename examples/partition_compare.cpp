// Partition shoot-out: SFC vs the three METIS-family methods on any
// resolution and processor count — the paper's Table 2 for your own
// configuration, including the simulated time per model step on the
// P690-like machine.
//
//   ./partition_compare [--ne=16] [--nproc=768]

#include <cstdio>

#include "core/cube_curve.hpp"
#include "core/sfc_partition.hpp"
#include "mesh/cubed_sphere.hpp"
#include "mgp/geometric.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "perf/machine.hpp"
#include "perf/simulate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sfp;
  const cli_args args(argc, argv);
  const int ne = static_cast<int>(args.get_int_or("ne", 16));
  const int nproc = static_cast<int>(args.get_int_or("nproc", 768));

  const mesh::cubed_sphere mesh(ne);
  const int k = mesh.num_elements();
  if (nproc < 1 || nproc > k) {
    std::printf("nproc must be in [1, %d]\n", k);
    return 1;
  }
  std::printf("K=%d elements (Ne=%d) on %d processors (%.2f elements each)\n",
              k, ne, nproc, static_cast<double>(k) / nproc);
  if (k % nproc != 0)
    std::printf("note: %d does not divide K=%d — perfect balance is "
                "impossible for any partitioner\n", nproc, k);

  const auto dual = mesh.dual_graph();
  const perf::machine_model machine;
  const perf::seam_workload workload;

  table t({"method", "LB(nelemd)", "LB(spcv)", "edgecut", "TCV (MB)",
           "max peers", "time (usec)", "vs SFC"});
  double sfc_time = 0;

  const auto add_row = [&](const char* name, const partition::partition& p) {
    const auto m = partition::compute_metrics(dual, p);
    const auto time = perf::simulate_step(dual, p, machine, workload);
    if (sfc_time == 0) sfc_time = time.total_s;
    t.new_row()
        .add(name)
        .add(m.lb_elems, 4)
        .add(m.lb_comm, 4)
        .add(m.edgecut_edges)
        .add(m.tcv_bytes(workload.bytes_per_interface()) / 1e6, 1)
        .add(m.max_peers)
        .add(time.total_s * 1e6, 0)
        .add(std::to_string(static_cast<int>(
                 100.0 * time.total_s / sfc_time + 0.5)) +
             "%");
  };

  if (core::sfc_supports(ne)) {
    add_row("SFC", core::sfc_partition(mesh, nproc));
  } else {
    std::printf("Ne=%d is not 2^n*3^m: the SFC algorithm does not apply "
                "(paper Section 5's restriction); showing METIS-family "
                "methods only.\n", ne);
    sfc_time = -1;  // sentinel: first MGP row becomes the reference
  }
  if (sfc_time < 0) sfc_time = 0;
  for (const auto& [algo, part] : mgp::run_all_methods(dual, nproc))
    add_row(mgp::method_name(algo), part);

  // Geometric baseline: recursive coordinate bisection on element centers.
  std::vector<mgp::point3> centers(static_cast<std::size_t>(k));
  for (int e = 0; e < k; ++e) {
    const mesh::vec3 c = mesh.element_center_sphere(e);
    centers[static_cast<std::size_t>(e)] = {c.x, c.y, c.z};
  }
  add_row("RCB-geom",
          mgp::recursive_coordinate_bisection(centers, {}, nproc));

  std::printf("\n%s", t.str().c_str());
  return 0;
}
