# Empty compiler generated dependencies file for curve_gallery.
# This may be replaced when dependencies are built.
