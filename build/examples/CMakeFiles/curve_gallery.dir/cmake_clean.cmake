file(REMOVE_RECURSE
  "CMakeFiles/curve_gallery.dir/curve_gallery.cpp.o"
  "CMakeFiles/curve_gallery.dir/curve_gallery.cpp.o.d"
  "curve_gallery"
  "curve_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
