file(REMOVE_RECURSE
  "CMakeFiles/partition_compare.dir/partition_compare.cpp.o"
  "CMakeFiles/partition_compare.dir/partition_compare.cpp.o.d"
  "partition_compare"
  "partition_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
