# Empty compiler generated dependencies file for partition_compare.
# This may be replaced when dependencies are built.
