# Empty compiler generated dependencies file for shallow_water_demo.
# This may be replaced when dependencies are built.
