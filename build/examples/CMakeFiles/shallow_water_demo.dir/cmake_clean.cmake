file(REMOVE_RECURSE
  "CMakeFiles/shallow_water_demo.dir/shallow_water_demo.cpp.o"
  "CMakeFiles/shallow_water_demo.dir/shallow_water_demo.cpp.o.d"
  "shallow_water_demo"
  "shallow_water_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shallow_water_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
