file(REMOVE_RECURSE
  "CMakeFiles/climate_campaign.dir/climate_campaign.cpp.o"
  "CMakeFiles/climate_campaign.dir/climate_campaign.cpp.o.d"
  "climate_campaign"
  "climate_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
