# Empty dependencies file for climate_campaign.
# This may be replaced when dependencies are built.
