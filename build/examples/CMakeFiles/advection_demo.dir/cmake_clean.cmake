file(REMOVE_RECURSE
  "CMakeFiles/advection_demo.dir/advection_demo.cpp.o"
  "CMakeFiles/advection_demo.dir/advection_demo.cpp.o.d"
  "advection_demo"
  "advection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
