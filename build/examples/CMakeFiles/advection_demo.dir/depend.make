# Empty dependencies file for advection_demo.
# This may be replaced when dependencies are built.
