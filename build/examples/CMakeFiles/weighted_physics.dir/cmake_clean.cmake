file(REMOVE_RECURSE
  "CMakeFiles/weighted_physics.dir/weighted_physics.cpp.o"
  "CMakeFiles/weighted_physics.dir/weighted_physics.cpp.o.d"
  "weighted_physics"
  "weighted_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
