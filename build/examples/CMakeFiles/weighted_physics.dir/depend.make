# Empty dependencies file for weighted_physics.
# This may be replaced when dependencies are built.
