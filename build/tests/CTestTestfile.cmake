# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sfc_curve_test[1]_include.cmake")
include("/root/repo/build/tests/sfc_generator_test[1]_include.cmake")
include("/root/repo/build/tests/sfc_transform_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_quality_test[1]_include.cmake")
include("/root/repo/build/tests/partition_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/mgp_test[1]_include.cmake")
include("/root/repo/build/tests/rcb_test[1]_include.cmake")
include("/root/repo/build/tests/metis_compat_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/extra_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/layered_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_fault_test[1]_include.cmake")
include("/root/repo/build/tests/seam_test[1]_include.cmake")
include("/root/repo/build/tests/seam_resilience_test[1]_include.cmake")
include("/root/repo/build/tests/shallow_water_test[1]_include.cmake")
include("/root/repo/build/tests/exchange_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/locality_rebalance_test[1]_include.cmake")
include("/root/repo/build/tests/core_curve_test[1]_include.cmake")
include("/root/repo/build/tests/core_partition_test[1]_include.cmake")
