file(REMOVE_RECURSE
  "CMakeFiles/mesh_test.dir/mesh_test.cpp.o"
  "CMakeFiles/mesh_test.dir/mesh_test.cpp.o.d"
  "mesh_test"
  "mesh_test.pdb"
  "mesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
