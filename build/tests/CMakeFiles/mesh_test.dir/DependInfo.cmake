
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh_test.cpp" "tests/CMakeFiles/mesh_test.dir/mesh_test.cpp.o" "gcc" "tests/CMakeFiles/mesh_test.dir/mesh_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mgp/CMakeFiles/sfcpart_mgp.dir/DependInfo.cmake"
  "/root/repo/build/src/seam/CMakeFiles/sfcpart_seam.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sfcpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/sfcpart_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sfcpart_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sfcpart_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sfcpart_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/sfcpart_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sfcpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
