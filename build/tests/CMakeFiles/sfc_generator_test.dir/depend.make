# Empty dependencies file for sfc_generator_test.
# This may be replaced when dependencies are built.
