file(REMOVE_RECURSE
  "CMakeFiles/sfc_generator_test.dir/sfc_generator_test.cpp.o"
  "CMakeFiles/sfc_generator_test.dir/sfc_generator_test.cpp.o.d"
  "sfc_generator_test"
  "sfc_generator_test.pdb"
  "sfc_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
