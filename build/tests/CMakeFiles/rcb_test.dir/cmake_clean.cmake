file(REMOVE_RECURSE
  "CMakeFiles/rcb_test.dir/rcb_test.cpp.o"
  "CMakeFiles/rcb_test.dir/rcb_test.cpp.o.d"
  "rcb_test"
  "rcb_test.pdb"
  "rcb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
