# Empty compiler generated dependencies file for rcb_test.
# This may be replaced when dependencies are built.
