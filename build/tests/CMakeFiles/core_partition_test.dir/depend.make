# Empty dependencies file for core_partition_test.
# This may be replaced when dependencies are built.
