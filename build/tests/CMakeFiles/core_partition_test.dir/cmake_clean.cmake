file(REMOVE_RECURSE
  "CMakeFiles/core_partition_test.dir/core_partition_test.cpp.o"
  "CMakeFiles/core_partition_test.dir/core_partition_test.cpp.o.d"
  "core_partition_test"
  "core_partition_test.pdb"
  "core_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
