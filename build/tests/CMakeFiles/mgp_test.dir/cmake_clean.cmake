file(REMOVE_RECURSE
  "CMakeFiles/mgp_test.dir/mgp_test.cpp.o"
  "CMakeFiles/mgp_test.dir/mgp_test.cpp.o.d"
  "mgp_test"
  "mgp_test.pdb"
  "mgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
