# Empty compiler generated dependencies file for mgp_test.
# This may be replaced when dependencies are built.
