file(REMOVE_RECURSE
  "CMakeFiles/perf_test.dir/perf_test.cpp.o"
  "CMakeFiles/perf_test.dir/perf_test.cpp.o.d"
  "perf_test"
  "perf_test.pdb"
  "perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
