file(REMOVE_RECURSE
  "CMakeFiles/runtime_fault_test.dir/runtime_fault_test.cpp.o"
  "CMakeFiles/runtime_fault_test.dir/runtime_fault_test.cpp.o.d"
  "runtime_fault_test"
  "runtime_fault_test.pdb"
  "runtime_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
