# Empty dependencies file for runtime_fault_test.
# This may be replaced when dependencies are built.
