file(REMOVE_RECURSE
  "CMakeFiles/shallow_water_test.dir/shallow_water_test.cpp.o"
  "CMakeFiles/shallow_water_test.dir/shallow_water_test.cpp.o.d"
  "shallow_water_test"
  "shallow_water_test.pdb"
  "shallow_water_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shallow_water_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
