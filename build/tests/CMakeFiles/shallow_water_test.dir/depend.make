# Empty dependencies file for shallow_water_test.
# This may be replaced when dependencies are built.
