file(REMOVE_RECURSE
  "CMakeFiles/mesh_quality_test.dir/mesh_quality_test.cpp.o"
  "CMakeFiles/mesh_quality_test.dir/mesh_quality_test.cpp.o.d"
  "mesh_quality_test"
  "mesh_quality_test.pdb"
  "mesh_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
