# Empty dependencies file for mesh_quality_test.
# This may be replaced when dependencies are built.
