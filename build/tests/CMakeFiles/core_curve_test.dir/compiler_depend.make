# Empty compiler generated dependencies file for core_curve_test.
# This may be replaced when dependencies are built.
