file(REMOVE_RECURSE
  "CMakeFiles/core_curve_test.dir/core_curve_test.cpp.o"
  "CMakeFiles/core_curve_test.dir/core_curve_test.cpp.o.d"
  "core_curve_test"
  "core_curve_test.pdb"
  "core_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
