file(REMOVE_RECURSE
  "CMakeFiles/metis_compat_test.dir/metis_compat_test.cpp.o"
  "CMakeFiles/metis_compat_test.dir/metis_compat_test.cpp.o.d"
  "metis_compat_test"
  "metis_compat_test.pdb"
  "metis_compat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metis_compat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
