# Empty compiler generated dependencies file for metis_compat_test.
# This may be replaced when dependencies are built.
