file(REMOVE_RECURSE
  "CMakeFiles/sfc_curve_test.dir/sfc_curve_test.cpp.o"
  "CMakeFiles/sfc_curve_test.dir/sfc_curve_test.cpp.o.d"
  "sfc_curve_test"
  "sfc_curve_test.pdb"
  "sfc_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
