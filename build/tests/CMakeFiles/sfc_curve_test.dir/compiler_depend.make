# Empty compiler generated dependencies file for sfc_curve_test.
# This may be replaced when dependencies are built.
