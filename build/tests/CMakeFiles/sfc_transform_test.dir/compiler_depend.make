# Empty compiler generated dependencies file for sfc_transform_test.
# This may be replaced when dependencies are built.
