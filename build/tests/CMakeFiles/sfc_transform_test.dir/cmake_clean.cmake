file(REMOVE_RECURSE
  "CMakeFiles/sfc_transform_test.dir/sfc_transform_test.cpp.o"
  "CMakeFiles/sfc_transform_test.dir/sfc_transform_test.cpp.o.d"
  "sfc_transform_test"
  "sfc_transform_test.pdb"
  "sfc_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
