file(REMOVE_RECURSE
  "CMakeFiles/seam_test.dir/seam_test.cpp.o"
  "CMakeFiles/seam_test.dir/seam_test.cpp.o.d"
  "seam_test"
  "seam_test.pdb"
  "seam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
