# Empty compiler generated dependencies file for seam_test.
# This may be replaced when dependencies are built.
