# Empty dependencies file for exchange_test.
# This may be replaced when dependencies are built.
