file(REMOVE_RECURSE
  "CMakeFiles/layered_test.dir/layered_test.cpp.o"
  "CMakeFiles/layered_test.dir/layered_test.cpp.o.d"
  "layered_test"
  "layered_test.pdb"
  "layered_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
