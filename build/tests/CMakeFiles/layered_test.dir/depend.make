# Empty dependencies file for layered_test.
# This may be replaced when dependencies are built.
