file(REMOVE_RECURSE
  "CMakeFiles/seam_resilience_test.dir/seam_resilience_test.cpp.o"
  "CMakeFiles/seam_resilience_test.dir/seam_resilience_test.cpp.o.d"
  "seam_resilience_test"
  "seam_resilience_test.pdb"
  "seam_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seam_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
