# Empty dependencies file for seam_resilience_test.
# This may be replaced when dependencies are built.
