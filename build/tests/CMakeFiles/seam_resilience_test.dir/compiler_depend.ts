# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for seam_resilience_test.
