# Empty compiler generated dependencies file for extra_coverage_test.
# This may be replaced when dependencies are built.
