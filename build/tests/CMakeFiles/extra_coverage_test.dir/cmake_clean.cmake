file(REMOVE_RECURSE
  "CMakeFiles/extra_coverage_test.dir/extra_coverage_test.cpp.o"
  "CMakeFiles/extra_coverage_test.dir/extra_coverage_test.cpp.o.d"
  "extra_coverage_test"
  "extra_coverage_test.pdb"
  "extra_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
