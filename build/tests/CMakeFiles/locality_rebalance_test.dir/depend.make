# Empty dependencies file for locality_rebalance_test.
# This may be replaced when dependencies are built.
