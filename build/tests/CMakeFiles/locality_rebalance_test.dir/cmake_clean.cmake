file(REMOVE_RECURSE
  "CMakeFiles/locality_rebalance_test.dir/locality_rebalance_test.cpp.o"
  "CMakeFiles/locality_rebalance_test.dir/locality_rebalance_test.cpp.o.d"
  "locality_rebalance_test"
  "locality_rebalance_test.pdb"
  "locality_rebalance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_rebalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
