# Empty compiler generated dependencies file for partition_metrics_test.
# This may be replaced when dependencies are built.
