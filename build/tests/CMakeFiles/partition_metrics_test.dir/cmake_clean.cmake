file(REMOVE_RECURSE
  "CMakeFiles/partition_metrics_test.dir/partition_metrics_test.cpp.o"
  "CMakeFiles/partition_metrics_test.dir/partition_metrics_test.cpp.o.d"
  "partition_metrics_test"
  "partition_metrics_test.pdb"
  "partition_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
