
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cube_curve.cpp" "src/core/CMakeFiles/sfcpart_core.dir/cube_curve.cpp.o" "gcc" "src/core/CMakeFiles/sfcpart_core.dir/cube_curve.cpp.o.d"
  "/root/repo/src/core/rebalance.cpp" "src/core/CMakeFiles/sfcpart_core.dir/rebalance.cpp.o" "gcc" "src/core/CMakeFiles/sfcpart_core.dir/rebalance.cpp.o.d"
  "/root/repo/src/core/sfc_partition.cpp" "src/core/CMakeFiles/sfcpart_core.dir/sfc_partition.cpp.o" "gcc" "src/core/CMakeFiles/sfcpart_core.dir/sfc_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/sfcpart_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/sfcpart_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sfcpart_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
