file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_core.dir/cube_curve.cpp.o"
  "CMakeFiles/sfcpart_core.dir/cube_curve.cpp.o.d"
  "CMakeFiles/sfcpart_core.dir/rebalance.cpp.o"
  "CMakeFiles/sfcpart_core.dir/rebalance.cpp.o.d"
  "CMakeFiles/sfcpart_core.dir/sfc_partition.cpp.o"
  "CMakeFiles/sfcpart_core.dir/sfc_partition.cpp.o.d"
  "libsfcpart_core.a"
  "libsfcpart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
