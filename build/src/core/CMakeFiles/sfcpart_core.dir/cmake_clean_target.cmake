file(REMOVE_RECURSE
  "libsfcpart_core.a"
)
