# Empty compiler generated dependencies file for sfcpart_core.
# This may be replaced when dependencies are built.
