# Empty compiler generated dependencies file for sfcpart_runtime.
# This may be replaced when dependencies are built.
