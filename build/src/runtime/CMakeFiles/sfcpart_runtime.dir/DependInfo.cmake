
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/fault.cpp" "src/runtime/CMakeFiles/sfcpart_runtime.dir/fault.cpp.o" "gcc" "src/runtime/CMakeFiles/sfcpart_runtime.dir/fault.cpp.o.d"
  "/root/repo/src/runtime/world.cpp" "src/runtime/CMakeFiles/sfcpart_runtime.dir/world.cpp.o" "gcc" "src/runtime/CMakeFiles/sfcpart_runtime.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
