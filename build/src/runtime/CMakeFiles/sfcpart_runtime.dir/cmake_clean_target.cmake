file(REMOVE_RECURSE
  "libsfcpart_runtime.a"
)
