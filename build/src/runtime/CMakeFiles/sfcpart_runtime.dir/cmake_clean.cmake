file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_runtime.dir/fault.cpp.o"
  "CMakeFiles/sfcpart_runtime.dir/fault.cpp.o.d"
  "CMakeFiles/sfcpart_runtime.dir/world.cpp.o"
  "CMakeFiles/sfcpart_runtime.dir/world.cpp.o.d"
  "libsfcpart_runtime.a"
  "libsfcpart_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
