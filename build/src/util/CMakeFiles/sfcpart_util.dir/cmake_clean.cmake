file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_util.dir/cli.cpp.o"
  "CMakeFiles/sfcpart_util.dir/cli.cpp.o.d"
  "CMakeFiles/sfcpart_util.dir/log.cpp.o"
  "CMakeFiles/sfcpart_util.dir/log.cpp.o.d"
  "CMakeFiles/sfcpart_util.dir/table.cpp.o"
  "CMakeFiles/sfcpart_util.dir/table.cpp.o.d"
  "libsfcpart_util.a"
  "libsfcpart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
