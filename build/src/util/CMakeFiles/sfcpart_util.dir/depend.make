# Empty dependencies file for sfcpart_util.
# This may be replaced when dependencies are built.
