file(REMOVE_RECURSE
  "libsfcpart_util.a"
)
