file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_sfc.dir/curve.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/curve.cpp.o.d"
  "CMakeFiles/sfcpart_sfc.dir/generator.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/generator.cpp.o.d"
  "CMakeFiles/sfcpart_sfc.dir/locality.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/locality.cpp.o.d"
  "CMakeFiles/sfcpart_sfc.dir/render.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/render.cpp.o.d"
  "CMakeFiles/sfcpart_sfc.dir/transform.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/transform.cpp.o.d"
  "CMakeFiles/sfcpart_sfc.dir/verify.cpp.o"
  "CMakeFiles/sfcpart_sfc.dir/verify.cpp.o.d"
  "libsfcpart_sfc.a"
  "libsfcpart_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
