
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/curve.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/curve.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/curve.cpp.o.d"
  "/root/repo/src/sfc/generator.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/generator.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/generator.cpp.o.d"
  "/root/repo/src/sfc/locality.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/locality.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/locality.cpp.o.d"
  "/root/repo/src/sfc/render.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/render.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/render.cpp.o.d"
  "/root/repo/src/sfc/transform.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/transform.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/transform.cpp.o.d"
  "/root/repo/src/sfc/verify.cpp" "src/sfc/CMakeFiles/sfcpart_sfc.dir/verify.cpp.o" "gcc" "src/sfc/CMakeFiles/sfcpart_sfc.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
