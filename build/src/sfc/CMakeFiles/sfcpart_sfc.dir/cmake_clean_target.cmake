file(REMOVE_RECURSE
  "libsfcpart_sfc.a"
)
