# Empty compiler generated dependencies file for sfcpart_sfc.
# This may be replaced when dependencies are built.
