file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_mesh.dir/cubed_sphere.cpp.o"
  "CMakeFiles/sfcpart_mesh.dir/cubed_sphere.cpp.o.d"
  "CMakeFiles/sfcpart_mesh.dir/geometry.cpp.o"
  "CMakeFiles/sfcpart_mesh.dir/geometry.cpp.o.d"
  "CMakeFiles/sfcpart_mesh.dir/layout.cpp.o"
  "CMakeFiles/sfcpart_mesh.dir/layout.cpp.o.d"
  "CMakeFiles/sfcpart_mesh.dir/quality.cpp.o"
  "CMakeFiles/sfcpart_mesh.dir/quality.cpp.o.d"
  "libsfcpart_mesh.a"
  "libsfcpart_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
