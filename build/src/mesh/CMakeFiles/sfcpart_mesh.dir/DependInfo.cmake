
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/cubed_sphere.cpp" "src/mesh/CMakeFiles/sfcpart_mesh.dir/cubed_sphere.cpp.o" "gcc" "src/mesh/CMakeFiles/sfcpart_mesh.dir/cubed_sphere.cpp.o.d"
  "/root/repo/src/mesh/geometry.cpp" "src/mesh/CMakeFiles/sfcpart_mesh.dir/geometry.cpp.o" "gcc" "src/mesh/CMakeFiles/sfcpart_mesh.dir/geometry.cpp.o.d"
  "/root/repo/src/mesh/layout.cpp" "src/mesh/CMakeFiles/sfcpart_mesh.dir/layout.cpp.o" "gcc" "src/mesh/CMakeFiles/sfcpart_mesh.dir/layout.cpp.o.d"
  "/root/repo/src/mesh/quality.cpp" "src/mesh/CMakeFiles/sfcpart_mesh.dir/quality.cpp.o" "gcc" "src/mesh/CMakeFiles/sfcpart_mesh.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
