# Empty dependencies file for sfcpart_mesh.
# This may be replaced when dependencies are built.
