file(REMOVE_RECURSE
  "libsfcpart_mesh.a"
)
