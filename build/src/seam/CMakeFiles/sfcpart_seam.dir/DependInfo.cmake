
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seam/advection.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/advection.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/advection.cpp.o.d"
  "/root/repo/src/seam/assembly.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/assembly.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/assembly.cpp.o.d"
  "/root/repo/src/seam/distributed.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/distributed.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/distributed.cpp.o.d"
  "/root/repo/src/seam/exchange.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/exchange.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/exchange.cpp.o.d"
  "/root/repo/src/seam/gll.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/gll.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/gll.cpp.o.d"
  "/root/repo/src/seam/layered.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/layered.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/layered.cpp.o.d"
  "/root/repo/src/seam/shallow_water.cpp" "src/seam/CMakeFiles/sfcpart_seam.dir/shallow_water.cpp.o" "gcc" "src/seam/CMakeFiles/sfcpart_seam.dir/shallow_water.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/sfcpart_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sfcpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sfcpart_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sfcpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/sfcpart_sfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
