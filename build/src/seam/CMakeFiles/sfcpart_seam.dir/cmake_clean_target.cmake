file(REMOVE_RECURSE
  "libsfcpart_seam.a"
)
