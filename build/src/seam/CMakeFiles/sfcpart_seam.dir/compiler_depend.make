# Empty compiler generated dependencies file for sfcpart_seam.
# This may be replaced when dependencies are built.
