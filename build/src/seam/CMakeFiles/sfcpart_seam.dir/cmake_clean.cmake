file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_seam.dir/advection.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/advection.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/assembly.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/assembly.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/distributed.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/distributed.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/exchange.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/exchange.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/gll.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/gll.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/layered.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/layered.cpp.o.d"
  "CMakeFiles/sfcpart_seam.dir/shallow_water.cpp.o"
  "CMakeFiles/sfcpart_seam.dir/shallow_water.cpp.o.d"
  "libsfcpart_seam.a"
  "libsfcpart_seam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_seam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
