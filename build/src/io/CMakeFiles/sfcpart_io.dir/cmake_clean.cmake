file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_io.dir/csv.cpp.o"
  "CMakeFiles/sfcpart_io.dir/csv.cpp.o.d"
  "CMakeFiles/sfcpart_io.dir/gnuplot.cpp.o"
  "CMakeFiles/sfcpart_io.dir/gnuplot.cpp.o.d"
  "CMakeFiles/sfcpart_io.dir/partition_io.cpp.o"
  "CMakeFiles/sfcpart_io.dir/partition_io.cpp.o.d"
  "CMakeFiles/sfcpart_io.dir/vtk.cpp.o"
  "CMakeFiles/sfcpart_io.dir/vtk.cpp.o.d"
  "libsfcpart_io.a"
  "libsfcpart_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
