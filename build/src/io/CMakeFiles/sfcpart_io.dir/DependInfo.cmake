
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/sfcpart_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/sfcpart_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/gnuplot.cpp" "src/io/CMakeFiles/sfcpart_io.dir/gnuplot.cpp.o" "gcc" "src/io/CMakeFiles/sfcpart_io.dir/gnuplot.cpp.o.d"
  "/root/repo/src/io/partition_io.cpp" "src/io/CMakeFiles/sfcpart_io.dir/partition_io.cpp.o" "gcc" "src/io/CMakeFiles/sfcpart_io.dir/partition_io.cpp.o.d"
  "/root/repo/src/io/vtk.cpp" "src/io/CMakeFiles/sfcpart_io.dir/vtk.cpp.o" "gcc" "src/io/CMakeFiles/sfcpart_io.dir/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sfcpart_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/sfcpart_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
