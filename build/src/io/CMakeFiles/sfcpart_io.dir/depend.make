# Empty dependencies file for sfcpart_io.
# This may be replaced when dependencies are built.
