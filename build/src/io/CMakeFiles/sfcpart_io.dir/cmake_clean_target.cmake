file(REMOVE_RECURSE
  "libsfcpart_io.a"
)
