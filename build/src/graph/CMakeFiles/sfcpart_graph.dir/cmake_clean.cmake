file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_graph.dir/csr.cpp.o"
  "CMakeFiles/sfcpart_graph.dir/csr.cpp.o.d"
  "CMakeFiles/sfcpart_graph.dir/generators.cpp.o"
  "CMakeFiles/sfcpart_graph.dir/generators.cpp.o.d"
  "CMakeFiles/sfcpart_graph.dir/ops.cpp.o"
  "CMakeFiles/sfcpart_graph.dir/ops.cpp.o.d"
  "libsfcpart_graph.a"
  "libsfcpart_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
