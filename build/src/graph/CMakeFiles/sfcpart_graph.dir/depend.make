# Empty dependencies file for sfcpart_graph.
# This may be replaced when dependencies are built.
