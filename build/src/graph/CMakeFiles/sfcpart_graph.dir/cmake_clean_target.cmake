file(REMOVE_RECURSE
  "libsfcpart_graph.a"
)
