file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_partition.dir/metrics.cpp.o"
  "CMakeFiles/sfcpart_partition.dir/metrics.cpp.o.d"
  "CMakeFiles/sfcpart_partition.dir/partition.cpp.o"
  "CMakeFiles/sfcpart_partition.dir/partition.cpp.o.d"
  "libsfcpart_partition.a"
  "libsfcpart_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
