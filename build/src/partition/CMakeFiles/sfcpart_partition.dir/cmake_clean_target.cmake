file(REMOVE_RECURSE
  "libsfcpart_partition.a"
)
