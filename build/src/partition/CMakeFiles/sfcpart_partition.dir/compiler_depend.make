# Empty compiler generated dependencies file for sfcpart_partition.
# This may be replaced when dependencies are built.
