# Empty dependencies file for sfcpart_perf.
# This may be replaced when dependencies are built.
