src/perf/CMakeFiles/sfcpart_perf.dir/machine.cpp.o: \
 /root/repo/src/perf/machine.cpp /usr/include/stdc-predef.h \
 /root/repo/src/perf/machine.hpp
