file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_perf.dir/machine.cpp.o"
  "CMakeFiles/sfcpart_perf.dir/machine.cpp.o.d"
  "CMakeFiles/sfcpart_perf.dir/simulate.cpp.o"
  "CMakeFiles/sfcpart_perf.dir/simulate.cpp.o.d"
  "libsfcpart_perf.a"
  "libsfcpart_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
