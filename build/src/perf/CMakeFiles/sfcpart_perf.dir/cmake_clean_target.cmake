file(REMOVE_RECURSE
  "libsfcpart_perf.a"
)
