# Empty dependencies file for sfcpart_mgp.
# This may be replaced when dependencies are built.
