
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgp/bisect.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/bisect.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/bisect.cpp.o.d"
  "/root/repo/src/mgp/coarsen.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/coarsen.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/coarsen.cpp.o.d"
  "/root/repo/src/mgp/geometric.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/geometric.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/geometric.cpp.o.d"
  "/root/repo/src/mgp/kway.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/kway.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/kway.cpp.o.d"
  "/root/repo/src/mgp/match.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/match.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/match.cpp.o.d"
  "/root/repo/src/mgp/metis_compat.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/metis_compat.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/metis_compat.cpp.o.d"
  "/root/repo/src/mgp/partitioner.cpp" "src/mgp/CMakeFiles/sfcpart_mgp.dir/partitioner.cpp.o" "gcc" "src/mgp/CMakeFiles/sfcpart_mgp.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfcpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sfcpart_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sfcpart_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
