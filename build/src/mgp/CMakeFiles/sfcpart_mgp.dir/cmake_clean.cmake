file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_mgp.dir/bisect.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/bisect.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/coarsen.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/coarsen.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/geometric.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/geometric.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/kway.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/kway.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/match.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/match.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/metis_compat.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/metis_compat.cpp.o.d"
  "CMakeFiles/sfcpart_mgp.dir/partitioner.cpp.o"
  "CMakeFiles/sfcpart_mgp.dir/partitioner.cpp.o.d"
  "libsfcpart_mgp.a"
  "libsfcpart_mgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_mgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
