file(REMOVE_RECURSE
  "libsfcpart_mgp.a"
)
