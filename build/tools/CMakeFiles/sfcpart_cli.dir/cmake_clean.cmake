file(REMOVE_RECURSE
  "CMakeFiles/sfcpart_cli.dir/sfcpart_cli.cpp.o"
  "CMakeFiles/sfcpart_cli.dir/sfcpart_cli.cpp.o.d"
  "sfcpart"
  "sfcpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfcpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
