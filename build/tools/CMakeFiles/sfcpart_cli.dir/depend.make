# Empty dependencies file for sfcpart_cli.
# This may be replaced when dependencies are built.
