file(REMOVE_RECURSE
  "CMakeFiles/bench_curve_locality.dir/bench_curve_locality.cpp.o"
  "CMakeFiles/bench_curve_locality.dir/bench_curve_locality.cpp.o.d"
  "bench_curve_locality"
  "bench_curve_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_curve_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
