# Empty dependencies file for bench_curve_locality.
# This may be replaced when dependencies are built.
