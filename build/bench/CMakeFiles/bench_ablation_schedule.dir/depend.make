# Empty dependencies file for bench_ablation_schedule.
# This may be replaced when dependencies are built.
