file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weighted.dir/bench_ablation_weighted.cpp.o"
  "CMakeFiles/bench_ablation_weighted.dir/bench_ablation_weighted.cpp.o.d"
  "bench_ablation_weighted"
  "bench_ablation_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
