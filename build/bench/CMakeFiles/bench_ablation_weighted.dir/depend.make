# Empty dependencies file for bench_ablation_weighted.
# This may be replaced when dependencies are built.
