file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gflops_k384.dir/bench_fig9_gflops_k384.cpp.o"
  "CMakeFiles/bench_fig9_gflops_k384.dir/bench_fig9_gflops_k384.cpp.o.d"
  "bench_fig9_gflops_k384"
  "bench_fig9_gflops_k384.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gflops_k384.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
