# Empty compiler generated dependencies file for bench_fig9_gflops_k384.
# This may be replaced when dependencies are built.
