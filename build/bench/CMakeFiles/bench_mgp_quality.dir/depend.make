# Empty dependencies file for bench_mgp_quality.
# This may be replaced when dependencies are built.
