file(REMOVE_RECURSE
  "CMakeFiles/bench_mgp_quality.dir/bench_mgp_quality.cpp.o"
  "CMakeFiles/bench_mgp_quality.dir/bench_mgp_quality.cpp.o.d"
  "bench_mgp_quality"
  "bench_mgp_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mgp_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
