file(REMOVE_RECURSE
  "CMakeFiles/bench_hilbert_peano_k1944.dir/bench_hilbert_peano_k1944.cpp.o"
  "CMakeFiles/bench_hilbert_peano_k1944.dir/bench_hilbert_peano_k1944.cpp.o.d"
  "bench_hilbert_peano_k1944"
  "bench_hilbert_peano_k1944.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hilbert_peano_k1944.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
