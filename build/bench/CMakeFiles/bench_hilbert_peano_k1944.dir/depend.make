# Empty dependencies file for bench_hilbert_peano_k1944.
# This may be replaced when dependencies are built.
