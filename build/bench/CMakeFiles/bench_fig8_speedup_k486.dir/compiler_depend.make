# Empty compiler generated dependencies file for bench_fig8_speedup_k486.
# This may be replaced when dependencies are built.
