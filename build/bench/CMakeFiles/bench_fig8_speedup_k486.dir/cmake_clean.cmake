file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_speedup_k486.dir/bench_fig8_speedup_k486.cpp.o"
  "CMakeFiles/bench_fig8_speedup_k486.dir/bench_fig8_speedup_k486.cpp.o.d"
  "bench_fig8_speedup_k486"
  "bench_fig8_speedup_k486.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_speedup_k486.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
