# Empty compiler generated dependencies file for bench_fig10_gflops_k1536.
# This may be replaced when dependencies are built.
