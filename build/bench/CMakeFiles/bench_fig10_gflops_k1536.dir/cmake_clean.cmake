file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gflops_k1536.dir/bench_fig10_gflops_k1536.cpp.o"
  "CMakeFiles/bench_fig10_gflops_k1536.dir/bench_fig10_gflops_k1536.cpp.o.d"
  "bench_fig10_gflops_k1536"
  "bench_fig10_gflops_k1536.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gflops_k1536.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
