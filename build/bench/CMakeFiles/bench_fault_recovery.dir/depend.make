# Empty dependencies file for bench_fault_recovery.
# This may be replaced when dependencies are built.
