file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cpp.o"
  "CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cpp.o.d"
  "bench_fault_recovery"
  "bench_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
