# Empty dependencies file for bench_fig7_speedup_k384.
# This may be replaced when dependencies are built.
