file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_quality.dir/bench_mesh_quality.cpp.o"
  "CMakeFiles/bench_mesh_quality.dir/bench_mesh_quality.cpp.o.d"
  "bench_mesh_quality"
  "bench_mesh_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
