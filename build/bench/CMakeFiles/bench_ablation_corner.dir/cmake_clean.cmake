file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_corner.dir/bench_ablation_corner.cpp.o"
  "CMakeFiles/bench_ablation_corner.dir/bench_ablation_corner.cpp.o.d"
  "bench_ablation_corner"
  "bench_ablation_corner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_corner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
