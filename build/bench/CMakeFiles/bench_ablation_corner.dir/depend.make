# Empty dependencies file for bench_ablation_corner.
# This may be replaced when dependencies are built.
