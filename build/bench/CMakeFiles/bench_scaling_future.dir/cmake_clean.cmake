file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_future.dir/bench_scaling_future.cpp.o"
  "CMakeFiles/bench_scaling_future.dir/bench_scaling_future.cpp.o.d"
  "bench_scaling_future"
  "bench_scaling_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
