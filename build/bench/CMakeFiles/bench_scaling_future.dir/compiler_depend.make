# Empty compiler generated dependencies file for bench_scaling_future.
# This may be replaced when dependencies are built.
