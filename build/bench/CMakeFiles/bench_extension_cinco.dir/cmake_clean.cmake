file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_cinco.dir/bench_extension_cinco.cpp.o"
  "CMakeFiles/bench_extension_cinco.dir/bench_extension_cinco.cpp.o.d"
  "bench_extension_cinco"
  "bench_extension_cinco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_cinco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
