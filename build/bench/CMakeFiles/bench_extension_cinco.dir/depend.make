# Empty dependencies file for bench_extension_cinco.
# This may be replaced when dependencies are built.
