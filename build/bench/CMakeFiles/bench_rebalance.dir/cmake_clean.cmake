file(REMOVE_RECURSE
  "CMakeFiles/bench_rebalance.dir/bench_rebalance.cpp.o"
  "CMakeFiles/bench_rebalance.dir/bench_rebalance.cpp.o.d"
  "bench_rebalance"
  "bench_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
