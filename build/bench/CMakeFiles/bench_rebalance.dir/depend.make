# Empty dependencies file for bench_rebalance.
# This may be replaced when dependencies are built.
