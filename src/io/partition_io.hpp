#pragma once
// Partition persistence: save/load the element->processor map so a model run
// (or an external tool) can consume partitions produced by this library.
//
// Format: CSV with a one-row preamble encoded in the header comment line,
//   # sfcpart-partition v1 num_vertices=<n> num_parts=<k>
//   element,part
//   0,12
//   ...
// Round-trips exactly; loading validates shape and label ranges.

#include <iosfwd>
#include <string>

#include "partition/partition.hpp"

namespace sfp::io {

void save_partition(std::ostream& os, const partition::partition& p);
void save_partition_file(const std::string& path,
                         const partition::partition& p);

/// Throws sfp::contract_error on malformed input.
partition::partition load_partition(std::istream& is);
partition::partition load_partition_file(const std::string& path);

}  // namespace sfp::io
