#include "io/partition_io.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/contract.hpp"

namespace sfp::io {

void save_partition(std::ostream& os, const partition::partition& p) {
  SFP_REQUIRE(p.num_parts >= 1, "partition must have at least one part");
  os << "# sfcpart-partition v1 num_vertices=" << p.part_of.size()
     << " num_parts=" << p.num_parts << '\n';
  os << "element,part\n";
  for (std::size_t v = 0; v < p.part_of.size(); ++v)
    os << v << ',' << p.part_of[v] << '\n';
}

void save_partition_file(const std::string& path,
                         const partition::partition& p) {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open partition file for writing: " + path);
  save_partition(os, p);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing partition file: " + path);
}

partition::partition load_partition(std::istream& is) {
  std::string preamble;
  SFP_REQUIRE(static_cast<bool>(std::getline(is, preamble)),
              "partition stream is empty");
  std::size_t nv = 0;
  int nparts = 0;
  {
    const auto nv_pos = preamble.find("num_vertices=");
    const auto np_pos = preamble.find("num_parts=");
    SFP_REQUIRE(preamble.rfind("# sfcpart-partition v1", 0) == 0 &&
                    nv_pos != std::string::npos && np_pos != std::string::npos,
                "not a sfcpart-partition v1 stream");
    nv = static_cast<std::size_t>(
        std::strtoull(preamble.c_str() + nv_pos + 13, nullptr, 10));
    nparts = static_cast<int>(
        std::strtol(preamble.c_str() + np_pos + 10, nullptr, 10));
  }
  SFP_REQUIRE(nv > 0 && nparts > 0, "invalid partition preamble");

  std::string header;
  SFP_REQUIRE(static_cast<bool>(std::getline(is, header)) &&
                  header == "element,part",
              "missing element,part header");

  // Collect rows first so memory stays proportional to the actual stream,
  // not to the preamble's claimed num_vertices — a hostile preamble like
  // num_vertices=10^15 over a three-row body must fail cheaply instead of
  // attempting a huge allocation (found by the fuzz harness).
  std::vector<std::pair<std::size_t, graph::vid>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::size_t elem = 0;
    long label = -1;
    const int matched =
        std::sscanf(line.c_str(), "%zu,%ld", &elem, &label);
    SFP_REQUIRE(matched == 2, "malformed partition row: " + line);
    SFP_REQUIRE(elem < nv, "element id out of range in partition file");
    SFP_REQUIRE(label >= 0 && label < nparts,
                "part label out of range in partition file");
    SFP_REQUIRE(rows.size() < nv,
                "partition file has more rows than num_vertices");
    rows.push_back({elem, static_cast<graph::vid>(label)});
  }
  SFP_REQUIRE(rows.size() == nv,
              "partition file does not cover every element");

  partition::partition p;
  p.num_parts = nparts;
  p.part_of.assign(nv, -1);
  for (const auto& [elem, label] : rows) {
    SFP_REQUIRE(p.part_of[elem] == -1,
                "duplicate element in partition file");
    p.part_of[elem] = label;
  }
  return p;
}

partition::partition load_partition_file(const std::string& path) {
  std::ifstream is(path);
  SFP_REQUIRE(is.good(), "cannot open partition file for reading: " + path);
  return load_partition(is);
}

}  // namespace sfp::io
