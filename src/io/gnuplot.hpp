#pragma once
// Gnuplot script emission for figure series: write a .dat + .gp pair that
// renders a paper-style figure (speedup or Gflop/s vs processor count) with
// one command. Benches and the CLI use this so the reproduction's figures
// can be plotted without any external tooling beyond gnuplot itself.

#include <string>
#include <vector>

namespace sfp::io {

struct plot_series {
  std::string name;                ///< legend label, e.g. "SFC"
  std::vector<double> x, y;        ///< same length
};

struct plot_spec {
  std::string title;
  std::string xlabel = "Nproc";
  std::string ylabel;
  bool log_x = true;
  std::vector<plot_series> series;
};

/// Write `<basename>.dat` and `<basename>.gp`; running
/// `gnuplot <basename>.gp` produces `<basename>.png`.
void write_gnuplot(const std::string& basename, const plot_spec& spec);

}  // namespace sfp::io
