#pragma once
// Exporters for the observability layer: Chrome-trace JSON (loadable in
// chrome://tracing and Perfetto) from a collected span dump, and a flat
// JSON dump of the metrics registry. See docs/observability.md for the
// capture workflow and naming conventions.

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sfp::io {

/// Write `dump` in the Chrome trace-event format: every span becomes a
/// complete ("ph":"X") event with microsecond timestamps relative to the
/// session epoch, plus one "thread_name" metadata event per named thread.
/// When `metrics` is given, every counter in the snapshot additionally
/// becomes a counter ("ph":"C") event, so the per-kind fault-injection and
/// reliable-channel totals (runtime.injected.*, reliable.*) show up as
/// counter tracks alongside the timeline.
void write_chrome_trace(std::ostream& os, const obs::trace_dump& dump,
                        const obs::metrics_snapshot* metrics = nullptr);

/// As above, to a file; throws sfp::contract_error on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const obs::trace_dump& dump,
                             const obs::metrics_snapshot* metrics = nullptr);

/// Write a metrics snapshot as one JSON object:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": n, "sum": s, "buckets": [...]}, ...}}
/// Histogram bucket arrays are trimmed of trailing zeros; their sum always
/// equals "count" (the invariant the structure tests assert).
void write_metrics_json(std::ostream& os, const obs::metrics_snapshot& snap);

void write_metrics_json_file(const std::string& path,
                             const obs::metrics_snapshot& snap);

}  // namespace sfp::io
