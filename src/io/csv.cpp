#include "io/csv.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/require.hpp"

namespace sfp::io {

csv_writer::csv_writer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SFP_REQUIRE(!headers_.empty(), "csv needs at least one column");
  for (const auto& h : headers_)
    SFP_REQUIRE(h.find(',') == std::string::npos &&
                    h.find('\n') == std::string::npos,
                "csv headers must not contain commas or newlines");
}

csv_writer& csv_writer::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

csv_writer& csv_writer::add(const std::string& value) {
  SFP_REQUIRE(!rows_.empty(), "call new_row() before add()");
  SFP_REQUIRE(rows_.back().size() < headers_.size(),
              "row has more cells than columns");
  SFP_REQUIRE(value.find(',') == std::string::npos &&
                  value.find('\n') == std::string::npos,
              "csv cells must not contain commas or newlines");
  rows_.back().push_back(value);
  return *this;
}

csv_writer& csv_writer::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return add(std::string(buf));
}

csv_writer& csv_writer::add(std::int64_t value) {
  return add(std::to_string(value));
}

csv_writer& csv_writer::add(int value) { return add(std::to_string(value)); }

void csv_writer::write(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << headers_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  }
}

void csv_writer::write_file(const std::string& path) const {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open csv file for writing: " + path);
  write(os);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing csv file: " + path);
}

namespace {

std::string_view trim(std::string_view cell) {
  while (!cell.empty() && (cell.front() == ' ' || cell.front() == '\t'))
    cell.remove_prefix(1);
  while (!cell.empty() &&
         (cell.back() == ' ' || cell.back() == '\t' || cell.back() == '\r'))
    cell.remove_suffix(1);
  return cell;
}

}  // namespace

std::int64_t parse_int64(std::string_view cell) {
  const std::string_view body = trim(cell);
  SFP_REQUIRE(!body.empty(), "csv: empty cell where an integer was expected");
  std::int64_t value = 0;
  const auto res =
      std::from_chars(body.data(), body.data() + body.size(), value);
  SFP_REQUIRE(res.ec != std::errc::result_out_of_range,
              "csv: integer out of range: " + std::string(cell));
  SFP_REQUIRE(res.ec == std::errc() && res.ptr == body.data() + body.size(),
              "csv: not a valid integer: " + std::string(cell));
  return value;
}

double parse_double(std::string_view cell) {
  const std::string_view body = trim(cell);
  SFP_REQUIRE(!body.empty(), "csv: empty cell where a number was expected");
  double value = 0;
  const auto res =
      std::from_chars(body.data(), body.data() + body.size(), value);
  SFP_REQUIRE(res.ec != std::errc::result_out_of_range,
              "csv: number out of range: " + std::string(cell));
  SFP_REQUIRE(res.ec == std::errc() && res.ptr == body.data() + body.size(),
              "csv: not a valid number: " + std::string(cell));
  SFP_REQUIRE(std::isfinite(value),
              "csv: non-finite number: " + std::string(cell));
  return value;
}

const std::string& csv_data::cell_at(std::size_t row,
                                     const std::string& col) const {
  SFP_REQUIRE(row < rows.size(), "csv: row index out of range");
  const std::size_t c = column(col);
  SFP_REQUIRE(c < rows[row].size(),
              "csv: row " + std::to_string(row) + " has no cell for column " +
                  col);
  return rows[row][c];
}

std::int64_t csv_data::int64_at(std::size_t row, const std::string& col) const {
  return parse_int64(cell_at(row, col));
}

double csv_data::double_at(std::size_t row, const std::string& col) const {
  return parse_double(cell_at(row, col));
}

std::size_t csv_data::column(const std::string& name) const {
  for (std::size_t c = 0; c < headers.size(); ++c)
    if (headers[c] == name) return c;
  SFP_REQUIRE(false, "csv column not found: " + name);
  return 0;
}

csv_data read_csv(std::istream& is) {
  csv_data out;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    if (first) {
      out.headers = std::move(cells);
      first = false;
    } else {
      out.rows.push_back(std::move(cells));
    }
  }
  SFP_REQUIRE(!out.headers.empty(), "csv stream had no header row");
  return out;
}

csv_data read_csv_file(const std::string& path) {
  std::ifstream is(path);
  SFP_REQUIRE(is.good(), "cannot open csv file for reading: " + path);
  return read_csv(is);
}

}  // namespace sfp::io
