#include "io/csv.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace sfp::io {

csv_writer::csv_writer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SFP_REQUIRE(!headers_.empty(), "csv needs at least one column");
  for (const auto& h : headers_)
    SFP_REQUIRE(h.find(',') == std::string::npos &&
                    h.find('\n') == std::string::npos,
                "csv headers must not contain commas or newlines");
}

csv_writer& csv_writer::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

csv_writer& csv_writer::add(const std::string& value) {
  SFP_REQUIRE(!rows_.empty(), "call new_row() before add()");
  SFP_REQUIRE(rows_.back().size() < headers_.size(),
              "row has more cells than columns");
  SFP_REQUIRE(value.find(',') == std::string::npos &&
                  value.find('\n') == std::string::npos,
              "csv cells must not contain commas or newlines");
  rows_.back().push_back(value);
  return *this;
}

csv_writer& csv_writer::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return add(std::string(buf));
}

csv_writer& csv_writer::add(std::int64_t value) {
  return add(std::to_string(value));
}

csv_writer& csv_writer::add(int value) { return add(std::to_string(value)); }

void csv_writer::write(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << headers_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  }
}

void csv_writer::write_file(const std::string& path) const {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open csv file for writing: " + path);
  write(os);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing csv file: " + path);
}

std::size_t csv_data::column(const std::string& name) const {
  for (std::size_t c = 0; c < headers.size(); ++c)
    if (headers[c] == name) return c;
  SFP_REQUIRE(false, "csv column not found: " + name);
  return 0;
}

csv_data read_csv(std::istream& is) {
  csv_data out;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    if (first) {
      out.headers = std::move(cells);
      first = false;
    } else {
      out.rows.push_back(std::move(cells));
    }
  }
  SFP_REQUIRE(!out.headers.empty(), "csv stream had no header row");
  return out;
}

csv_data read_csv_file(const std::string& path) {
  std::ifstream is(path);
  SFP_REQUIRE(is.good(), "cannot open csv file for reading: " + path);
  return read_csv(is);
}

}  // namespace sfp::io
