#include "io/gnuplot.hpp"

#include <fstream>

#include "util/require.hpp"

namespace sfp::io {

void write_gnuplot(const std::string& basename, const plot_spec& spec) {
  SFP_REQUIRE(!spec.series.empty(), "plot needs at least one series");
  std::size_t max_len = 0;
  for (const auto& s : spec.series) {
    SFP_REQUIRE(s.x.size() == s.y.size(), "series x/y length mismatch");
    SFP_REQUIRE(!s.x.empty(), "series must not be empty");
    max_len = std::max(max_len, s.x.size());
  }

  // Data file: one block per series, blank-line separated (gnuplot "index").
  {
    std::ofstream dat(basename + ".dat");
    SFP_REQUIRE(dat.good(), "cannot write " + basename + ".dat");
    for (const auto& s : spec.series) {
      dat << "# " << s.name << '\n';
      for (std::size_t i = 0; i < s.x.size(); ++i)
        dat << s.x[i] << ' ' << s.y[i] << '\n';
      dat << "\n\n";
    }
    SFP_REQUIRE(dat.good(), "failed writing " + basename + ".dat");
  }

  std::ofstream gp(basename + ".gp");
  SFP_REQUIRE(gp.good(), "cannot write " + basename + ".gp");
  gp << "set terminal pngcairo size 900,600\n";
  gp << "set output '" << basename << ".png'\n";
  gp << "set title '" << spec.title << "'\n";
  gp << "set xlabel '" << spec.xlabel << "'\n";
  gp << "set ylabel '" << spec.ylabel << "'\n";
  if (spec.log_x) gp << "set logscale x 2\n";
  gp << "set key top left\n";
  gp << "set grid\n";
  gp << "plot ";
  for (std::size_t i = 0; i < spec.series.size(); ++i) {
    if (i) gp << ", \\\n     ";
    gp << "'" << basename << ".dat' index " << i
       << " with linespoints title '" << spec.series[i].name << "'";
  }
  gp << '\n';
  SFP_REQUIRE(gp.good(), "failed writing " + basename + ".gp");
}

}  // namespace sfp::io
