#pragma once
// Legacy-VTK export of the cubed-sphere with per-element scalars (partition
// owner, curve position, element weight, ...). Files open directly in
// ParaView/VisIt: the mesh appears as quads on the unit sphere.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mesh/cubed_sphere.hpp"

namespace sfp::io {

/// One named per-element scalar field.
struct vtk_cell_field {
  std::string name;            ///< VTK identifier (no spaces)
  std::vector<double> values;  ///< one per element
};

/// Write an ASCII legacy .vtk unstructured grid: every element becomes a
/// quad whose corners are the gnomonic projections of its cube corners.
void write_vtk(std::ostream& os, const mesh::cubed_sphere& mesh,
               const std::vector<vtk_cell_field>& fields);

void write_vtk_file(const std::string& path, const mesh::cubed_sphere& mesh,
                    const std::vector<vtk_cell_field>& fields);

}  // namespace sfp::io
