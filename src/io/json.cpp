#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/require.hpp"

namespace sfp::io {

const json_value& json_value::at(const std::string& key) const {
  SFP_REQUIRE(type == kind::object, "json: at() on a non-object");
  const auto it = object.find(key);
  SFP_REQUIRE(it != object.end(), "json: missing key: " + key);
  return it->second;
}

bool json_value::has(const std::string& key) const {
  return type == kind::object && object.count(key) > 0;
}

namespace {

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value parse_document() {
    json_value v = parse_value();
    skip_ws();
    SFP_REQUIRE(pos_ == text_.size(), err("trailing characters"));
    return v;
  }

 private:
  std::string err(const char* what) const {
    return std::string("json parse error at byte ") + std::to_string(pos_) +
           ": " + what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    SFP_REQUIRE(pos_ < text_.size(), err("unexpected end of input"));
    return text_[pos_];
  }

  void expect(char c) {
    SFP_REQUIRE(peek() == c, err("unexpected character"));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json_value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      // Containers recurse; bound the depth so hostile input like
      // "[[[[..." cannot blow the stack (found by the fuzz harness).
      case '{': {
        SFP_REQUIRE(depth_ < kMaxDepth, err("nesting too deep"));
        ++depth_;
        json_value v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        SFP_REQUIRE(depth_ < kMaxDepth, err("nesting too deep"));
        ++depth_;
        json_value v = parse_array();
        --depth_;
        return v;
      }
      case '"': {
        json_value v;
        v.type = json_value::kind::string;
        v.string = parse_string();
        return v;
      }
      case 't': {
        SFP_REQUIRE(consume_literal("true"), err("bad literal"));
        json_value v;
        v.type = json_value::kind::boolean;
        v.boolean = true;
        return v;
      }
      case 'f': {
        SFP_REQUIRE(consume_literal("false"), err("bad literal"));
        json_value v;
        v.type = json_value::kind::boolean;
        v.boolean = false;
        return v;
      }
      case 'n': {
        SFP_REQUIRE(consume_literal("null"), err("bad literal"));
        return json_value{};
      }
      default: return parse_number();
    }
  }

  json_value parse_object() {
    expect('{');
    json_value v;
    v.type = json_value::kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  json_value parse_array() {
    expect('[');
    json_value v;
    v.type = json_value::kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      SFP_REQUIRE(pos_ < text_.size(), err("unterminated string"));
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      SFP_REQUIRE(pos_ < text_.size(), err("unterminated escape"));
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SFP_REQUIRE(pos_ + 4 <= text_.size(), err("short \\u escape"));
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              SFP_REQUIRE(false, err("bad \\u escape"));
          }
          // Latin-1 subset is all this library ever emits.
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default: SFP_REQUIRE(false, err("bad escape"));
      }
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    SFP_REQUIRE(pos_ > start, err("expected a value"));
    json_value v;
    v.type = json_value::kind::number;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_,
                                     v.number);
    SFP_REQUIRE(res.ec == std::errc() && res.ptr == text_.data() + pos_,
                err("bad number"));
    return v;
  }

  static constexpr int kMaxDepth = 192;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

json_value parse_json(std::string_view text) {
  return parser(text).parse_document();
}

json_value json_string(std::string s) {
  json_value v;
  v.type = json_value::kind::string;
  v.string = std::move(s);
  return v;
}

json_value json_number(double n) {
  json_value v;
  v.type = json_value::kind::number;
  v.number = n;
  return v;
}

json_value json_bool(bool b) {
  json_value v;
  v.type = json_value::kind::boolean;
  v.boolean = b;
  return v;
}

json_value json_array() {
  json_value v;
  v.type = json_value::kind::array;
  return v;
}

json_value json_object() {
  json_value v;
  v.type = json_value::kind::object;
  return v;
}

namespace {

void append_number(std::string& out, double n) {
  SFP_REQUIRE(std::isfinite(n), "json: NaN/Inf cannot be serialized");
  // Integral values inside the exactly-representable range print as
  // integers so ids and counters survive a write/parse round trip legibly.
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      n >= -9007199254740992.0 && n <= 9007199254740992.0) {
    out += std::to_string(static_cast<long long>(n));
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, n);
  SFP_ASSERT(res.ec == std::errc(), "json: number formatting failed");
  out.append(buf, res.ptr);
}

void write_value(std::string& out, const json_value& v, int indent,
                 int depth) {
  const auto newline_pad = [&out, indent](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type) {
    case json_value::kind::null: out += "null"; break;
    case json_value::kind::boolean: out += v.boolean ? "true" : "false"; break;
    case json_value::kind::number: append_number(out, v.number); break;
    case json_value::kind::string:
      out.push_back('"');
      out += json_escape(v.string);
      out.push_back('"');
      break;
    case json_value::kind::array: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i) out.push_back(',');
        newline_pad(depth + 1);
        write_value(out, v.array[i], indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case json_value::kind::object: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, child] : v.object) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        out.push_back('"');
        out += json_escape(key);
        out += indent > 0 ? "\": " : "\":";
        write_value(out, child, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string write_json(const json_value& v, int indent) {
  std::string out;
  write_value(out, v, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

void write_json_file(const json_value& v, const std::string& path,
                     int indent) {
  std::ofstream os(path, std::ios::binary);
  SFP_REQUIRE(os.good(), "cannot open json file for writing: " + path);
  os << write_json(v, indent);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing json file: " + path);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sfp::io
