#pragma once
// Minimal CSV writing/reading for experiment series (figure data) and
// partition files. Deliberately small: comma separator, no quoting — the
// data written by this library is purely numeric/identifier-shaped.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sfp::io {

/// Column-oriented CSV document: set headers, append rows, write to stream
/// or file.
class csv_writer {
 public:
  explicit csv_writer(std::vector<std::string> headers);

  csv_writer& new_row();
  csv_writer& add(const std::string& value);
  csv_writer& add(double value, int precision = 9);
  csv_writer& add(std::int64_t value);
  csv_writer& add(int value);

  std::size_t rows() const { return rows_.size(); }

  void write(std::ostream& os) const;
  /// Write to a file; throws sfp::contract_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parsed CSV: header row plus string cells (callers convert as needed,
/// or use the strict typed accessors below).
struct csv_data {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// Column index by header name; throws if absent.
  std::size_t column(const std::string& name) const;

  /// Strict typed cell access: bounds-checked, whole-cell numeric parse.
  /// Throws sfp::contract_error on missing cells, trailing garbage, and
  /// out-of-range values (see parse_int64/parse_double).
  std::int64_t int64_at(std::size_t row, const std::string& col) const;
  double double_at(std::size_t row, const std::string& col) const;

 private:
  const std::string& cell_at(std::size_t row, const std::string& col) const;
};

csv_data read_csv(std::istream& is);
csv_data read_csv_file(const std::string& path);

/// Strict numeric parsing for CSV cells (and any other untrusted numeric
/// token). The entire cell — modulo surrounding spaces/tabs — must be one
/// number: empty cells, trailing garbage ("12abc", "1.5.2"), and values
/// outside the target type's range throw sfp::contract_error instead of
/// wrapping or truncating silently.
std::int64_t parse_int64(std::string_view cell);
double parse_double(std::string_view cell);

}  // namespace sfp::io
