#pragma once
// Minimal JSON support: a dynamic value type with a strict recursive-descent
// parser, plus the string-escaping helper the exporters share. This exists
// so the trace/metrics artifacts can be both *written* (io/trace_io.hpp)
// and *validated structurally* (tests parse what the exporters produced)
// without an external dependency.
//
// Scope is deliberately small: UTF-8 passthrough, doubles for all numbers,
// \uXXXX escapes accepted but not converted beyond Latin-1. That covers
// everything this library emits.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sfp::io {

/// Parsed JSON value. Containers own their children by value.
struct json_value {
  enum class kind { null, boolean, number, string, array, object };

  kind type = kind::null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<json_value> array;
  std::map<std::string, json_value> object;

  bool is_null() const { return type == kind::null; }
  bool is_object() const { return type == kind::object; }
  bool is_array() const { return type == kind::array; }
  bool is_number() const { return type == kind::number; }
  bool is_string() const { return type == kind::string; }

  /// Object member access; throws sfp::contract_error when absent or when
  /// this value is not an object.
  const json_value& at(const std::string& key) const;
  bool has(const std::string& key) const;
};

/// Parse a complete JSON document; throws sfp::contract_error with a byte
/// offset on malformed input or trailing garbage.
json_value parse_json(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Factories so builders of documents (reports, baselines) stay terse.
json_value json_string(std::string s);
json_value json_number(double n);
json_value json_bool(bool b);
json_value json_array();
json_value json_object();

/// Serialize a value back to JSON text. indent == 0 emits a compact
/// single-line document; indent > 0 pretty-prints with that many spaces
/// per nesting level. Numbers print round-trip exactly (integral values
/// without a decimal point); NaN/Inf are rejected (JSON cannot carry
/// them). Output re-parses to an equal value.
std::string write_json(const json_value& v, int indent = 0);

/// Serialize to a file; throws sfp::contract_error on I/O failure.
void write_json_file(const json_value& v, const std::string& path,
                     int indent = 2);

}  // namespace sfp::io
