#pragma once
// Minimal JSON support: a dynamic value type with a strict recursive-descent
// parser, plus the string-escaping helper the exporters share. This exists
// so the trace/metrics artifacts can be both *written* (io/trace_io.hpp)
// and *validated structurally* (tests parse what the exporters produced)
// without an external dependency.
//
// Scope is deliberately small: UTF-8 passthrough, doubles for all numbers,
// \uXXXX escapes accepted but not converted beyond Latin-1. That covers
// everything this library emits.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sfp::io {

/// Parsed JSON value. Containers own their children by value.
struct json_value {
  enum class kind { null, boolean, number, string, array, object };

  kind type = kind::null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<json_value> array;
  std::map<std::string, json_value> object;

  bool is_null() const { return type == kind::null; }
  bool is_object() const { return type == kind::object; }
  bool is_array() const { return type == kind::array; }
  bool is_number() const { return type == kind::number; }
  bool is_string() const { return type == kind::string; }

  /// Object member access; throws sfp::contract_error when absent or when
  /// this value is not an object.
  const json_value& at(const std::string& key) const;
  bool has(const std::string& key) const;
};

/// Parse a complete JSON document; throws sfp::contract_error with a byte
/// offset on malformed input or trailing garbage.
json_value parse_json(std::string_view text);

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

}  // namespace sfp::io
