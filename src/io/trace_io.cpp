#include "io/trace_io.hpp"

#include <fstream>
#include <ostream>

#include "io/json.hpp"
#include "util/require.hpp"

namespace sfp::io {

namespace {

/// Timestamps: steady-clock ns relative to the session epoch, emitted as
/// microseconds with nanosecond precision (Chrome's "ts" unit is us and
/// accepts fractions).
void write_us(std::ostream& os, std::int64_t ns) {
  const char sign = ns < 0 ? '-' : '\0';
  if (ns < 0) ns = -ns;
  if (sign) os << sign;
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& os, const obs::trace_dump& dump,
                        const obs::metrics_snapshot* metrics) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const obs::thread_trace& t : dump.threads) {
    if (!t.name.empty()) {
      sep();
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << t.tid << ",\"args\":{\"name\":\"" << json_escape(t.name)
         << "\"}}";
    }
    for (const obs::trace_event& e : t.events) {
      sep();
      os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
         << json_escape(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << t.tid << ",\"ts\":";
      write_us(os, e.start_ns - dump.epoch_ns);
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
      os << "}";
    }
    if (t.dropped > 0) {
      // Surface overflow in the trace itself rather than losing it.
      sep();
      os << "{\"name\":\"dropped " << t.dropped
         << " events\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << t.tid << ",\"ts\":0,\"dur\":0}";
    }
  }
  if (metrics) {
    // One sample per counter at the session epoch: enough for a flat
    // counter track per name (viewers show the value on hover). Zero
    // counters are skipped — the registry registers every counter a code
    // path *could* bump, and a wall of zero tracks buries the faults.
    for (const auto& c : metrics->counters) {
      if (c.value == 0) continue;
      sep();
      os << "{\"name\":\"" << json_escape(c.name)
         << "\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"ts\":0,"
            "\"args\":{\"value\":"
         << c.value << "}}";
    }
  }
  os << "]}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const obs::trace_dump& dump,
                             const obs::metrics_snapshot* metrics) {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open trace file for writing: " + path);
  write_chrome_trace(os, dump, metrics);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing trace file: " + path);
}

void write_metrics_json(std::ostream& os, const obs::metrics_snapshot& snap) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(c.name) << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(g.name) << "\":" << g.value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    int last = obs::histogram::kBuckets;
    while (last > 0 && h.buckets[static_cast<std::size_t>(last - 1)] == 0)
      --last;
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"buckets\":[";
    for (int i = 0; i < last; ++i) {
      if (i) os << ",";
      os << h.buckets[static_cast<std::size_t>(i)];
    }
    os << "]}";
  }
  os << "}}\n";
}

void write_metrics_json_file(const std::string& path,
                             const obs::metrics_snapshot& snap) {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open metrics file for writing: " + path);
  write_metrics_json(os, snap);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing metrics file: " + path);
}

}  // namespace sfp::io
