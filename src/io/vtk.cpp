#include "io/vtk.hpp"

#include <fstream>
#include <ostream>
#include <unordered_map>

#include "util/require.hpp"

namespace sfp::io {

void write_vtk(std::ostream& os, const mesh::cubed_sphere& mesh,
               const std::vector<vtk_cell_field>& fields) {
  const int nelem = mesh.num_elements();
  for (const auto& f : fields) {
    SFP_REQUIRE(f.values.size() == static_cast<std::size_t>(nelem),
                "field '" + f.name + "' must have one value per element");
    SFP_REQUIRE(!f.name.empty() && f.name.find(' ') == std::string::npos,
                "vtk field names must be non-empty and space-free");
  }

  // Deduplicate corner points (shared across elements) by lattice key.
  std::unordered_map<std::uint64_t, int> point_id;
  std::vector<mesh::vec3> points;
  std::vector<std::array<int, 4>> cells(static_cast<std::size_t>(nelem));
  for (int e = 0; e < nelem; ++e) {
    const auto pts = mesh.corner_points(e);
    for (int c = 0; c < 4; ++c) {
      const std::uint64_t key = mesh::pack(pts[static_cast<std::size_t>(c)]);
      auto [it, inserted] =
          point_id.try_emplace(key, static_cast<int>(points.size()));
      if (inserted) {
        const mesh::vec3 raw{
            static_cast<double>(pts[static_cast<std::size_t>(c)].x),
            static_cast<double>(pts[static_cast<std::size_t>(c)].y),
            static_cast<double>(pts[static_cast<std::size_t>(c)].z)};
        points.push_back(mesh::normalized(raw));
      }
      cells[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)] =
          it->second;
    }
  }

  os << "# vtk DataFile Version 3.0\n";
  os << "sfcpart cubed-sphere Ne=" << mesh.ne() << "\n";
  os << "ASCII\nDATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << points.size() << " double\n";
  for (const auto& p : points) os << p.x << ' ' << p.y << ' ' << p.z << '\n';
  os << "CELLS " << nelem << ' ' << 5 * nelem << '\n';
  for (const auto& c : cells)
    os << "4 " << c[0] << ' ' << c[1] << ' ' << c[2] << ' ' << c[3] << '\n';
  os << "CELL_TYPES " << nelem << '\n';
  for (int e = 0; e < nelem; ++e) os << "9\n";  // VTK_QUAD

  if (!fields.empty()) {
    os << "CELL_DATA " << nelem << '\n';
    for (const auto& f : fields) {
      os << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
      for (const double v : f.values) os << v << '\n';
    }
  }
}

void write_vtk_file(const std::string& path, const mesh::cubed_sphere& mesh,
                    const std::vector<vtk_cell_field>& fields) {
  std::ofstream os(path);
  SFP_REQUIRE(os.good(), "cannot open vtk file for writing: " + path);
  write_vtk(os, mesh, fields);
  os.flush();
  SFP_REQUIRE(os.good(), "failed writing vtk file: " + path);
}

}  // namespace sfp::io
