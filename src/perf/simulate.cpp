#include "perf/simulate.hpp"

#include <algorithm>
#include <vector>

#include "partition/metrics.hpp"
#include "util/require.hpp"

namespace sfp::perf {

step_time simulate_step(const graph::csr& dual,
                        const partition::partition& part,
                        const machine_model& machine,
                        const seam_workload& workload) {
  partition::validate(part, dual);
  SFP_REQUIRE(machine.sustained_flops > 0, "machine must compute");
  SFP_REQUIRE(machine.bandwidth_bps > 0, "machine must communicate");

  const auto sizes = partition::part_sizes(part);
  const auto pattern = partition::comm_pattern(dual, part);
  const double flops_elem = workload.flops_per_element();
  const double bytes_point = workload.bytes_per_point();

  // Per-SMP-node inter-node traffic (for the shared-adapter term).
  const int num_nodes =
      (part.num_parts + machine.ranks_per_node - 1) / machine.ranks_per_node;
  std::vector<double> node_inter_bytes(static_cast<std::size_t>(num_nodes), 0.0);
  for (int p = 0; p < part.num_parts; ++p) {
    for (const auto& [peer, points] : pattern[static_cast<std::size_t>(p)]) {
      if (machine.node_of(p) != machine.node_of(peer))
        node_inter_bytes[static_cast<std::size_t>(machine.node_of(p))] +=
            points * bytes_point;
    }
  }

  step_time out;
  double sum = 0;
  for (int p = 0; p < part.num_parts; ++p) {
    const double compute =
        static_cast<double>(sizes[static_cast<std::size_t>(p)]) * flops_elem /
        machine.sustained_flops;
    double comm = 0;
    for (const auto& [peer, points] : pattern[static_cast<std::size_t>(p)]) {
      const bool same_node = machine.node_of(p) == machine.node_of(peer);
      const double latency =
          same_node ? machine.latency_intra_s : machine.latency_s;
      const double bandwidth =
          same_node ? machine.bandwidth_intra_bps : machine.bandwidth_bps;
      comm += latency + points * bytes_point / bandwidth;
    }
    // The node's aggregate inter-node traffic cannot drain faster than the
    // shared adapter; the rank waits for whichever is slower.
    const double adapter =
        node_inter_bytes[static_cast<std::size_t>(machine.node_of(p))] /
        machine.node_adapter_bandwidth_bps;
    comm = std::max(comm, adapter);
    // Overlap: the hidden share of communication runs concurrently with
    // compute; the exposed share serializes.
    const double hidden = machine.comm_overlap * comm;
    const double exposed = comm - hidden;
    const double total = std::max(compute, hidden) + exposed;
    sum += total;
    if (total > out.total_s) {
      out.total_s = total;
      out.compute_s = compute;
      out.comm_s = comm;
      out.critical_rank = p;
    }
  }
  out.avg_rank_s = sum / part.num_parts;
  return out;
}

double sustained_gflops(int num_elements, const seam_workload& workload,
                        const step_time& t) {
  SFP_REQUIRE(t.total_s > 0, "step time must be positive");
  return static_cast<double>(num_elements) * workload.flops_per_element() /
         t.total_s / 1e9;
}

step_time serial_step(int num_elements, const machine_model& machine,
                      const seam_workload& workload) {
  SFP_REQUIRE(num_elements > 0, "need at least one element");
  step_time out;
  out.compute_s = static_cast<double>(num_elements) *
                  workload.flops_per_element() / machine.sustained_flops;
  out.comm_s = 0.0;
  out.total_s = out.compute_s;
  out.critical_rank = 0;
  out.avg_rank_s = out.total_s;
  return out;
}

double speedup(const step_time& serial, const step_time& parallel) {
  SFP_REQUIRE(parallel.total_s > 0, "parallel step time must be positive");
  return serial.total_s / parallel.total_s;
}

}  // namespace sfp::perf
