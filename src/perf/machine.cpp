// machine.hpp is header-only today; this TU anchors the library target and
// will host calibration tables if more machines are added.
#include "perf/machine.hpp"
