#pragma once
// The machine and workload models that substitute for the paper's testbed
// (NCAR's IBM P690 cluster: 1600 1.3 GHz POWER4 processors, Colony switch).
//
// The paper's results are driven by partition quality; the machine model
// only converts per-processor element counts and communication volumes into
// time. Constants are calibrated to the two hard numbers the paper gives:
//   * 841 Mflop/s sustained on one processor (16% of POWER4 peak);
//   * total communication volume of ~17 Mbytes for K=1536 on 768 processors
//     (Table 2), which pins the per-interface message size to one element
//     edge of GLL data: np * nlev * nvars * 8 bytes ≈ 1.7 KB.

namespace sfp::perf {

/// Hockney-style machine with an SMP-node hierarchy: per-processor sustained
/// compute rate plus a two-tier network. The paper's cluster is built from
/// 8-way (and a few 32-way) SMP nodes on a Colony switch: messages between
/// ranks on the same node move through shared memory, messages between nodes
/// cross the switch. Rank placement follows the usual block convention
/// (ranks 0..7 on node 0, 8..15 on node 1, ...), which is why a partition
/// whose numbering follows the space-filling curve keeps most element
/// exchanges on-node while an arbitrary numbering pushes them through the
/// switch — the dominant effect at one element per processor, where load
/// imbalance cannot differ.
struct machine_model {
  double sustained_flops = 841.0e6;  ///< flop/s per processor (paper §4)
  double peak_flops = 5.2e9;         ///< 1.3 GHz POWER4, 4 flops/cycle

  int ranks_per_node = 8;            ///< 8-way SMP nodes (paper §4)
  double latency_s = 20.0e-6;        ///< inter-node message (Colony switch)
  double bandwidth_bps = 350.0e6;    ///< inter-node bytes/s per processor
  double latency_intra_s = 3.0e-6;   ///< same-node message (shared memory)
  double bandwidth_intra_bps = 1.5e9;  ///< same-node bytes/s

  /// All ranks of an SMP node share its Colony adapter: a node's total
  /// inter-node traffic drains at this aggregate rate, so partitions that
  /// scatter neighbours across nodes serialize on the adapter.
  double node_adapter_bandwidth_bps = 700.0e6;

  /// Fraction of communication hidden behind computation (0 = fully
  /// synchronous, the paper-era default; 1 = perfect overlap, where a rank
  /// costs max(compute, comm) instead of compute + comm).
  double comm_overlap = 0.0;

  double sustained_fraction() const { return sustained_flops / peak_flops; }

  /// SMP node hosting a rank (block placement).
  int node_of(int rank) const { return rank / ranks_per_node; }
};

/// SEAM-like per-element workload: np×np GLL points, nlev vertical levels,
/// nvars prognostic fields exchanged at element boundaries each step.
struct seam_workload {
  int np = 8;     ///< GLL points per element edge
  int nlev = 26;  ///< vertical levels (typical climate configuration)
  int nvars = 1;  ///< fields exchanged per boundary point
  int stages = 3; ///< RK stages per timestep

  /// Floating point operations per element per timestep: per level and
  /// stage, two tensor-product derivative sweeps (2·2·np³) plus pointwise
  /// metric/update work (~24·np²).
  double flops_per_element() const {
    const double np3 = static_cast<double>(np) * np * np;
    const double np2 = static_cast<double>(np) * np;
    return static_cast<double>(stages) * nlev * (4.0 * np3 + 24.0 * np2);
  }

  /// Bytes exchanged per shared GLL point per step (8-byte doubles).
  double bytes_per_point() const { return 8.0 * nlev * nvars; }

  /// Bytes for one element-edge interface (the unit behind METIS-style TCV).
  double bytes_per_interface() const { return bytes_per_point() * np; }
};

}  // namespace sfp::perf
