#pragma once
// Execution-time simulation of one SEAM timestep under a given partition —
// the stand-in for running the real model on the paper's 768-processor P690.
//
// Model: every processor computes its owned elements at the sustained rate,
// then exchanges boundary data with each peer processor (one message per
// peer per step, latency + volume/bandwidth); the step completes when the
// slowest processor finishes:
//   T_step = max_p [ nelem(p)·F_e / rate  +  npeers(p)·α + bytes(p)/β ].
// Load imbalance enters through nelem(p), communication quality through the
// per-peer volumes — exactly the two partition properties the paper studies.

#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "perf/machine.hpp"

namespace sfp::perf {

struct step_time {
  double total_s = 0;       ///< simulated wall time per timestep
  double compute_s = 0;     ///< compute share of the critical rank
  double comm_s = 0;        ///< communication share of the critical rank
  int critical_rank = 0;    ///< the processor that sets the pace
  double avg_rank_s = 0;    ///< mean per-rank time (idle = total - avg)
};

/// Simulate one timestep. The dual graph's edge weights must be in units of
/// shared GLL points (the mesh's dual_graph(np, 1) convention), so that
/// weight × bytes_per_point gives bytes on the wire.
step_time simulate_step(const graph::csr& dual,
                        const partition::partition& part,
                        const machine_model& machine,
                        const seam_workload& workload);

/// Sustained aggregate flop rate implied by a step time.
double sustained_gflops(int num_elements, const seam_workload& workload,
                        const step_time& t);

/// Serial (one processor) step time for the same workload — the speedup
/// baseline of paper Figures 7 and 8.
step_time serial_step(int num_elements, const machine_model& machine,
                      const seam_workload& workload);

/// speedup = T(1) / T(p).
double speedup(const step_time& serial, const step_time& parallel);

}  // namespace sfp::perf
