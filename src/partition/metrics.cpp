#include "partition/metrics.hpp"

#include <algorithm>
#include <map>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace sfp::partition {

metrics compute_metrics(const graph::csr& g, const partition& p) {
  validate(p, g);
  metrics m;
  m.num_parts = p.num_parts;
  m.elems_per_part = part_sizes(p);
  m.weight_per_part = part_weights(p, g);
  m.lb_elems = sfp::load_balance(std::span<const std::int64_t>(m.elems_per_part));
  m.lb_weight =
      sfp::load_balance(std::span<const graph::weight>(m.weight_per_part));

  m.send_interfaces.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  m.send_weighted.assign(static_cast<std::size_t>(p.num_parts), 0.0);
  m.num_peers.assign(static_cast<std::size_t>(p.num_parts), 0);

  std::vector<std::vector<int>> peer_sets(
      static_cast<std::size_t>(p.num_parts));
  std::vector<graph::vid> remote_parts;  // scratch, reused per vertex
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    const graph::vid pv = p.part_of[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    remote_parts.clear();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vid pu = p.part_of[static_cast<std::size_t>(nbrs[i])];
      if (pu == pv) continue;
      if (v < nbrs[i]) {
        ++m.edgecut_edges;
        m.edgecut_weight += wgts[i];
      }
      m.send_weighted[static_cast<std::size_t>(pv)] +=
          static_cast<double>(wgts[i]);
      remote_parts.push_back(pu);
    }
    std::sort(remote_parts.begin(), remote_parts.end());
    remote_parts.erase(std::unique(remote_parts.begin(), remote_parts.end()),
                       remote_parts.end());
    m.send_interfaces[static_cast<std::size_t>(pv)] +=
        static_cast<double>(remote_parts.size());
    auto& peers = peer_sets[static_cast<std::size_t>(pv)];
    peers.insert(peers.end(), remote_parts.begin(), remote_parts.end());
  }

  for (int q = 0; q < p.num_parts; ++q) {
    auto& peers = peer_sets[static_cast<std::size_t>(q)];
    std::sort(peers.begin(), peers.end());
    peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
    m.num_peers[static_cast<std::size_t>(q)] = static_cast<int>(peers.size());
    m.tcv_interfaces += m.send_interfaces[static_cast<std::size_t>(q)];
    m.tcv_weighted += m.send_weighted[static_cast<std::size_t>(q)];
  }
  m.lb_comm = sfp::load_balance(std::span<const double>(m.send_interfaces));
  m.max_peers = m.num_peers.empty()
                    ? 0
                    : *std::max_element(m.num_peers.begin(), m.num_peers.end());
  return m;
}

std::vector<std::vector<std::pair<int, double>>> comm_pattern(
    const graph::csr& g, const partition& p) {
  validate(p, g);
  std::vector<std::map<int, double>> acc(
      static_cast<std::size_t>(p.num_parts));
  for (graph::vid v = 0; v < g.num_vertices(); ++v) {
    const graph::vid pv = p.part_of[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vid pu = p.part_of[static_cast<std::size_t>(nbrs[i])];
      if (pu != pv)
        acc[static_cast<std::size_t>(pv)][pu] += static_cast<double>(wgts[i]);
    }
  }
  std::vector<std::vector<std::pair<int, double>>> out(
      static_cast<std::size_t>(p.num_parts));
  for (std::size_t q = 0; q < acc.size(); ++q)
    out[q].assign(acc[q].begin(), acc[q].end());
  return out;
}

}  // namespace sfp::partition
