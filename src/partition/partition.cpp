#include "partition/partition.hpp"

#include "util/require.hpp"

namespace sfp::partition {

void validate(const partition& p, const graph::csr& g) {
  SFP_REQUIRE(p.num_parts >= 1, "partition needs at least one part");
  SFP_REQUIRE(p.part_of.size() == static_cast<std::size_t>(g.num_vertices()),
              "partition must label every vertex");
  for (const graph::vid label : p.part_of) {
    SFP_REQUIRE(label >= 0 && label < p.num_parts,
                "part label out of range");
  }
}

std::vector<std::int64_t> part_sizes(const partition& p) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(p.num_parts), 0);
  for (const graph::vid label : p.part_of)
    ++sizes[static_cast<std::size_t>(label)];
  return sizes;
}

std::vector<graph::weight> part_weights(const partition& p,
                                        const graph::csr& g) {
  std::vector<graph::weight> weights(static_cast<std::size_t>(p.num_parts), 0);
  for (graph::vid v = 0; v < g.num_vertices(); ++v)
    weights[static_cast<std::size_t>(p.part_of[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  return weights;
}

bool all_parts_nonempty(const partition& p) {
  for (const std::int64_t s : part_sizes(p))
    if (s == 0) return false;
  return true;
}

}  // namespace sfp::partition
