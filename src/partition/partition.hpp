#pragma once
// The partition type shared by the SFC partitioner and the multilevel graph
// partitioner, plus basic structural validation.

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace sfp::partition {

/// An assignment of every graph vertex (spectral element) to one of
/// `num_parts` processors.
struct partition {
  int num_parts = 0;
  std::vector<graph::vid> part_of;  ///< one entry per vertex, in [0, num_parts)

  partition() = default;
  partition(int parts, std::vector<graph::vid> assignment)
      : num_parts(parts), part_of(std::move(assignment)) {}
};

/// Throws sfp::contract_error if any label is out of range or the size does
/// not match the graph.
void validate(const partition& p, const graph::csr& g);

/// Number of vertices per part.
std::vector<std::int64_t> part_sizes(const partition& p);

/// Sum of vertex weights per part.
std::vector<graph::weight> part_weights(const partition& p,
                                        const graph::csr& g);

/// True if every part received at least one vertex.
bool all_parts_nonempty(const partition& p);

}  // namespace sfp::partition
