#pragma once
// Partition quality metrics (paper Section 2 and Table 2).
//
// Two volume accountings are provided because the paper uses both views:
//  * interface counting (METIS-style): a boundary vertex contributes one
//    unit per distinct remote part it touches — this is the "total
//    communication volume" objective of METIS's TV algorithm;
//  * weighted counting (physical): every cut edge contributes its weight
//    (shared GLL points) to both endpoint parts — this is what actually
//    crosses the network each timestep and what the perf model consumes.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace sfp::partition {

struct metrics {
  int num_parts = 0;

  // --- cut ---------------------------------------------------------------
  std::int64_t edgecut_edges = 0;    ///< number of cut edges (paper's "edgecut")
  graph::weight edgecut_weight = 0;  ///< total weight of cut edges

  // --- load --------------------------------------------------------------
  std::vector<std::int64_t> elems_per_part;  ///< "nelemd"
  std::vector<graph::weight> weight_per_part;
  double lb_elems = 0.0;   ///< LB(nelemd), paper eq. (1)
  double lb_weight = 0.0;  ///< LB over vertex weights (equals lb_elems for unit weights)

  // --- communication -----------------------------------------------------
  std::vector<double> send_interfaces;  ///< per part, METIS-style volume ("spcv")
  std::vector<double> send_weighted;    ///< per part, cut edge weight incident
  std::vector<int> num_peers;           ///< per part, number of partner parts
  double tcv_interfaces = 0.0;  ///< total communication volume, interface units
  double tcv_weighted = 0.0;    ///< total cut-weight volume (sum over parts of send_weighted)
  double lb_comm = 0.0;         ///< LB(spcv) over send_interfaces
  int max_peers = 0;

  /// TCV in bytes given the data carried per vertex interface (e.g. one
  /// element boundary's worth of GLL data).
  double tcv_bytes(double bytes_per_interface) const {
    return tcv_interfaces * bytes_per_interface;
  }
};

/// Compute all metrics for a partition of `g`.
metrics compute_metrics(const graph::csr& g, const partition& p);

/// Per-part communication pattern: for each part, the list of
/// (peer part, weighted volume sent to that peer). Symmetric: the same edge
/// weight appears on both directions. Used by the execution-time model.
std::vector<std::vector<std::pair<int, double>>> comm_pattern(
    const graph::csr& g, const partition& p);

}  // namespace sfp::partition
