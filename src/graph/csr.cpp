#include "graph/csr.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "util/require.hpp"

namespace sfp::graph {

csr::csr(std::vector<eid> xadj, std::vector<vid> adjncy,
         std::vector<weight> vwgt, std::vector<weight> adjwgt)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      vwgt_(std::move(vwgt)),
      adjwgt_(std::move(adjwgt)) {
  SFP_REQUIRE(!xadj_.empty(), "xadj must have nv+1 entries");
  SFP_REQUIRE(xadj_.size() == vwgt_.size() + 1, "xadj/vwgt size mismatch");
  SFP_REQUIRE(adjncy_.size() == adjwgt_.size(), "adjncy/adjwgt size mismatch");
  SFP_REQUIRE(static_cast<std::size_t>(xadj_.back()) == adjncy_.size(),
              "xadj terminator must equal adjacency length");
  total_vwgt_ = std::accumulate(vwgt_.begin(), vwgt_.end(), weight{0});
}

void csr::validate() const {
  const vid nv = num_vertices();
  SFP_REQUIRE(xadj_[0] == 0, "xadj[0] must be 0");
  for (vid v = 0; v < nv; ++v) {
    SFP_REQUIRE(xadj_[v] <= xadj_[v + 1], "xadj must be non-decreasing");
    SFP_REQUIRE(vwgt_[v] > 0, "vertex weights must be positive");
    const auto nbrs = neighbors(v);
    const auto wgts = neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      SFP_REQUIRE(nbrs[i] >= 0 && nbrs[i] < nv, "neighbor id out of range");
      SFP_REQUIRE(nbrs[i] != v, "self loops are not allowed");
      SFP_REQUIRE(wgts[i] > 0, "edge weights must be positive");
      if (i > 0)
        SFP_REQUIRE(nbrs[i - 1] < nbrs[i],
                    "adjacency must be sorted and duplicate free");
    }
  }
  // Symmetry: every (v, u, w) must have a matching (u, v, w).
  for (vid v = 0; v < nv; ++v) {
    const auto nbrs = neighbors(v);
    const auto wgts = neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid u = nbrs[i];
      const auto unbrs = neighbors(u);
      const auto it = std::lower_bound(unbrs.begin(), unbrs.end(), v);
      SFP_REQUIRE(it != unbrs.end() && *it == v,
                  "graph must be symmetric: missing reverse edge");
      const auto uw = neighbor_weights(u)[static_cast<std::size_t>(
          std::distance(unbrs.begin(), it))];
      SFP_REQUIRE(uw == wgts[i], "edge weights must be symmetric");
    }
  }
}

builder::builder(vid num_vertices)
    : num_vertices_(num_vertices), vwgt_(static_cast<std::size_t>(num_vertices), 1) {
  SFP_REQUIRE(num_vertices > 0, "graph needs at least one vertex");
}

void builder::add_edge(vid u, vid v, weight w) {
  SFP_REQUIRE(u >= 0 && u < num_vertices_, "edge endpoint u out of range");
  SFP_REQUIRE(v >= 0 && v < num_vertices_, "edge endpoint v out of range");
  SFP_REQUIRE(u != v, "self loops are not allowed");
  SFP_REQUIRE(w > 0, "edge weight must be positive");
  if (u > v) std::swap(u, v);
  edges_.push_back({{u, v}, w});
}

void builder::set_vertex_weight(vid v, weight w) {
  SFP_REQUIRE(v >= 0 && v < num_vertices_, "vertex id out of range");
  SFP_REQUIRE(w > 0, "vertex weight must be positive");
  vwgt_[static_cast<std::size_t>(v)] = w;
}

csr builder::build() {
  // Merge duplicate undirected edges by summing weights.
  std::sort(edges_.begin(), edges_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::pair<vid, vid>, weight>> merged;
  merged.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!merged.empty() && merged.back().first == e.first)
      merged.back().second += e.second;
    else
      merged.push_back(e);
  }

  const auto nv = static_cast<std::size_t>(num_vertices_);
  std::vector<eid> xadj(nv + 1, 0);
  for (const auto& e : merged) {
    ++xadj[static_cast<std::size_t>(e.first.first) + 1];
    ++xadj[static_cast<std::size_t>(e.first.second) + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) xadj[v + 1] += xadj[v];

  std::vector<vid> adjncy(static_cast<std::size_t>(xadj[nv]));
  std::vector<weight> adjwgt(adjncy.size());
  std::vector<eid> cursor(xadj.begin(), xadj.end() - 1);
  for (const auto& e : merged) {
    const auto [u, v] = e.first;
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)])] = v;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
        e.second;
    adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)])] = u;
    adjwgt[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
        e.second;
  }
  // Edges were inserted in sorted (u,v) order, so each vertex's adjacency is
  // already sorted: u's list receives v's in increasing v, and v's list
  // receives u's in increasing u.
  edges_.clear();
  return csr(std::move(xadj), std::move(adjncy), std::move(vwgt_),
             std::move(adjwgt));
}

}  // namespace sfp::graph
