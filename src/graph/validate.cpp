#include "graph/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace sfp::graph {

namespace {

template <typename... Parts>
std::string format(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

diagnostic validate_csr_arrays(std::span<const eid> xadj,
                               std::span<const vid> adjncy,
                               std::span<const weight> vwgt,
                               std::span<const weight> adjwgt) {
  if (xadj.empty())
    return diagnostic::fail("csr.shape", "xadj is empty (needs nv+1 entries)");
  if (xadj.size() != vwgt.size() + 1)
    return diagnostic::fail(
        "csr.shape", format("xadj has ", xadj.size(), " entries for ",
                            vwgt.size(), " vertices (want nv+1)"));
  if (adjncy.size() != adjwgt.size())
    return diagnostic::fail(
        "csr.shape", format("adjncy has ", adjncy.size(), " entries, adjwgt ",
                            adjwgt.size()));
  if (xadj.front() != 0)
    return diagnostic::fail("csr.xadj-monotone",
                            format("xadj[0] = ", xadj.front(), ", want 0"), 0);
  if (static_cast<std::size_t>(xadj.back()) != adjncy.size())
    return diagnostic::fail(
        "csr.shape", format("xadj terminator ", xadj.back(),
                            " != adjacency length ", adjncy.size()));

  const auto nv = static_cast<vid>(vwgt.size());
  for (vid v = 0; v < nv; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    if (xadj[sv] > xadj[sv + 1])
      return diagnostic::fail(
          "csr.xadj-monotone",
          format("xadj decreases at vertex ", v, ": ", xadj[sv], " -> ",
                 xadj[sv + 1]),
          v);
    if (vwgt[sv] <= 0)
      return diagnostic::fail(
          "csr.vertex-weight",
          format("vertex ", v, " has non-positive weight ", vwgt[sv]), v);
    for (eid i = xadj[sv]; i < xadj[sv + 1]; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const vid u = adjncy[si];
      if (u < 0 || u >= nv)
        return diagnostic::fail(
            "csr.neighbor-range",
            format("vertex ", v, " lists neighbor ", u, " outside [0, ", nv,
                   ")"),
            v);
      if (u == v)
        return diagnostic::fail("csr.self-loop",
                                format("vertex ", v, " is adjacent to itself"),
                                v);
      if (adjwgt[si] <= 0)
        return diagnostic::fail(
            "csr.edge-weight",
            format("edge {", v, ",", u, "} has non-positive weight ",
                   adjwgt[si]),
            v);
      if (i > xadj[sv] && adjncy[si - 1] >= u)
        return diagnostic::fail(
            "csr.adjacency-sorted",
            format("vertex ", v, " adjacency not strictly increasing at ",
                   adjncy[si - 1], " -> ", u),
            v);
    }
  }

  // Symmetry: every (v, u, w) needs a matching (u, v, w). Adjacency of u is
  // sorted (checked above), so binary search.
  for (vid v = 0; v < nv; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    for (eid i = xadj[sv]; i < xadj[sv + 1]; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const vid u = adjncy[si];
      const auto su = static_cast<std::size_t>(u);
      const auto ubeg = adjncy.begin() + xadj[su];
      const auto uend = adjncy.begin() + xadj[su + 1];
      const auto it = std::lower_bound(ubeg, uend, v);
      if (it == uend || *it != v)
        return diagnostic::fail(
            "csr.symmetry",
            format("edge ", v, " -> ", u, " has no reverse edge"), v);
      const auto rj =
          static_cast<std::size_t>(xadj[su] + (it - ubeg));
      if (adjwgt[rj] != adjwgt[si])
        return diagnostic::fail(
            "csr.weight-symmetry",
            format("edge {", v, ",", u, "} weighs ", adjwgt[si],
                   " one way and ", adjwgt[rj], " the other"),
            v);
    }
  }
  return diagnostic::pass();
}

diagnostic validate_csr(const csr& g) {
  return validate_csr_arrays(g.xadj(), g.adjncy(), g.vwgt(), g.adjwgt());
}

diagnostic validate_coarsening(const csr& fine, const csr& coarse,
                               std::span<const vid> coarse_of) {
  const vid nf = fine.num_vertices();
  const vid nc = coarse.num_vertices();
  if (static_cast<std::size_t>(nf) != coarse_of.size())
    return diagnostic::fail(
        "coarsen.map-range",
        format("coarse_of has ", coarse_of.size(), " entries for ", nf,
               " fine vertices"));

  // Vertex-weight conservation per coarse vertex.
  std::vector<weight> sum(static_cast<std::size_t>(nc), 0);
  for (vid v = 0; v < nf; ++v) {
    const vid c = coarse_of[static_cast<std::size_t>(v)];
    if (c < 0 || c >= nc)
      return diagnostic::fail(
          "coarsen.map-range",
          format("fine vertex ", v, " maps to ", c, " outside [0, ", nc, ")"),
          v);
    sum[static_cast<std::size_t>(c)] += fine.vertex_weight(v);
  }
  for (vid c = 0; c < nc; ++c)
    if (sum[static_cast<std::size_t>(c)] != coarse.vertex_weight(c))
      return diagnostic::fail(
          "coarsen.vertex-weight",
          format("coarse vertex ", c, " weighs ", coarse.vertex_weight(c),
                 " but its fine vertices sum to ",
                 sum[static_cast<std::size_t>(c)]),
          c);

  // Edge-weight conservation: accumulate fine cross-coarse edge weight per
  // coarse pair, then compare against the coarse adjacency exactly.
  std::map<std::pair<vid, vid>, weight> cross;
  for (vid v = 0; v < nf; ++v) {
    const vid cv = coarse_of[static_cast<std::size_t>(v)];
    const auto nbrs = fine.neighbors(v);
    const auto wgts = fine.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid cu = coarse_of[static_cast<std::size_t>(nbrs[i])];
      if (cv == cu) continue;  // internal edge: vanishes under contraction
      cross[{cv, cu}] += wgts[i];
    }
  }
  for (vid c = 0; c < nc; ++c) {
    const auto nbrs = coarse.neighbors(c);
    const auto wgts = coarse.neighbor_weights(c);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto it = cross.find({c, nbrs[i]});
      if (it == cross.end())
        return diagnostic::fail(
            "coarsen.adjacency",
            format("coarse edge {", c, ",", nbrs[i],
                   "} has no fine cross edge behind it"),
            c);
      if (it->second != wgts[i])
        return diagnostic::fail(
            "coarsen.cut-weight",
            format("coarse edge {", c, ",", nbrs[i], "} weighs ", wgts[i],
                   " but fine cross edges sum to ", it->second),
            c);
      cross.erase(it);
    }
  }
  if (!cross.empty()) {
    const auto& [key, w] = *cross.begin();
    return diagnostic::fail(
        "coarsen.adjacency",
        format("fine cross edges {", key.first, ",", key.second, "} totaling ",
               w, " are missing from the coarse graph"),
        key.first);
  }
  return diagnostic::pass();
}

}  // namespace sfp::graph
