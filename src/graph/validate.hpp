#pragma once
// Deep structural validation of CSR graphs, as first-class library code.
//
// Unlike csr::validate() (which throws on the first problem), these return
// a structured sfp::diagnostic naming the violated invariant, so audit-tier
// checks, tests, and tools can all consume the same result. Invariant slugs
// are stable:
//
//   csr.shape               xadj/adjncy/weight array shapes disagree
//   csr.xadj-monotone       xadj not non-decreasing from 0
//   csr.vertex-weight       non-positive vertex weight
//   csr.neighbor-range      adjacency id out of [0, nv)
//   csr.self-loop           v adjacent to itself
//   csr.adjacency-sorted    adjacency not strictly increasing
//   csr.edge-weight         non-positive edge weight
//   csr.symmetry            missing reverse edge
//   csr.weight-symmetry     reverse edge exists with different weight
//   coarsen.map-range       coarse_of label out of range
//   coarsen.vertex-weight   coarse vertex weight != sum of fine weights
//   coarsen.cut-weight      cross-coarse fine edge weight != coarse edge sum
//   coarsen.adjacency       coarse edge with no fine cross edge behind it

#include <span>

#include "graph/csr.hpp"
#include "util/contract.hpp"

namespace sfp::graph {

/// Full structural audit of a CSR graph: shape, monotone xadj, sorted
/// self-loop-free adjacency, positive weights, symmetry with matching
/// weights. O(V + E log d).
diagnostic validate_csr(const csr& g);

/// As validate_csr but over raw arrays, usable on data that the csr
/// constructor itself would reject (loaders, fuzz harnesses).
diagnostic validate_csr_arrays(std::span<const eid> xadj,
                               std::span<const vid> adjncy,
                               std::span<const weight> vwgt,
                               std::span<const weight> adjwgt);

/// Weight-sum conservation of one coarsening step `coarse = contract(fine,
/// coarse_of, nc)`: every coarse vertex weighs exactly the sum of its fine
/// vertices, and for every coarse pair {A,B} the coarse edge weight equals
/// the total fine edge weight crossing between A and B (edges internal to a
/// coarse vertex vanish, nothing else does). O(V + E).
diagnostic validate_coarsening(const csr& fine, const csr& coarse,
                               std::span<const vid> coarse_of);

}  // namespace sfp::graph
