#pragma once
// Structural graph operations shared by the multilevel partitioner and tests.

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace sfp::graph {

/// Contract `g` by a vertex->coarse-vertex map (values in [0, num_coarse)).
/// Coarse vertex weights are sums of their fine vertices' weights; parallel
/// fine edges between the same coarse pair merge by summing weights; edges
/// internal to a coarse vertex disappear. This is the coarsening step of a
/// multilevel partitioner.
csr contract(const csr& g, std::span<const vid> coarse_of, vid num_coarse);

/// Induced subgraph over `keep` (ids must be unique). Returns the subgraph
/// and fills `old_of_new` with the original id of each subgraph vertex.
csr induced_subgraph(const csr& g, std::span<const vid> keep,
                     std::vector<vid>& old_of_new);

/// True if the graph is connected (empty/one-vertex graphs are connected).
bool is_connected(const csr& g);

/// Connected component id per vertex; returns the number of components.
vid connected_components(const csr& g, std::vector<vid>& component_of);

/// Sum of weights of edges with endpoints in different blocks of
/// `block_of` — the generic edgecut used by both partition metrics and the
/// partitioner's internal accounting.
weight cut_weight(const csr& g, std::span<const vid> block_of);

}  // namespace sfp::graph
