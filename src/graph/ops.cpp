#include "graph/ops.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/require.hpp"

namespace sfp::graph {

csr contract(const csr& g, std::span<const vid> coarse_of, vid num_coarse) {
  SFP_REQUIRE(coarse_of.size() == static_cast<std::size_t>(g.num_vertices()),
              "coarse_of must map every vertex");
  SFP_REQUIRE(num_coarse > 0, "coarse graph needs at least one vertex");

  builder b(num_coarse);
  std::vector<weight> cvwgt(static_cast<std::size_t>(num_coarse), 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid c = coarse_of[static_cast<std::size_t>(v)];
    SFP_REQUIRE(c >= 0 && c < num_coarse, "coarse id out of range");
    cvwgt[static_cast<std::size_t>(c)] += g.vertex_weight(v);
  }
  for (vid c = 0; c < num_coarse; ++c) {
    SFP_REQUIRE(cvwgt[static_cast<std::size_t>(c)] > 0,
                "every coarse vertex must receive at least one fine vertex");
    b.set_vertex_weight(c, cvwgt[static_cast<std::size_t>(c)]);
  }
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid cv = coarse_of[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid cu = coarse_of[static_cast<std::size_t>(nbrs[i])];
      // Add each undirected edge once (v < nbr) to avoid double counting.
      if (cv != cu && v < nbrs[i]) b.add_edge(cv, cu, wgts[i]);
    }
  }
  // A disconnected coarse pair with no edges is legal; builder handles it.
  return b.build();
}

csr induced_subgraph(const csr& g, std::span<const vid> keep,
                     std::vector<vid>& old_of_new) {
  SFP_REQUIRE(!keep.empty(), "subgraph must keep at least one vertex");
  std::vector<vid> new_of_old(static_cast<std::size_t>(g.num_vertices()), -1);
  old_of_new.assign(keep.begin(), keep.end());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const vid v = keep[i];
    SFP_REQUIRE(v >= 0 && v < g.num_vertices(), "keep id out of range");
    SFP_REQUIRE(new_of_old[static_cast<std::size_t>(v)] == -1,
                "keep ids must be unique");
    new_of_old[static_cast<std::size_t>(v)] = static_cast<vid>(i);
  }

  builder b(static_cast<vid>(keep.size()));
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const vid v = keep[i];
    b.set_vertex_weight(static_cast<vid>(i), g.vertex_weight(v));
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const vid nu = new_of_old[static_cast<std::size_t>(nbrs[j])];
      if (nu >= 0 && static_cast<vid>(i) < nu)
        b.add_edge(static_cast<vid>(i), nu, wgts[j]);
    }
  }
  return b.build();
}

vid connected_components(const csr& g, std::vector<vid>& component_of) {
  const auto nv = static_cast<std::size_t>(g.num_vertices());
  component_of.assign(nv, -1);
  vid num_components = 0;
  std::vector<vid> stack;
  for (vid seed = 0; seed < g.num_vertices(); ++seed) {
    if (component_of[static_cast<std::size_t>(seed)] != -1) continue;
    stack.push_back(seed);
    component_of[static_cast<std::size_t>(seed)] = num_components;
    while (!stack.empty()) {
      const vid v = stack.back();
      stack.pop_back();
      for (const vid u : g.neighbors(v)) {
        if (component_of[static_cast<std::size_t>(u)] == -1) {
          component_of[static_cast<std::size_t>(u)] = num_components;
          stack.push_back(u);
        }
      }
    }
    ++num_components;
  }
  return num_components;
}

bool is_connected(const csr& g) {
  std::vector<vid> component_of;
  return connected_components(g, component_of) <= 1;
}

weight cut_weight(const csr& g, std::span<const vid> block_of) {
  SFP_REQUIRE(block_of.size() == static_cast<std::size_t>(g.num_vertices()),
              "block_of must label every vertex");
  weight cut = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i] && block_of[static_cast<std::size_t>(v)] !=
                             block_of[static_cast<std::size_t>(nbrs[i])])
        cut += wgts[i];
    }
  }
  return cut;
}

}  // namespace sfp::graph
