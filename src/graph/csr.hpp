#pragma once
// Weighted undirected graph in compressed-sparse-row form.
//
// This is the substrate both partitioners operate on: vertices are spectral
// elements (vertex weight = computation), edges connect elements that share
// a boundary or corner point (edge weight = data exchanged per step) — the
// graph model of Section 2 of the paper.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace sfp::graph {

using vid = std::int32_t;   ///< vertex id
using eid = std::int64_t;   ///< index into the adjacency array
using weight = std::int64_t;

/// Immutable undirected CSR graph with vertex and edge weights.
///
/// Invariants (checked by validate()):
///  * xadj has nv+1 monotonically non-decreasing entries, xadj[0] == 0;
///  * adjacency of every vertex is sorted and self-loop free;
///  * the graph is symmetric with matching edge weights;
///  * all weights are positive.
class csr {
 public:
  csr() = default;

  /// Assemble from raw CSR arrays. Takes ownership; call validate() in tests.
  csr(std::vector<eid> xadj, std::vector<vid> adjncy,
      std::vector<weight> vwgt, std::vector<weight> adjwgt);

  vid num_vertices() const { return static_cast<vid>(vwgt_.size()); }
  eid num_adjacency_entries() const { return static_cast<eid>(adjncy_.size()); }
  /// Number of undirected edges (half the adjacency entries).
  eid num_edges() const { return num_adjacency_entries() / 2; }

  std::span<const vid> neighbors(vid v) const {
    return {adjncy_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }
  std::span<const weight> neighbor_weights(vid v) const {
    return {adjwgt_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }
  vid degree(vid v) const { return static_cast<vid>(xadj_[v + 1] - xadj_[v]); }

  weight vertex_weight(vid v) const { return vwgt_[v]; }
  weight total_vertex_weight() const { return total_vwgt_; }

  std::span<const eid> xadj() const { return xadj_; }
  std::span<const vid> adjncy() const { return adjncy_; }
  std::span<const weight> vwgt() const { return vwgt_; }
  std::span<const weight> adjwgt() const { return adjwgt_; }

  /// Throws sfp::contract_error describing the first violated invariant.
  void validate() const;

 private:
  std::vector<eid> xadj_{0};
  std::vector<vid> adjncy_;
  std::vector<weight> vwgt_;
  std::vector<weight> adjwgt_;
  weight total_vwgt_ = 0;
};

/// Incremental builder: add undirected edges in any order, duplicates are
/// merged by summing their weights. Vertex weights default to 1.
class builder {
 public:
  explicit builder(vid num_vertices);

  /// Add (or accumulate onto) the undirected edge {u, v}.
  void add_edge(vid u, vid v, weight w = 1);
  void set_vertex_weight(vid v, weight w);

  vid num_vertices() const { return num_vertices_; }

  /// Build the CSR graph; the builder is left empty.
  csr build();

 private:
  vid num_vertices_ = 0;
  std::vector<weight> vwgt_;
  std::vector<std::pair<std::pair<vid, vid>, weight>> edges_;
};

}  // namespace sfp::graph
