#include "graph/generators.hpp"

#include "util/require.hpp"

namespace sfp::graph {

csr grid_graph(vid nx, vid ny) {
  SFP_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  builder b(nx * ny);
  const auto id = [nx](vid x, vid y) { return y * nx + x; };
  for (vid y = 0; y < ny; ++y) {
    for (vid x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return b.build();
}

csr grid_graph_8(vid nx, vid ny, weight edge_weight, weight corner_weight) {
  SFP_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  builder b(nx * ny);
  const auto id = [nx](vid x, vid y) { return y * nx + x; };
  for (vid y = 0; y < ny; ++y) {
    for (vid x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(id(x, y), id(x + 1, y), edge_weight);
      if (y + 1 < ny) b.add_edge(id(x, y), id(x, y + 1), edge_weight);
      if (x + 1 < nx && y + 1 < ny)
        b.add_edge(id(x, y), id(x + 1, y + 1), corner_weight);
      if (x > 0 && y + 1 < ny)
        b.add_edge(id(x, y), id(x - 1, y + 1), corner_weight);
    }
  }
  return b.build();
}

csr ring_graph(vid n) {
  SFP_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  builder b(n);
  for (vid v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

csr random_connected_graph(vid n, eid extra_edges, weight max_weight, rng& r) {
  SFP_REQUIRE(n >= 2, "need at least two vertices");
  SFP_REQUIRE(max_weight >= 1, "max_weight must be >= 1");
  builder b(n);
  for (vid v = 0; v + 1 < n; ++v)
    b.add_edge(v, v + 1, static_cast<weight>(1 + r.below(
                             static_cast<std::uint64_t>(max_weight))));
  for (eid e = 0; e < extra_edges; ++e) {
    const vid u = static_cast<vid>(r.below(static_cast<std::uint64_t>(n)));
    vid v = static_cast<vid>(r.below(static_cast<std::uint64_t>(n)));
    if (u == v) v = (v + 1) % n;
    b.add_edge(u, v, static_cast<weight>(
                         1 + r.below(static_cast<std::uint64_t>(max_weight))));
  }
  return b.build();
}

}  // namespace sfp::graph
