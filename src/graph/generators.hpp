#pragma once
// Synthetic graph generators used by tests and by the MGP quality benches.

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace sfp::graph {

/// nx-by-ny grid with 4-neighbour connectivity (unit weights).
csr grid_graph(vid nx, vid ny);

/// nx-by-ny grid with 8-neighbour connectivity; diagonal edges get
/// `corner_weight`, axis edges `edge_weight` — the same weighting scheme the
/// cubed-sphere dual graph uses for edge vs corner element coupling.
csr grid_graph_8(vid nx, vid ny, weight edge_weight, weight corner_weight);

/// Cycle of n vertices.
csr ring_graph(vid n);

/// Connected Erdős–Rényi-style random graph: a Hamiltonian backbone plus
/// `extra_edges` random chords, weights uniform in [1, max_weight].
csr random_connected_graph(vid n, eid extra_edges, weight max_weight, rng& r);

}  // namespace sfp::graph
