#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sfp {

namespace {
std::atomic<log_level> g_level{log_level::info};
std::mutex g_emit_mutex;

const char* level_name(log_level lvl) {
  switch (lvl) {
    case log_level::debug: return "debug";
    case log_level::info: return "info ";
    case log_level::warn: return "warn ";
    case log_level::error: return "error";
    case log_level::off: return "off  ";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level lvl) { g_level.store(lvl, std::memory_order_relaxed); }
log_level get_log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(log_level lvl, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[sfcpart %s] %.*s\n", level_name(lvl),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace sfp
