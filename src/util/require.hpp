#pragma once
// Compatibility shim: the contract machinery moved to util/contract.hpp
// when it grew the audit tier and the pluggable violation handler. Existing
// includes of util/require.hpp keep working; new code should include
// util/contract.hpp directly.

#include "util/contract.hpp"
