#pragma once
// Precondition / invariant checking.
//
// SFP_REQUIRE: validates caller-supplied arguments at public API boundaries.
// SFP_ASSERT:  validates internal invariants; compiled out in NDEBUG builds.
// Both throw sfp::contract_error so tests can assert on violations, and so a
// misuse never silently corrupts a partition.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sfp {

/// Thrown when a precondition or internal invariant is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace sfp

#define SFP_REQUIRE(expr, msg)                                            \
  do {                                                                    \
    if (!(expr))                                                          \
      ::sfp::detail::contract_fail("precondition", #expr, __FILE__,       \
                                   __LINE__, (msg));                      \
  } while (false)

#ifdef NDEBUG
#define SFP_ASSERT(expr, msg) \
  do {                        \
  } while (false)
#else
#define SFP_ASSERT(expr, msg)                                          \
  do {                                                                 \
    if (!(expr))                                                       \
      ::sfp::detail::contract_fail("invariant", #expr, __FILE__,       \
                                   __LINE__, (msg));                   \
  } while (false)
#endif
