#pragma once
// Column-aligned plain-text table formatter used by the benchmark harness to
// print paper-style tables (e.g. Table 2 of the paper) and figure series.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sfp {

/// Builds a table row by row and renders it with aligned columns.
///
/// Cells are stored as strings; numeric convenience overloads format with a
/// fixed precision chosen per call. Rendering right-aligns cells that parse
/// as numbers and left-aligns everything else.
class table {
 public:
  /// Create a table with the given column headers.
  explicit table(std::vector<std::string> headers);

  /// Start a new (empty) row; subsequent add() calls fill it left to right.
  table& new_row();

  table& add(std::string cell);
  table& add(const char* cell);
  table& add(double value, int precision = 3);
  table& add(std::int64_t value);
  table& add(std::uint64_t value);
  table& add(int value);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Render with a header rule, e.g.
  ///   metric     SFC    KWAY
  ///   ------  ------  ------
  ///   LB      0.000   0.060
  std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a byte count as a human string ("16.8 MB").
std::string format_bytes(double bytes);

}  // namespace sfp
