#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/require.hpp"

namespace sfp {

cli_args::cli_args(int argc, const char* const* argv) {
  SFP_REQUIRE(argc >= 1, "argv must contain at least the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean switch
    }
  }
}

bool cli_args::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::optional<std::string> cli_args::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string cli_args::get_or(const std::string& name,
                             std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

std::int64_t cli_args::get_int_or(const std::string& name,
                                  std::int64_t fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double cli_args::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool cli_args::get_bool_or(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  // A present switch is true unless explicitly negated.
  return !(*v == "0" || *v == "false" || *v == "no");
}

}  // namespace sfp
