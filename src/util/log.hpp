#pragma once
// Minimal leveled logger. Single global sink (stderr by default); benches and
// examples use it for progress lines, the library itself only logs at debug
// level so its output stays machine-parsable.

#include <sstream>
#include <string_view>

namespace sfp {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(log_level lvl);
log_level get_log_level();

namespace detail {
void log_emit(log_level lvl, std::string_view msg);
}

/// Log a message composed from stream-insertable pieces.
template <typename... Args>
void log(log_level lvl, const Args&... args) {
  if (lvl < get_log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(lvl, os.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(log_level::debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(log_level::info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(log_level::warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(log_level::error, args...); }

}  // namespace sfp
