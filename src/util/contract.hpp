#pragma once
// Tiered contract checking — the correctness backbone of the library.
//
// Three tiers, by cost and build coverage:
//
//   SFP_REQUIRE(expr, msg)  always on. Validates caller-supplied arguments
//                           at public API boundaries and untrusted input
//                           (parsers, file readers). O(1) or amortized into
//                           work the call does anyway.
//   SFP_ASSERT(expr, msg)   debug and audit builds. Internal invariants
//                           whose cost is small but not free; compiled out
//                           in plain NDEBUG builds.
//   SFP_AUDIT(expr, msg)    audit builds only (-DSFCPART_AUDIT=ON). May be
//                           arbitrarily expensive — full O(V+E) structural
//                           validation at module boundaries. Zero cost when
//                           compiled out.
//   SFP_AUDIT_DIAG(call)    audit-tier check of a validator returning
//                           sfp::diagnostic (see below); on failure the
//                           diagnostic's invariant slug and detail become
//                           the violation report.
//
// Every tier funnels through one violation path: the violation (kind,
// expression, file:line, message) is handed to a pluggable handler, then to
// an observer hook the observability layer installs (so violations are
// counted in the metrics registry), and finally raised as
// sfp::contract_error. Tests install their own handler to assert on
// violations without unwinding; production code lets the throw abort the
// operation before a broken invariant can corrupt a partition.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace sfp {

/// Thrown when a precondition or internal invariant is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Everything known about one contract violation, as captured at the
/// failing check site.
struct contract_violation {
  const char* kind = "";   ///< "precondition", "invariant", or "audit"
  std::string expression;  ///< the failed expression or invariant slug
  const char* file = "";
  int line = 0;
  std::string message;  ///< formatted context supplied at the check site
};

/// Violation handler: runs before contract_error is thrown. If it returns
/// (rather than throwing or aborting), the throw proceeds anyway, so a
/// handler cannot accidentally let execution continue past a violation.
using violation_handler = void (*)(const contract_violation&);

/// Install a handler; returns the previous one. nullptr restores default
/// behaviour (log at error level, notify the observer, throw).
violation_handler set_violation_handler(violation_handler h);

/// Observer hook for passive instrumentation (the obs layer registers one
/// that bumps `contract.violations.<kind>` counters). Unlike the handler it
/// is always invoked, even when a custom handler is installed.
using violation_observer = void (*)(const contract_violation&);
violation_observer set_violation_observer(violation_observer o);

/// Structured result of a deep validator (graph::validate_csr,
/// mesh::validate_topology, sfc::validate_curve, core::validate_plan).
/// `invariant` is a stable machine-checkable slug naming the first violated
/// invariant ("csr.symmetry", "plan.segment-contiguity", ...); `detail`
/// says where and how it failed; `index` is the offending vertex / element
/// / curve position when one exists.
struct diagnostic {
  bool ok = true;
  std::string invariant;
  std::string detail;
  std::int64_t index = -1;

  explicit operator bool() const { return ok; }

  static diagnostic pass() { return {}; }
  static diagnostic fail(std::string invariant_slug, std::string detail_msg,
                         std::int64_t where = -1) {
    diagnostic d;
    d.ok = false;
    d.invariant = std::move(invariant_slug);
    d.detail = std::move(detail_msg);
    d.index = where;
    return d;
  }

  /// "<invariant>: <detail>" (or "ok").
  std::string to_string() const;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, std::string expr,
                                const char* file, int line, std::string msg);

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  contract_fail(kind, std::string(expr), file, line, msg);
}
}  // namespace detail

}  // namespace sfp

#define SFP_REQUIRE(expr, msg)                                            \
  do {                                                                    \
    if (!(expr))                                                          \
      ::sfp::detail::contract_fail("precondition", #expr, __FILE__,       \
                                   __LINE__, (msg));                      \
  } while (false)

// SFP_ASSERT participates in debug builds and in audit builds (where the
// point is maximum checking regardless of NDEBUG).
#if !defined(NDEBUG) || defined(SFCPART_AUDIT)
#define SFP_ASSERT(expr, msg)                                          \
  do {                                                                 \
    if (!(expr))                                                       \
      ::sfp::detail::contract_fail("invariant", #expr, __FILE__,       \
                                   __LINE__, (msg));                   \
  } while (false)
#else
#define SFP_ASSERT(expr, msg) \
  do {                        \
  } while (false)
#endif

#ifdef SFCPART_AUDIT
#define SFP_AUDIT(expr, msg)                                          \
  do {                                                                \
    if (!(expr))                                                      \
      ::sfp::detail::contract_fail("audit", #expr, __FILE__,          \
                                   __LINE__, (msg));                  \
  } while (false)
#define SFP_AUDIT_DIAG(call)                                             \
  do {                                                                   \
    const ::sfp::diagnostic sfp_audit_diag_ = (call);                    \
    if (!sfp_audit_diag_.ok)                                             \
      ::sfp::detail::contract_fail("audit", sfp_audit_diag_.invariant,   \
                                   __FILE__, __LINE__,                   \
                                   sfp_audit_diag_.detail);              \
  } while (false)
#define SFP_AUDIT_ENABLED 1
#else
#define SFP_AUDIT(expr, msg) \
  do {                       \
  } while (false)
#define SFP_AUDIT_DIAG(call) \
  do {                       \
  } while (false)
#define SFP_AUDIT_ENABLED 0
#endif
