#pragma once
// Deterministic xoshiro256** pseudo-random generator.
//
// Everything randomized in the library (MGP tie-breaking, test workloads)
// takes an explicit rng so results are reproducible run to run — mandatory
// for a partitioner whose output feeds regression tests.

#include <cstdint>
#include <limits>

namespace sfp {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into four non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified: rejection on the multiply-shift).
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace sfp
