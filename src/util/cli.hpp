#pragma once
// Tiny command-line flag parser shared by benches and examples.
// Supports --name=value and --name value forms plus boolean switches.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sfp {

/// Parses flags of the form --key=value / --key value / --switch.
/// Positional arguments are collected in order.
class cli_args {
 public:
  cli_args(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool get_bool_or(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sfp
