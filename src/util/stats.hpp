#pragma once
// Small descriptive-statistics helpers over spans of numbers, including the
// paper's load-balance metric LB(S) = (max(S) - avg(S)) / max(S)  (eq. 1).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <span>

#include "util/require.hpp"

namespace sfp {

template <typename T>
double sum_of(std::span<const T> values) {
  return std::accumulate(values.begin(), values.end(), 0.0,
                         [](double acc, T v) { return acc + static_cast<double>(v); });
}

template <typename T>
double mean_of(std::span<const T> values) {
  SFP_REQUIRE(!values.empty(), "mean of empty span");
  return sum_of(values) / static_cast<double>(values.size());
}

template <typename T>
double max_of(std::span<const T> values) {
  SFP_REQUIRE(!values.empty(), "max of empty span");
  return static_cast<double>(*std::max_element(values.begin(), values.end()));
}

template <typename T>
double min_of(std::span<const T> values) {
  SFP_REQUIRE(!values.empty(), "min of empty span");
  return static_cast<double>(*std::min_element(values.begin(), values.end()));
}

template <typename T>
double stdev_of(std::span<const T> values) {
  SFP_REQUIRE(!values.empty(), "stdev of empty span");
  const double m = mean_of(values);
  double acc = 0.0;
  for (T v : values) {
    const double d = static_cast<double>(v) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

/// Paper eq. (1): LB(S) = (max{S} - avg{S}) / max{S}.
///
/// 0 means perfectly balanced; approaching 1 means one bucket dominates.
/// If max(S) == 0 (nothing anywhere) the set is balanced by convention.
template <typename T>
double load_balance(std::span<const T> values) {
  SFP_REQUIRE(!values.empty(), "load balance of empty span");
  const double mx = max_of(values);
  if (mx == 0.0) return 0.0;
  return (mx - mean_of(values)) / mx;
}

}  // namespace sfp
