#include "util/contract.hpp"

#include <atomic>

#include "util/log.hpp"

namespace sfp {

namespace {
// Handler/observer slots. Plain atomics: installation is rare (tests,
// process setup), invocation must be safe from any thread.
std::atomic<violation_handler> g_handler{nullptr};
std::atomic<violation_observer> g_observer{nullptr};
}  // namespace

violation_handler set_violation_handler(violation_handler h) {
  return g_handler.exchange(h);
}

violation_observer set_violation_observer(violation_observer o) {
  return g_observer.exchange(o);
}

std::string diagnostic::to_string() const {
  if (ok) return "ok";
  std::string s = invariant;
  s += ": ";
  s += detail;
  return s;
}

namespace detail {

[[noreturn]] void contract_fail(const char* kind, std::string expr,
                                const char* file, int line, std::string msg) {
  contract_violation v;
  v.kind = kind;
  v.expression = std::move(expr);
  v.file = file;
  v.line = line;
  v.message = std::move(msg);

  if (const violation_observer obs = g_observer.load()) obs(v);

  std::ostringstream os;
  os << kind << " failed: (" << v.expression << ") at " << file << ':' << line;
  if (!v.message.empty()) os << " — " << v.message;
  const std::string what = os.str();

  if (const violation_handler h = g_handler.load()) {
    h(v);  // may throw or abort; if it returns we still throw below
  } else {
    // Debug level: tests exercise violations on purpose, and the throw
    // below already carries the full report to whoever cares.
    log_debug("contract: ", what);
  }
  throw contract_error(what);
}

}  // namespace detail
}  // namespace sfp
