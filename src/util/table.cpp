#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace sfp {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  return ec == std::errc{} && ptr == last;
}

std::string pad(const std::string& s, std::size_t width, bool right_align) {
  if (s.size() >= width) return s;
  std::string padding(width - s.size(), ' ');
  return right_align ? padding + s : s + padding;
}
}  // namespace

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SFP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

table& table::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

table& table::add(std::string cell) {
  SFP_REQUIRE(!rows_.empty(), "call new_row() before add()");
  SFP_REQUIRE(rows_.back().size() < headers_.size(),
              "row has more cells than columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

table& table::add(const char* cell) { return add(std::string(cell)); }

table& table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string(buf));
}

table& table::add(std::int64_t value) { return add(std::to_string(value)); }
table& table::add(std::uint64_t value) { return add(std::to_string(value)); }
table& table::add(int value) { return add(std::to_string(value)); }

std::string table::str() const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> right(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!looks_numeric(row[c])) right[c] = false;
    }
  }

  std::ostringstream os;
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c) os << "  ";
    os << pad(headers_[c], width[c], right[c]);
  }
  os << '\n';
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << pad(row[c], width[c], right[c]);
    }
    os << '\n';
  }
  return os.str();
}

void table::print(std::ostream& os) const { os << str(); }

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[u]);
  return std::string(buf);
}

}  // namespace sfp
