#pragma once
// Wall-clock stopwatch for coarse timing in examples and the real (threaded)
// mini-app runs. The reproduction's reported numbers come from the analytic
// perf model, not from this clock.

#include <chrono>

namespace sfp {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sfp
