#pragma once
// Overflow-checked 64-bit arithmetic for K/Ne-scaled quantities.
//
// The exact partitioners compare products like S(x)·nparts against
// p·total along the splitter dichotomy; at tens of millions of elements
// with heavy weights those products approach INT64_MAX, and a silent
// wrap would invert the comparison and corrupt the cut bracket without
// any visible failure. checked_mul / checked_add compute exactly the
// same value as the raw operators and fail the always-on contract tier
// instead of wrapping — the partition aborts loudly at the first product
// that no longer fits. The sfplint overflow-arith pass recognizes these
// names as sanctioned and skips statements that use them.

#include <cstdint>

#include "util/contract.hpp"

namespace sfp {

/// `a * b`, or a contract violation if the product does not fit int64.
[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a,
                                              std::int64_t b) {
  std::int64_t r = 0;
  SFP_REQUIRE(!__builtin_mul_overflow(a, b, &r),
              "int64 overflow in checked_mul");
  return r;
}

/// `a + b`, or a contract violation if the sum does not fit int64.
[[nodiscard]] inline std::int64_t checked_add(std::int64_t a,
                                              std::int64_t b) {
  std::int64_t r = 0;
  SFP_REQUIRE(!__builtin_add_overflow(a, b, &r),
              "int64 overflow in checked_add");
  return r;
}

}  // namespace sfp
