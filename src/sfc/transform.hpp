#pragma once
// The dihedral group D4 acting on cells of a P×P grid.
//
// Cube stitching (src/core) reorients each face's curve so that consecutive
// faces' curve endpoints meet across the shared cube edge; the 8 symmetries
// of the square are exactly the available reorientations.

#include <array>
#include <cstdint>
#include <string_view>

#include "sfc/curve.hpp"

namespace sfp::sfc {

/// The eight symmetries of the square. Rotations are counterclockwise.
enum class dihedral : std::uint8_t {
  identity = 0,
  rot90 = 1,
  rot180 = 2,
  rot270 = 3,
  flip_x = 4,          ///< mirror across the vertical axis:   (x,y) -> (P-1-x, y)
  flip_y = 5,          ///< mirror across the horizontal axis: (x,y) -> (x, P-1-y)
  transpose = 6,       ///< mirror across the main diagonal:   (x,y) -> (y, x)
  anti_transpose = 7,  ///< mirror across the anti-diagonal:   (x,y) -> (P-1-y, P-1-x)
};

inline constexpr std::array<dihedral, 8> all_dihedrals = {
    dihedral::identity,  dihedral::rot90,     dihedral::rot180,
    dihedral::rot270,    dihedral::flip_x,    dihedral::flip_y,
    dihedral::transpose, dihedral::anti_transpose};

/// Apply `t` to a cell of a P×P grid.
cell apply(dihedral t, cell c, int side);

/// Apply `t` to every cell of a curve (order along the curve is preserved).
std::vector<cell> apply(dihedral t, const std::vector<cell>& curve, int side);

/// Group composition: apply(compose(t2, t1), c) == apply(t2, apply(t1, c)).
dihedral compose(dihedral second, dihedral first);

/// Group inverse: apply(inverse(t), apply(t, c)) == c.
dihedral inverse(dihedral t);

std::string_view dihedral_name(dihedral t);

}  // namespace sfp::sfc
