#pragma once
// ASCII rendering of curves for examples and debugging (paper Figures 2-5).

#include <string>

#include "sfc/curve.hpp"

namespace sfp::sfc {

/// Draw the curve as box-drawing art, one 2-char-wide cell per grid cell,
/// y increasing upward (row 0 printed last). Example for a level-1 Hilbert:
///   ┌──┐
///   ╵  ╵
std::string render_curve(const std::vector<cell>& curve, int side);

/// Render the visit order as a grid of numbers (paper Figure 2 style).
std::string render_order(const std::vector<cell>& curve, int side);

}  // namespace sfp::sfc
