#include "sfc/curve.hpp"

#include <algorithm>

#include "sfc/generator.hpp"
#include "util/require.hpp"

namespace sfp::sfc {

namespace {

struct frame {
  // All in corner coordinates: the frame covers the square spanned from
  // (ox,oy) by the vectors A=(ax,ay) and B=(bx,by).
  int ox, oy;
  int ax, ay;
  int bx, by;
};

void recurse(const std::vector<int>& factors, std::size_t depth,
             const frame& f, std::vector<cell>& out) {
  if (depth == factors.size()) {
    // Leaf: |A| = |B| = 1; the covered unit cell's lower-left corner is the
    // componentwise min of the frame's two opposite corners.
    out.push_back({std::min(f.ox, f.ox + f.ax + f.bx),
                   std::min(f.oy, f.oy + f.ay + f.by)});
    return;
  }
  const int fac = factors[depth];
  const std::vector<child_frame>& spec = generator_for(fac);
  // Sub-vectors a = A/f, b = B/f (A and B are always divisible: their length
  // is the product of the remaining factors).
  const int sax = f.ax / fac, say = f.ay / fac;
  const int sbx = f.bx / fac, sby = f.by / fac;
  for (const child_frame& cs : spec) {
    frame child;
    child.ox = f.ox + cs.oa * sax + cs.ob * sbx;
    child.oy = f.oy + cs.oa * say + cs.ob * sby;
    child.ax = cs.aa * sax + cs.ab * sbx;
    child.ay = cs.aa * say + cs.ab * sby;
    child.bx = cs.ba * sax + cs.bb * sbx;
    child.by = cs.ba * say + cs.bb * sby;
    recurse(factors, depth + 1, child, out);
  }
}

/// One descent step of the point query: find the child frame of `f` whose
/// covered square contains `c`. `sub` is the child side (parent side / fac).
/// Returns the child's index in generator order and replaces `f` with the
/// child frame. The children tile the parent square, so the scan always
/// finds exactly one match.
int descend_into_child(int fac, int sub, frame& f, cell c) {
  const std::vector<child_frame>& spec = generator_for(fac);
  const int sax = f.ax / fac, say = f.ay / fac;
  const int sbx = f.bx / fac, sby = f.by / fac;
  for (std::size_t k = 0; k < spec.size(); ++k) {
    const child_frame& cs = spec[k];
    frame child;
    child.ox = f.ox + cs.oa * sax + cs.ob * sbx;
    child.oy = f.oy + cs.oa * say + cs.ob * sby;
    child.ax = cs.aa * sax + cs.ab * sbx;
    child.ay = cs.aa * say + cs.ab * sby;
    child.bx = cs.ba * sax + cs.bb * sbx;
    child.by = cs.ba * say + cs.bb * sby;
    // Covered square: lower-left corner is the componentwise min of the
    // frame's two opposite corners, side length |A| = sub.
    const int minx = std::min(child.ox, child.ox + child.ax + child.bx);
    const int miny = std::min(child.oy, child.oy + child.ay + child.by);
    if (c.x >= minx && c.x < minx + sub && c.y >= miny && c.y < miny + sub) {
      f = child;
      return static_cast<int>(k);
    }
  }
  SFP_REQUIRE(false, "generator children do not tile the block");
  return -1;
}

/// Factor `side` over the given prime set (largest first), or empty if it
/// does not decompose.
std::vector<int> prime_factors_over(int side, const std::vector<int>& primes) {
  std::vector<int> out;
  int rem = side;
  for (const int p : primes) {
    while (rem % p == 0) {
      rem /= p;
      out.push_back(p);
    }
  }
  if (rem != 1) return {};
  return out;
}

}  // namespace

int factor_of(refinement r) {
  switch (r) {
    case refinement::hilbert2: return 2;
    case refinement::peano3: return 3;
    case refinement::cinco5: return 5;
  }
  SFP_REQUIRE(false, "invalid refinement");
  return 0;
}

int side_of(const schedule& s) {
  int side = 1;
  for (const refinement r : s) side *= factor_of(r);
  return side;
}

std::optional<schedule> schedule_for(int side, nesting_order order) {
  if (side < 2) return std::nullopt;
  int n2 = 0, n3 = 0;
  int rem = side;
  while (rem % 2 == 0) {
    rem /= 2;
    ++n2;
  }
  while (rem % 3 == 0) {
    rem /= 3;
    ++n3;
  }
  if (rem != 1) return std::nullopt;

  schedule s;
  s.reserve(static_cast<std::size_t>(n2 + n3));
  switch (order) {
    case nesting_order::peano_first:
      s.insert(s.end(), static_cast<std::size_t>(n3), refinement::peano3);
      s.insert(s.end(), static_cast<std::size_t>(n2), refinement::hilbert2);
      break;
    case nesting_order::hilbert_first:
      s.insert(s.end(), static_cast<std::size_t>(n2), refinement::hilbert2);
      s.insert(s.end(), static_cast<std::size_t>(n3), refinement::peano3);
      break;
    case nesting_order::interleaved: {
      int r3 = n3, r2 = n2;
      while (r3 > 0 || r2 > 0) {
        if (r3 > 0) {
          s.push_back(refinement::peano3);
          --r3;
        }
        if (r2 > 0) {
          s.push_back(refinement::hilbert2);
          --r2;
        }
      }
      break;
    }
  }
  return s;
}

std::optional<schedule> extended_schedule_for(int side) {
  if (side < 2) return std::nullopt;
  const std::vector<int> factors = prime_factors_over(side, {5, 3, 2});
  if (factors.empty()) return std::nullopt;
  schedule s;
  s.reserve(factors.size());
  for (const int f : factors) {
    s.push_back(f == 5 ? refinement::cinco5
                       : (f == 3 ? refinement::peano3 : refinement::hilbert2));
  }
  return s;
}

bool is_sfc_compatible(int side) { return schedule_for(side).has_value(); }

bool is_sfc_compatible_extended(int side) {
  return extended_schedule_for(side).has_value();
}

std::vector<cell> generate_factors(const std::vector<int>& factors) {
  int side = 1;
  for (const int f : factors) {
    SFP_REQUIRE(f >= 2, "refinement factors must be at least 2");
    SFP_REQUIRE(side <= (1 << 20) / f, "curve side too large");
    side *= f;
  }
  SFP_REQUIRE(side >= 1, "factor list must produce a positive side");
  std::vector<cell> out;
  out.reserve(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  recurse(factors, 0, frame{0, 0, side, 0, 0, side}, out);
  return out;
}

std::vector<cell> generate(const schedule& s) {
  std::vector<int> factors;
  factors.reserve(s.size());
  for (const refinement r : s) factors.push_back(factor_of(r));
  return generate_factors(factors);
}

std::vector<cell> hilbert_curve(int levels) {
  SFP_REQUIRE(levels >= 1, "hilbert curve needs level >= 1");
  return generate(schedule(static_cast<std::size_t>(levels), refinement::hilbert2));
}

std::vector<cell> peano_curve(int levels) {
  SFP_REQUIRE(levels >= 1, "peano curve needs level >= 1");
  return generate(schedule(static_cast<std::size_t>(levels), refinement::peano3));
}

std::vector<cell> hilbert_peano_curve(int side, nesting_order order) {
  const auto s = schedule_for(side, order);
  SFP_REQUIRE(s.has_value(), "side must be of the form 2^n * 3^m, side >= 2");
  return generate(*s);
}

std::int64_t curve_position_factors(const std::vector<int>& factors, cell c) {
  int side = 1;
  for (const int f : factors) {
    SFP_REQUIRE(f >= 2, "refinement factors must be at least 2");
    SFP_REQUIRE(side <= (1 << 20) / f, "curve side too large");
    side *= f;
  }
  SFP_REQUIRE(c.x >= 0 && c.x < side && c.y >= 0 && c.y < side,
              "cell out of range for this factor list");
  frame f{0, 0, side, 0, 0, side};
  std::int64_t pos = 0;
  int sub = side;
  for (const int fac : factors) {
    sub /= fac;
    const int child = descend_into_child(fac, sub, f, c);
    pos = pos * (static_cast<std::int64_t>(fac) * fac) + child;
  }
  return pos;
}

std::int64_t curve_position(const schedule& s, cell c) {
  std::vector<int> factors;
  factors.reserve(s.size());
  for (const refinement r : s) factors.push_back(factor_of(r));
  return curve_position_factors(factors, c);
}

std::vector<std::int64_t> curve_index(const std::vector<cell>& curve, int side) {
  SFP_REQUIRE(side >= 1, "side must be positive");
  SFP_REQUIRE(curve.size() == static_cast<std::size_t>(side) *
                                  static_cast<std::size_t>(side),
              "curve length must be side^2");
  std::vector<std::int64_t> index(curve.size(), -1);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const cell c = curve[i];
    SFP_REQUIRE(c.x >= 0 && c.x < side && c.y >= 0 && c.y < side,
                "curve cell out of range");
    const auto flat = static_cast<std::size_t>(c.y) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(c.x);
    SFP_REQUIRE(index[flat] == -1, "curve visits a cell twice");
    index[flat] = static_cast<std::int64_t>(i);
  }
  return index;
}

std::string schedule_name(const schedule& s) {
  bool has2 = false, has3 = false, has5 = false;
  for (const refinement r : s) {
    if (r == refinement::hilbert2) has2 = true;
    else if (r == refinement::peano3) has3 = true;
    else has5 = true;
  }
  if (has5) return has2 || has3 ? "hilbert-peano-cinco" : "cinco";
  if (has2 && has3) return "hilbert-peano";
  if (has3) return "m-peano";
  return "hilbert";
}

}  // namespace sfp::sfc
