#pragma once
// Space-filling-curve generation on a P×P grid (paper Section 3).
//
// Both generators are expressed in one frame-recursion framework. A *frame*
// is an origin corner O plus two perpendicular span vectors A (major) and B
// (secondary); the curve covering a frame always ENTERS at O and EXITS at
// O + A — net displacement purely along the major vector. This shared
// entry/exit convention is exactly the property the paper identifies as what
// lets Hilbert and m-Peano refinements nest into a Hilbert-Peano curve: a
// refinement step only ever replaces a frame with smaller frames obeying the
// same convention, so any schedule of 2-fold (Hilbert) and 3-fold (m-Peano)
// refinements yields a valid curve on a grid of side P = 2^n · 3^m.
//
// Correctness argument (verified exhaustively by the property tests): within
// a generator, consecutive children chain corner-to-corner (child k's exit
// corner equals child k+1's entry corner, an endpoint of their shared edge),
// the first child inherits the parent's entry corner and the last child the
// parent's exit corner. By induction the first/last leaf cells of a subtree
// are the corner cells at the subtree's entry/exit corners, so consecutive
// leaf cells across any junction hug the same corner from two edge-adjacent
// parent cells and are therefore themselves edge-adjacent.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sfp::sfc {

/// Grid cell, x to the right, y up, both in [0, P).
struct cell {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const cell&, const cell&) = default;
};

/// One recursion step: subdivide each frame 2×2 (Hilbert), 3×3 (m-Peano),
/// or 5×5 ("Cinco" — the factor NCAR's HOMME later added on top of this
/// paper's scheme; its generator table is synthesized, see sfc/generator.hpp).
enum class refinement : std::uint8_t { hilbert2, peano3, cinco5 };

/// Refinement factor (2, 3 or 5).
int factor_of(refinement r);

/// Sequence of refinement steps, outermost first. The grid side it produces
/// is the product of the factors.
using schedule = std::vector<refinement>;

/// Grid side produced by a schedule (product of refinement factors).
int side_of(const schedule& s);

/// How to order the mixed levels of a Hilbert-Peano schedule.
enum class nesting_order : std::uint8_t {
  peano_first,    ///< all 3-fold levels, then all 2-fold levels (paper default)
  hilbert_first,  ///< all 2-fold levels, then all 3-fold levels
  interleaved,    ///< alternate 3,2,3,2,... while both remain
};

/// Factor P into a schedule, or nullopt if P is not of the form 2^n · 3^m
/// with P >= 2. Pure Hilbert (P=2^n) and pure m-Peano (P=3^m) are the
/// degenerate cases the paper's Table 1 resolutions use.
std::optional<schedule> schedule_for(int side,
                                     nesting_order order = nesting_order::peano_first);

/// Extension beyond the paper: also admit 5-fold ("Cinco") refinement
/// levels, covering P = 2^n · 3^m · 5^p (e.g. Ne = 10, 15, 20, 30). Higher
/// factors always refine first (coarser structure), mirroring the paper's
/// Peano-before-Hilbert default.
std::optional<schedule> extended_schedule_for(int side);

/// True if `side` is partitionable by some SFC schedule (side = 2^n 3^m,
/// side >= 2 — the paper's restriction on problem size).
bool is_sfc_compatible(int side);

/// True for the extended factor set 2^n · 3^m · 5^p.
bool is_sfc_compatible_extended(int side);

/// Generate the curve for a schedule: the returned vector lists all
/// side²  cells in traversal order. The curve enters at cell (0,0) and exits
/// at cell (side-1, 0).
std::vector<cell> generate(const schedule& s);

/// Fully general form: generate from a raw factor list (outermost first).
/// Any factor with a generator table works (2, 3, 5, and most small factors
/// via synthesis — see sfc/generator.hpp), so sides like 7 or 14 become
/// partitionable beyond both the paper and HOMME.
std::vector<cell> generate_factors(const std::vector<int>& factors);

/// Convenience wrappers.
std::vector<cell> hilbert_curve(int levels);      ///< side 2^levels
std::vector<cell> peano_curve(int levels);        ///< side 3^levels
/// Hilbert-Peano curve on a side-P grid (P = 2^n 3^m); throws via
/// SFP_REQUIRE if P is not SFC-compatible.
std::vector<cell> hilbert_peano_curve(int side,
                                      nesting_order order = nesting_order::peano_first);

/// Inverse map: result[y*side + x] = position of (x,y) along the curve.
std::vector<std::int64_t> curve_index(const std::vector<cell>& curve, int side);

/// Point query: the position of one cell along the curve a factor list
/// generates, by descending the generator frames digit-by-digit — O(Σf²)
/// time, O(1) memory, no curve materialized. Agrees with generate():
///   curve_position_factors(f, generate_factors(f)[i]) == i  for every i.
/// This is what lets a distributed partitioner rank compute SFC keys for
/// just its own elements instead of holding the full P×P traversal.
std::int64_t curve_position_factors(const std::vector<int>& factors, cell c);

/// Schedule form of the point query.
std::int64_t curve_position(const schedule& s, cell c);

/// Human-readable name ("hilbert", "m-peano", "hilbert-peano") for a schedule.
std::string schedule_name(const schedule& s);

}  // namespace sfp::sfc
