#include "sfc/generator.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <queue>

#include "util/require.hpp"

namespace sfp::sfc {

namespace {

struct pt {
  int x, y;
  friend bool operator==(const pt&, const pt&) = default;
};

/// DFS for the child chain: a Hamiltonian cell path with corner chaining.
class searcher {
 public:
  explicit searcher(int f) : f_(f), visited_(static_cast<std::size_t>(f * f), false) {}

  bool run(std::vector<pt>& cells, std::vector<pt>& entries) {
    cells_.clear();
    entries_.clear();
    visited_.assign(visited_.size(), false);
    if (!dfs({0, 0}, {0, 0})) return false;
    cells = cells_;
    entries = entries_;
    return true;
  }

 private:
  std::size_t idx(pt c) const {
    return static_cast<std::size_t>(c.y * f_ + c.x);
  }
  bool in_grid(pt c) const {
    return c.x >= 0 && c.x < f_ && c.y >= 0 && c.y < f_;
  }
  static bool corner_of(pt corner, pt cell) {
    return (corner.x == cell.x || corner.x == cell.x + 1) &&
           (corner.y == cell.y || corner.y == cell.y + 1);
  }

  /// Remaining cells must stay connected and include the final cell.
  bool viable(pt current) const {
    const std::size_t n = visited_.size();
    std::size_t unvisited = 0;
    for (const bool v : visited_) unvisited += !v;
    if (unvisited == 0) return true;
    // BFS over unvisited cells from any unvisited neighbour of `current`.
    std::vector<bool> seen(n, false);
    std::queue<pt> frontier;
    const pt steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    for (const pt s : steps) {
      const pt nb{current.x + s.x, current.y + s.y};
      if (in_grid(nb) && !visited_[idx(nb)] && !seen[idx(nb)]) {
        seen[idx(nb)] = true;
        frontier.push(nb);
      }
    }
    std::size_t reached = 0;
    while (!frontier.empty()) {
      const pt c = frontier.front();
      frontier.pop();
      ++reached;
      for (const pt s : steps) {
        const pt nb{c.x + s.x, c.y + s.y};
        if (in_grid(nb) && !visited_[idx(nb)] && !seen[idx(nb)]) {
          seen[idx(nb)] = true;
          frontier.push(nb);
        }
      }
    }
    return reached == unvisited;
  }

  bool dfs(pt cell, pt entry) {
    visited_[idx(cell)] = true;
    cells_.push_back(cell);
    entries_.push_back(entry);

    const bool complete = cells_.size() == visited_.size();
    if (complete) {
      // The last child must exit at (f, 0): adjacent to its entry corner
      // and a corner of the last cell.
      const pt want{f_, 0};
      const bool ok =
          corner_of(want, cell) &&
          std::abs(want.x - entry.x) + std::abs(want.y - entry.y) == 1;
      if (ok) return true;
      visited_[idx(cell)] = false;
      cells_.pop_back();
      entries_.pop_back();
      return false;
    }

    // The designated final cell must not be consumed early.
    if (cell.x == f_ - 1 && cell.y == 0 && cells_.size() != visited_.size()) {
      // allowed only as the final cell
      visited_[idx(cell)] = false;
      cells_.pop_back();
      entries_.pop_back();
      return false;
    }

    if (viable(cell)) {
      // Exit corners: the two cell corners adjacent to the entry corner.
      const pt steps[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
      for (const pt s : steps) {
        const pt exit{entry.x + s.x, entry.y + s.y};
        if (!corner_of(exit, cell)) continue;
        // Next cell: an unvisited edge-neighbour of `cell` having `exit`
        // as one of its corners.
        for (const pt t : steps) {
          const pt next{cell.x + t.x, cell.y + t.y};
          if (!in_grid(next) || visited_[idx(next)]) continue;
          if (!corner_of(exit, next)) continue;
          if (dfs(next, exit)) return true;
        }
      }
    }

    visited_[idx(cell)] = false;
    cells_.pop_back();
    entries_.pop_back();
    return false;
  }

  int f_;
  std::vector<bool> visited_;
  std::vector<pt> cells_;
  std::vector<pt> entries_;
};

std::vector<child_frame> frames_from_path(int f, const std::vector<pt>& cells,
                                          const std::vector<pt>& entries) {
  std::vector<child_frame> out;
  out.reserve(cells.size());
  for (std::size_t k = 0; k < cells.size(); ++k) {
    const pt entry = entries[k];
    const pt exit = (k + 1 < cells.size()) ? entries[k + 1] : pt{f, 0};
    child_frame cf{};
    cf.oa = entry.x;
    cf.ob = entry.y;
    cf.aa = exit.x - entry.x;
    cf.ab = exit.y - entry.y;
    // B' is perpendicular to A' and points from the entry corner into the
    // cell: exactly one sign keeps entry + B' on the cell.
    const pt cell = cells[k];
    for (const int sign : {1, -1}) {
      const int bx = -cf.ab * sign, by = cf.aa * sign;
      const pt probe{entry.x + bx, entry.y + by};
      if ((probe.x == cell.x || probe.x == cell.x + 1) &&
          (probe.y == cell.y || probe.y == cell.y + 1)) {
        cf.ba = bx;
        cf.bb = by;
        break;
      }
    }
    SFP_ASSERT(cf.ba != 0 || cf.bb != 0, "no valid secondary vector");
    out.push_back(cf);
  }
  return out;
}

// Hand-derived tables matching the paper's Figures 2 and 4/5; kept explicit
// (rather than synthesized) so the derivation in the module comment of
// curve.hpp stays auditable. Tests assert the synthesizer reproduces
// equally valid tables.
const std::vector<child_frame> kHilbert = {
    {0, 0, 0, 1, 1, 0},
    {0, 1, 1, 0, 0, 1},
    {1, 1, 1, 0, 0, 1},
    {2, 1, 0, -1, -1, 0},
};
const std::vector<child_frame> kPeano = {
    {0, 0, 0, 1, 1, 0}, {0, 1, 0, 1, 1, 0},   {0, 2, 1, 0, 0, 1},
    {1, 2, 1, 0, 0, 1}, {2, 2, 1, 0, 0, 1},   {3, 2, -1, 0, 0, -1},
    {2, 2, 0, -1, -1, 0}, {2, 1, 0, -1, -1, 0}, {2, 0, 1, 0, 0, 1},
};

}  // namespace

std::vector<child_frame> derive_generator(int factor) {
  SFP_REQUIRE(factor >= 2, "refinement factor must be at least 2");
  SFP_REQUIRE(factor <= 16, "generator search capped at factor 16");
  searcher s(factor);
  std::vector<pt> cells, entries;
  if (!s.run(cells, entries)) return {};
  return frames_from_path(factor, cells, entries);
}

const std::vector<child_frame>& generator_for(int factor) {
  if (factor == 2) return kHilbert;
  if (factor == 3) return kPeano;
  static std::mutex mutex;
  static std::map<int, std::vector<child_frame>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(factor);
  if (inserted) it->second = derive_generator(factor);
  SFP_REQUIRE(!it->second.empty(),
              "no space-filling-curve generator exists for this factor");
  return it->second;
}

bool has_generator(int factor) {
  if (factor < 2 || factor > 16) return false;
  if (factor == 2 || factor == 3) return true;
  try {
    return !generator_for(factor).empty();
  } catch (const contract_error&) {
    return false;
  }
}

}  // namespace sfp::sfc
