#pragma once
// Deep curve validation returning structured diagnostics. The older
// sfc/verify.hpp API (verify_result) is implemented on top of this; new
// code — audit-tier checks, tests, fuzz harnesses — should use these.
//
// Invariant slugs are stable:
//
//   curve.cell-count   curve does not have exactly side² cells
//   curve.cell-range   a cell lies outside the side×side grid
//   curve.revisit      a cell is visited more than once (not a path)
//   curve.unit-step    consecutive cells are not 4-adjacent (diagonal/jump)
//   curve.entry        curve does not enter at (0, 0)
//   curve.exit         curve does not exit at (side-1, 0)
//   schedule.empty     schedule has no refinement steps
//   schedule.side      schedule side overflows or is not >= 2

#include <vector>

#include "sfc/curve.hpp"
#include "util/contract.hpp"

namespace sfp::sfc {

/// Hamiltonian-path + unit-step audit: exactly side² distinct in-range
/// cells, every consecutive pair 4-adjacent. Does not constrain endpoints
/// (use validate_curve for the full entry/exit convention). O(side²).
diagnostic validate_curve_path(const std::vector<cell>& curve, int side);

/// validate_curve_path plus this library's frame convention: the curve
/// enters at (0,0) and exits at (side-1, 0).
diagnostic validate_curve(const std::vector<cell>& curve, int side);

/// Generate `s`'s curve and fully validate it — the audit check for
/// Hilbert / m-Peano / composite (and synthesized-factor) schedules.
diagnostic validate_schedule(const schedule& s);

}  // namespace sfp::sfc
