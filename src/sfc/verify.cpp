#include "sfc/verify.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace sfp::sfc {

namespace {
verify_result fail(std::string msg) { return {false, std::move(msg)}; }
}  // namespace

verify_result verify_coverage_and_adjacency(const std::vector<cell>& curve,
                                            int side) {
  const auto expected =
      static_cast<std::size_t>(side) * static_cast<std::size_t>(side);
  if (curve.size() != expected) {
    std::ostringstream os;
    os << "curve has " << curve.size() << " cells, expected " << expected;
    return fail(os.str());
  }
  std::vector<bool> seen(expected, false);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const cell c = curve[i];
    if (c.x < 0 || c.x >= side || c.y < 0 || c.y >= side) {
      std::ostringstream os;
      os << "cell " << i << " = (" << c.x << ',' << c.y << ") out of range";
      return fail(os.str());
    }
    const auto flat = static_cast<std::size_t>(c.y) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(c.x);
    if (seen[flat]) {
      std::ostringstream os;
      os << "cell (" << c.x << ',' << c.y << ") visited twice (second at "
         << i << ")";
      return fail(os.str());
    }
    seen[flat] = true;
    if (i > 0) {
      const cell p = curve[i - 1];
      const int manhattan = std::abs(c.x - p.x) + std::abs(c.y - p.y);
      if (manhattan != 1) {
        std::ostringstream os;
        os << "step " << i - 1 << "->" << i << " from (" << p.x << ',' << p.y
           << ") to (" << c.x << ',' << c.y << ") is not 4-adjacent";
        return fail(os.str());
      }
    }
  }
  return {};
}

verify_result verify_curve(const std::vector<cell>& curve, int side) {
  auto r = verify_coverage_and_adjacency(curve, side);
  if (!r.ok) return r;
  if (!(curve.front() == cell{0, 0})) {
    std::ostringstream os;
    os << "curve must enter at (0,0), entered at (" << curve.front().x << ','
       << curve.front().y << ")";
    return fail(os.str());
  }
  const cell want_exit{side - 1, 0};
  if (!(curve.back() == want_exit)) {
    std::ostringstream os;
    os << "curve must exit at (" << want_exit.x << ",0), exited at ("
       << curve.back().x << ',' << curve.back().y << ")";
    return fail(os.str());
  }
  return {};
}

}  // namespace sfp::sfc
