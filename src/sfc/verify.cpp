#include "sfc/verify.hpp"

#include "sfc/validate.hpp"

namespace sfp::sfc {

// verify.hpp predates the structured-diagnostic validators in
// sfc/validate.hpp; both entry points now share one implementation and the
// legacy results carry the diagnostic's detail text.

verify_result verify_coverage_and_adjacency(const std::vector<cell>& curve,
                                            int side) {
  const diagnostic d = validate_curve_path(curve, side);
  if (d.ok) return {};
  return {false, d.detail};
}

verify_result verify_curve(const std::vector<cell>& curve, int side) {
  const diagnostic d = validate_curve(curve, side);
  if (d.ok) return {};
  return {false, d.detail};
}

}  // namespace sfp::sfc
