#include "sfc/transform.hpp"

#include "util/require.hpp"

namespace sfp::sfc {

cell apply(dihedral t, cell c, int side) {
  SFP_REQUIRE(side >= 1, "side must be positive");
  SFP_REQUIRE(c.x >= 0 && c.x < side && c.y >= 0 && c.y < side,
              "cell out of range");
  const std::int32_t m = side - 1;
  switch (t) {
    case dihedral::identity: return c;
    case dihedral::rot90: return {static_cast<std::int32_t>(m - c.y), c.x};
    case dihedral::rot180:
      return {static_cast<std::int32_t>(m - c.x),
              static_cast<std::int32_t>(m - c.y)};
    case dihedral::rot270: return {c.y, static_cast<std::int32_t>(m - c.x)};
    case dihedral::flip_x: return {static_cast<std::int32_t>(m - c.x), c.y};
    case dihedral::flip_y: return {c.x, static_cast<std::int32_t>(m - c.y)};
    case dihedral::transpose: return {c.y, c.x};
    case dihedral::anti_transpose:
      return {static_cast<std::int32_t>(m - c.y),
              static_cast<std::int32_t>(m - c.x)};
  }
  SFP_REQUIRE(false, "invalid dihedral");
  return c;
}

std::vector<cell> apply(dihedral t, const std::vector<cell>& curve, int side) {
  std::vector<cell> out;
  out.reserve(curve.size());
  for (const cell c : curve) out.push_back(apply(t, c, side));
  return out;
}

dihedral compose(dihedral second, dihedral first) {
  // Small group: compute by acting on a 3×3 grid and matching the result.
  // (Closed-form tables are easy to get wrong; this is exact and O(1).)
  constexpr int kProbe = 3;
  const cell p0{1, 0}, p1{0, 1};  // images of two independent probes pin down
                                  // the symmetry uniquely
  const cell i0 = apply(second, apply(first, p0, kProbe), kProbe);
  const cell i1 = apply(second, apply(first, p1, kProbe), kProbe);
  for (const dihedral t : all_dihedrals) {
    if (apply(t, p0, kProbe) == i0 && apply(t, p1, kProbe) == i1) return t;
  }
  SFP_REQUIRE(false, "dihedral composition not found (group closure violated)");
  return dihedral::identity;
}

dihedral inverse(dihedral t) {
  for (const dihedral u : all_dihedrals) {
    if (compose(u, t) == dihedral::identity) return u;
  }
  SFP_REQUIRE(false, "dihedral inverse not found");
  return dihedral::identity;
}

std::string_view dihedral_name(dihedral t) {
  switch (t) {
    case dihedral::identity: return "identity";
    case dihedral::rot90: return "rot90";
    case dihedral::rot180: return "rot180";
    case dihedral::rot270: return "rot270";
    case dihedral::flip_x: return "flip_x";
    case dihedral::flip_y: return "flip_y";
    case dihedral::transpose: return "transpose";
    case dihedral::anti_transpose: return "anti_transpose";
  }
  return "?";
}

}  // namespace sfp::sfc
