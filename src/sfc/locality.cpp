#include "sfc/locality.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace sfp::sfc {

namespace {

double dilation_at_lag(const std::vector<cell>& curve, int lag) {
  if (static_cast<std::size_t>(lag) >= curve.size()) return 0.0;
  double acc = 0;
  const std::size_t n = curve.size() - static_cast<std::size_t>(lag);
  for (std::size_t i = 0; i < n; ++i) {
    const cell a = curve[i], b = curve[i + static_cast<std::size_t>(lag)];
    const double dx = a.x - b.x, dy = a.y - b.y;
    acc += dx * dx + dy * dy;
  }
  return acc / (static_cast<double>(n) * lag);
}

double mean_segment_perimeter(const std::vector<cell>& curve, int side,
                              int segment) {
  if (curve.size() < static_cast<std::size_t>(segment)) return 0.0;
  // Label each cell with its segment index, then count cut 4-adjacencies.
  std::vector<int> seg_of(curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    seg_of[static_cast<std::size_t>(curve[i].y) *
               static_cast<std::size_t>(side) +
           static_cast<std::size_t>(curve[i].x)] =
        static_cast<int>(i / static_cast<std::size_t>(segment));
  }
  std::int64_t cut = 0;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      const int s = seg_of[static_cast<std::size_t>(y) *
                               static_cast<std::size_t>(side) +
                           static_cast<std::size_t>(x)];
      if (x + 1 < side &&
          s != seg_of[static_cast<std::size_t>(y) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(x) + 1])
        ++cut;
      if (y + 1 < side &&
          s != seg_of[(static_cast<std::size_t>(y) + 1) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(x)])
        ++cut;
    }
  }
  const double num_segments =
      static_cast<double>(curve.size()) / segment;
  // Each cut adjacency separates two segments; attribute it to both.
  return 2.0 * static_cast<double>(cut) / num_segments;
}

}  // namespace

double locality_report::ideal_perimeter(int cells) {
  // A sqrt(n)×sqrt(n) square segment interior to the grid touches
  // 4·sqrt(n) foreign cells.
  return 4.0 * std::sqrt(static_cast<double>(cells));
}

locality_report analyze_locality(const std::vector<cell>& curve, int side,
                                 int stretch_window) {
  SFP_REQUIRE(side >= 2, "need at least a 2x2 grid");
  SFP_REQUIRE(curve.size() == static_cast<std::size_t>(side) *
                                  static_cast<std::size_t>(side),
              "curve length must be side^2");
  SFP_REQUIRE(stretch_window >= 1, "stretch window must be positive");

  locality_report r;
  r.side = side;
  r.dilation_lag1 = dilation_at_lag(curve, 1);
  r.dilation_lag16 = dilation_at_lag(curve, 16);
  r.dilation_lag64 = dilation_at_lag(curve, 64);

  double stretch = 0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const std::size_t jmax =
        std::min(curve.size(), i + static_cast<std::size_t>(stretch_window) + 1);
    for (std::size_t j = i + 1; j < jmax; ++j) {
      const double dx = curve[i].x - curve[j].x;
      const double dy = curve[i].y - curve[j].y;
      stretch = std::max(stretch,
                         (dx * dx + dy * dy) / static_cast<double>(j - i));
    }
  }
  r.max_stretch = stretch;

  r.mean_segment_perimeter_4 = mean_segment_perimeter(curve, side, 4);
  r.mean_segment_perimeter_16 = mean_segment_perimeter(curve, side, 16);
  return r;
}

std::vector<cell> row_major_order(int side) {
  SFP_REQUIRE(side >= 1, "side must be positive");
  std::vector<cell> out;
  out.reserve(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (int y = 0; y < side; ++y)
    for (int x = 0; x < side; ++x) out.push_back({x, y});
  return out;
}

}  // namespace sfp::sfc
