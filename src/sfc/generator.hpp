#pragma once
// Generator synthesis: derive a valid space-filling-curve generator (the
// per-child frame table) for an arbitrary refinement factor.
//
// The paper hand-constructs two generators — Hilbert (factor 2) and
// meandering Peano (factor 3) — and nests them to cover P = 2^n·3^m. The
// construction rules they satisfy are mechanical, so this module *searches*
// for a table satisfying them at any factor f:
//
//   * the children tile the f×f block and form a Hamiltonian path whose
//     consecutive cells share an edge;
//   * child k's exit corner equals child k+1's entry corner, and that
//     corner is an endpoint of the shared edge (the corner-chaining rule
//     that makes the recursion produce edge-connected curves at any depth);
//   * the first child enters at the block's origin corner and the last
//     exits at origin + A (the convention all generators in this library
//     share, so synthesized generators nest freely with Hilbert/m-Peano).
//
// Factor 5 yields the "Cinco" curve that NCAR's HOMME later added for
// Ne = 2^n·3^m·5^p meshes; the same machinery covers factor 7 and beyond,
// extending SFC partitionability to any Ne whose prime factors all admit a
// generator.

#include <vector>

namespace sfp::sfc {

/// One child frame in units of the parent's sub-vectors a = A/f, b = B/f:
/// origin = O + oa·a + ob·b,  A' = aa·a + ab·b,  B' = ba·a + bb·b.
struct child_frame {
  int oa, ob;
  int aa, ab;
  int ba, bb;
  friend bool operator==(const child_frame&, const child_frame&) = default;
};

/// Search for a generator table with f² children satisfying the rules
/// above. Deterministic (fixed search order). Returns an empty vector if no
/// generator exists for this factor.
std::vector<child_frame> derive_generator(int factor);

/// The cached generator for `factor`: hand-derived tables for 2 (Hilbert)
/// and 3 (m-Peano), synthesized and memoized for anything else. Throws
/// sfp::contract_error if none exists.
const std::vector<child_frame>& generator_for(int factor);

/// True if `factor` admits a generator (memoized).
bool has_generator(int factor);

}  // namespace sfp::sfc
