#include "sfc/render.hpp"

#include <array>
#include <cstdio>
#include <sstream>
#include <vector>

#include "util/require.hpp"

namespace sfp::sfc {

std::string render_curve(const std::vector<cell>& curve, int side) {
  SFP_REQUIRE(side >= 1, "side must be positive");
  SFP_REQUIRE(curve.size() == static_cast<std::size_t>(side) *
                                  static_cast<std::size_t>(side),
              "curve length must be side^2");
  // Per cell, record which of the four directions the curve connects to.
  // Bits: 1=+x (east), 2=-x (west), 4=+y (north), 8=-y (south).
  std::vector<int> links(curve.size(), 0);
  const auto flat = [side](cell c) {
    return static_cast<std::size_t>(c.y) * static_cast<std::size_t>(side) +
           static_cast<std::size_t>(c.x);
  };
  for (std::size_t i = 0; i + 1 < curve.size(); ++i) {
    const cell a = curve[i], b = curve[i + 1];
    if (b.x == a.x + 1) { links[flat(a)] |= 1; links[flat(b)] |= 2; }
    else if (b.x == a.x - 1) { links[flat(a)] |= 2; links[flat(b)] |= 1; }
    else if (b.y == a.y + 1) { links[flat(a)] |= 4; links[flat(b)] |= 8; }
    else { links[flat(a)] |= 8; links[flat(b)] |= 4; }
  }

  // Box-drawing glyph per link mask (E=1, W=2, N=4, S=8).
  static const std::array<const char*, 16> glyph = {
      "·",  // isolated
      "╶", "╴", "─",        // E, W, EW
      "╵", "└", "┘", "┴",   // N, NE, NW, NEW
      "╷", "┌", "┐", "┬",   // S, SE, SW, SEW
      "│", "├", "┤", "┼",   // NS, NSE, NSW, NSEW
  };

  std::ostringstream os;
  for (int y = side - 1; y >= 0; --y) {
    for (int x = 0; x < side; ++x) {
      const int mask = links[static_cast<std::size_t>(y) *
                                 static_cast<std::size_t>(side) +
                             static_cast<std::size_t>(x)];
      os << glyph[static_cast<std::size_t>(mask)];
      // Horizontal filler between columns keeps the aspect ratio square-ish.
      if (x + 1 < side) os << ((mask & 1) ? "─" : " ");
    }
    os << '\n';
  }
  return os.str();
}

std::string render_order(const std::vector<cell>& curve, int side) {
  SFP_REQUIRE(side >= 1, "side must be positive");
  const auto index = curve_index(curve, side);
  int width = 1;
  for (std::size_t n = curve.size(); n >= 10; n /= 10) ++width;

  std::ostringstream os;
  char buf[32];
  for (int y = side - 1; y >= 0; --y) {
    for (int x = 0; x < side; ++x) {
      std::snprintf(buf, sizeof buf, "%*lld ", width,
                    static_cast<long long>(
                        index[static_cast<std::size_t>(y) *
                                  static_cast<std::size_t>(side) +
                              static_cast<std::size_t>(x)]));
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sfp::sfc
