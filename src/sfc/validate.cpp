#include "sfc/validate.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

namespace sfp::sfc {

namespace {

template <typename... Parts>
std::string format(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace

diagnostic validate_curve_path(const std::vector<cell>& curve, int side) {
  if (side < 1)
    return diagnostic::fail("curve.cell-count",
                            format("grid side ", side, " is not positive"));
  const auto expected =
      static_cast<std::size_t>(side) * static_cast<std::size_t>(side);
  if (curve.size() != expected)
    return diagnostic::fail(
        "curve.cell-count",
        format("curve has ", curve.size(), " cells, expected ", expected));
  std::vector<bool> seen(expected, false);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const cell c = curve[i];
    if (c.x < 0 || c.x >= side || c.y < 0 || c.y >= side)
      return diagnostic::fail(
          "curve.cell-range",
          format("cell ", i, " = (", c.x, ',', c.y, ") out of range"),
          static_cast<std::int64_t>(i));
    const auto flat = static_cast<std::size_t>(c.y) *
                          static_cast<std::size_t>(side) +
                      static_cast<std::size_t>(c.x);
    if (seen[flat])
      return diagnostic::fail(
          "curve.revisit",
          format("cell (", c.x, ',', c.y, ") visited twice (second at ", i,
                 ")"),
          static_cast<std::int64_t>(i));
    seen[flat] = true;
    if (i > 0) {
      const cell p = curve[i - 1];
      const int manhattan = std::abs(c.x - p.x) + std::abs(c.y - p.y);
      if (manhattan != 1)
        return diagnostic::fail(
            "curve.unit-step",
            format("step ", i - 1, "->", i, " from (", p.x, ',', p.y,
                   ") to (", c.x, ',', c.y, ") is not 4-adjacent"),
            static_cast<std::int64_t>(i));
    }
  }
  return diagnostic::pass();
}

diagnostic validate_curve(const std::vector<cell>& curve, int side) {
  diagnostic d = validate_curve_path(curve, side);
  if (!d.ok) return d;
  if (!(curve.front() == cell{0, 0}))
    return diagnostic::fail(
        "curve.entry", format("curve must enter at (0,0), entered at (",
                              curve.front().x, ',', curve.front().y, ")"),
        0);
  const cell want_exit{side - 1, 0};
  if (!(curve.back() == want_exit))
    return diagnostic::fail(
        "curve.exit",
        format("curve must exit at (", want_exit.x, ",0), exited at (",
               curve.back().x, ',', curve.back().y, ")"),
        static_cast<std::int64_t>(curve.size()) - 1);
  return diagnostic::pass();
}

diagnostic validate_schedule(const schedule& s) {
  if (s.empty())
    return diagnostic::fail("schedule.empty",
                            "schedule has no refinement steps");
  // Guard the side product before generating side² cells.
  std::int64_t side = 1;
  for (const refinement r : s) {
    side *= factor_of(r);
    if (side > (std::int64_t{1} << 15))
      return diagnostic::fail(
          "schedule.side",
          format("schedule side ", side, " exceeds the 2^15 audit bound"));
  }
  if (side < 2)
    return diagnostic::fail("schedule.side",
                            format("schedule side ", side, " is not >= 2"));
  return validate_curve(generate(s), static_cast<int>(side));
}

}  // namespace sfp::sfc
