#pragma once
// Schedule-string parser: the human- and machine-facing syntax for
// refinement schedules, used by the CLI (--schedule=), tests, and the fuzz
// harness. This is an untrusted-input surface, so the parser is strict and
// every rejection carries a byte offset.
//
// Grammar (case-insensitive, ASCII):
//
//   spec     := token (separator token)*
//   token    := name repeat?
//   name     := "h" | "hilbert" | "2"
//             | "p" | "peano"   | "3"
//             | "c" | "cinco"   | "5"
//   repeat   := ("*" | "^") integer              (1 <= n <= 20)
//   separator:= "," | whitespace
//
// Examples: "p,p,h"  "peano*2,hilbert"  "3 3 2"  "c^1,p"
//
// Tokens are outermost-first, matching sfc::schedule. The parsed schedule's
// grid side (product of factors) must fit comfortably in an int; the parser
// enforces side <= 2^20 so a hostile spec cannot drive generate() into an
// overflow or an absurd allocation.

#include <string>
#include <string_view>

#include "sfc/curve.hpp"

namespace sfp::sfc {

/// Parse `spec` into a schedule. Throws sfp::contract_error with a byte
/// offset on malformed input (unknown token, bad repeat count, empty spec,
/// or a grid side above the 2^20 safety bound).
schedule parse_schedule(std::string_view spec);

/// Non-throwing form: returns false and fills `error` (when non-null)
/// instead of throwing.
bool try_parse_schedule(std::string_view spec, schedule& out,
                        std::string* error);

/// Inverse of parse_schedule: render a schedule as a canonical spec string
/// ("p,p,h"); parse_schedule(format_schedule(s)) == s.
std::string format_schedule(const schedule& s);

}  // namespace sfp::sfc
