#include "sfc/parse.hpp"

#include <cctype>
#include <sstream>

#include "util/contract.hpp"

namespace sfp::sfc {

namespace {

constexpr std::int64_t kMaxSide = std::int64_t{1} << 20;
constexpr int kMaxRepeat = 20;

bool is_sep(char c) {
  return c == ',' || c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

char lower(char c) {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

struct parse_state {
  std::string_view spec;
  std::size_t pos = 0;
  std::string error;

  bool fail(std::size_t at, const std::string& what) {
    std::ostringstream os;
    os << "schedule parse error at byte " << at << ": " << what;
    error = os.str();
    return false;
  }

  bool run(schedule& out) {
    out.clear();
    std::int64_t side = 1;
    while (true) {
      while (pos < spec.size() && is_sep(spec[pos])) ++pos;
      if (pos >= spec.size()) break;

      const std::size_t tok_start = pos;
      refinement r = refinement::hilbert2;
      if (!parse_name(r)) return false;

      int repeat = 1;
      if (pos < spec.size() && (spec[pos] == '*' || spec[pos] == '^')) {
        const std::size_t count_at = ++pos;
        if (pos >= spec.size() ||
            !std::isdigit(static_cast<unsigned char>(spec[pos])))
          return fail(count_at, "expected a repeat count");
        std::int64_t n = 0;
        while (pos < spec.size() &&
               std::isdigit(static_cast<unsigned char>(spec[pos]))) {
          n = n * 10 + (spec[pos] - '0');
          if (n > kMaxRepeat)
            return fail(count_at, "repeat count above the limit of 20");
          ++pos;
        }
        if (n < 1) return fail(count_at, "repeat count must be >= 1");
        repeat = static_cast<int>(n);
      }
      if (pos < spec.size() && !is_sep(spec[pos]))
        return fail(pos, "unexpected character after token");

      for (int i = 0; i < repeat; ++i) {
        side *= factor_of(r);
        if (side > kMaxSide)
          return fail(tok_start,
                      "schedule side exceeds the 2^20 safety bound");
        out.push_back(r);
      }
    }
    if (out.empty()) return fail(0, "empty schedule spec");
    return true;
  }

  bool parse_name(refinement& r) {
    const std::size_t start = pos;
    std::string word;
    while (pos < spec.size() &&
           std::isalpha(static_cast<unsigned char>(spec[pos])))
      word.push_back(lower(spec[pos++]));
    if (word.empty()) {
      // Single-digit factor form: 2, 3, or 5.
      if (pos < spec.size() &&
          std::isdigit(static_cast<unsigned char>(spec[pos]))) {
        const char d = spec[pos++];
        // Reject multi-digit factors ("23") rather than mis-reading them.
        if (pos < spec.size() &&
            std::isdigit(static_cast<unsigned char>(spec[pos])))
          return fail(start, "unknown refinement factor");
        switch (d) {
          case '2': r = refinement::hilbert2; return true;
          case '3': r = refinement::peano3; return true;
          case '5': r = refinement::cinco5; return true;
          default: return fail(start, "unknown refinement factor");
        }
      }
      return fail(start, "expected a refinement token");
    }
    if (word == "h" || word == "hilbert") {
      r = refinement::hilbert2;
      return true;
    }
    if (word == "p" || word == "peano") {
      r = refinement::peano3;
      return true;
    }
    if (word == "c" || word == "cinco") {
      r = refinement::cinco5;
      return true;
    }
    return fail(start, "unknown refinement name: " + word);
  }
};

}  // namespace

bool try_parse_schedule(std::string_view spec, schedule& out,
                        std::string* error) {
  parse_state st;
  st.spec = spec;
  if (st.run(out)) return true;
  if (error) *error = st.error;
  out.clear();
  return false;
}

schedule parse_schedule(std::string_view spec) {
  schedule out;
  std::string error;
  SFP_REQUIRE(try_parse_schedule(spec, out, &error), error);
  return out;
}

std::string format_schedule(const schedule& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out.push_back(',');
    switch (s[i]) {
      case refinement::hilbert2: out.push_back('h'); break;
      case refinement::peano3: out.push_back('p'); break;
      case refinement::cinco5: out.push_back('c'); break;
    }
  }
  return out;
}

}  // namespace sfp::sfc
