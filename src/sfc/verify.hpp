#pragma once
// Curve invariant checking, exposed as part of the public API so users can
// validate custom schedules. Used heavily by the property-based tests.

#include <string>

#include "sfc/curve.hpp"

namespace sfp::sfc {

/// Result of verifying a curve; `ok` is false with a description otherwise.
struct verify_result {
  bool ok = true;
  std::string error;
};

/// Check all SFC invariants on a side×side grid:
///  * the curve has exactly side² cells, each visited exactly once;
///  * consecutive cells are 4-adjacent (unit Manhattan step);
///  * the curve enters at cell (0,0);
///  * the curve exits at cell (side-1, 0) — the far end of the major vector.
verify_result verify_curve(const std::vector<cell>& curve, int side);

/// As verify_curve but without the entry/exit convention (for transformed
/// curves whose endpoints have been deliberately moved).
verify_result verify_coverage_and_adjacency(const std::vector<cell>& curve,
                                            int side);

}  // namespace sfp::sfc
