#pragma once
// Locality analysis of space-filling curves: the quantitative lens for the
// paper's open question of why different curve families (Hilbert vs nested
// Hilbert-Peano) yield different partition quality. All metrics are defined
// on the curve alone, independent of the cubed-sphere.

#include <cstdint>

#include "sfc/curve.hpp"

namespace sfp::sfc {

struct locality_report {
  int side = 0;

  /// Mean squared Euclidean distance between cells `lag` apart along the
  /// curve, divided by the ideal compact value `lag` (a curve that filled a
  /// disc perfectly would score ~4/π·… ≈ O(1)). Lower is better.
  double dilation_lag1 = 0;   ///< = 1 exactly (unit steps) — sanity anchor
  double dilation_lag16 = 0;
  double dilation_lag64 = 0;

  /// Worst-case stretch: max over pairs (i,j), |i-j| <= window, of
  /// |curve[i]-curve[j]|² / |i-j|.
  double max_stretch = 0;

  /// Mean boundary length (cut edges to cells outside the segment) of
  /// contiguous curve segments of the given size — exactly the per-part
  /// communication surface an SFC partition of that granularity pays.
  double mean_segment_perimeter_4 = 0;
  double mean_segment_perimeter_16 = 0;

  /// Perimeter of an ideal square segment of the same size (lower bound).
  static double ideal_perimeter(int cells);
};

/// Analyze a curve on a side×side grid (any curve traversal, e.g. from
/// generate(); also works for row-major orders for comparison).
locality_report analyze_locality(const std::vector<cell>& curve, int side,
                                 int stretch_window = 64);

/// Row-major traversal of a side×side grid — the "no locality" baseline.
std::vector<cell> row_major_order(int side);

}  // namespace sfp::sfc
