#pragma once
// Runtime drivers for the distributed SFC partitioner: the adapter that
// carries core::peer_comm over a reliable channel, and the fabric runners
// that execute core::parallel_partition_rank once per virtual rank — over
// the in-process world or the loopback-TCP socket backend — and assemble
// the global plan.
//
// This closes the dependency inversion described in core/dist_scan.hpp:
// core owns the algorithm and the comm interface, runtime owns the wires.
// The payloads are int64 words carried as doubles by bit image (the same
// convention the reliable envelope header uses), so the arithmetic stays
// integer-exact end to end and the assembled plan is bit-identical to the
// serial sfc_partition — whatever the backend, and under message chaos,
// because the reliable layer heals drops/corruption/reorder underneath.

#include <span>
#include <vector>

#include "core/parallel_partition.hpp"
#include "partition/partition.hpp"
#include "runtime/reliable.hpp"
#include "runtime/socket_transport.hpp"
#include "runtime/world.hpp"

namespace sfp::runtime {

/// Logical tag for all partitioner traffic inside the reliable envelope
/// (the wire itself multiplexes on reliable_wire_tag).
inline constexpr int partition_tag = 17;

/// core::peer_comm over a reliable_channel: ordered, exactly-once int64
/// record delivery between virtual ranks. One instance per rank thread,
/// wrapping that rank's own channel. Delivery failures surface as
/// core::peer_lost — attempts > 0 (retransmit exhaustion against a silent
/// peer) maps to a definite loss, a bare recv timeout to a tentative one —
/// so the survivor-regroup layer can sit directly on top.
class reliable_peer_comm final : public core::peer_comm {
 public:
  reliable_peer_comm(reliable_channel& channel, int rank, int size)
      : channel_(&channel), rank_(rank), size_(size) {}

  int rank() const override { return rank_; }
  int size() const override { return size_; }
  void send(int dst, std::span<const std::int64_t> words) override;
  std::vector<std::int64_t> recv(int src) override;
  void forget_peer(int peer) override;

 private:
  reliable_channel* channel_;
  int rank_;
  int size_;
};

/// Everything a distributed partition run can be configured with.
struct parallel_partition_run_options {
  transport_backend backend = transport_backend::inproc;
  /// Message-level chaos, identical semantics on both backends.
  fault_plan faults;
  /// Byte-stream chaos (socket backend only).
  stream_fault_plan stream_faults;
  /// Reliable-layer tuning (retransmit budget, timeouts, epoch).
  reliable_options reliable;
  /// Per blocking-call deadline for the in-process world; zero = forever.
  std::chrono::milliseconds timeout{2000};
  /// Splitter-search tuning, passed through to the core algorithm.
  core::parallel_partition_options partition;
  /// Survivor-regroup tuning: quorum and the silence patience budget.
  core::regroup_options regroup;
  /// Group reconfigurations a run absorbs before the escalation ladder
  /// gives up (decide_regroup); each one restarts the splitter search from
  /// scratch over the shrunken group.
  int max_recoveries = 3;
};

/// What a distributed partition run produced, plus what it cost.
struct parallel_partition_report {
  /// The assembled global plan — bit-identical to the serial slicer's.
  /// Meaningless when `aborted` is true.
  partition::partition plan;
  /// First curve position of every part p >= 1 (size nparts−1).
  std::vector<std::int64_t> boundaries;
  /// Per-rank splitter-search accounting, indexed by rank. Under recovery
  /// a rank's stats accumulate across its re-execution attempts.
  std::vector<core::parallel_partition_stats> rank_stats;
  /// Fabric robustness totals (zero for the solo num_ranks == 1 path).
  rank_counters counters;
  /// Reliable-layer totals, summed over ranks.
  reliable_stats reliable;
  /// Socket-layer totals (socket backend only).
  socket_stats socket;
  /// True when no surviving group could finish: the survivors fell below
  /// regroup quorum, or recovery exceeded max_recoveries. The plan and
  /// boundaries are not populated in that case.
  bool aborted = false;
  /// Group reconfigurations absorbed by the group that produced the plan
  /// (0 = the fault-free fast path).
  int recoveries = 0;
  /// Group epoch of the plan actually assembled (0 = original full group).
  std::uint64_t group_epoch = 0;
  /// World ranks that are not part of the group that produced the plan —
  /// killed, evicted, or quorum-aborted. Empty on the fault-free path.
  std::vector<int> lost_ranks;
  /// Survivor-regroup accounting, summed over ranks.
  core::regroup_stats regroup;
};

/// Run the distributed partitioner on `num_ranks` virtual ranks over the
/// configured backend and assemble the global plan. `weights` is the global
/// per-element weight vector (empty = unit weights); each rank only ever
/// touches its own block's slice, mirroring the O(K/P) memory claim.
/// num_ranks == 1 short-circuits to core::solo_comm with no fabric at all.
parallel_partition_report run_parallel_partition(
    const mesh::cubed_sphere& mesh, const core::cube_curve_spec& spec,
    int nparts, std::span<const graph::weight> weights, int num_ranks,
    const parallel_partition_run_options& opts = {});

}  // namespace sfp::runtime
