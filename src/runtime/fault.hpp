#pragma once
// Deterministic fault injection for the virtual-rank runtime.
//
// A fault_plan is a declarative chaos schedule: kill rank r at its n-th
// communication op, and/or drop/delay/duplicate messages on selected
// (src, dst, tag) triples with given probabilities. All randomness comes
// from a per-rank splitmix-derived rng, and every decision is a function of
// (seed, rank, that rank's deterministic op sequence) only — never of thread
// scheduling — so a chaos test reproduces bit-for-bit across runs.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sfp::runtime {

/// Thrown inside a rank when a planned kill fires (simulated process death).
class rank_killed : public std::runtime_error {
 public:
  rank_killed(int rank, std::int64_t op);
  int rank() const { return rank_; }
  std::int64_t op() const { return op_; }

 private:
  int rank_;
  std::int64_t op_;
};

/// Declarative, seeded fault schedule threaded through world::options.
struct fault_plan {
  std::uint64_t seed = 0;  ///< base seed for all probabilistic decisions

  /// Simulated process death: rank `rank` throws rank_killed when its
  /// per-rank communication-op counter (send/recv/barrier/allreduce calls,
  /// counted from 1) reaches `at_op`.
  struct kill_spec {
    int rank = -1;
    std::int64_t at_op = 0;
  };
  std::vector<kill_spec> kills;

  /// Message-level chaos on sends matching (src, dst, tag); -1 = wildcard.
  /// Probabilities are evaluated independently per matching send, on the
  /// sender's deterministic rng stream. A dropped message is never
  /// delivered; a delayed one is delivered after `delay`; a duplicated one
  /// is delivered twice back-to-back (in-order semantics are preserved).
  ///
  /// Payload faults model a lossy wire rather than a lossy queue: a
  /// corrupted message is delivered with one random bit flipped, a
  /// truncated one with a random number of trailing doubles removed, and a
  /// reordered one swaps delivery order with the *next* matching send on
  /// the same (src, dst, tag) stream. Raw world::recv users see the mangled
  /// payloads verbatim; the reliable transport (runtime/reliable.hpp) is
  /// what detects and heals them.
  struct message_fault {
    int src = -1, dst = -1, tag = -1;
    double drop_probability = 0;
    double delay_probability = 0;
    double duplicate_probability = 0;
    double corrupt_probability = 0;   ///< flip one random payload bit
    double truncate_probability = 0;  ///< drop a random trailing slice
    double reorder_probability = 0;   ///< swap with the next matching send
    std::chrono::microseconds delay{200};
    /// Fire window over this entry's matching sends, counted from 0 in the
    /// sender's own order: the entry is live for match indices
    /// [fire_from, fire_from + fire_count); fire_count -1 = unlimited.
    /// Discrete chaos schedules (seam/chaos.hpp) use probability 1 with
    /// fire_count 1 to pin one fault to one message, which is what makes a
    /// failing schedule delta-debuggable. The rng stream advances on every
    /// match, live or not, so narrowing a window never shifts the
    /// randomness of other entries.
    std::int64_t fire_from = 0;
    std::int64_t fire_count = -1;
    /// Only sends with at least this many payload doubles match. Chaos
    /// schedules use this to pin faults to reliable *data* frames (header
    /// + payload) and skip the header-only ack/fence frames, whose send
    /// order is timing-dependent and would make match indices unstable.
    std::size_t min_payload = 0;
  };
  std::vector<message_fault> message_faults;

  bool empty() const { return kills.empty() && message_faults.empty(); }
};

/// Per-rank fault-decision engine. One instance per rank per world::run; all
/// state advances only with that rank's own op sequence.
class fault_injector {
 public:
  fault_injector(const fault_plan& plan, int rank);

  /// Count one communication op; throws rank_killed when a kill is due.
  void on_op();

  /// What to do with one outgoing message. All randomness (which bit to
  /// flip, where to cut) is drawn here, on the sender's deterministic
  /// stream, so the caller only has to apply the decision.
  struct send_action {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool truncate = false;
    bool reorder = false;
    std::size_t corrupt_element = 0;  ///< payload index of the flipped bit
    int corrupt_bit = 0;              ///< bit position within that double
    std::size_t truncate_to = 0;      ///< new payload length (< size)
    std::chrono::microseconds delay{0};  ///< zero = deliver immediately
  };
  send_action on_send(int dst, int tag, std::size_t payload_size);

  std::int64_t ops() const { return ops_; }

 private:
  const fault_plan* plan_;
  int rank_;
  std::int64_t ops_ = 0;
  rng rng_;
  /// Per-entry count of sends that matched (src, dst, tag), for the
  /// fire_from/fire_count window.
  std::vector<std::int64_t> matches_;
};

}  // namespace sfp::runtime
