#pragma once
// Loopback-TCP transport backend: the same virtual-rank model as
// runtime/world.hpp, but every rank talks to its peers over real sockets —
// framed byte streams with partial reads and writes, connection loss, and
// reconnection — so the reliable layer's guarantees are exercised against
// the failure modes a multi-node deployment actually has.
//
// Connection model: each rank owns one listening socket (127.0.0.1, kernel-
// assigned port, ports exchanged before the rank threads start) and dials
// peers lazily on first send. Each established link carries framed messages
// one way (dialer -> acceptor); a rank pair that talks both ways holds two
// independent links. Frames are CRC32C-protected; a frame that fails the
// check, or a stream that dies mid-frame, poisons the connection — the
// receiver closes it, the sender notices on its next write, and the frame
// in flight is simply lost (the reliable layer retransmits it).
//
// Reconnect + epoch handshake: every dial starts with a HELLO carrying the
// link's connection epoch (a per-(src, dst) counter on the sender) and
// blocks for the acceptor's HELLO_ACK. The acceptor remembers the highest
// epoch seen per source and drops data frames arriving on a superseded
// connection, so a straggling reader on a half-dead link can never inject
// stale bytes into the stream after its replacement is live. Exactly-once
// delivery across a reconnect then follows from the reliable layer's
// seq/ack dedup: nothing already acked is ever re-delivered upward.
//
// Health checking: a per-rank heartbeat thread keeps idle established links
// warm; a receiver that sees no traffic (data or heartbeat) for
// heartbeat_timeout declares the link dead and closes it.
//
// Fault injection: message-level chaos reuses the shared
// injection_pipeline verbatim (same plan, same rng streams, same counters
// as the in-process fabric), and a byte-stream injector underneath it
// mangles the framed writes themselves — truncated frames, split writes,
// resets, stalls — which is the layer the in-process fabric cannot model.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/transport.hpp"

namespace sfp::runtime {

/// One discrete byte-stream fault, pinned to the `nth` data frame (0-based,
/// in the sender's own write order, retransmits included) written on the
/// (src, dst) link. Handshake and heartbeat frames are never counted, and
/// frames with fewer than socket_fabric_options::stream_fault_min_payload
/// payload doubles are skipped, so chaos schedules can pin faults to
/// reliable *data* frames exactly like message_fault::min_payload does.
struct stream_fault {
  enum class kind : int {
    truncate = 0,  ///< write a partial frame, then kill the connection
    split,         ///< write the frame in small chunks with pauses between
    reset,         ///< kill the connection before the frame goes out
    stall,         ///< sit on the frame for `stall` before writing it
  };
  kind what = kind::truncate;
  int src = 0;
  int dst = 0;
  std::int64_t nth = 0;
};

const char* to_string(stream_fault::kind k);

/// Declarative byte-stream chaos schedule for a socket fabric run.
struct stream_fault_plan {
  std::vector<stream_fault> faults;
  bool empty() const { return faults.empty(); }
};

/// Socket-layer robustness accounting, summed over ranks by total_stats().
struct socket_stats {
  std::int64_t connects = 0;       ///< successful dial + handshake rounds
  std::int64_t reconnects = 0;     ///< connects after the first, per link
  std::int64_t frames_sent = 0;    ///< data frames written whole
  std::int64_t frames_received = 0;  ///< data frames delivered to the inbox
  std::int64_t heartbeats_sent = 0;
  std::int64_t frames_rejected = 0;  ///< CRC/framing failures (link poisoned)
  std::int64_t stale_epoch_dropped = 0;  ///< frames from superseded links
  std::int64_t injected_stream_faults = 0;
  std::int64_t send_failures = 0;  ///< frames lost to a dead connection

  socket_stats& operator+=(const socket_stats& o);
};

struct socket_fabric_options {
  /// Message-level chaos, applied by the shared injection_pipeline above
  /// the framing layer — identical semantics to world::options::faults.
  fault_plan faults;
  /// Byte-stream chaos, applied underneath at frame-write time.
  stream_fault_plan stream_faults;
  /// Frames with fewer payload doubles than this neither count toward nor
  /// match a stream fault's `nth` index (see stream_fault).
  std::size_t stream_fault_min_payload = 0;
  /// Idle links carry a heartbeat this often.
  std::chrono::milliseconds heartbeat_interval{20};
  /// A link silent for this long is declared dead by its receiver.
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// Bound on dial + HELLO/HELLO_ACK handshake.
  std::chrono::milliseconds connect_timeout{2000};
  /// How long a stall fault sits on its frame.
  std::chrono::microseconds stall_duration{2000};
};

struct socket_fabric_impl;  // internal machinery (socket_transport.cpp)

/// A fixed-size group of virtual ranks connected over loopback TCP. run()
/// executes the given function once per rank, each on its own thread with
/// its own transport endpoint, and returns when all complete. Failure
/// semantics mirror world::run: the first escaping exception aborts the
/// peers (blocked try_recv_any calls wake with world_aborted) and is
/// rethrown from run(). A fabric may be reused; run() resets all state and
/// binds fresh listening sockets.
class socket_fabric {
 public:
  explicit socket_fabric(int num_ranks);
  socket_fabric(int num_ranks, socket_fabric_options opts);
  ~socket_fabric();

  socket_fabric(const socket_fabric&) = delete;
  socket_fabric& operator=(const socket_fabric&) = delete;

  int size() const;

  void run(const std::function<void(transport&)>& rank_main);

  /// Rank whose exception triggered the abort of the last run, or -1.
  int failed_rank() const;
  bool aborted() const { return failed_rank() >= 0; }

  /// Robustness counters from the last run (message-level, same meaning as
  /// world's: only sends/receives and injected_* are populated here).
  const rank_counters& counters(int rank) const;
  rank_counters total_counters() const;

  /// Socket-layer accounting from the last run, summed over ranks.
  socket_stats total_stats() const;

 private:
  /// Add the last run's totals to the global obs registry (the same
  /// runtime.* counter names the in-process fabric publishes, plus the
  /// socket.* stats).
  void publish_metrics_totals() const;

  std::unique_ptr<socket_fabric_impl> impl_;
};

}  // namespace sfp::runtime
