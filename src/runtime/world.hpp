#pragma once
// Virtual-rank runtime: a thread-backed, in-process message-passing fabric
// with the MPI subset the SEAM mini-app needs (point-to-point send/recv,
// barrier, allreduce). It lets the distributed model run and be validated
// "distributed-style" on one node — the stand-in for MPI on the paper's
// cluster.
//
// Semantics: send() is asynchronous and copies its payload; recv() blocks
// until a matching (source, tag) message arrives; messages between a fixed
// (source, destination, tag) triple are delivered in send order.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

namespace sfp::runtime {

class world;

/// Per-rank communication handle, valid only inside world::run.
class communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Asynchronously deliver `data` to `dst`'s mailbox under `tag`.
  void send(int dst, int tag, std::span<const double> data);

  /// Block until a message from (src, tag) arrives; returns its payload.
  std::vector<double> recv(int src, int tag);

  /// Collective: all ranks must call; returns when everyone arrived.
  void barrier();

  /// Collective reductions over one double per rank.
  double allreduce_sum(double value);
  double allreduce_max(double value);

 private:
  friend class world;
  communicator(world& w, int rank) : world_(&w), rank_(rank) {}
  world* world_;
  int rank_;
};

/// A fixed-size group of virtual ranks. run() executes the given function
/// once per rank, each on its own thread, and returns when all complete.
/// Exceptions thrown by any rank are captured and the first one rethrown.
class world {
 public:
  explicit world(int num_ranks);

  int size() const { return num_ranks_; }

  void run(const std::function<void(communicator&)>& rank_main);

 private:
  friend class communicator;

  struct mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues;
  };

  void deliver(int dst, int src, int tag, std::vector<double> data);
  std::vector<double> take(int dst, int src, int tag);
  void barrier_wait();
  double reduce(int rank, double value, bool take_max);

  int num_ranks_;
  std::vector<mailbox> mailboxes_;

  // Barrier (reusable, generation-counted).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction scratch (guarded by the barrier protocol around it).
  std::mutex reduce_mutex_;
  std::condition_variable reduce_cv_;
  std::vector<double> reduce_slots_;
  int reduce_arrived_ = 0;
  int reduce_departed_ = 0;
  std::uint64_t reduce_generation_ = 0;
  double reduce_result_ = 0;
};

}  // namespace sfp::runtime
