#pragma once
// Virtual-rank runtime: a thread-backed, in-process message-passing fabric
// with the MPI subset the SEAM mini-app needs (point-to-point send/recv,
// barrier, allreduce). It lets the distributed model run and be validated
// "distributed-style" on one node — the stand-in for MPI on the paper's
// cluster.
//
// Semantics: send() is asynchronous and copies its payload; recv() blocks
// until a matching (source, tag) message arrives; messages between a fixed
// (source, destination, tag) triple are delivered in send order.
//
// Fault tolerance: when any rank throws, a shared abort flag wakes every
// rank blocked in recv/barrier/allreduce with world_aborted instead of
// hanging the join loop. Per-call deadlines (world::options::timeout) turn
// lost messages into comm_timeout_error. A seeded fault_plan injects
// deterministic kills and message drop/delay/duplication for chaos tests,
// and per-rank robustness counters account for everything that happened.
//
// Observability: every blocking call is a trace span when an obs session is
// active (rank threads are named "rank N" in the dump), blocking waits feed
// wait-time histograms, and run() publishes the per-run counters — plus
// per-tag payload bytes — into the global obs::registry. See
// docs/observability.md.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/transport.hpp"

namespace sfp::runtime {

class world;

/// Per-rank communication handle, valid only inside world::run.
class communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Asynchronously deliver `data` to `dst`'s mailbox under `tag`.
  void send(int dst, int tag, std::span<const double> data);

  /// Block until a message from (src, tag) arrives; returns its payload.
  std::vector<double> recv(int src, int tag);

  /// Progress-engine primitive for the reliable transport: wait up to
  /// `wait` for a message with tag `tag` from *any* source and dequeue it.
  /// Returns false when nothing arrived in time. Unlike recv this is not a
  /// communication op (no fault-injection op count, no timeout counter) —
  /// deadline policy belongs to the caller pumping it. Aborts still wake it
  /// with world_aborted.
  bool try_recv_any(int tag, std::chrono::microseconds wait, any_message* out);

  /// Collective: all ranks must call; returns when everyone arrived.
  void barrier();

  /// Collective reductions over one double per rank.
  double allreduce_sum(double value);
  double allreduce_max(double value);

 private:
  friend class world;
  communicator(world& w, int rank) : world_(&w), rank_(rank) {}
  world* world_;
  int rank_;
};

/// A fixed-size group of virtual ranks. run() executes the given function
/// once per rank, each on its own thread, and returns when all complete.
/// Exceptions thrown by any rank abort the peers (they throw world_aborted
/// out of any blocked communication call) and the root-cause exception is
/// rethrown from run(). A world may be reused: run() resets all fabric and
/// failure state.
class world {
 public:
  struct options {
    /// Per blocking call (recv/barrier/allreduce). zero = wait forever.
    std::chrono::milliseconds timeout{0};
    /// Deterministic chaos schedule; default-constructed = no faults.
    fault_plan faults;
  };

  explicit world(int num_ranks);
  world(int num_ranks, options opts);

  int size() const { return num_ranks_; }

  void run(const std::function<void(communicator&)>& rank_main);

  /// Rank whose exception triggered the abort of the last run, or -1 if the
  /// last run completed cleanly.
  int failed_rank() const { return failed_rank_.load(std::memory_order_acquire); }
  bool aborted() const { return failed_rank() >= 0; }

  /// Robustness counters from the last run.
  const rank_counters& counters(int rank) const;
  rank_counters total_counters() const;

  /// Doubles delivered per message tag over the last run, summed across
  /// sending ranks (duplicates included) — the wire-volume breakdown the
  /// trace tooling turns into per-tag byte counters.
  std::map<int, std::int64_t> total_doubles_by_tag() const;

 private:
  friend class communicator;

  struct mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues;
  };

  void deliver(int dst, int src, int tag, std::vector<double> data);
  /// Blocking dequeue; adds the time spent parked on the condition variable
  /// (queue wait, as opposed to transfer/copy time) to *wait_ns.
  std::vector<double> take(int dst, int src, int tag, std::int64_t* wait_ns);
  /// Bounded-wait dequeue of any (src=*, tag) message; false on timeout.
  bool take_any(int dst, int tag, std::chrono::microseconds wait,
                any_message* out);
  void barrier_wait(int rank);
  double reduce(int rank, double value, bool take_max);
  void trigger_abort(int rank);
  bool abort_requested() const {
    return abort_flag_.load(std::memory_order_acquire);
  }
  void reset_run_state();
  void publish_metrics() const;

  int num_ranks_;
  options opts_;
  std::vector<mailbox> mailboxes_;

  // Failure state (set once per run by the first failing rank).
  std::atomic<bool> abort_flag_{false};
  std::atomic<int> failed_rank_{-1};

  // Per-rank accounting and fault state; each entry is written only by its
  // own rank thread during run() and read after the join. The pipeline owns
  // the injector and the reorder stash (runtime/transport.hpp).
  std::vector<rank_counters> counters_;
  std::vector<std::map<int, std::int64_t>> tag_doubles_;
  std::vector<injection_pipeline> pipelines_;

  // Barrier (reusable, generation-counted).
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction scratch (guarded by the barrier protocol around it).
  std::mutex reduce_mutex_;
  std::condition_variable reduce_cv_;
  std::vector<double> reduce_slots_;
  int reduce_arrived_ = 0;
  int reduce_departed_ = 0;
  std::uint64_t reduce_generation_ = 0;
  double reduce_result_ = 0;
};

}  // namespace sfp::runtime
