#include "runtime/socket_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/reliable.hpp"
#include "runtime/world.hpp"
#include "util/require.hpp"

namespace sfp::runtime {

namespace {

using clock_t_ = std::chrono::steady_clock;

/// "SFPT" — distinguishes transport frames from anything else that might
/// land on the port (and from the reliable layer's in-payload "SFPR" magic).
constexpr std::uint32_t frame_magic = 0x53465054u;

enum class frame_kind : std::uint32_t {
  data = 0,       ///< one transport message (tag + payload doubles)
  hello = 1,      ///< dialer's opening: src rank + connection epoch
  hello_ack = 2,  ///< acceptor's reply, echoing the epoch
  heartbeat = 3,  ///< keepalive, carries nothing
};

/// Fixed-size frame header, serialized field by field (little-endian host
/// assumed for loopback; memcpy avoids any padding/aliasing concerns).
struct frame_header {
  std::uint32_t magic = frame_magic;
  std::uint32_t kind = 0;
  std::int32_t src = -1;
  std::int32_t tag = 0;
  std::uint64_t epoch = 0;
  std::uint64_t payload_doubles = 0;
  std::uint32_t crc = 0;
  std::uint32_t reserved = 0;
};

constexpr std::size_t header_bytes = 40;
/// Garbage length-word backstop: no legitimate frame carries this much.
constexpr std::uint64_t max_frame_doubles = 1ull << 26;

void pack_header(const frame_header& h, unsigned char* out) {
  std::size_t off = 0;
  const auto put = [&](const void* p, std::size_t n) {
    std::memcpy(out + off, p, n);
    off += n;
  };
  put(&h.magic, 4);
  put(&h.kind, 4);
  put(&h.src, 4);
  put(&h.tag, 4);
  put(&h.epoch, 8);
  put(&h.payload_doubles, 8);
  put(&h.crc, 4);
  put(&h.reserved, 4);
}

frame_header unpack_header(const unsigned char* in) {
  frame_header h;
  std::size_t off = 0;
  const auto get = [&](void* p, std::size_t n) {
    std::memcpy(p, in + off, n);
    off += n;
  };
  get(&h.magic, 4);
  get(&h.kind, 4);
  get(&h.src, 4);
  get(&h.tag, 4);
  get(&h.epoch, 8);
  get(&h.payload_doubles, 8);
  get(&h.crc, 4);
  get(&h.reserved, 4);
  return h;
}

/// CRC32C over the header bytes (with the crc word zeroed) + payload bytes.
std::uint32_t frame_crc(const frame_header& h, const double* payload,
                        std::size_t payload_doubles) {
  frame_header z = h;
  z.crc = 0;
  unsigned char bytes[header_bytes];
  pack_header(z, bytes);
  std::uint32_t crc = crc32c(bytes, header_bytes);
  return crc32c(payload, payload_doubles * sizeof(double), crc);
}

/// Serialize one whole frame (header + payload) into a byte buffer.
std::vector<unsigned char> encode_frame(frame_kind kind, int src, int tag,
                                        std::uint64_t epoch,
                                        std::span<const double> payload) {
  frame_header h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.src = src;
  h.tag = tag;
  h.epoch = epoch;
  h.payload_doubles = payload.size();
  h.crc = frame_crc(h, payload.data(), payload.size());
  std::vector<unsigned char> bytes(header_bytes +
                                   payload.size() * sizeof(double));
  pack_header(h, bytes.data());
  if (!payload.empty())
    std::memcpy(bytes.data() + header_bytes, payload.data(),
                payload.size() * sizeof(double));
  return bytes;
}

int close_fd(int fd) { return fd >= 0 ? ::close(fd) : 0; }

}  // namespace

const char* to_string(stream_fault::kind k) {
  switch (k) {
    case stream_fault::kind::truncate: return "truncate";
    case stream_fault::kind::split: return "split";
    case stream_fault::kind::reset: return "reset";
    case stream_fault::kind::stall: return "stall";
  }
  return "unknown";
}

socket_stats& socket_stats::operator+=(const socket_stats& o) {
  connects += o.connects;
  reconnects += o.reconnects;
  frames_sent += o.frames_sent;
  frames_received += o.frames_received;
  heartbeats_sent += o.heartbeats_sent;
  frames_rejected += o.frames_rejected;
  stale_epoch_dropped += o.stale_epoch_dropped;
  injected_stream_faults += o.injected_stream_faults;
  send_failures += o.send_failures;
  return *this;
}

struct socket_fabric_impl {
  int nranks;
  socket_fabric_options opts;

  std::atomic<bool> abort_flag{false};
  std::atomic<int> failed{-1};
  std::atomic<bool> shutting_down{false};

  /// Per-rank receive side: reader threads push, the rank thread pops.
  struct inbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues;
  };
  std::vector<inbox> inboxes;

  /// Per-rank epoch filter: the highest HELLO epoch seen per source rank.
  /// Data frames arriving on a connection with a lower epoch are stale
  /// stragglers from a superseded link and are dropped.
  struct epoch_table {
    std::mutex mutex;
    std::map<int, std::uint64_t> latest;
  };
  std::vector<epoch_table> epochs;

  std::vector<rank_counters> counters;
  std::mutex stats_mutex;
  socket_stats stats;

  std::vector<int> listen_fds;
  std::vector<std::uint16_t> ports;

  std::mutex readers_mutex;
  std::vector<std::thread> readers;

  explicit socket_fabric_impl(int n, socket_fabric_options o)
      : nranks(n),
        opts(std::move(o)),
        inboxes(static_cast<std::size_t>(n)),
        epochs(static_cast<std::size_t>(n)),
        counters(static_cast<std::size_t>(n)) {}

  void bump(std::int64_t socket_stats::* field, std::int64_t by = 1) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.*field += by;
  }

  void trigger_abort(int rank) {
    int expected = -1;
    failed.compare_exchange_strong(expected, rank, std::memory_order_acq_rel);
    abort_flag.store(true, std::memory_order_release);
    // Lock-then-notify closes the race against a rank that checked the flag
    // but has not yet parked on its inbox.
    for (auto& box : inboxes) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.ready.notify_all();
    }
  }

  bool abort_requested() const {
    return abort_flag.load(std::memory_order_acquire);
  }

  bool stopping() const {
    return shutting_down.load(std::memory_order_acquire);
  }

  /// Bounded-deadline full read with a poll loop: handles partial reads,
  /// EINTR, and wakes up promptly on fabric shutdown. Returns false on
  /// EOF, error, shutdown, or `deadline` passing with bytes still owed.
  bool read_fully(int fd, unsigned char* out, std::size_t n,
                  clock_t_::time_point deadline) {
    std::size_t off = 0;
    while (off < n) {
      if (stopping()) return false;
      pollfd pf{};
      pf.fd = fd;
      pf.events = POLLIN;
      const int rv = ::poll(&pf, 1, 20);
      if (rv < 0 && errno != EINTR) return false;
      if (rv <= 0 || (pf.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        if (clock_t_::now() >= deadline) return false;
        continue;
      }
      const ssize_t r = ::recv(fd, out + off, n - off, 0);
      if (r == 0) return false;  // orderly EOF
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        return false;  // reset or hard error
      }
      off += static_cast<std::size_t>(r);
      deadline = clock_t_::now() + opts.heartbeat_timeout;
    }
    return true;
  }

  /// Full write with partial-write handling; MSG_NOSIGNAL instead of a
  /// process-wide SIGPIPE handler. Returns false on any hard error.
  static bool write_fully(int fd, const unsigned char* p, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pf{};
        pf.fd = fd;
        pf.events = POLLOUT;
        ::poll(&pf, 1, 50);
        continue;
      }
      return false;
    }
    return true;
  }

  /// One frame, fully read and CRC-verified. Returns false when the stream
  /// died or the frame is malformed (*rejected distinguishes the latter).
  bool read_frame(int fd, frame_header* h, std::vector<double>* payload,
                  bool* rejected) {
    *rejected = false;
    unsigned char hdr[header_bytes];
    if (!read_fully(fd, hdr, header_bytes,
                    clock_t_::now() + opts.heartbeat_timeout))
      return false;
    *h = unpack_header(hdr);
    if (h->magic != frame_magic ||
        h->kind > static_cast<std::uint32_t>(frame_kind::heartbeat) ||
        h->payload_doubles > max_frame_doubles) {
      *rejected = true;
      return false;
    }
    payload->assign(h->payload_doubles, 0.0);
    if (h->payload_doubles > 0) {
      std::vector<unsigned char> body(h->payload_doubles * sizeof(double));
      if (!read_fully(fd, body.data(), body.size(),
                      clock_t_::now() + opts.heartbeat_timeout)) {
        *rejected = true;  // died mid-frame: poisoned stream
        return false;
      }
      std::memcpy(payload->data(), body.data(), body.size());
    }
    if (frame_crc(*h, payload->data(), payload->size()) != h->crc) {
      *rejected = true;
      return false;
    }
    return true;
  }

  void deliver(int dst, int src, int tag, std::vector<double> payload) {
    inbox& box = inboxes[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queues[{src, tag}].push_back(std::move(payload));
    }
    box.ready.notify_all();
    bump(&socket_stats::frames_received);
  }

  /// Bounded-wait dequeue mirroring world::take_any: lowest source rank
  /// first, drain-then-abort on a fabric abort.
  bool take_any(int dst, int tag, std::chrono::microseconds wait,
                any_message* out) {
    inbox& box = inboxes[static_cast<std::size_t>(dst)];
    std::unique_lock<std::mutex> lock(box.mutex);
    const auto find_match = [&]() {
      for (auto it = box.queues.begin(); it != box.queues.end(); ++it)
        if (it->first.second == tag && !it->second.empty()) return it;
      return box.queues.end();
    };
    const auto ready = [&] {
      return abort_requested() || find_match() != box.queues.end();
    };
    if (!box.ready.wait_for(lock, wait, ready)) return false;
    const auto it = find_match();
    if (it == box.queues.end()) {
      ++counters[static_cast<std::size_t>(dst)].aborts_observed;
      throw world_aborted(dst, failed.load(std::memory_order_acquire));
    }
    out->src = it->first.first;
    out->tag = it->first.second;
    out->payload = std::move(it->second.front());
    it->second.pop_front();
    ++counters[static_cast<std::size_t>(dst)].messages_received;
    counters[static_cast<std::size_t>(dst)].doubles_received +=
        static_cast<std::int64_t>(out->payload.size());
    return true;
  }

  /// Per accepted connection: parse frames until the stream dies. The first
  /// frame must be a HELLO naming the source rank and the connection epoch;
  /// the reply HELLO_ACK is the only thing ever written on this side.
  void reader_loop(int dst, int fd) {
    int src = -1;
    std::uint64_t conn_epoch = 0;
    for (;;) {
      frame_header h;
      std::vector<double> payload;
      bool rejected = false;
      if (!read_frame(fd, &h, &payload, &rejected)) {
        if (rejected) bump(&socket_stats::frames_rejected);
        break;
      }
      const auto kind = static_cast<frame_kind>(h.kind);
      if (kind == frame_kind::hello) {
        if (h.src < 0 || h.src >= nranks) break;
        src = h.src;
        conn_epoch = h.epoch;
        {
          epoch_table& table = epochs[static_cast<std::size_t>(dst)];
          std::lock_guard<std::mutex> lock(table.mutex);
          std::uint64_t& latest =
              table.latest.try_emplace(src, conn_epoch).first->second;
          latest = std::max(latest, conn_epoch);
        }
        const std::vector<unsigned char> ack =
            encode_frame(frame_kind::hello_ack, dst, 0, conn_epoch, {});
        if (!write_fully(fd, ack.data(), ack.size())) break;
        continue;
      }
      if (kind == frame_kind::heartbeat) continue;
      if (kind == frame_kind::hello_ack) break;  // protocol violation here
      // Data before HELLO, or claiming a different source: poisoned peer.
      if (src < 0 || h.src != src) break;
      bool stale = false;
      {
        epoch_table& table = epochs[static_cast<std::size_t>(dst)];
        std::lock_guard<std::mutex> lock(table.mutex);
        const auto it = table.latest.find(src);
        stale = it != table.latest.end() && conn_epoch < it->second;
      }
      if (stale) {
        // A replacement link already shook hands: whatever this straggler
        // still carries was (re)sent on the new link too, or will be.
        bump(&socket_stats::stale_epoch_dropped);
        continue;
      }
      deliver(dst, src, h.tag, std::move(payload));
    }
    close_fd(fd);
  }

  /// Per-rank accept loop: nonblocking listener polled on a short tick so
  /// shutdown is prompt; every accepted connection gets a reader thread.
  void acceptor_loop(int rank) {
    const int lfd = listen_fds[static_cast<std::size_t>(rank)];
    while (!stopping()) {
      pollfd pf{};
      pf.fd = lfd;
      pf.events = POLLIN;
      const int rv = ::poll(&pf, 1, 20);
      if (rv < 0 && errno != EINTR) break;
      if (rv <= 0 || (pf.revents & POLLIN) == 0) continue;
      // Ownership of the accepted fd moves into the reader thread below,
      // which closes it when the connection drains.
      const int fd =
          ::accept(lfd, nullptr, nullptr);  // lint: resource-leak-ok — the reader thread owns and closes fd
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(readers_mutex);
      readers.emplace_back([this, rank, fd] { reader_loop(rank, fd); });
    }
  }
};

/// Sender-side endpoint: the transport a rank thread drives. Outgoing links
/// are dialed lazily and redialed (with a bumped epoch) after any failure;
/// a heartbeat thread keeps established links warm.
namespace {

class socket_endpoint final : public transport {
 public:
  socket_endpoint(socket_fabric_impl* fab, int rank)
      : fab_(fab),
        rank_(rank),
        pipeline_(fab->opts.faults, rank,
                  &fab->counters[static_cast<std::size_t>(rank)]),
        conns_(static_cast<std::size_t>(fab->nranks)) {
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
  }

  ~socket_endpoint() override {
    stop_.store(true, std::memory_order_release);
    heartbeat_.join();
    for (auto& c : conns_) {
      std::lock_guard<std::mutex> lock(c.mutex);
      kill_locked(c);
    }
  }

  int rank() const override { return rank_; }
  int size() const override { return fab_->nranks; }

  void send(int dst, int tag, std::span<const double> data) override {
    SFP_REQUIRE(dst >= 0 && dst < fab_->nranks, "destination out of range");
    SFP_TRACE_SCOPE_CAT("socket.send", "runtime");
    pipeline_.count_op();
    injection_pipeline::outcome out = pipeline_.on_send(dst, tag, data);
    for (auto& image : out.wire) write_data(dst, tag, image);
  }

  bool try_recv_any(int tag, std::chrono::microseconds wait,
                    any_message* out) override {
    SFP_REQUIRE(out != nullptr, "try_recv_any needs an output slot");
    return fab_->take_any(rank_, tag, wait, out);
  }

 private:
  struct out_conn {
    std::mutex mutex;
    int fd = -1;
    std::uint64_t next_epoch = 0;   ///< epoch the next dial announces
    std::int64_t data_frames = 0;   ///< stream-fault index (survives redials)
    clock_t_::time_point last_write{};
  };

  static void kill_locked(out_conn& c) {
    close_fd(c.fd);
    c.fd = -1;
  }

  /// Dial + HELLO/HELLO_ACK handshake under the conn lock. The epoch
  /// counter bumps on every dial, so the acceptor can order this link's
  /// incarnations and discard stragglers from the superseded one.
  bool dial_locked(out_conn& c, int dst) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(fab_->ports[static_cast<std::size_t>(dst)]);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      close_fd(fd);
      return false;
    }
    const std::uint64_t epoch = c.next_epoch;
    const std::vector<unsigned char> hello =
        encode_frame(frame_kind::hello, rank_, 0, epoch, {});
    if (!fab_->write_fully(fd, hello.data(), hello.size())) {
      close_fd(fd);
      return false;
    }
    frame_header h;
    std::vector<double> payload;
    bool rejected = false;
    const auto deadline = clock_t_::now() + fab_->opts.connect_timeout;
    // The handshake read reuses the frame parser but with the connect
    // deadline: a silent acceptor must not park us for heartbeat_timeout.
    if (!read_ack(fd, &h, &payload, &rejected, deadline) ||
        static_cast<frame_kind>(h.kind) != frame_kind::hello_ack ||
        h.epoch != epoch) {
      close_fd(fd);
      return false;
    }
    c.fd = fd;
    c.next_epoch = epoch + 1;
    c.last_write = clock_t_::now();
    fab_->bump(&socket_stats::connects);
    if (epoch > 0) fab_->bump(&socket_stats::reconnects);
    return true;
  }

  bool read_ack(int fd, frame_header* h, std::vector<double>* payload,
                bool* rejected, clock_t_::time_point deadline) {
    *rejected = false;
    unsigned char hdr[header_bytes];
    if (!fab_->read_fully(fd, hdr, header_bytes, deadline)) return false;
    *h = unpack_header(hdr);
    if (h->magic != frame_magic || h->payload_doubles != 0) {
      *rejected = true;
      return false;
    }
    payload->clear();
    return frame_crc(*h, nullptr, 0) == h->crc;
  }

  const stream_fault* match_stream_fault(out_conn& c, int dst,
                                         std::size_t payload_doubles) {
    if (payload_doubles < fab_->opts.stream_fault_min_payload) return nullptr;
    const std::int64_t idx = c.data_frames++;
    for (const stream_fault& f : fab_->opts.stream_faults.faults)
      if (f.src == rank_ && f.dst == dst && f.nth == idx) return &f;
    return nullptr;
  }

  /// Frame one message-layer payload and push it down the byte stream,
  /// applying any due stream fault. A write failure only kills the link and
  /// loses this frame — the reliable layer above heals the loss and the
  /// next send redials.
  void write_data(int dst, int tag, std::span<const double> payload) {
    out_conn& c = conns_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.fd < 0 && !dial_locked(c, dst)) {
      fab_->bump(&socket_stats::send_failures);
      return;
    }
    const std::vector<unsigned char> bytes = encode_frame(
        frame_kind::data, rank_, tag, /*epoch=*/c.next_epoch - 1, payload);
    const stream_fault* fault = match_stream_fault(c, dst, payload.size());
    if (fault != nullptr) {
      fab_->bump(&socket_stats::injected_stream_faults);
      switch (fault->what) {
        case stream_fault::kind::reset:
          // Kill the link before the frame goes out: the frame is lost and
          // the receiver sees a dead stream.
          kill_locked(c);
          fab_->bump(&socket_stats::send_failures);
          return;
        case stream_fault::kind::truncate: {
          // Half a frame, then death: the receiver reads a valid header,
          // starves waiting for the body, and poisons the link.
          const std::size_t cut = bytes.size() / 2;
          fab_->write_fully(c.fd, bytes.data(), cut);
          kill_locked(c);
          fab_->bump(&socket_stats::send_failures);
          return;
        }
        case stream_fault::kind::split: {
          // Dribble the frame out in small chunks: exercises the
          // receiver's partial-read reassembly. No data is lost.
          const std::size_t step = std::max<std::size_t>(bytes.size() / 3, 1);
          std::size_t off = 0;
          bool ok = true;
          while (ok && off < bytes.size()) {
            const std::size_t n = std::min(step, bytes.size() - off);
            ok = fab_->write_fully(c.fd, bytes.data() + off, n);
            off += n;
            if (off < bytes.size())
              std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          if (!ok) {
            kill_locked(c);
            fab_->bump(&socket_stats::send_failures);
            return;
          }
          c.last_write = clock_t_::now();
          fab_->bump(&socket_stats::frames_sent);
          return;
        }
        case stream_fault::kind::stall:
          // A stalled peer link: sit on the frame, then deliver normally.
          std::this_thread::sleep_for(fab_->opts.stall_duration);
          break;
      }
    }
    if (!fab_->write_fully(c.fd, bytes.data(), bytes.size())) {
      kill_locked(c);
      fab_->bump(&socket_stats::send_failures);
      return;
    }
    c.last_write = clock_t_::now();
    fab_->bump(&socket_stats::frames_sent);
  }

  /// Keep idle established links warm so receivers don't declare them dead
  /// between exchange phases.
  void heartbeat_loop() {
    auto next = clock_t_::now() + fab_->opts.heartbeat_interval;
    while (!stop_.load(std::memory_order_acquire)) {
      // Short ticks rather than one long sleep, so teardown never waits a
      // whole (possibly test-lengthened) heartbeat interval.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (clock_t_::now() < next) continue;
      next = clock_t_::now() + fab_->opts.heartbeat_interval;
      for (auto& c : conns_) {
        std::lock_guard<std::mutex> lock(c.mutex);
        if (c.fd < 0) continue;
        if (clock_t_::now() - c.last_write < fab_->opts.heartbeat_interval)
          continue;
        const std::vector<unsigned char> beat =
            encode_frame(frame_kind::heartbeat, rank_, 0, 0, {});
        if (fab_->write_fully(c.fd, beat.data(), beat.size())) {
          c.last_write = clock_t_::now();
          fab_->bump(&socket_stats::heartbeats_sent);
        } else {
          kill_locked(c);
        }
      }
    }
  }

  socket_fabric_impl* fab_;
  int rank_;
  injection_pipeline pipeline_;
  std::vector<out_conn> conns_;
  std::atomic<bool> stop_{false};
  std::thread heartbeat_;
};

}  // namespace

socket_fabric::socket_fabric(int num_ranks)
    : socket_fabric(num_ranks, socket_fabric_options{}) {}

socket_fabric::socket_fabric(int num_ranks, socket_fabric_options opts) {
  SFP_REQUIRE(num_ranks >= 1, "socket fabric needs at least one rank");
  impl_ = std::make_unique<socket_fabric_impl>(num_ranks, std::move(opts));
}

socket_fabric::~socket_fabric() = default;

int socket_fabric::size() const { return impl_->nranks; }

int socket_fabric::failed_rank() const {
  return impl_->failed.load(std::memory_order_acquire);
}

const rank_counters& socket_fabric::counters(int rank) const {
  SFP_REQUIRE(rank >= 0 && rank < impl_->nranks, "rank out of range");
  return impl_->counters[static_cast<std::size_t>(rank)];
}

rank_counters socket_fabric::total_counters() const {
  rank_counters total;
  for (const auto& c : impl_->counters) total += c;
  return total;
}

socket_stats socket_fabric::total_stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

void socket_fabric::run(const std::function<void(transport&)>& rank_main) {
  SFP_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  socket_fabric_impl& fab = *impl_;
  const int n = fab.nranks;
  // Reset last-run state.
  fab.abort_flag.store(false, std::memory_order_release);
  fab.failed.store(-1, std::memory_order_release);
  fab.shutting_down.store(false, std::memory_order_release);
  for (auto& box : fab.inboxes) box.queues.clear();
  for (auto& table : fab.epochs) table.latest.clear();
  fab.counters.assign(static_cast<std::size_t>(n), rank_counters{});
  {
    std::lock_guard<std::mutex> lock(fab.stats_mutex);
    fab.stats = socket_stats{};
  }

  // Bind every rank's listener up front so dial order can't race readiness.
  fab.listen_fds.assign(static_cast<std::size_t>(n), -1);
  fab.ports.assign(static_cast<std::size_t>(n), 0);
  for (int p = 0; p < n; ++p) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SFP_REQUIRE(fd >= 0, "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // kernel-assigned
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    SFP_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind(127.0.0.1:0) failed");
    SFP_REQUIRE(::listen(fd, 64) == 0, "listen() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SFP_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                              &len) == 0,
                "getsockname() failed");
    fab.listen_fds[static_cast<std::size_t>(p)] = fd;
    fab.ports[static_cast<std::size_t>(p)] = ntohs(bound.sin_port);
  }

  std::vector<std::thread> acceptors;
  acceptors.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    acceptors.emplace_back([&fab, p] { fab.acceptor_loop(p); });

  std::vector<std::unique_ptr<socket_endpoint>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    endpoints.push_back(std::make_unique<socket_endpoint>(&fab, p));

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  threads.reserve(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&fab, p, &rank_main, &errors, &endpoints] {
      if (obs::trace::enabled())
        obs::trace::set_thread_name("rank " + std::to_string(p));
      try {
        rank_main(*endpoints[static_cast<std::size_t>(p)]);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
        fab.trigger_abort(p);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Teardown in dependency order: stop accepting and reading, close the
  // sender sides (readers then see EOF), and join everything.
  fab.shutting_down.store(true, std::memory_order_release);
  endpoints.clear();  // joins heartbeats, closes outgoing links
  for (auto& t : acceptors) t.join();
  for (const int fd : fab.listen_fds) close_fd(fd);
  fab.listen_fds.clear();
  {
    std::lock_guard<std::mutex> lock(fab.readers_mutex);
    for (auto& t : fab.readers) t.join();
    fab.readers.clear();
  }

  publish_metrics_totals();

  const int failed = failed_rank();
  if (failed >= 0) {
    // The first rank whose exception escaped is the root cause; peers hold
    // cascading world_aborted.
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  }
}

void socket_fabric::publish_metrics_totals() const {
  obs::registry& reg = obs::registry::global();
  const rank_counters t = total_counters();
  reg.get_counter("runtime.messages_sent").add(t.messages_sent);
  reg.get_counter("runtime.messages_received").add(t.messages_received);
  reg.get_counter("runtime.doubles_sent").add(t.doubles_sent);
  reg.get_counter("runtime.doubles_received").add(t.doubles_received);
  reg.get_counter("runtime.timeouts").add(t.timeouts);
  reg.get_counter("runtime.aborts_observed").add(t.aborts_observed);
  reg.get_counter("runtime.injected.kills").add(t.injected_kills);
  reg.get_counter("runtime.injected.drops").add(t.injected_drops);
  reg.get_counter("runtime.injected.delays").add(t.injected_delays);
  reg.get_counter("runtime.injected.duplicates").add(t.injected_duplicates);
  reg.get_counter("runtime.injected.corruptions").add(t.injected_corruptions);
  reg.get_counter("runtime.injected.truncations").add(t.injected_truncations);
  reg.get_counter("runtime.injected.reorders").add(t.injected_reorders);
  const socket_stats s = total_stats();
  reg.get_counter("socket.connects").add(s.connects);
  reg.get_counter("socket.reconnects").add(s.reconnects);
  reg.get_counter("socket.frames_sent").add(s.frames_sent);
  reg.get_counter("socket.frames_received").add(s.frames_received);
  reg.get_counter("socket.heartbeats_sent").add(s.heartbeats_sent);
  reg.get_counter("socket.frames_rejected").add(s.frames_rejected);
  reg.get_counter("socket.stale_epoch_dropped").add(s.stale_epoch_dropped);
  reg.get_counter("socket.injected_stream_faults")
      .add(s.injected_stream_faults);
  reg.get_counter("socket.send_failures").add(s.send_failures);
}

}  // namespace sfp::runtime
