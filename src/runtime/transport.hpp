#pragma once
// Backend-agnostic transport carve: the narrow fabric surface the reliable
// delivery layer (runtime/reliable.hpp) actually consumes, lifted out of the
// in-process world so the same seq/ack/retransmit machinery, escalation
// ladder, and chaos harness run unchanged over real byte streams.
//
// A transport is an unreliable datagram fabric: send() is asynchronous,
// fire-and-forget, and may drop / duplicate / mangle payloads (by fault
// injection or by a genuinely lossy backend); try_recv_any() is the bounded
// polling primitive the reliable layer pumps. Everything stronger — ordering,
// dedup, delivery guarantees — is the reliable layer's job, which is exactly
// what makes the backends interchangeable under one chaos contract.
//
// Backends:
//   - inproc_transport (this header): a thin adapter over a world
//     communicator — today's thread-backed mailbox fabric, verbatim.
//   - socket_transport.hpp: loopback TCP with framing, heartbeats, and a
//     reconnect-with-epoch handshake.
//
// The shared fabric vocabulary (rank_counters, any_message, the abort and
// timeout exceptions) lives here because every backend speaks it; world.hpp
// re-exports it by inclusion, so existing includes keep compiling.

#include <chrono>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/fault.hpp"

namespace sfp::runtime {

/// Thrown in ranks blocked in communication when a peer rank has failed:
/// the fabric is aborting and no further progress is possible.
class world_aborted : public std::runtime_error {
 public:
  world_aborted(int self, int failed_rank);
  int failed_rank() const { return failed_rank_; }

 private:
  int failed_rank_;
};

/// Thrown when a blocking call exceeds the fabric's configured timeout — the
/// deadlock-free alternative to waiting forever on a lost peer.
class comm_timeout_error : public std::runtime_error {
 public:
  comm_timeout_error(int self, const char* op, std::chrono::milliseconds t);
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Per-rank robustness accounting, exposed after a fabric run returns.
struct rank_counters {
  std::int64_t messages_sent = 0;      ///< deliveries (duplicates included)
  std::int64_t messages_received = 0;
  std::int64_t doubles_sent = 0;
  std::int64_t doubles_received = 0;
  std::int64_t barriers = 0;
  std::int64_t reductions = 0;
  std::int64_t timeouts = 0;           ///< comm_timeout_error thrown here
  std::int64_t aborts_observed = 0;    ///< world_aborted thrown here
  std::int64_t injected_kills = 0;
  std::int64_t injected_drops = 0;
  std::int64_t injected_delays = 0;
  std::int64_t injected_duplicates = 0;
  std::int64_t injected_corruptions = 0;  ///< bit-flipped payloads delivered
  std::int64_t injected_truncations = 0;  ///< shortened payloads delivered
  std::int64_t injected_reorders = 0;     ///< sends swapped with their successor

  rank_counters& operator+=(const rank_counters& o);
};

/// One message pulled off the wire by try_recv_any: its provenance plus the
/// payload exactly as delivered (possibly corrupted/truncated in transit).
struct any_message {
  int src = -1;
  int tag = 0;
  std::vector<double> payload;
};

/// Which fabric implementation carries a run's traffic.
enum class transport_backend {
  inproc,  ///< thread-backed in-process mailboxes (runtime/world.hpp)
  socket,  ///< loopback TCP (runtime/socket_transport.hpp)
};

const char* to_string(transport_backend backend);

/// The per-rank datagram surface. One instance per rank, valid only for the
/// duration of the owning fabric's run; all methods are called from that
/// rank's own thread.
class transport {
 public:
  virtual ~transport();
  transport(const transport&) = delete;
  transport& operator=(const transport&) = delete;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Asynchronously hand `data` to the fabric for delivery to `dst` under
  /// `tag`. Unreliable: the message may be dropped, duplicated, corrupted,
  /// truncated, or reordered before it reaches the peer.
  virtual void send(int dst, int tag, std::span<const double> data) = 0;

  /// Wait up to `wait` for a message with tag `tag` from *any* source and
  /// dequeue it. Returns false when nothing arrived in time. Not a
  /// communication op for fault accounting — deadline policy belongs to the
  /// caller pumping it. A fabric abort wakes it with world_aborted.
  virtual bool try_recv_any(int tag, std::chrono::microseconds wait,
                            any_message* out) = 0;

 protected:
  transport() = default;
};

class communicator;  // runtime/world.hpp

/// The in-process backend: a thin, behavior-preserving adapter over a world
/// communicator. Holds no state of its own — counters, faults, and delivery
/// all stay exactly where they were before the transport carve.
class inproc_transport final : public transport {
 public:
  explicit inproc_transport(communicator& comm) : comm_(&comm) {}

  int rank() const override;
  int size() const override;
  void send(int dst, int tag, std::span<const double> data) override;
  bool try_recv_any(int tag, std::chrono::microseconds wait,
                    any_message* out) override;

 private:
  communicator* comm_;
};

/// One rank's message-level fault machinery, extracted from the in-process
/// fabric so every backend mangles outgoing messages identically: the same
/// plan, the same rng streams, the same counter accounting — which is what
/// keeps one chaos schedule bit-for-bit reproducible across backends.
///
/// Owned by one rank thread; not thread-safe.
class injection_pipeline {
 public:
  injection_pipeline(const fault_plan& plan, int rank,
                     rank_counters* counters);

  /// Count one communication op; throws rank_killed (and accounts it) when
  /// a planned kill is due.
  void count_op();

  /// What one logical send turns into after injection.
  struct outcome {
    /// Wire images to deliver now, in order. Empty when the message was
    /// dropped or stashed for reorder; two identical images for a
    /// duplicate; a trailing third image is a previously-stashed message
    /// flushed by the injected swap.
    std::vector<std::vector<double>> wire;
    /// Copies charged to messages_sent/doubles_sent for this call (a
    /// flushed stash image was charged when it was stashed).
    int accounted_copies = 0;
    /// Payload length of each accounted copy, after truncation.
    std::size_t copy_doubles = 0;
  };

  /// Run one outgoing message through the plan: draws all randomness,
  /// applies drop/delay/duplicate/corrupt/truncate/reorder, sleeps injected
  /// delays in place, and updates the injected_* plus sent-side counters.
  /// The caller only delivers the returned wire images, in order.
  outcome on_send(int dst, int tag, std::span<const double> data);

  std::int64_t ops() const { return injector_.ops(); }

 private:
  fault_injector injector_;
  rank_counters* counters_;
  /// Reorder stash: a reordered message waits here and is delivered right
  /// after the next send on the same (dst, tag) stream.
  std::map<std::pair<int, int>, std::vector<double>> stash_;
};

}  // namespace sfp::runtime
