#pragma once
// JSON persistence for fault_plan: the bridge between the chaos tooling and
// version control. A shrunken reproducer (seam/chaos.hpp) is serialized
// here, committed next to the test that covers it, and replayed with
// `sfcpart faults --plan=<file>` or by any test that loads it back.
//
// Format (all keys optional except as noted):
//   {
//     "seed": "12345",                  // decimal string: uint64-exact
//     "kills": [ {"rank": 2, "at_op": 17}, ... ],
//     "message_faults": [ {
//        "src": -1, "dst": -1, "tag": -1,       // -1 = wildcard
//        "drop": 0.1, "delay": 0.0, "duplicate": 0.0,
//        "corrupt": 0.2, "truncate": 0.0, "reorder": 0.0,
//        "delay_us": 200
//     }, ... ]
//   }
// The seed also parses from a plain number for hand-written plans.

#include <string>

#include "io/json.hpp"
#include "runtime/fault.hpp"

namespace sfp::runtime {

/// Build the JSON document for a plan. Round-trips exactly through
/// fault_plan_from_json (including 64-bit seeds, which travel as strings).
io::json_value fault_plan_to_json(const fault_plan& plan);

/// Parse a plan document; throws sfp::contract_error on malformed input
/// (unknown structure, out-of-range probabilities, negative op indices).
fault_plan fault_plan_from_json(const io::json_value& doc);

/// File convenience wrappers over the above.
void save_fault_plan(const fault_plan& plan, const std::string& path);
fault_plan load_fault_plan(const std::string& path);

}  // namespace sfp::runtime
