#include "runtime/fault.hpp"

#include <sstream>

namespace sfp::runtime {

namespace {

std::string kill_message(int rank, std::int64_t op) {
  std::ostringstream os;
  os << "injected kill: rank " << rank << " at op " << op;
  return os.str();
}

/// splitmix64 step — decorrelates the per-rank streams from the base seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

rank_killed::rank_killed(int rank, std::int64_t op)
    : std::runtime_error(kill_message(rank, op)), rank_(rank), op_(op) {}

fault_injector::fault_injector(const fault_plan& plan, int rank)
    : plan_(&plan),
      rank_(rank),
      rng_(mix(plan.seed ^ (0x517cc1b727220a95ull *
                            static_cast<std::uint64_t>(rank + 1)))),
      matches_(plan.message_faults.size(), 0) {}

void fault_injector::on_op() {
  ++ops_;
  for (const auto& kill : plan_->kills)
    if (kill.rank == rank_ && kill.at_op == ops_)
      throw rank_killed(rank_, ops_);
}

fault_injector::send_action fault_injector::on_send(int dst, int tag,
                                                    std::size_t payload_size) {
  send_action action;
  for (std::size_t i = 0; i < plan_->message_faults.size(); ++i) {
    const auto& mf = plan_->message_faults[i];
    if (mf.src != -1 && mf.src != rank_) continue;
    if (mf.dst != -1 && mf.dst != dst) continue;
    if (mf.tag != -1 && mf.tag != tag) continue;
    if (payload_size < mf.min_payload) continue;
    // The fire window gates the *application*, never the draws: the stream
    // advances identically whether or not this match is live, so shrinking
    // a window cannot perturb the other entries' randomness.
    const std::int64_t idx = matches_[i]++;
    const bool live =
        idx >= mf.fire_from &&
        (mf.fire_count < 0 || idx < mf.fire_from + mf.fire_count);
    // Draw in a fixed order so the rng stream is identical whether or not
    // an earlier clause already triggered, and whether or not this match is
    // inside the fire window.
    const bool drop =
        mf.drop_probability > 0 && rng_.uniform() < mf.drop_probability;
    const bool delay =
        mf.delay_probability > 0 && rng_.uniform() < mf.delay_probability;
    const bool dup = mf.duplicate_probability > 0 &&
                     rng_.uniform() < mf.duplicate_probability;
    const bool corrupt =
        mf.corrupt_probability > 0 && rng_.uniform() < mf.corrupt_probability;
    const bool truncate = mf.truncate_probability > 0 &&
                          rng_.uniform() < mf.truncate_probability;
    const bool reorder =
        mf.reorder_probability > 0 && rng_.uniform() < mf.reorder_probability;
    action.drop = action.drop || (drop && live);
    action.duplicate = action.duplicate || (dup && live);
    if (delay && live && mf.delay > action.delay) action.delay = mf.delay;
    // Payload faults only apply to non-empty payloads. Positional
    // randomness (which bit, where to cut) comes from a stream derived
    // from (seed, rank, entry, match index) alone — not from the shared
    // per-rank stream — so deleting or narrowing one plan entry never
    // moves another entry's bit flip. Delta-debugging a chaos schedule
    // (seam/chaos.hpp) depends on this isolation.
    if ((corrupt || truncate) && payload_size > 0 && live) {
      rng pos(mix(plan_->seed ^
                  (0x517cc1b727220a95ull *
                   static_cast<std::uint64_t>(rank_ + 1)) ^
                  (0xd1b54a32d192ed03ull * (static_cast<std::uint64_t>(i) + 1)) ^
                  (0x2545f4914f6cdd1dull *
                   (static_cast<std::uint64_t>(idx) + 1))));
      const std::size_t element = pos.below(payload_size);
      const int bit = static_cast<int>(pos.below(64));
      const std::size_t cut = pos.below(payload_size);
      if (corrupt && !action.corrupt) {
        action.corrupt = true;
        action.corrupt_element = element;
        action.corrupt_bit = bit;
      }
      if (truncate && !action.truncate) {
        action.truncate = true;
        action.truncate_to = cut;
      }
    }
    action.reorder = action.reorder || (reorder && live);
  }
  return action;
}

}  // namespace sfp::runtime
