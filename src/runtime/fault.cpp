#include "runtime/fault.hpp"

#include <sstream>

namespace sfp::runtime {

namespace {

std::string kill_message(int rank, std::int64_t op) {
  std::ostringstream os;
  os << "injected kill: rank " << rank << " at op " << op;
  return os.str();
}

/// splitmix64 step — decorrelates the per-rank streams from the base seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

rank_killed::rank_killed(int rank, std::int64_t op)
    : std::runtime_error(kill_message(rank, op)), rank_(rank), op_(op) {}

fault_injector::fault_injector(const fault_plan& plan, int rank)
    : plan_(&plan),
      rank_(rank),
      rng_(mix(plan.seed ^ (0x517cc1b727220a95ull *
                            static_cast<std::uint64_t>(rank + 1)))) {}

void fault_injector::on_op() {
  ++ops_;
  for (const auto& kill : plan_->kills)
    if (kill.rank == rank_ && kill.at_op == ops_)
      throw rank_killed(rank_, ops_);
}

fault_injector::send_action fault_injector::on_send(int dst, int tag) {
  send_action action;
  for (const auto& mf : plan_->message_faults) {
    if (mf.src != -1 && mf.src != rank_) continue;
    if (mf.dst != -1 && mf.dst != dst) continue;
    if (mf.tag != -1 && mf.tag != tag) continue;
    // Draw in a fixed order so the rng stream is identical whether or not
    // an earlier clause already triggered.
    const bool drop = mf.drop_probability > 0 && rng_.uniform() < mf.drop_probability;
    const bool delay = mf.delay_probability > 0 && rng_.uniform() < mf.delay_probability;
    const bool dup = mf.duplicate_probability > 0 && rng_.uniform() < mf.duplicate_probability;
    action.drop = action.drop || drop;
    action.duplicate = action.duplicate || dup;
    if (delay && mf.delay > action.delay) action.delay = mf.delay;
  }
  return action;
}

}  // namespace sfp::runtime
