#include "runtime/world.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <thread>

#include "util/require.hpp"

namespace sfp::runtime {

namespace {

std::string aborted_message(int self, int failed_rank) {
  std::ostringstream os;
  os << "world aborted: rank " << failed_rank << " failed (observed on rank "
     << self << ")";
  return os.str();
}

std::string timeout_message(int self, const char* op,
                            std::chrono::milliseconds t) {
  std::ostringstream os;
  os << "communication timeout: rank " << self << " waited " << t.count()
     << " ms in " << op;
  return os.str();
}

int validated_rank_count(int n) {
  SFP_REQUIRE(n >= 1, "world needs at least one rank");
  return n;
}

}  // namespace

world_aborted::world_aborted(int self, int failed_rank)
    : std::runtime_error(aborted_message(self, failed_rank)),
      failed_rank_(failed_rank) {}

comm_timeout_error::comm_timeout_error(int self, const char* op,
                                       std::chrono::milliseconds t)
    : std::runtime_error(timeout_message(self, op, t)), rank_(self) {}

rank_counters& rank_counters::operator+=(const rank_counters& o) {
  messages_sent += o.messages_sent;
  messages_received += o.messages_received;
  doubles_sent += o.doubles_sent;
  doubles_received += o.doubles_received;
  barriers += o.barriers;
  reductions += o.reductions;
  timeouts += o.timeouts;
  aborts_observed += o.aborts_observed;
  injected_kills += o.injected_kills;
  injected_drops += o.injected_drops;
  injected_delays += o.injected_delays;
  injected_duplicates += o.injected_duplicates;
  return *this;
}

int communicator::size() const { return world_->size(); }

void communicator::send(int dst, int tag, std::span<const double> data) {
  SFP_REQUIRE(dst >= 0 && dst < world_->size(), "destination out of range");
  const auto self = static_cast<std::size_t>(rank_);
  rank_counters& counters = world_->counters_[self];
  fault_injector& injector = world_->injectors_[self];
  try {
    injector.on_op();
  } catch (const rank_killed&) {
    ++counters.injected_kills;
    throw;
  }

  const fault_injector::send_action action = injector.on_send(dst, tag);
  if (action.drop) {
    ++counters.injected_drops;
    return;
  }
  if (action.delay.count() > 0) {
    ++counters.injected_delays;
    std::this_thread::sleep_for(action.delay);
  }
  const int copies = action.duplicate ? 2 : 1;
  if (action.duplicate) ++counters.injected_duplicates;
  for (int c = 0; c < copies; ++c) {
    world_->deliver(dst, rank_, tag,
                    std::vector<double>(data.begin(), data.end()));
    ++counters.messages_sent;
    counters.doubles_sent += static_cast<std::int64_t>(data.size());
  }
}

std::vector<double> communicator::recv(int src, int tag) {
  SFP_REQUIRE(src >= 0 && src < world_->size(), "source out of range");
  const auto self = static_cast<std::size_t>(rank_);
  rank_counters& counters = world_->counters_[self];
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++counters.injected_kills;
    throw;
  }
  std::vector<double> msg = world_->take(rank_, src, tag);
  ++counters.messages_received;
  counters.doubles_received += static_cast<std::int64_t>(msg.size());
  return msg;
}

void communicator::barrier() {
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  world_->barrier_wait(rank_);
  ++world_->counters_[self].barriers;
}

double communicator::allreduce_sum(double value) {
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  const double r = world_->reduce(rank_, value, /*take_max=*/false);
  ++world_->counters_[self].reductions;
  return r;
}

double communicator::allreduce_max(double value) {
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  const double r = world_->reduce(rank_, value, /*take_max=*/true);
  ++world_->counters_[self].reductions;
  return r;
}

world::world(int num_ranks) : world(num_ranks, options()) {}

world::world(int num_ranks, options opts)
    : num_ranks_(validated_rank_count(num_ranks)),
      opts_(std::move(opts)),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      counters_(static_cast<std::size_t>(num_ranks)),
      reduce_slots_(static_cast<std::size_t>(num_ranks), 0.0) {}

const rank_counters& world::counters(int rank) const {
  SFP_REQUIRE(rank >= 0 && rank < num_ranks_, "rank out of range");
  return counters_[static_cast<std::size_t>(rank)];
}

rank_counters world::total_counters() const {
  rank_counters total;
  for (const auto& c : counters_) total += c;
  return total;
}

void world::deliver(int dst, int src, int tag, std::vector<double> data) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(data));
  }
  box.ready.notify_all();
}

std::vector<double> world::take(int dst, int src, int tag) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::pair(src, tag);
  const auto ready = [&] {
    if (abort_requested()) return true;
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  };
  if (opts_.timeout.count() > 0) {
    if (!box.ready.wait_for(lock, opts_.timeout, ready)) {
      ++counters_[static_cast<std::size_t>(dst)].timeouts;
      throw comm_timeout_error(dst, "recv", opts_.timeout);
    }
  } else {
    box.ready.wait(lock, ready);
  }
  // Drain-then-abort: a message that already arrived is still delivered so
  // a rank about to make progress is not failed spuriously; the abort is
  // observed at the next blocking call.
  const auto it = box.queues.find(key);
  if (it == box.queues.end() || it->second.empty()) {
    ++counters_[static_cast<std::size_t>(dst)].aborts_observed;
    throw world_aborted(dst, failed_rank());
  }
  auto& queue = box.queues[key];
  std::vector<double> out = std::move(queue.front());
  queue.pop_front();
  return out;
}

void world::barrier_wait(int rank) {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (abort_requested()) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  const auto released = [&] {
    return barrier_generation_ != gen || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!barrier_cv_.wait_for(lock, opts_.timeout, released)) {
      ++counters_[static_cast<std::size_t>(rank)].timeouts;
      throw comm_timeout_error(rank, "barrier", opts_.timeout);
    }
  } else {
    barrier_cv_.wait(lock, released);
  }
  // A completed barrier wins over a concurrent abort: the caller made
  // progress and will observe the abort at its next blocking call.
  if (barrier_generation_ == gen) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
}

double world::reduce(int rank, double value, bool take_max) {
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  const auto abort_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  };
  const auto timeout_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].timeouts;
    throw comm_timeout_error(rank, "allreduce", opts_.timeout);
  };
  // Wait until the previous reduction fully drained (everyone departed).
  const auto drained = [&] {
    return reduce_departed_ == 0 || reduce_arrived_ > 0 || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!reduce_cv_.wait_for(lock, opts_.timeout, drained)) timeout_here();
  } else {
    reduce_cv_.wait(lock, drained);
  }
  if (abort_requested()) abort_here();
  const std::uint64_t gen = reduce_generation_;
  reduce_slots_[static_cast<std::size_t>(rank)] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Last one in computes the result in deterministic rank order.
    double acc = reduce_slots_[0];
    for (int p = 1; p < num_ranks_; ++p) {
      const double v = reduce_slots_[static_cast<std::size_t>(p)];
      acc = take_max ? std::max(acc, v) : acc + v;
    }
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    reduce_departed_ = num_ranks_;
    ++reduce_generation_;
    reduce_cv_.notify_all();
  } else {
    const auto released = [&] {
      return reduce_generation_ != gen || abort_requested();
    };
    if (opts_.timeout.count() > 0) {
      if (!reduce_cv_.wait_for(lock, opts_.timeout, released)) timeout_here();
    } else {
      reduce_cv_.wait(lock, released);
    }
    if (reduce_generation_ == gen) abort_here();
  }
  const double result = reduce_result_;
  if (--reduce_departed_ == 0) reduce_cv_.notify_all();
  return result;
}

void world::trigger_abort(int rank) {
  int expected = -1;
  failed_rank_.compare_exchange_strong(expected, rank,
                                       std::memory_order_acq_rel);
  abort_flag_.store(true, std::memory_order_release);
  // Wake every potential waiter. Taking each lock before notifying closes
  // the race against a rank that checked the flag but has not yet parked.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.ready.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(reduce_mutex_);
    reduce_cv_.notify_all();
  }
}

void world::reset_run_state() {
  abort_flag_.store(false, std::memory_order_release);
  failed_rank_.store(-1, std::memory_order_release);
  for (auto& box : mailboxes_) box.queues.clear();
  counters_.assign(static_cast<std::size_t>(num_ranks_), rank_counters{});
  injectors_.clear();
  injectors_.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) injectors_.emplace_back(opts_.faults, p);
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  std::fill(reduce_slots_.begin(), reduce_slots_.end(), 0.0);
  reduce_arrived_ = 0;
  reduce_departed_ = 0;
  reduce_generation_ = 0;
  reduce_result_ = 0;
}

void world::run(const std::function<void(communicator&)>& rank_main) {
  SFP_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  reset_run_state();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) {
    threads.emplace_back([this, p, &rank_main, &errors] {
      communicator comm(*this, p);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
        trigger_abort(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  const int failed = failed_rank();
  if (failed >= 0) {
    // failed_rank_ is the first rank whose exception escaped — the root
    // cause; everyone else holds a cascading world_aborted.
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  }
}

}  // namespace sfp::runtime
