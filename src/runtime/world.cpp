#include "runtime/world.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::runtime {

namespace {

// Registry handles for the blocking-wait histograms, resolved once. The
// "queue wait" is the time parked on a condition variable — the part of a
// recv/barrier/allreduce spent waiting on peers, as opposed to transfer.
obs::histogram& recv_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.recv.queue_wait.us");
  return h;
}
obs::histogram& recv_transfer_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.recv.transfer.us");
  return h;
}
obs::histogram& barrier_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.barrier.wait.us");
  return h;
}
obs::histogram& allreduce_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.allreduce.wait.us");
  return h;
}
obs::histogram& send_bytes_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.send.message_bytes");
  return h;
}

std::string aborted_message(int self, int failed_rank) {
  std::ostringstream os;
  os << "world aborted: rank " << failed_rank << " failed (observed on rank "
     << self << ")";
  return os.str();
}

std::string timeout_message(int self, const char* op,
                            std::chrono::milliseconds t) {
  std::ostringstream os;
  os << "communication timeout: rank " << self << " waited " << t.count()
     << " ms in " << op;
  return os.str();
}

int validated_rank_count(int n) {
  SFP_REQUIRE(n >= 1, "world needs at least one rank");
  return n;
}

}  // namespace

world_aborted::world_aborted(int self, int failed_rank)
    : std::runtime_error(aborted_message(self, failed_rank)),
      failed_rank_(failed_rank) {}

comm_timeout_error::comm_timeout_error(int self, const char* op,
                                       std::chrono::milliseconds t)
    : std::runtime_error(timeout_message(self, op, t)), rank_(self) {}

rank_counters& rank_counters::operator+=(const rank_counters& o) {
  messages_sent += o.messages_sent;
  messages_received += o.messages_received;
  doubles_sent += o.doubles_sent;
  doubles_received += o.doubles_received;
  barriers += o.barriers;
  reductions += o.reductions;
  timeouts += o.timeouts;
  aborts_observed += o.aborts_observed;
  injected_kills += o.injected_kills;
  injected_drops += o.injected_drops;
  injected_delays += o.injected_delays;
  injected_duplicates += o.injected_duplicates;
  injected_corruptions += o.injected_corruptions;
  injected_truncations += o.injected_truncations;
  injected_reorders += o.injected_reorders;
  return *this;
}

int communicator::size() const { return world_->size(); }

void communicator::send(int dst, int tag, std::span<const double> data) {
  SFP_REQUIRE(dst >= 0 && dst < world_->size(), "destination out of range");
  SFP_TRACE_SCOPE_CAT("world.send", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  rank_counters& counters = world_->counters_[self];
  fault_injector& injector = world_->injectors_[self];
  try {
    injector.on_op();
  } catch (const rank_killed&) {
    ++counters.injected_kills;
    throw;
  }

  const fault_injector::send_action action =
      injector.on_send(dst, tag, data.size());
  if (action.drop) {
    ++counters.injected_drops;
    return;
  }
  if (action.delay.count() > 0) {
    ++counters.injected_delays;
    std::this_thread::sleep_for(action.delay);
  }
  // Build the (possibly mangled) wire image once; duplicates replay it.
  std::vector<double> wire(data.begin(), data.end());
  if (action.truncate) {
    ++counters.injected_truncations;
    wire.resize(action.truncate_to);
  }
  if (action.corrupt && action.corrupt_element < wire.size()) {
    ++counters.injected_corruptions;
    std::uint64_t bits;
    std::memcpy(&bits, &wire[action.corrupt_element], sizeof(bits));
    bits ^= std::uint64_t{1} << action.corrupt_bit;
    std::memcpy(&wire[action.corrupt_element], &bits, sizeof(bits));
  }
  auto& stash = world_->reorder_stash_[self];
  const auto stash_key = std::pair(dst, tag);
  std::vector<double> held;
  bool flush_held = false;
  if (const auto it = stash.find(stash_key); it != stash.end()) {
    held = std::move(it->second);
    stash.erase(it);
    flush_held = true;  // delivered after this message: the injected swap
  }
  const bool stash_this = action.reorder && !flush_held;
  if (stash_this) ++counters.injected_reorders;
  // A reordered message is held as a single copy (duplication would be
  // collapsed by the stash anyway); a message that never gets a successor
  // on its stream stays stashed, i.e. degenerates to a drop.
  const int copies = action.duplicate && !stash_this ? 2 : 1;
  if (action.duplicate && !stash_this) ++counters.injected_duplicates;
  for (int c = 0; c < copies; ++c) {
    if (stash_this) {
      stash[stash_key] = wire;
    } else {
      world_->deliver(dst, rank_, tag, wire);
    }
    ++counters.messages_sent;
    counters.doubles_sent += static_cast<std::int64_t>(wire.size());
    world_->tag_doubles_[self][tag] += static_cast<std::int64_t>(wire.size());
    send_bytes_hist().observe(
        static_cast<std::int64_t>(wire.size() * sizeof(double)));
  }
  if (flush_held) {
    world_->deliver(dst, rank_, tag, std::move(held));
  }
}

std::vector<double> communicator::recv(int src, int tag) {
  SFP_REQUIRE(src >= 0 && src < world_->size(), "source out of range");
  SFP_TRACE_SCOPE_CAT("world.recv", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  rank_counters& counters = world_->counters_[self];
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++counters.injected_kills;
    throw;
  }
  const std::int64_t t0 = obs::now_ns();
  std::int64_t wait_ns = 0;
  std::vector<double> msg = world_->take(rank_, src, tag, &wait_ns);
  recv_wait_hist().observe(wait_ns / 1000);
  recv_transfer_hist().observe((obs::now_ns() - t0 - wait_ns) / 1000);
  ++counters.messages_received;
  counters.doubles_received += static_cast<std::int64_t>(msg.size());
  return msg;
}

bool communicator::try_recv_any(int tag, std::chrono::microseconds wait,
                                any_message* out) {
  SFP_REQUIRE(out != nullptr, "try_recv_any needs an output slot");
  return world_->take_any(rank_, tag, wait, out);
}

void communicator::barrier() {
  SFP_TRACE_SCOPE_CAT("world.barrier", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  const std::int64_t t0 = obs::now_ns();
  world_->barrier_wait(rank_);
  barrier_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].barriers;
}

double communicator::allreduce_sum(double value) {
  SFP_TRACE_SCOPE_CAT("world.allreduce", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  const std::int64_t t0 = obs::now_ns();
  const double r = world_->reduce(rank_, value, /*take_max=*/false);
  allreduce_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].reductions;
  return r;
}

double communicator::allreduce_max(double value) {
  SFP_TRACE_SCOPE_CAT("world.allreduce", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  try {
    world_->injectors_[self].on_op();
  } catch (const rank_killed&) {
    ++world_->counters_[self].injected_kills;
    throw;
  }
  const std::int64_t t0 = obs::now_ns();
  const double r = world_->reduce(rank_, value, /*take_max=*/true);
  allreduce_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].reductions;
  return r;
}

world::world(int num_ranks) : world(num_ranks, options()) {}

world::world(int num_ranks, options opts)
    : num_ranks_(validated_rank_count(num_ranks)),
      opts_(std::move(opts)),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      counters_(static_cast<std::size_t>(num_ranks)),
      tag_doubles_(static_cast<std::size_t>(num_ranks)),
      reorder_stash_(static_cast<std::size_t>(num_ranks)),
      reduce_slots_(static_cast<std::size_t>(num_ranks), 0.0) {}

const rank_counters& world::counters(int rank) const {
  SFP_REQUIRE(rank >= 0 && rank < num_ranks_, "rank out of range");
  return counters_[static_cast<std::size_t>(rank)];
}

rank_counters world::total_counters() const {
  rank_counters total;
  for (const auto& c : counters_) total += c;
  return total;
}

std::map<int, std::int64_t> world::total_doubles_by_tag() const {
  std::map<int, std::int64_t> total;
  for (const auto& per_rank : tag_doubles_)
    for (const auto& [tag, doubles] : per_rank) total[tag] += doubles;
  return total;
}

void world::publish_metrics() const {
  obs::registry& reg = obs::registry::global();
  const rank_counters t = total_counters();
  reg.get_counter("runtime.messages_sent").add(t.messages_sent);
  reg.get_counter("runtime.messages_received").add(t.messages_received);
  reg.get_counter("runtime.doubles_sent").add(t.doubles_sent);
  reg.get_counter("runtime.doubles_received").add(t.doubles_received);
  reg.get_counter("runtime.barriers").add(t.barriers);
  reg.get_counter("runtime.reductions").add(t.reductions);
  reg.get_counter("runtime.timeouts").add(t.timeouts);
  reg.get_counter("runtime.aborts_observed").add(t.aborts_observed);
  reg.get_counter("runtime.injected.kills").add(t.injected_kills);
  reg.get_counter("runtime.injected.drops").add(t.injected_drops);
  reg.get_counter("runtime.injected.delays").add(t.injected_delays);
  reg.get_counter("runtime.injected.duplicates").add(t.injected_duplicates);
  reg.get_counter("runtime.injected.corruptions").add(t.injected_corruptions);
  reg.get_counter("runtime.injected.truncations").add(t.injected_truncations);
  reg.get_counter("runtime.injected.reorders").add(t.injected_reorders);
  // Per-tag wire volume only while a session is observing: tag counts grow
  // with step count, so an unattended long run must not grow the registry.
  if (!obs::trace::enabled()) return;
  for (const auto& [tag, doubles] : total_doubles_by_tag())
    reg.get_counter("runtime.send.bytes.tag" + std::to_string(tag))
        .add(doubles * static_cast<std::int64_t>(sizeof(double)));
}

void world::deliver(int dst, int src, int tag, std::vector<double> data) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(data));
  }
  box.ready.notify_all();
}

std::vector<double> world::take(int dst, int src, int tag,
                                std::int64_t* wait_ns) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::pair(src, tag);
  const auto ready = [&] {
    if (abort_requested()) return true;
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  };
  const std::int64_t wait_start = obs::now_ns();
  if (opts_.timeout.count() > 0) {
    if (!box.ready.wait_for(lock, opts_.timeout, ready)) {
      ++counters_[static_cast<std::size_t>(dst)].timeouts;
      throw comm_timeout_error(dst, "recv", opts_.timeout);
    }
  } else {
    box.ready.wait(lock, ready);
  }
  *wait_ns = obs::now_ns() - wait_start;
  // Drain-then-abort: a message that already arrived is still delivered so
  // a rank about to make progress is not failed spuriously; the abort is
  // observed at the next blocking call.
  const auto it = box.queues.find(key);
  if (it == box.queues.end() || it->second.empty()) {
    ++counters_[static_cast<std::size_t>(dst)].aborts_observed;
    throw world_aborted(dst, failed_rank());
  }
  auto& queue = box.queues[key];
  std::vector<double> out = std::move(queue.front());
  queue.pop_front();
  return out;
}

bool world::take_any(int dst, int tag, std::chrono::microseconds wait,
                     any_message* out) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  // Lowest source rank first: a deterministic drain order given identical
  // mailbox contents (arrival interleaving still varies, but the reliable
  // layer is insensitive to it).
  const auto find_match = [&]() {
    for (auto it = box.queues.begin(); it != box.queues.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return box.queues.end();
  };
  const auto ready = [&] {
    return abort_requested() || find_match() != box.queues.end();
  };
  if (!box.ready.wait_for(lock, wait, ready)) return false;
  const auto it = find_match();
  if (it == box.queues.end()) {
    ++counters_[static_cast<std::size_t>(dst)].aborts_observed;
    throw world_aborted(dst, failed_rank());
  }
  out->src = it->first.first;
  out->tag = it->first.second;
  out->payload = std::move(it->second.front());
  it->second.pop_front();
  ++counters_[static_cast<std::size_t>(dst)].messages_received;
  counters_[static_cast<std::size_t>(dst)].doubles_received +=
      static_cast<std::int64_t>(out->payload.size());
  return true;
}

void world::barrier_wait(int rank) {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (abort_requested()) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  const auto released = [&] {
    return barrier_generation_ != gen || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!barrier_cv_.wait_for(lock, opts_.timeout, released)) {
      ++counters_[static_cast<std::size_t>(rank)].timeouts;
      throw comm_timeout_error(rank, "barrier", opts_.timeout);
    }
  } else {
    barrier_cv_.wait(lock, released);
  }
  // A completed barrier wins over a concurrent abort: the caller made
  // progress and will observe the abort at its next blocking call.
  if (barrier_generation_ == gen) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
}

double world::reduce(int rank, double value, bool take_max) {
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  const auto abort_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  };
  const auto timeout_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].timeouts;
    throw comm_timeout_error(rank, "allreduce", opts_.timeout);
  };
  // Wait until the previous reduction fully drained (everyone departed).
  const auto drained = [&] {
    return reduce_departed_ == 0 || reduce_arrived_ > 0 || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!reduce_cv_.wait_for(lock, opts_.timeout, drained)) timeout_here();
  } else {
    reduce_cv_.wait(lock, drained);
  }
  if (abort_requested()) abort_here();
  const std::uint64_t gen = reduce_generation_;
  reduce_slots_[static_cast<std::size_t>(rank)] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Last one in computes the result in deterministic rank order.
    double acc = reduce_slots_[0];
    for (int p = 1; p < num_ranks_; ++p) {
      const double v = reduce_slots_[static_cast<std::size_t>(p)];
      acc = take_max ? std::max(acc, v) : acc + v;
    }
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    reduce_departed_ = num_ranks_;
    ++reduce_generation_;
    reduce_cv_.notify_all();
  } else {
    const auto released = [&] {
      return reduce_generation_ != gen || abort_requested();
    };
    if (opts_.timeout.count() > 0) {
      if (!reduce_cv_.wait_for(lock, opts_.timeout, released)) timeout_here();
    } else {
      reduce_cv_.wait(lock, released);
    }
    if (reduce_generation_ == gen) abort_here();
  }
  const double result = reduce_result_;
  if (--reduce_departed_ == 0) reduce_cv_.notify_all();
  return result;
}

void world::trigger_abort(int rank) {
  int expected = -1;
  failed_rank_.compare_exchange_strong(expected, rank,
                                       std::memory_order_acq_rel);
  abort_flag_.store(true, std::memory_order_release);
  // Wake every potential waiter. Taking each lock before notifying closes
  // the race against a rank that checked the flag but has not yet parked.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.ready.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(reduce_mutex_);
    reduce_cv_.notify_all();
  }
}

void world::reset_run_state() {
  abort_flag_.store(false, std::memory_order_release);
  failed_rank_.store(-1, std::memory_order_release);
  for (auto& box : mailboxes_) box.queues.clear();
  counters_.assign(static_cast<std::size_t>(num_ranks_), rank_counters{});
  tag_doubles_.assign(static_cast<std::size_t>(num_ranks_), {});
  reorder_stash_.assign(static_cast<std::size_t>(num_ranks_), {});
  injectors_.clear();
  injectors_.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) injectors_.emplace_back(opts_.faults, p);
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  std::fill(reduce_slots_.begin(), reduce_slots_.end(), 0.0);
  reduce_arrived_ = 0;
  reduce_departed_ = 0;
  reduce_generation_ = 0;
  reduce_result_ = 0;
}

void world::run(const std::function<void(communicator&)>& rank_main) {
  SFP_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  reset_run_state();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) {
    threads.emplace_back([this, p, &rank_main, &errors] {
      if (obs::trace::enabled())
        obs::trace::set_thread_name("rank " + std::to_string(p));
      communicator comm(*this, p);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
        trigger_abort(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  publish_metrics();
  const int failed = failed_rank();
  if (failed >= 0) {
    // failed_rank_ is the first rank whose exception escaped — the root
    // cause; everyone else holds a cascading world_aborted.
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  }
}

}  // namespace sfp::runtime
