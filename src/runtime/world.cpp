#include "runtime/world.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/require.hpp"

namespace sfp::runtime {

int communicator::size() const { return world_->size(); }

void communicator::send(int dst, int tag, std::span<const double> data) {
  SFP_REQUIRE(dst >= 0 && dst < world_->size(), "destination out of range");
  world_->deliver(dst, rank_, tag, std::vector<double>(data.begin(), data.end()));
}

std::vector<double> communicator::recv(int src, int tag) {
  SFP_REQUIRE(src >= 0 && src < world_->size(), "source out of range");
  return world_->take(rank_, src, tag);
}

void communicator::barrier() { world_->barrier_wait(); }

double communicator::allreduce_sum(double value) {
  return world_->reduce(rank_, value, /*take_max=*/false);
}

double communicator::allreduce_max(double value) {
  return world_->reduce(rank_, value, /*take_max=*/true);
}

world::world(int num_ranks)
    : num_ranks_(num_ranks),
      mailboxes_(static_cast<std::size_t>(std::max(num_ranks, 1))),
      reduce_slots_(static_cast<std::size_t>(std::max(num_ranks, 1)), 0.0) {
  SFP_REQUIRE(num_ranks >= 1, "world needs at least one rank");
}

void world::deliver(int dst, int src, int tag, std::vector<double> data) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(data));
  }
  box.ready.notify_all();
}

std::vector<double> world::take(int dst, int src, int tag) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::pair(src, tag);
  box.ready.wait(lock, [&] {
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& queue = box.queues[key];
  std::vector<double> out = std::move(queue.front());
  queue.pop_front();
  return out;
}

void world::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
  }
}

double world::reduce(int rank, double value, bool take_max) {
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  // Wait until the previous reduction fully drained (everyone departed).
  reduce_cv_.wait(lock, [&] { return reduce_departed_ == 0 || reduce_arrived_ > 0; });
  const std::uint64_t gen = reduce_generation_;
  reduce_slots_[static_cast<std::size_t>(rank)] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Last one in computes the result in deterministic rank order.
    double acc = reduce_slots_[0];
    for (int p = 1; p < num_ranks_; ++p) {
      const double v = reduce_slots_[static_cast<std::size_t>(p)];
      acc = take_max ? std::max(acc, v) : acc + v;
    }
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    reduce_departed_ = num_ranks_;
    ++reduce_generation_;
    reduce_cv_.notify_all();
  } else {
    reduce_cv_.wait(lock, [&] { return reduce_generation_ != gen; });
  }
  const double result = reduce_result_;
  if (--reduce_departed_ == 0) reduce_cv_.notify_all();
  return result;
}

void world::run(const std::function<void(communicator&)>& rank_main) {
  SFP_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) {
    threads.emplace_back([this, p, &rank_main, &errors] {
      communicator comm(*this, p);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace sfp::runtime
