#include "runtime/world.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::runtime {

namespace {

// Registry handles for the blocking-wait histograms, resolved once. The
// "queue wait" is the time parked on a condition variable — the part of a
// recv/barrier/allreduce spent waiting on peers, as opposed to transfer.
obs::histogram& recv_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.recv.queue_wait.us");
  return h;
}
obs::histogram& recv_transfer_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.recv.transfer.us");
  return h;
}
obs::histogram& barrier_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.barrier.wait.us");
  return h;
}
obs::histogram& allreduce_wait_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.allreduce.wait.us");
  return h;
}
obs::histogram& send_bytes_hist() {
  static obs::histogram& h =
      obs::registry::global().get_histogram("runtime.send.message_bytes");
  return h;
}

int validated_rank_count(int n) {
  SFP_REQUIRE(n >= 1, "world needs at least one rank");
  return n;
}

}  // namespace

int communicator::size() const { return world_->size(); }

void communicator::send(int dst, int tag, std::span<const double> data) {
  SFP_REQUIRE(dst >= 0 && dst < world_->size(), "destination out of range");
  SFP_TRACE_SCOPE_CAT("world.send", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  injection_pipeline& pipeline = world_->pipelines_[self];
  pipeline.count_op();
  injection_pipeline::outcome out = pipeline.on_send(dst, tag, data);
  for (int c = 0; c < out.accounted_copies; ++c) {
    world_->tag_doubles_[self][tag] +=
        static_cast<std::int64_t>(out.copy_doubles);
    send_bytes_hist().observe(
        static_cast<std::int64_t>(out.copy_doubles * sizeof(double)));
  }
  for (auto& image : out.wire)
    world_->deliver(dst, rank_, tag, std::move(image));
}

std::vector<double> communicator::recv(int src, int tag) {
  SFP_REQUIRE(src >= 0 && src < world_->size(), "source out of range");
  SFP_TRACE_SCOPE_CAT("world.recv", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  rank_counters& counters = world_->counters_[self];
  world_->pipelines_[self].count_op();
  const std::int64_t t0 = obs::now_ns();
  std::int64_t wait_ns = 0;
  std::vector<double> msg = world_->take(rank_, src, tag, &wait_ns);
  recv_wait_hist().observe(wait_ns / 1000);
  recv_transfer_hist().observe((obs::now_ns() - t0 - wait_ns) / 1000);
  ++counters.messages_received;
  counters.doubles_received += static_cast<std::int64_t>(msg.size());
  return msg;
}

bool communicator::try_recv_any(int tag, std::chrono::microseconds wait,
                                any_message* out) {
  SFP_REQUIRE(out != nullptr, "try_recv_any needs an output slot");
  return world_->take_any(rank_, tag, wait, out);
}

void communicator::barrier() {
  SFP_TRACE_SCOPE_CAT("world.barrier", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  world_->pipelines_[self].count_op();
  const std::int64_t t0 = obs::now_ns();
  world_->barrier_wait(rank_);
  barrier_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].barriers;
}

double communicator::allreduce_sum(double value) {
  SFP_TRACE_SCOPE_CAT("world.allreduce", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  world_->pipelines_[self].count_op();
  const std::int64_t t0 = obs::now_ns();
  const double r = world_->reduce(rank_, value, /*take_max=*/false);
  allreduce_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].reductions;
  return r;
}

double communicator::allreduce_max(double value) {
  SFP_TRACE_SCOPE_CAT("world.allreduce", "runtime");
  const auto self = static_cast<std::size_t>(rank_);
  world_->pipelines_[self].count_op();
  const std::int64_t t0 = obs::now_ns();
  const double r = world_->reduce(rank_, value, /*take_max=*/true);
  allreduce_wait_hist().observe((obs::now_ns() - t0) / 1000);
  ++world_->counters_[self].reductions;
  return r;
}

world::world(int num_ranks) : world(num_ranks, options()) {}

world::world(int num_ranks, options opts)
    : num_ranks_(validated_rank_count(num_ranks)),
      opts_(std::move(opts)),
      mailboxes_(static_cast<std::size_t>(num_ranks)),
      counters_(static_cast<std::size_t>(num_ranks)),
      tag_doubles_(static_cast<std::size_t>(num_ranks)),
      reduce_slots_(static_cast<std::size_t>(num_ranks), 0.0) {}

const rank_counters& world::counters(int rank) const {
  SFP_REQUIRE(rank >= 0 && rank < num_ranks_, "rank out of range");
  return counters_[static_cast<std::size_t>(rank)];
}

rank_counters world::total_counters() const {
  rank_counters total;
  for (const auto& c : counters_) total += c;
  return total;
}

std::map<int, std::int64_t> world::total_doubles_by_tag() const {
  std::map<int, std::int64_t> total;
  for (const auto& per_rank : tag_doubles_)
    for (const auto& [tag, doubles] : per_rank) total[tag] += doubles;
  return total;
}

void world::publish_metrics() const {
  obs::registry& reg = obs::registry::global();
  const rank_counters t = total_counters();
  reg.get_counter("runtime.messages_sent").add(t.messages_sent);
  reg.get_counter("runtime.messages_received").add(t.messages_received);
  reg.get_counter("runtime.doubles_sent").add(t.doubles_sent);
  reg.get_counter("runtime.doubles_received").add(t.doubles_received);
  reg.get_counter("runtime.barriers").add(t.barriers);
  reg.get_counter("runtime.reductions").add(t.reductions);
  reg.get_counter("runtime.timeouts").add(t.timeouts);
  reg.get_counter("runtime.aborts_observed").add(t.aborts_observed);
  reg.get_counter("runtime.injected.kills").add(t.injected_kills);
  reg.get_counter("runtime.injected.drops").add(t.injected_drops);
  reg.get_counter("runtime.injected.delays").add(t.injected_delays);
  reg.get_counter("runtime.injected.duplicates").add(t.injected_duplicates);
  reg.get_counter("runtime.injected.corruptions").add(t.injected_corruptions);
  reg.get_counter("runtime.injected.truncations").add(t.injected_truncations);
  reg.get_counter("runtime.injected.reorders").add(t.injected_reorders);
  // Per-tag wire volume only while a session is observing: tag counts grow
  // with step count, so an unattended long run must not grow the registry.
  if (!obs::trace::enabled()) return;
  for (const auto& [tag, doubles] : total_doubles_by_tag())
    reg.get_counter("runtime.send.bytes.tag" + std::to_string(tag))
        .add(doubles * static_cast<std::int64_t>(sizeof(double)));
}

void world::deliver(int dst, int src, int tag, std::vector<double> data) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(data));
  }
  box.ready.notify_all();
}

std::vector<double> world::take(int dst, int src, int tag,
                                std::int64_t* wait_ns) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::pair(src, tag);
  const auto ready = [&] {
    if (abort_requested()) return true;
    const auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  };
  const std::int64_t wait_start = obs::now_ns();
  if (opts_.timeout.count() > 0) {
    if (!box.ready.wait_for(lock, opts_.timeout, ready)) {
      ++counters_[static_cast<std::size_t>(dst)].timeouts;
      throw comm_timeout_error(dst, "recv", opts_.timeout);
    }
  } else {
    box.ready.wait(lock, ready);
  }
  *wait_ns = obs::now_ns() - wait_start;
  // Drain-then-abort: a message that already arrived is still delivered so
  // a rank about to make progress is not failed spuriously; the abort is
  // observed at the next blocking call.
  const auto it = box.queues.find(key);
  if (it == box.queues.end() || it->second.empty()) {
    ++counters_[static_cast<std::size_t>(dst)].aborts_observed;
    throw world_aborted(dst, failed_rank());
  }
  auto& queue = box.queues[key];
  std::vector<double> out = std::move(queue.front());
  queue.pop_front();
  return out;
}

bool world::take_any(int dst, int tag, std::chrono::microseconds wait,
                     any_message* out) {
  mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mutex);
  // Lowest source rank first: a deterministic drain order given identical
  // mailbox contents (arrival interleaving still varies, but the reliable
  // layer is insensitive to it).
  const auto find_match = [&]() {
    for (auto it = box.queues.begin(); it != box.queues.end(); ++it)
      if (it->first.second == tag && !it->second.empty()) return it;
    return box.queues.end();
  };
  const auto ready = [&] {
    return abort_requested() || find_match() != box.queues.end();
  };
  if (!box.ready.wait_for(lock, wait, ready)) return false;
  const auto it = find_match();
  if (it == box.queues.end()) {
    ++counters_[static_cast<std::size_t>(dst)].aborts_observed;
    throw world_aborted(dst, failed_rank());
  }
  out->src = it->first.first;
  out->tag = it->first.second;
  out->payload = std::move(it->second.front());
  it->second.pop_front();
  ++counters_[static_cast<std::size_t>(dst)].messages_received;
  counters_[static_cast<std::size_t>(dst)].doubles_received +=
      static_cast<std::int64_t>(out->payload.size());
  return true;
}

void world::barrier_wait(int rank) {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (abort_requested()) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  const auto released = [&] {
    return barrier_generation_ != gen || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!barrier_cv_.wait_for(lock, opts_.timeout, released)) {
      ++counters_[static_cast<std::size_t>(rank)].timeouts;
      throw comm_timeout_error(rank, "barrier", opts_.timeout);
    }
  } else {
    barrier_cv_.wait(lock, released);
  }
  // A completed barrier wins over a concurrent abort: the caller made
  // progress and will observe the abort at its next blocking call.
  if (barrier_generation_ == gen) {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  }
}

double world::reduce(int rank, double value, bool take_max) {
  std::unique_lock<std::mutex> lock(reduce_mutex_);
  const auto abort_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].aborts_observed;
    throw world_aborted(rank, failed_rank());
  };
  const auto timeout_here = [&] {
    ++counters_[static_cast<std::size_t>(rank)].timeouts;
    throw comm_timeout_error(rank, "allreduce", opts_.timeout);
  };
  // Wait until the previous reduction fully drained (everyone departed).
  const auto drained = [&] {
    return reduce_departed_ == 0 || reduce_arrived_ > 0 || abort_requested();
  };
  if (opts_.timeout.count() > 0) {
    if (!reduce_cv_.wait_for(lock, opts_.timeout, drained)) timeout_here();
  } else {
    reduce_cv_.wait(lock, drained);
  }
  if (abort_requested()) abort_here();
  const std::uint64_t gen = reduce_generation_;
  reduce_slots_[static_cast<std::size_t>(rank)] = value;
  if (++reduce_arrived_ == num_ranks_) {
    // Last one in computes the result in deterministic rank order.
    double acc = reduce_slots_[0];
    for (int p = 1; p < num_ranks_; ++p) {
      const double v = reduce_slots_[static_cast<std::size_t>(p)];
      acc = take_max ? std::max(acc, v) : acc + v;
    }
    reduce_result_ = acc;
    reduce_arrived_ = 0;
    reduce_departed_ = num_ranks_;
    ++reduce_generation_;
    reduce_cv_.notify_all();
  } else {
    const auto released = [&] {
      return reduce_generation_ != gen || abort_requested();
    };
    if (opts_.timeout.count() > 0) {
      if (!reduce_cv_.wait_for(lock, opts_.timeout, released)) timeout_here();
    } else {
      reduce_cv_.wait(lock, released);
    }
    if (reduce_generation_ == gen) abort_here();
  }
  const double result = reduce_result_;
  if (--reduce_departed_ == 0) reduce_cv_.notify_all();
  return result;
}

void world::trigger_abort(int rank) {
  int expected = -1;
  failed_rank_.compare_exchange_strong(expected, rank,
                                       std::memory_order_acq_rel);
  abort_flag_.store(true, std::memory_order_release);
  // Wake every potential waiter. Taking each lock before notifying closes
  // the race against a rank that checked the flag but has not yet parked.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.ready.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(reduce_mutex_);
    reduce_cv_.notify_all();
  }
}

void world::reset_run_state() {
  abort_flag_.store(false, std::memory_order_release);
  failed_rank_.store(-1, std::memory_order_release);
  for (auto& box : mailboxes_) box.queues.clear();
  counters_.assign(static_cast<std::size_t>(num_ranks_), rank_counters{});
  tag_doubles_.assign(static_cast<std::size_t>(num_ranks_), {});
  // counters_ is at its final size here, so the pipelines' pointers into it
  // stay valid for the whole run.
  pipelines_.clear();
  pipelines_.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p)
    pipelines_.emplace_back(opts_.faults, p,
                            &counters_[static_cast<std::size_t>(p)]);
  barrier_arrived_ = 0;
  barrier_generation_ = 0;
  std::fill(reduce_slots_.begin(), reduce_slots_.end(), 0.0);
  reduce_arrived_ = 0;
  reduce_departed_ = 0;
  reduce_generation_ = 0;
  reduce_result_ = 0;
}

void world::run(const std::function<void(communicator&)>& rank_main) {
  SFP_REQUIRE(static_cast<bool>(rank_main), "rank_main must be callable");
  reset_run_state();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(num_ranks_));
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int p = 0; p < num_ranks_; ++p) {
    threads.emplace_back([this, p, &rank_main, &errors] {
      if (obs::trace::enabled())
        obs::trace::set_thread_name("rank " + std::to_string(p));
      communicator comm(*this, p);
      try {
        rank_main(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
        trigger_abort(p);
      }
    });
  }
  for (auto& t : threads) t.join();
  publish_metrics();
  const int failed = failed_rank();
  if (failed >= 0) {
    // failed_rank_ is the first rank whose exception escaped — the root
    // cause; everyone else holds a cascading world_aborted.
    std::rethrow_exception(errors[static_cast<std::size_t>(failed)]);
  }
}

}  // namespace sfp::runtime
