#pragma once
// Reliable-delivery layer over any runtime::transport backend.
//
// The raw fabric gives asynchronous, unreliable datagram sends: under fault
// injection (or over a real byte stream) a message can be dropped,
// duplicated, bit-flipped, truncated, or reordered — and the only defence
// raw users have is the per-call timeout, which escalates a lost packet all
// the way to a plan_recovery re-slice. reliable_channel heals those
// transient faults in place, identically over the in-process world adapter
// and the socket backend (runtime/socket_transport.hpp):
//
//   * every payload travels in an envelope carrying a magic/type word, an
//     epoch id, the logical tag, a per-(sender,receiver,tag) sequence
//     number, the payload length, and a CRC32C over header+payload;
//   * receivers verify the envelope (corrupt/truncated messages are counted
//     and dropped — the retransmit path re-delivers them), deduplicate by
//     sequence number, park out-of-order arrivals in a reorder buffer, and
//     acknowledge every accepted or re-seen message;
//   * senders keep unacknowledged wire images and retransmit them with
//     capped exponential backoff; a message that exhausts max_retransmits
//     raises peer_unreachable_error, which the seam's resilient runner
//     escalates to the existing plan_recovery path (the rung between
//     "retransmit" and "re-slice" on the escalation ladder).
//
// All traffic — data and acks — multiplexes over one reserved wire tag so a
// single try_recv_any pump drains it; the logical tag lives inside the
// envelope. Acks are themselves subject to fault injection: a lost ack is
// healed by the retransmit + dedup-re-ack cycle.
//
// Deadlock-freedom: every blocking reliable op (recv, flush, fence) runs the
// progress pump, so a rank waiting on its own traffic keeps servicing its
// peers' retransmissions. Exchanges must end with flush() (all own sends
// acked) followed by fence() — a pumping dissemination barrier — before any
// raw, non-pumping collective: while any rank is still flushing, every other
// rank is provably inside a pumping call, so the missing re-ack always
// arrives. The destructor absorbs the final unacknowledgeable acks (the
// two-generals tail) by pumping for a bounded linger, then discarding.
//
// See docs/runtime_faults.md for the wire format and the full ack/retransmit
// state machine.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/transport.hpp"
#include "runtime/world.hpp"
#include "util/rng.hpp"

namespace sfp::runtime {

/// CRC32C (Castagnoli, reflected polynomial 0x82f63b78) over raw bytes.
/// Software table implementation — the checksum the envelope carries.
std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t crc = 0);

/// Thrown when a message to `peer` exhausted its retransmit budget (or a
/// reliable recv waited out recv_timeout): the transient-fault machinery
/// gives up and the caller should escalate to rank recovery.
class peer_unreachable_error : public std::runtime_error {
 public:
  peer_unreachable_error(int self, int peer, int attempts);
  int rank() const { return rank_; }
  int peer() const { return peer_; }
  /// Retransmit attempts behind the failure: > 0 means delivery-level
  /// proof (a full retransmit budget burned against silence), 0 means a
  /// bare recv timeout — a much weaker death signal, which the regroup
  /// layer weighs against a patience budget instead of trusting outright.
  int attempts() const { return attempts_; }

 private:
  int rank_;
  int peer_;
  int attempts_;
};

/// All reliable traffic shares this one wire tag (outside the seam's logical
/// tag range); the envelope carries the logical tag.
inline constexpr int reliable_wire_tag = 1 << 20;

/// Envelope header prepended to every wire message, one uint64 bit-image per
/// double. Exposed (with encode/decode) so tests and the chaos shrinker can
/// reason about the wire format directly.
struct envelope {
  enum class kind : std::uint8_t { data = 0, ack = 1 };
  kind type = kind::data;
  std::uint64_t epoch = 0;
  int tag = 0;            ///< logical tag, recovered from the envelope
  std::uint64_t seq = 0;  ///< per-(sender,receiver,tag) sequence number
  std::uint64_t payload_doubles = 0;
  std::uint32_t crc = 0;  ///< CRC32C over header words 0..4 + payload bytes
};

namespace wire {

inline constexpr std::size_t header_doubles = 6;

/// Build the wire image: 6 header doubles followed by the payload.
std::vector<double> encode(const envelope& header,
                           std::span<const double> payload);

/// Parse and verify a wire image. Returns false on any malformation —
/// short message, bad magic, length mismatch (truncation), or checksum
/// mismatch (corruption; skipped when verify_checksum is false). On success
/// fills *header and *payload.
bool decode(std::span<const double> message, bool verify_checksum,
            envelope* header, std::vector<double>* payload);

}  // namespace wire

/// Tuning knobs and test hooks for a reliable_channel.
struct reliable_options {
  /// First retransmit fires this long after the original send; each further
  /// attempt doubles the wait up to max_backoff (capped exponential).
  std::chrono::microseconds retransmit_timeout{200};
  std::chrono::microseconds max_backoff{2000};
  /// Deterministic jitter on every retransmit deadline: the capped backoff
  /// is stretched by a factor drawn uniformly from [1, 1 + jitter), on a
  /// per-channel rng seeded from (epoch, rank). Zero disables the draw
  /// entirely. Jitter is applied *after* the cap so deadlines keep
  /// decorrelating at max_backoff — without it, peers that lost the same
  /// message retransmit in lockstep and a congested socket backend sees
  /// synchronized storms.
  double retransmit_jitter = 0.1;
  /// Retransmit attempts before declaring the peer unreachable.
  int max_retransmits = 40;
  /// How long one pump iteration parks in try_recv_any.
  std::chrono::microseconds pump_quantum{50};
  /// Per recv()/fence-round deadline; zero = wait forever.
  std::chrono::milliseconds recv_timeout{2000};
  /// Destructor pump budget for the two-generals ack tail.
  std::chrono::milliseconds shutdown_linger{50};
  /// Stale-epoch filter: messages from another epoch (a previous recovery
  /// attempt) are dropped on receipt.
  std::uint64_t epoch = 0;
  /// TEST HOOK — deliberately broken transport for the chaos soak: with
  /// verification off, corrupted payloads are delivered as-is and the soak
  /// harness must catch the resulting field divergence.
  bool verify_checksums = true;
  /// TEST HOOK — starting sequence number for every stream, on both the
  /// send and expect side. Setting it near UINT64_MAX exercises the
  /// sequence-number wraparound path without sending 2^64 messages.
  std::uint64_t first_seq = 0;
};

/// The retransmit deadline for a message on its `attempts`-th resend:
/// retransmit_timeout * 2^attempts, clamped to max_backoff, then stretched
/// by the deterministic jitter draw from `r` (see
/// reliable_options::retransmit_jitter). Exposed for the jitter unit tests.
std::chrono::microseconds compute_backoff(const reliable_options& opts,
                                          int attempts, rng& r);

/// Per-channel robustness accounting (one channel per rank per attempt).
struct reliable_stats {
  std::int64_t data_sent = 0;
  std::int64_t data_received = 0;   ///< accepted, in-order deliveries
  std::int64_t retransmits = 0;
  std::int64_t corruption_detected = 0;  ///< envelope verify failures
  std::int64_t dedup_dropped = 0;        ///< duplicate seq, re-acked
  std::int64_t out_of_order = 0;         ///< parked in the reorder buffer
  std::int64_t acks_sent = 0;
  std::int64_t acks_received = 0;
  std::int64_t stale_dropped = 0;        ///< wrong-epoch messages
  std::int64_t shutdown_discarded = 0;   ///< unacked entries dropped at exit

  reliable_stats& operator+=(const reliable_stats& o);
};

/// Exactly-once, in-order, checksummed delivery for one rank. Owned and
/// driven by a single rank thread; all cross-thread traffic goes through the
/// transport backend underneath.
class reliable_channel {
 public:
  /// Over any backend: the caller keeps ownership of the transport, which
  /// must outlive the channel.
  explicit reliable_channel(transport& fabric, reliable_options opts = {});
  /// Convenience for the in-process fabric: wraps `comm` in an owned
  /// inproc_transport adapter.
  explicit reliable_channel(communicator& comm, reliable_options opts = {});
  ~reliable_channel();
  reliable_channel(const reliable_channel&) = delete;
  reliable_channel& operator=(const reliable_channel&) = delete;

  /// Non-blocking: envelope the payload, record it as unacked, deliver.
  void send(int dst, int tag, std::span<const double> data);

  /// Blocking: pump until the next in-order message on (src, tag) is
  /// available. Throws peer_unreachable_error after recv_timeout.
  std::vector<double> recv(int src, int tag);

  /// Pump until every send has been acknowledged (retransmitting as
  /// deadlines expire). Call before leaving an exchange phase.
  void flush();

  /// Pumping dissemination barrier over the channel itself: returns when
  /// every rank has entered (and therefore passed its flush()). Required
  /// between flush() and any raw, non-pumping collective.
  void fence();

  /// Drop every piece of per-peer delivery state: unacknowledged sends
  /// addressed to `peer` (counted as shutdown_discarded) plus its receive
  /// cursors, reorder parkings and undelivered ready messages. Called by
  /// the survivor-regroup layer once `peer` is presumed dead, so the
  /// corpse's traffic stops tripping retransmit exhaustion mid-recovery.
  void forget_peer(int peer);

  /// Give up on every outstanding send (counted as shutdown_discarded) so
  /// the destructor skips its linger pump entirely. Called by a rank that
  /// has been killed by fault injection: a corpse must fall silent, not
  /// keep acking and retransmitting through teardown.
  void abandon();

  const reliable_stats& stats() const { return stats_; }

  /// Add the delta since the previous publish to the global obs registry
  /// (reliable.* counters). Idempotent under repeated calls; the destructor
  /// publishes whatever is still unreported.
  void publish_metrics();

 private:
  using clock = std::chrono::steady_clock;
  using stream_key = std::pair<int, int>;  ///< (peer, logical tag)

  struct unacked_entry {
    int dst = -1;
    std::vector<double> image;  ///< full wire image, replayed verbatim
    clock::time_point deadline;
    int attempts = 0;  ///< retransmissions so far
  };

  /// One pump iteration: drain/park up to one wire message, then service
  /// retransmit deadlines. Returns true when a message was processed.
  bool pump(std::chrono::microseconds wait);
  void service_retransmits();
  void handle_wire(any_message&& msg);
  void send_ack(int src, int tag, std::uint64_t seq);
  void send_data(int dst, int tag, std::span<const double> payload);
  /// Move now-contiguous reorder-buffer entries into the ready queue.
  void drain_reorder(const stream_key& key);
  /// Stream cursor accessor: creates the slot at opts_.first_seq on first
  /// touch, so wraparound tests can start every stream near the top.
  std::uint64_t& seq_slot(std::map<stream_key, std::uint64_t>& m,
                          const stream_key& key);

  std::optional<inproc_transport> owned_inproc_;  ///< communicator-ctor only
  transport* fabric_;
  reliable_options opts_;
  reliable_stats stats_;
  reliable_stats published_;
  rng jitter_rng_;  ///< retransmit-jitter draws, seeded from (epoch, rank)

  std::map<stream_key, std::uint64_t> next_seq_;  ///< sender side, per (dst,tag)
  std::map<std::tuple<int, int, std::uint64_t>, unacked_entry> unacked_;

  std::map<stream_key, std::uint64_t> expected_;  ///< receiver side, per (src,tag)
  std::map<stream_key, std::map<std::uint64_t, std::vector<double>>> reorder_;
  std::map<stream_key, std::deque<std::vector<double>>> ready_;
};

}  // namespace sfp::runtime
