#include "runtime/reliable.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <exception>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::runtime {

namespace {

/// Magic in the high half of envelope word 0; the kind sits in the low byte.
constexpr std::uint64_t wire_magic = 0x53465052ull << 32;  // "SFPR"

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

double bits_to_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t double_to_bits(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// CRC over the five semantic header words + the payload bytes. The crc
/// word itself is excluded, so a flipped bit anywhere in the message —
/// including the crc word — yields a mismatch.
std::uint32_t envelope_crc(const envelope& h, std::span<const double> payload) {
  const std::array<std::uint64_t, 5> words = {
      wire_magic | static_cast<std::uint64_t>(h.type), h.epoch,
      static_cast<std::uint64_t>(static_cast<std::int64_t>(h.tag)), h.seq,
      h.payload_doubles};
  std::uint32_t crc = crc32c(words.data(), sizeof(words));
  return crc32c(payload.data(), payload.size() * sizeof(double), crc);
}

std::string unreachable_message(int self, int peer, int attempts) {
  std::ostringstream os;
  os << "rank " << self << ": peer " << peer << " unreachable after "
     << attempts << " delivery attempts";
  return os.str();
}

/// Serial-number comparison (RFC 1982 style): a < b in the presence of
/// wraparound, valid while the streams stay within 2^63 of each other.
bool seq_before(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::int64_t>(a - b) < 0;
}

std::uint64_t jitter_seed(const reliable_options& opts, int rank) {
  return (opts.epoch + 1) * 0x9e3779b97f4a7c15ull ^
         static_cast<std::uint64_t>(rank + 1) * 0xd1b54a32d192ed03ull;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < bytes; ++i)
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

peer_unreachable_error::peer_unreachable_error(int self, int peer,
                                               int attempts)
    : std::runtime_error(unreachable_message(self, peer, attempts)),
      rank_(self),
      peer_(peer),
      attempts_(attempts) {}

namespace wire {

std::vector<double> encode(const envelope& header,
                           std::span<const double> payload) {
  envelope h = header;
  h.payload_doubles = payload.size();
  h.crc = envelope_crc(h, payload);
  std::vector<double> message;
  message.reserve(header_doubles + payload.size());
  message.push_back(
      bits_to_double(wire_magic | static_cast<std::uint64_t>(h.type)));
  message.push_back(bits_to_double(h.epoch));
  message.push_back(bits_to_double(
      static_cast<std::uint64_t>(static_cast<std::int64_t>(h.tag))));
  message.push_back(bits_to_double(h.seq));
  message.push_back(bits_to_double(h.payload_doubles));
  message.push_back(bits_to_double(h.crc));
  message.insert(message.end(), payload.begin(), payload.end());
  return message;
}

bool decode(std::span<const double> message, bool verify_checksum,
            envelope* header, std::vector<double>* payload) {
  if (message.size() < header_doubles) return false;
  const std::uint64_t word0 = double_to_bits(message[0]);
  if ((word0 & 0xffffffff00000000ull) != wire_magic) return false;
  const std::uint64_t kind_bits = word0 & 0xffu;
  if (kind_bits > static_cast<std::uint64_t>(envelope::kind::ack))
    return false;
  envelope h;
  h.type = static_cast<envelope::kind>(kind_bits);
  h.epoch = double_to_bits(message[1]);
  h.tag = static_cast<int>(
      static_cast<std::int64_t>(double_to_bits(message[2])));
  h.seq = double_to_bits(message[3]);
  h.payload_doubles = double_to_bits(message[4]);
  h.crc = static_cast<std::uint32_t>(double_to_bits(message[5]));
  // Truncation (or a length-word flip) shows up as a size mismatch before
  // the checksum is even consulted.
  if (h.payload_doubles != message.size() - header_doubles) return false;
  const std::span<const double> body = message.subspan(header_doubles);
  if (verify_checksum && envelope_crc(h, body) != h.crc) return false;
  *header = h;
  payload->assign(body.begin(), body.end());
  return true;
}

}  // namespace wire

reliable_stats& reliable_stats::operator+=(const reliable_stats& o) {
  data_sent += o.data_sent;
  data_received += o.data_received;
  retransmits += o.retransmits;
  corruption_detected += o.corruption_detected;
  dedup_dropped += o.dedup_dropped;
  out_of_order += o.out_of_order;
  acks_sent += o.acks_sent;
  acks_received += o.acks_received;
  stale_dropped += o.stale_dropped;
  shutdown_discarded += o.shutdown_discarded;
  return *this;
}

std::chrono::microseconds compute_backoff(const reliable_options& opts,
                                          int attempts, rng& r) {
  // Capped exponential backoff: timeout * 2^attempts, clamped.
  auto backoff = opts.retransmit_timeout * (1ll << std::min(attempts, 20));
  if (backoff > opts.max_backoff) backoff = opts.max_backoff;
  // Jitter after the cap, so deadlines decorrelate even at max_backoff.
  if (opts.retransmit_jitter > 0) {
    const auto stretch = static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * opts.retransmit_jitter *
        r.uniform());
    backoff += std::chrono::microseconds(stretch);
  }
  return backoff;
}

reliable_channel::reliable_channel(transport& fabric, reliable_options opts)
    : fabric_(&fabric), opts_(opts), jitter_rng_(jitter_seed(opts, fabric.rank())) {
  SFP_REQUIRE(opts_.max_retransmits >= 1, "need at least one retransmit");
  SFP_REQUIRE(opts_.retransmit_timeout.count() > 0,
              "retransmit timeout must be positive");
}

reliable_channel::reliable_channel(communicator& comm, reliable_options opts)
    : owned_inproc_(std::in_place, comm),
      fabric_(&*owned_inproc_),
      opts_(opts),
      jitter_rng_(jitter_seed(opts, fabric_->rank())) {
  SFP_REQUIRE(opts_.max_retransmits >= 1, "need at least one retransmit");
  SFP_REQUIRE(opts_.retransmit_timeout.count() > 0,
              "retransmit timeout must be positive");
}

reliable_channel::~reliable_channel() {
  // Two-generals tail: our sends may be delivered-but-unacked (the ack was
  // lost and the peer has exited). Pump for a bounded linger to service any
  // peer still retransmitting at us, then discard what is left — a peer
  // that still needed one of these messages would itself be parked in a
  // pumping call, consuming our retransmits. Skipped mid-unwind: after a
  // kill or abort the fabric is going down anyway.
  if (std::uncaught_exceptions() == 0 && !unacked_.empty()) {
    try {
      const clock::time_point give_up = clock::now() + opts_.shutdown_linger;
      while (!unacked_.empty() && clock::now() < give_up)
        pump(opts_.pump_quantum);
    } catch (...) {  // teardown is best-effort by design
      // world_aborted (or a late kill) during teardown: nothing to heal.
    }
  }
  stats_.shutdown_discarded += static_cast<std::int64_t>(unacked_.size());
  try {
    publish_metrics();
  } catch (...) {  // teardown is best-effort by design
    // registry allocation failure at teardown is not worth a terminate.
  }
}

void reliable_channel::publish_metrics() {
  reliable_stats delta = stats_;
  delta.data_sent -= published_.data_sent;
  delta.data_received -= published_.data_received;
  delta.retransmits -= published_.retransmits;
  delta.corruption_detected -= published_.corruption_detected;
  delta.dedup_dropped -= published_.dedup_dropped;
  delta.out_of_order -= published_.out_of_order;
  delta.acks_sent -= published_.acks_sent;
  delta.acks_received -= published_.acks_received;
  delta.stale_dropped -= published_.stale_dropped;
  delta.shutdown_discarded -= published_.shutdown_discarded;
  published_ = stats_;
  obs::registry& reg = obs::registry::global();
  reg.get_counter("reliable.data_sent").add(delta.data_sent);
  reg.get_counter("reliable.data_received").add(delta.data_received);
  reg.get_counter("reliable.retransmits").add(delta.retransmits);
  reg.get_counter("reliable.corruption_detected")
      .add(delta.corruption_detected);
  reg.get_counter("reliable.dedup_dropped").add(delta.dedup_dropped);
  reg.get_counter("reliable.out_of_order").add(delta.out_of_order);
  reg.get_counter("reliable.acks_sent").add(delta.acks_sent);
  reg.get_counter("reliable.acks_received").add(delta.acks_received);
  reg.get_counter("reliable.stale_dropped").add(delta.stale_dropped);
  reg.get_counter("reliable.shutdown_discarded")
      .add(delta.shutdown_discarded);
}

std::uint64_t& reliable_channel::seq_slot(
    std::map<stream_key, std::uint64_t>& m, const stream_key& key) {
  return m.try_emplace(key, opts_.first_seq).first->second;
}

void reliable_channel::send_data(int dst, int tag,
                                 std::span<const double> payload) {
  envelope h;
  h.type = envelope::kind::data;
  h.epoch = opts_.epoch;
  h.tag = tag;
  h.seq = seq_slot(next_seq_, {dst, tag})++;
  unacked_entry entry;
  entry.dst = dst;
  entry.image = wire::encode(h, payload);
  entry.deadline = clock::now() + opts_.retransmit_timeout;
  fabric_->send(dst, reliable_wire_tag, entry.image);
  unacked_[{dst, tag, h.seq}] = std::move(entry);
  ++stats_.data_sent;
}

void reliable_channel::send(int dst, int tag, std::span<const double> data) {
  SFP_TRACE_SCOPE_CAT("reliable.send", "runtime");
  send_data(dst, tag, data);
}

void reliable_channel::send_ack(int src, int tag, std::uint64_t seq) {
  envelope h;
  h.type = envelope::kind::ack;
  h.epoch = opts_.epoch;
  h.tag = tag;
  h.seq = seq;
  // Fire-and-forget: a lost ack is healed by the sender's retransmit and
  // our dedup re-ack, so acks are never tracked as unacked themselves.
  fabric_->send(src, reliable_wire_tag, wire::encode(h, {}));
  ++stats_.acks_sent;
}

void reliable_channel::drain_reorder(const stream_key& key) {
  auto buffered = reorder_.find(key);
  if (buffered == reorder_.end()) return;
  std::uint64_t& expected = seq_slot(expected_, key);
  auto& ready = ready_[key];
  // Look the expected seq up each round instead of walking from begin():
  // around the uint64 wrap the map's order (0 < ... < UINT64_MAX) no longer
  // matches stream order, but find() keeps draining correctly.
  for (;;) {
    const auto it = buffered->second.find(expected);
    if (it == buffered->second.end()) break;
    ready.push_back(std::move(it->second));
    buffered->second.erase(it);
    ++expected;
    ++stats_.data_received;
  }
  if (buffered->second.empty()) reorder_.erase(buffered);
}

void reliable_channel::handle_wire(any_message&& msg) {
  envelope h;
  std::vector<double> payload;
  if (!wire::decode(msg.payload, opts_.verify_checksums, &h, &payload)) {
    // Corrupt or truncated: drop silently; the sender's retransmit timer
    // re-delivers an intact copy. No ack — we cannot trust the header.
    ++stats_.corruption_detected;
    return;
  }
  if (h.epoch != opts_.epoch) {
    ++stats_.stale_dropped;
    return;
  }
  if (h.type == envelope::kind::ack) {
    if (unacked_.erase({msg.src, h.tag, h.seq}) > 0) ++stats_.acks_received;
    return;
  }
  const stream_key key{msg.src, h.tag};
  std::uint64_t& expected = seq_slot(expected_, key);
  // Serial comparison, not <: a stream that wraps past UINT64_MAX must not
  // mistake the post-wrap seqs for ancient duplicates.
  if (seq_before(h.seq, expected)) {
    // Duplicate of something already delivered (injected duplicate, or a
    // retransmit whose ack was lost). Re-ack so the sender stops.
    ++stats_.dedup_dropped;
    send_ack(msg.src, h.tag, h.seq);
    return;
  }
  if (h.seq == expected) {
    ready_[key].push_back(std::move(payload));
    ++expected;
    ++stats_.data_received;
    drain_reorder(key);
  } else {
    // Ahead of the stream: park it. emplace keeps the first copy if an
    // injected duplicate lands here twice.
    const bool inserted =
        reorder_[key].emplace(h.seq, std::move(payload)).second;
    if (inserted)
      ++stats_.out_of_order;
    else
      ++stats_.dedup_dropped;
  }
  send_ack(msg.src, h.tag, h.seq);
}

void reliable_channel::service_retransmits() {
  const clock::time_point now = clock::now();
  for (auto& [key, entry] : unacked_) {
    if (entry.deadline > now) continue;
    if (entry.attempts >= opts_.max_retransmits)
      throw peer_unreachable_error(fabric_->rank(), entry.dst,
                                   entry.attempts + 1);
    ++entry.attempts;
    ++stats_.retransmits;
    // Capped exponential backoff with deterministic jitter (see
    // compute_backoff): timeout * 2^attempts, clamped, stretched.
    entry.deadline = now + compute_backoff(opts_, entry.attempts, jitter_rng_);
    fabric_->send(entry.dst, reliable_wire_tag, entry.image);
  }
}

bool reliable_channel::pump(std::chrono::microseconds wait) {
  any_message msg;
  const bool got = fabric_->try_recv_any(reliable_wire_tag, wait, &msg);
  if (got) handle_wire(std::move(msg));
  service_retransmits();
  return got;
}

std::vector<double> reliable_channel::recv(int src, int tag) {
  SFP_TRACE_SCOPE_CAT("reliable.recv", "runtime");
  const stream_key key{src, tag};
  const bool bounded = opts_.recv_timeout.count() > 0;
  const clock::time_point give_up = clock::now() + opts_.recv_timeout;
  for (;;) {
    auto it = ready_.find(key);
    if (it != ready_.end() && !it->second.empty()) {
      std::vector<double> out = std::move(it->second.front());
      it->second.pop_front();
      return out;
    }
    if (bounded && clock::now() >= give_up)
      throw peer_unreachable_error(fabric_->rank(), src, 0);
    pump(opts_.pump_quantum);
  }
}

void reliable_channel::forget_peer(int peer) {
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    if (std::get<0>(it->first) == peer) {
      ++stats_.shutdown_discarded;
      it = unacked_.erase(it);
    } else {
      ++it;
    }
  }
  const auto purge_streams = [peer](auto& by_stream) {
    for (auto it = by_stream.begin(); it != by_stream.end();) {
      if (it->first.first == peer)
        it = by_stream.erase(it);
      else
        ++it;
    }
  };
  purge_streams(next_seq_);
  purge_streams(expected_);
  purge_streams(reorder_);
  purge_streams(ready_);
}

void reliable_channel::abandon() {
  stats_.shutdown_discarded += static_cast<std::int64_t>(unacked_.size());
  unacked_.clear();
}

void reliable_channel::flush() {
  SFP_TRACE_SCOPE_CAT("reliable.flush", "runtime");
  // Pump until every send is acked; service_retransmits inside pump()
  // enforces the per-message retransmit budget, so this terminates either
  // clean or with peer_unreachable_error.
  while (!unacked_.empty()) pump(opts_.pump_quantum);
}

void reliable_channel::fence() {
  SFP_TRACE_SCOPE_CAT("reliable.fence", "runtime");
  const int n = fabric_->size();
  const int self = fabric_->rank();
  // Dissemination barrier: round r talks to rank ±2^r. Completion of any
  // rank transitively requires every rank to have entered, which is what
  // makes it safe to stop pumping afterwards. Fence rounds use reserved
  // negative logical tags so they never collide with application streams.
  for (int round = 0, hop = 1; hop < n; ++round, hop *= 2) {
    const int to = (self + hop) % n;
    const int from = (self - hop % n + n) % n;
    const int tag = -1000 - round;
    send_data(to, tag, {});
    recv(from, tag);
  }
}

}  // namespace sfp::runtime
