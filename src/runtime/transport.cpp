#include "runtime/transport.hpp"

#include <cstring>
#include <sstream>
#include <thread>

#include "runtime/world.hpp"
#include "util/require.hpp"

namespace sfp::runtime {

namespace {

std::string aborted_message(int self, int failed_rank) {
  std::ostringstream os;
  os << "world aborted: rank " << failed_rank << " failed (observed on rank "
     << self << ")";
  return os.str();
}

std::string timeout_message(int self, const char* op,
                            std::chrono::milliseconds t) {
  std::ostringstream os;
  os << "communication timeout: rank " << self << " waited " << t.count()
     << " ms in " << op;
  return os.str();
}

}  // namespace

world_aborted::world_aborted(int self, int failed_rank)
    : std::runtime_error(aborted_message(self, failed_rank)),
      failed_rank_(failed_rank) {}

comm_timeout_error::comm_timeout_error(int self, const char* op,
                                       std::chrono::milliseconds t)
    : std::runtime_error(timeout_message(self, op, t)), rank_(self) {}

rank_counters& rank_counters::operator+=(const rank_counters& o) {
  messages_sent += o.messages_sent;
  messages_received += o.messages_received;
  doubles_sent += o.doubles_sent;
  doubles_received += o.doubles_received;
  barriers += o.barriers;
  reductions += o.reductions;
  timeouts += o.timeouts;
  aborts_observed += o.aborts_observed;
  injected_kills += o.injected_kills;
  injected_drops += o.injected_drops;
  injected_delays += o.injected_delays;
  injected_duplicates += o.injected_duplicates;
  injected_corruptions += o.injected_corruptions;
  injected_truncations += o.injected_truncations;
  injected_reorders += o.injected_reorders;
  return *this;
}

const char* to_string(transport_backend backend) {
  switch (backend) {
    case transport_backend::inproc: return "inproc";
    case transport_backend::socket: return "socket";
  }
  return "unknown";
}

transport::~transport() = default;

int inproc_transport::rank() const { return comm_->rank(); }

int inproc_transport::size() const { return comm_->size(); }

void inproc_transport::send(int dst, int tag, std::span<const double> data) {
  comm_->send(dst, tag, data);
}

bool inproc_transport::try_recv_any(int tag, std::chrono::microseconds wait,
                                    any_message* out) {
  return comm_->try_recv_any(tag, wait, out);
}

injection_pipeline::injection_pipeline(const fault_plan& plan, int rank,
                                       rank_counters* counters)
    : injector_(plan, rank), counters_(counters) {
  SFP_REQUIRE(counters != nullptr, "injection_pipeline needs counters");
}

void injection_pipeline::count_op() {
  try {
    injector_.on_op();
  } catch (const rank_killed&) {
    ++counters_->injected_kills;
    throw;
  }
}

injection_pipeline::outcome injection_pipeline::on_send(
    int dst, int tag, std::span<const double> data) {
  outcome out;
  const fault_injector::send_action action =
      injector_.on_send(dst, tag, data.size());
  if (action.drop) {
    ++counters_->injected_drops;
    return out;
  }
  if (action.delay.count() > 0) {
    ++counters_->injected_delays;
    std::this_thread::sleep_for(action.delay);
  }
  // Build the (possibly mangled) wire image once; duplicates replay it.
  std::vector<double> wire(data.begin(), data.end());
  if (action.truncate) {
    ++counters_->injected_truncations;
    wire.resize(action.truncate_to);
  }
  if (action.corrupt && action.corrupt_element < wire.size()) {
    ++counters_->injected_corruptions;
    std::uint64_t bits;
    std::memcpy(&bits, &wire[action.corrupt_element], sizeof(bits));
    bits ^= std::uint64_t{1} << action.corrupt_bit;
    std::memcpy(&wire[action.corrupt_element], &bits, sizeof(bits));
  }
  const auto stash_key = std::pair(dst, tag);
  std::vector<double> held;
  bool flush_held = false;
  if (const auto it = stash_.find(stash_key); it != stash_.end()) {
    held = std::move(it->second);
    stash_.erase(it);
    flush_held = true;  // delivered after this message: the injected swap
  }
  const bool stash_this = action.reorder && !flush_held;
  if (stash_this) ++counters_->injected_reorders;
  // A reordered message is held as a single copy (duplication would be
  // collapsed by the stash anyway); a message that never gets a successor
  // on its stream stays stashed, i.e. degenerates to a drop.
  const int copies = action.duplicate && !stash_this ? 2 : 1;
  if (action.duplicate && !stash_this) ++counters_->injected_duplicates;
  out.accounted_copies = copies;
  out.copy_doubles = wire.size();
  counters_->messages_sent += copies;
  counters_->doubles_sent +=
      copies * static_cast<std::int64_t>(wire.size());
  if (stash_this) {
    stash_[stash_key] = std::move(wire);
  } else {
    for (int c = 1; c < copies; ++c) out.wire.push_back(wire);
    out.wire.push_back(std::move(wire));
  }
  if (flush_held) out.wire.push_back(std::move(held));
  return out;
}

}  // namespace sfp::runtime
