#include "runtime/fault_json.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/require.hpp"

namespace sfp::runtime {

namespace {

double checked_probability(const io::json_value& v, const char* key) {
  SFP_REQUIRE(v.is_number(), std::string("fault plan: ") + key +
                                 " must be a number");
  SFP_REQUIRE(v.number >= 0.0 && v.number <= 1.0,
              std::string("fault plan: ") + key + " must be in [0, 1]");
  return v.number;
}

int checked_rank_or_wildcard(const io::json_value& v, const char* key) {
  SFP_REQUIRE(v.is_number(), std::string("fault plan: ") + key +
                                 " must be a number");
  const int r = static_cast<int>(v.number);
  SFP_REQUIRE(r >= -1, std::string("fault plan: ") + key +
                           " must be >= -1 (-1 = wildcard)");
  return r;
}

}  // namespace

io::json_value fault_plan_to_json(const fault_plan& plan) {
  io::json_value doc = io::json_object();
  // uint64 seeds would round through double above 2^53 — travel as text.
  doc.object["seed"] = io::json_string(std::to_string(plan.seed));
  io::json_value kills = io::json_array();
  for (const auto& k : plan.kills) {
    io::json_value entry = io::json_object();
    entry.object["rank"] = io::json_number(k.rank);
    entry.object["at_op"] = io::json_number(static_cast<double>(k.at_op));
    kills.array.push_back(std::move(entry));
  }
  doc.object["kills"] = std::move(kills);
  io::json_value faults = io::json_array();
  for (const auto& mf : plan.message_faults) {
    io::json_value entry = io::json_object();
    entry.object["src"] = io::json_number(mf.src);
    entry.object["dst"] = io::json_number(mf.dst);
    entry.object["tag"] = io::json_number(mf.tag);
    entry.object["drop"] = io::json_number(mf.drop_probability);
    entry.object["delay"] = io::json_number(mf.delay_probability);
    entry.object["duplicate"] = io::json_number(mf.duplicate_probability);
    entry.object["corrupt"] = io::json_number(mf.corrupt_probability);
    entry.object["truncate"] = io::json_number(mf.truncate_probability);
    entry.object["reorder"] = io::json_number(mf.reorder_probability);
    entry.object["delay_us"] =
        io::json_number(static_cast<double>(mf.delay.count()));
    entry.object["fire_from"] =
        io::json_number(static_cast<double>(mf.fire_from));
    entry.object["fire_count"] =
        io::json_number(static_cast<double>(mf.fire_count));
    entry.object["min_payload"] =
        io::json_number(static_cast<double>(mf.min_payload));
    faults.array.push_back(std::move(entry));
  }
  doc.object["message_faults"] = std::move(faults);
  return doc;
}

fault_plan fault_plan_from_json(const io::json_value& doc) {
  SFP_REQUIRE(doc.is_object(), "fault plan: top level must be an object");
  fault_plan plan;
  if (doc.has("seed")) {
    const io::json_value& seed = doc.at("seed");
    if (seed.is_string()) {
      SFP_REQUIRE(!seed.string.empty() &&
                      seed.string.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "fault plan: seed string must be a decimal uint64");
      plan.seed = std::stoull(seed.string);
    } else {
      SFP_REQUIRE(seed.is_number() && seed.number >= 0,
                  "fault plan: seed must be a string or non-negative number");
      plan.seed = static_cast<std::uint64_t>(seed.number);
    }
  }
  if (doc.has("kills")) {
    const io::json_value& kills = doc.at("kills");
    SFP_REQUIRE(kills.is_array(), "fault plan: kills must be an array");
    for (const io::json_value& entry : kills.array) {
      SFP_REQUIRE(entry.is_object(), "fault plan: kill must be an object");
      fault_plan::kill_spec k;
      k.rank = checked_rank_or_wildcard(entry.at("rank"), "kill rank");
      SFP_REQUIRE(k.rank >= 0, "fault plan: kill rank must be >= 0");
      SFP_REQUIRE(entry.at("at_op").is_number() && entry.at("at_op").number >= 1,
                  "fault plan: kill at_op must be >= 1");
      k.at_op = static_cast<std::int64_t>(entry.at("at_op").number);
      plan.kills.push_back(k);
    }
  }
  if (doc.has("message_faults")) {
    const io::json_value& faults = doc.at("message_faults");
    SFP_REQUIRE(faults.is_array(),
                "fault plan: message_faults must be an array");
    for (const io::json_value& entry : faults.array) {
      SFP_REQUIRE(entry.is_object(),
                  "fault plan: message fault must be an object");
      fault_plan::message_fault mf;
      if (entry.has("src")) mf.src = checked_rank_or_wildcard(entry.at("src"), "src");
      if (entry.has("dst")) mf.dst = checked_rank_or_wildcard(entry.at("dst"), "dst");
      if (entry.has("tag")) {
        SFP_REQUIRE(entry.at("tag").is_number(),
                    "fault plan: tag must be a number");
        mf.tag = static_cast<int>(entry.at("tag").number);
      }
      if (entry.has("drop"))
        mf.drop_probability = checked_probability(entry.at("drop"), "drop");
      if (entry.has("delay"))
        mf.delay_probability = checked_probability(entry.at("delay"), "delay");
      if (entry.has("duplicate"))
        mf.duplicate_probability =
            checked_probability(entry.at("duplicate"), "duplicate");
      if (entry.has("corrupt"))
        mf.corrupt_probability =
            checked_probability(entry.at("corrupt"), "corrupt");
      if (entry.has("truncate"))
        mf.truncate_probability =
            checked_probability(entry.at("truncate"), "truncate");
      if (entry.has("reorder"))
        mf.reorder_probability =
            checked_probability(entry.at("reorder"), "reorder");
      if (entry.has("delay_us")) {
        SFP_REQUIRE(entry.at("delay_us").is_number() &&
                        entry.at("delay_us").number >= 0,
                    "fault plan: delay_us must be >= 0");
        mf.delay = std::chrono::microseconds(
            static_cast<std::int64_t>(entry.at("delay_us").number));
      }
      if (entry.has("fire_from")) {
        SFP_REQUIRE(entry.at("fire_from").is_number() &&
                        entry.at("fire_from").number >= 0,
                    "fault plan: fire_from must be >= 0");
        mf.fire_from =
            static_cast<std::int64_t>(entry.at("fire_from").number);
      }
      if (entry.has("fire_count")) {
        SFP_REQUIRE(entry.at("fire_count").is_number() &&
                        entry.at("fire_count").number >= -1,
                    "fault plan: fire_count must be >= -1 (-1 = unlimited)");
        mf.fire_count =
            static_cast<std::int64_t>(entry.at("fire_count").number);
      }
      if (entry.has("min_payload")) {
        SFP_REQUIRE(entry.at("min_payload").is_number() &&
                        entry.at("min_payload").number >= 0,
                    "fault plan: min_payload must be >= 0");
        mf.min_payload =
            static_cast<std::size_t>(entry.at("min_payload").number);
      }
      plan.message_faults.push_back(mf);
    }
  }
  return plan;
}

void save_fault_plan(const fault_plan& plan, const std::string& path) {
  io::write_json_file(fault_plan_to_json(plan), path);
}

fault_plan load_fault_plan(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SFP_REQUIRE(is.good(), "cannot open fault plan file: " + path);
  std::ostringstream text;
  text << is.rdbuf();
  return fault_plan_from_json(io::parse_json(text.str()));
}

}  // namespace sfp::runtime
