#include "runtime/partition_fabric.hpp"

#include <algorithm>
#include <cstring>
#include <functional>

#include "core/escalation.hpp"
#include "obs/obs.hpp"
#include "util/contract.hpp"

namespace sfp::runtime {

namespace {

static_assert(sizeof(double) == sizeof(std::int64_t),
              "int64 records travel as double bit images");

/// int64 records -> double bit images. memcpy, never a value conversion:
/// arbitrary integer patterns (including ones that alias NaNs) must survive
/// the trip untouched, and the fabric only ever copies payloads.
std::vector<double> to_wire(std::span<const std::int64_t> words) {
  std::vector<double> out(words.size());
  if (!words.empty())
    std::memcpy(out.data(), words.data(), words.size() * sizeof(double));
  return out;
}

std::vector<std::int64_t> from_wire(std::span<const double> payload) {
  std::vector<std::int64_t> out(payload.size());
  if (!payload.empty())
    std::memcpy(out.data(), payload.data(),
                payload.size() * sizeof(std::int64_t));
  return out;
}

/// Everything one world rank leaves behind. Each rank writes only its own
/// slot and the driver reads them after the fabric join, so there is no
/// cross-thread sharing — in particular a killed rank's pre-death deposit
/// never races a survivor's re-execution deposit (each lives in its
/// writer's own slot, tagged with the group epoch it was computed under).
struct rank_outcome {
  bool deposited = false;  ///< labels/boundaries below are valid
  bool completed = false;  ///< passed the closing group barrier
  bool dead = false;       ///< rank_killed fired on this rank
  bool aborted = false;    ///< quorum lost, evicted, or recovery budget spent
  std::uint64_t epoch = 0;            ///< group epoch of the deposit
  std::int64_t begin = 0, end = 0;    ///< owned block under that epoch
  int recoveries = 0;                 ///< reconfigurations adopted
  std::vector<graph::vid> labels;     ///< size end - begin
  std::vector<std::int64_t> boundaries;  ///< dense rank 0 of its group only
  core::regroup_stats regroup;
  reliable_stats reliable;
};

/// Pump the channel until every send is acked, converting a delivery
/// failure into a group event: a real member triggers the agreement round
/// (notify_peer_lost unwinds via group_reconfigured / quorum_lost), an
/// already-evicted corpse is scrubbed and the flush retried.
void flush_or_regroup(reliable_channel& channel, core::regroup_comm& group) {
  for (;;) {
    try {
      channel.flush();
      return;
    } catch (const peer_unreachable_error& e) {
      group.notify_peer_lost(e.peer());
    }
  }
}

/// One deterministic re-execution attempt over the current surviving group:
/// recompute the block distribution for the shrunken rank count, rerun the
/// splitter search from scratch, deposit the result under the group epoch,
/// and close with the group barrier. Every input is a pure function of
/// (curve spec, weights, nparts, survivor count), so the assembled plan
/// stays bit-identical to the serial slicer whatever group finishes.
void run_partition_attempt(core::regroup_comm& group,
                           reliable_channel& channel,
                           const mesh::cubed_sphere& mesh,
                           const core::cube_curve_spec& spec, int nparts,
                           std::span<const graph::weight> weights,
                           const core::parallel_partition_options& popts,
                           core::parallel_partition_stats* stats,
                           rank_outcome* out) {
  SFP_TRACE_SCOPE_CAT("partition.attempt", "runtime");
  const int p = group.size();
  const int r = group.rank();
  const auto k = static_cast<std::int64_t>(mesh.num_elements());
  const std::int64_t begin = core::element_block_begin(k, p, r);
  const std::int64_t end = core::element_block_begin(k, p, r + 1);
  const std::span<const graph::weight> local_w =
      weights.empty() ? weights
                      : weights.subspan(static_cast<std::size_t>(begin),
                                        static_cast<std::size_t>(end - begin));
  core::local_partition local = core::parallel_partition_rank(
      mesh, spec, nparts, local_w, group, popts, stats);
  SFP_ASSERT(local.begin == begin && local.end == end,
             "block distribution must match the driver's slicing");
  out->deposited = true;
  out->epoch = group.view().epoch;
  out->begin = begin;
  out->end = end;
  out->labels = std::move(local.labels);
  out->boundaries =
      r == 0 ? std::move(local.boundaries) : std::vector<std::int64_t>{};
  // All data sends acked while every peer is provably still pumping, then
  // the group-wide barrier: once it returns, every member of this epoch
  // has deposited. A death inside either unwinds into a regroup.
  flush_or_regroup(channel, group);
  group.barrier();  // lint: blocking-ok — regroup barrier is bounded by the detection budget; silence past it unwinds into the agreement round, never a hang
  // Barrier tail: the only unacked traffic left is barrier releases whose
  // receivers may already have left (their acks are in flight) or died
  // after depositing; neither invalidates the deposits, so a late delivery
  // failure here is scrubbed rather than escalated.
  for (;;) {
    try {
      channel.flush();
      return;
    } catch (const peer_unreachable_error& e) {
      channel.forget_peer(e.peer());
    }
  }
}

void partition_rank_main(reliable_channel& channel, int world_rank,
                         int nranks, const mesh::cubed_sphere& mesh,
                         const core::cube_curve_spec& spec, int nparts,
                         std::span<const graph::weight> weights,
                         const parallel_partition_run_options& opts,
                         core::parallel_partition_stats* stats,
                         rank_outcome* out) {
  static obs::counter& recoveries_counter =
      obs::registry::global().get_counter("partition.recoveries");
  reliable_peer_comm base(channel, world_rank, nranks);
  core::regroup_comm group(base, opts.regroup);
  try {
    for (int attempt = 0;; ++attempt) {
      try {
        run_partition_attempt(group, channel, mesh, spec, nparts, weights,
                              opts.partition, stats, out);
        out->completed = true;
        break;
      } catch (const core::group_reconfigured& g) {
        SFP_TRACE_SCOPE_CAT("partition.regroup", "runtime");
        const core::escalation_decision d = core::decide_regroup(
            g.victim(), static_cast<int>(g.view().members.size()),
            opts.regroup.min_members, nranks, attempt, opts.max_recoveries);
        if (!d.recover) {
          out->aborted = true;
          break;
        }
        recoveries_counter.inc();
      }
    }
  } catch (const core::quorum_lost& q) {
    // Below quorum or evicted: this rank is out, but it dies cleanly —
    // deposits it already made under earlier epochs remain valid.
    out->aborted = true;
  } catch (const rank_killed&) {
    // Simulated process death: fall silent. Abandon outstanding sends so
    // teardown does not keep acking/retransmitting on the corpse's behalf,
    // and return normally — an escaping exception would abort the world.
    channel.abandon();
    out->dead = true;
  }
  out->recoveries = group.recoveries();
  out->regroup = group.stats();
  try {
    channel.publish_metrics();
  } catch (...) {  // metrics on a dying rank are best-effort
  }
  out->reliable = channel.stats();
}

}  // namespace

void reliable_peer_comm::send(int dst, std::span<const std::int64_t> words) {
  SFP_REQUIRE(dst >= 0 && dst < size_ && dst != rank_,
              "send destination must be another rank in the group");
  const std::vector<double> image = to_wire(words);
  channel_->send(dst, partition_tag, image);
}

std::vector<std::int64_t> reliable_peer_comm::recv(int src) {
  SFP_REQUIRE(src >= 0 && src < size_ && src != rank_,
              "recv source must be another rank in the group");
  try {
    const std::vector<double> payload = channel_->recv(src, partition_tag);  // lint: blocking-ok — reliable recv pumps the progress engine and fails over to peer_unreachable after recv_timeout
    return from_wire(payload);
  } catch (const peer_unreachable_error& e) {
    // Translate to the core-layer failure vocabulary: retransmit
    // exhaustion is delivery-level proof of death, a recv timeout only a
    // suspicion the regroup layer weighs against its patience budget.
    throw core::peer_lost(e.peer(), e.attempts() > 0);  // lint: runtime-throw-ok — failure-vocabulary translation at the core/runtime seam; the regroup layer catches it immediately above
  }
}

void reliable_peer_comm::forget_peer(int peer) { channel_->forget_peer(peer); }

parallel_partition_report run_parallel_partition(
    const mesh::cubed_sphere& mesh, const core::cube_curve_spec& spec,
    int nparts, std::span<const graph::weight> weights, int num_ranks,
    const parallel_partition_run_options& opts) {
  SFP_TRACE_SCOPE_CAT("runtime.parallel_partition", "runtime");
  SFP_REQUIRE(num_ranks >= 1, "need at least one rank");
  const auto k = static_cast<std::size_t>(mesh.num_elements());
  SFP_REQUIRE(weights.empty() || weights.size() == k,
              "weights must be empty or one per element");

  parallel_partition_report report;
  report.plan.num_parts = nparts;
  report.plan.part_of.assign(k, 0);
  report.rank_stats.assign(static_cast<std::size_t>(num_ranks), {});
  {
    static obs::counter& runs = obs::registry::global().get_counter(
        "runtime.parallel_partition.runs");
    runs.inc();
  }

  if (num_ranks == 1) {
    core::solo_comm solo;
    core::local_partition local = core::parallel_partition_rank(
        mesh, spec, nparts, weights, solo, opts.partition,
        &report.rank_stats[0]);
    report.plan.part_of = std::move(local.labels);
    report.boundaries = std::move(local.boundaries);
    return report;
  }

  std::vector<rank_outcome> outcomes(static_cast<std::size_t>(num_ranks));

  if (opts.backend == transport_backend::inproc) {
    world::options wopts;
    wopts.timeout = opts.timeout;
    wopts.faults = opts.faults;
    world w(num_ranks, wopts);
    w.run([&](communicator& comm) {
      reliable_channel channel(comm, opts.reliable);
      partition_rank_main(channel, comm.rank(), num_ranks, mesh, spec,
                          nparts, weights, opts,
                          &report.rank_stats[static_cast<std::size_t>(
                              comm.rank())],
                          &outcomes[static_cast<std::size_t>(comm.rank())]);
    });
    report.counters = w.total_counters();
  } else {
    socket_fabric_options sopts;
    sopts.faults = opts.faults;
    sopts.stream_faults = opts.stream_faults;
    // Pin stream faults to reliable *data* frames, as the seam runner does:
    // acks are smaller than one envelope payload.
    sopts.stream_fault_min_payload = wire::header_doubles + 1;
    socket_fabric fab(num_ranks, sopts);
    fab.run([&](transport& t) {
      reliable_channel channel(t, opts.reliable);
      partition_rank_main(channel, t.rank(), num_ranks, mesh, spec, nparts,
                          weights, opts,
                          &report.rank_stats[static_cast<std::size_t>(
                              t.rank())],
                          &outcomes[static_cast<std::size_t>(t.rank())]);
    });
    report.counters = fab.total_counters();
    report.socket = fab.total_stats();
  }
  for (const rank_outcome& o : outcomes) {
    report.reliable += o.reliable;
    report.regroup.stale_dropped += o.regroup.stale_dropped;
    report.regroup.aborted_data_dropped += o.regroup.aborted_data_dropped;
    report.regroup.reports_sent += o.regroup.reports_sent;
    report.regroup.agreement_rounds += o.regroup.agreement_rounds;
  }

  // Assemble from the newest group epoch whose deposits exactly tile
  // [0, K). Survivors of the final group all deposited under it (the
  // closing barrier proves so); deposits from a rank that died after the
  // barrier began are equally valid — its labels were computed by the same
  // pure function before it fell silent.
  std::vector<const rank_outcome*> chosen;
  std::uint64_t chosen_epoch = 0;
  {
    std::vector<std::uint64_t> epochs;
    for (const rank_outcome& o : outcomes)
      if (o.deposited) epochs.push_back(o.epoch);
    std::sort(epochs.begin(), epochs.end(), std::greater<>());
    epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
    const auto k64 = static_cast<std::int64_t>(k);
    for (const std::uint64_t e : epochs) {
      std::vector<const rank_outcome*> slots;
      for (const rank_outcome& o : outcomes)
        if (o.deposited && o.epoch == e) slots.push_back(&o);
      std::sort(slots.begin(), slots.end(),
                [](const rank_outcome* a, const rank_outcome* b) {
                  return a->begin < b->begin;
                });
      std::int64_t pos = 0;
      bool tiles = true;
      for (const rank_outcome* s : slots) {
        if (s->begin != pos) {
          tiles = false;
          break;
        }
        pos = s->end;
      }
      if (tiles && pos == k64) {
        chosen = std::move(slots);
        chosen_epoch = e;
        break;
      }
    }
  }
  if (chosen.empty()) {
    report.aborted = true;
    for (int r = 0; r < num_ranks; ++r) report.lost_ranks.push_back(r);
    report.plan.part_of.clear();
    return report;
  }
  report.group_epoch = chosen_epoch;
  for (const rank_outcome* s : chosen) {
    SFP_ASSERT(s->labels.size() == static_cast<std::size_t>(s->end - s->begin),
               "deposit length must match its block");
    std::copy(s->labels.begin(), s->labels.end(),
              report.plan.part_of.begin() +
                  static_cast<std::ptrdiff_t>(s->begin));
    report.recoveries = std::max(report.recoveries, s->recoveries);
    if (s->begin == 0) report.boundaries = s->boundaries;
  }
  {
    std::vector<bool> in_group(static_cast<std::size_t>(num_ranks), false);
    for (std::size_t r = 0; r < outcomes.size(); ++r)
      if (outcomes[r].deposited && outcomes[r].epoch == chosen_epoch)
        in_group[r] = true;
    for (int r = 0; r < num_ranks; ++r)
      if (!in_group[static_cast<std::size_t>(r)])
        report.lost_ranks.push_back(r);
  }
  {
    static obs::counter& epoch_counter =
        obs::registry::global().get_counter("partition.group_epoch");
    epoch_counter.add(static_cast<std::int64_t>(report.group_epoch));
  }
  return report;
}

}  // namespace sfp::runtime
