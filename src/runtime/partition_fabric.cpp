#include "runtime/partition_fabric.hpp"

#include <cstring>

#include "obs/obs.hpp"
#include "util/contract.hpp"

namespace sfp::runtime {

namespace {

static_assert(sizeof(double) == sizeof(std::int64_t),
              "int64 records travel as double bit images");

/// int64 records -> double bit images. memcpy, never a value conversion:
/// arbitrary integer patterns (including ones that alias NaNs) must survive
/// the trip untouched, and the fabric only ever copies payloads.
std::vector<double> to_wire(std::span<const std::int64_t> words) {
  std::vector<double> out(words.size());
  if (!words.empty())
    std::memcpy(out.data(), words.data(), words.size() * sizeof(double));
  return out;
}

std::vector<std::int64_t> from_wire(std::span<const double> payload) {
  std::vector<std::int64_t> out(payload.size());
  if (!payload.empty())
    std::memcpy(out.data(), payload.data(),
                payload.size() * sizeof(std::int64_t));
  return out;
}

/// The per-rank body shared by every backend: adapt the channel, slice the
/// global weights down to the owned block, run the core algorithm, and
/// deposit the results in this rank's slots of the shared output arrays
/// (disjoint writes; the fabric join publishes them).
struct shared_output {
  std::vector<graph::vid>* labels;  ///< global, size K, disjoint slices
  std::vector<std::int64_t>* boundaries;           ///< written by rank 0
  std::vector<core::parallel_partition_stats>* stats;  ///< slot per rank
  std::vector<reliable_stats>* reliable;               ///< slot per rank
};

void partition_rank_main(reliable_channel& channel, int rank, int nranks,
                         const mesh::cubed_sphere& mesh,
                         const core::cube_curve_spec& spec, int nparts,
                         std::span<const graph::weight> weights,
                         const core::parallel_partition_options& popts,
                         const shared_output& out) {
  reliable_peer_comm comm(channel, rank, nranks);
  const auto k = static_cast<std::int64_t>(mesh.num_elements());
  const std::int64_t begin = core::element_block_begin(k, nranks, rank);
  const std::int64_t end = core::element_block_begin(k, nranks, rank + 1);
  const std::span<const graph::weight> local_w =
      weights.empty() ? weights
                      : weights.subspan(static_cast<std::size_t>(begin),
                                        static_cast<std::size_t>(end - begin));
  auto& st = (*out.stats)[static_cast<std::size_t>(rank)];
  core::local_partition local =
      core::parallel_partition_rank(mesh, spec, nparts, local_w, comm, popts,
                                    &st);
  SFP_ASSERT(local.begin == begin && local.end == end,
             "block distribution must match the driver's slicing");
  for (std::int64_t i = begin; i < end; ++i)
    (*out.labels)[static_cast<std::size_t>(i)] =
        local.labels[static_cast<std::size_t>(i - begin)];
  if (rank == 0) *out.boundaries = std::move(local.boundaries);
  // All sends acked, then a pumping barrier so no rank leaves while a peer
  // still needs its retransmissions serviced.
  channel.flush();
  channel.fence();
  channel.publish_metrics();
  (*out.reliable)[static_cast<std::size_t>(rank)] = channel.stats();
}

}  // namespace

void reliable_peer_comm::send(int dst, std::span<const std::int64_t> words) {
  SFP_REQUIRE(dst >= 0 && dst < size_ && dst != rank_,
              "send destination must be another rank in the group");
  const std::vector<double> image = to_wire(words);
  channel_->send(dst, partition_tag, image);
}

std::vector<std::int64_t> reliable_peer_comm::recv(int src) {
  SFP_REQUIRE(src >= 0 && src < size_ && src != rank_,
              "recv source must be another rank in the group");
  const std::vector<double> payload = channel_->recv(src, partition_tag);  // lint: blocking-ok — reliable recv pumps the progress engine and fails over to peer_unreachable after recv_timeout
  return from_wire(payload);
}

parallel_partition_report run_parallel_partition(
    const mesh::cubed_sphere& mesh, const core::cube_curve_spec& spec,
    int nparts, std::span<const graph::weight> weights, int num_ranks,
    const parallel_partition_run_options& opts) {
  SFP_TRACE_SCOPE_CAT("runtime.parallel_partition", "runtime");
  SFP_REQUIRE(num_ranks >= 1, "need at least one rank");
  const auto k = static_cast<std::size_t>(mesh.num_elements());
  SFP_REQUIRE(weights.empty() || weights.size() == k,
              "weights must be empty or one per element");

  parallel_partition_report report;
  report.plan.num_parts = nparts;
  report.plan.part_of.assign(k, 0);
  report.rank_stats.assign(static_cast<std::size_t>(num_ranks), {});
  {
    static obs::counter& runs = obs::registry::global().get_counter(
        "runtime.parallel_partition.runs");
    runs.inc();
  }

  if (num_ranks == 1) {
    core::solo_comm solo;
    core::local_partition local = core::parallel_partition_rank(
        mesh, spec, nparts, weights, solo, opts.partition,
        &report.rank_stats[0]);
    report.plan.part_of = std::move(local.labels);
    report.boundaries = std::move(local.boundaries);
    return report;
  }

  std::vector<reliable_stats> reliable_slots(
      static_cast<std::size_t>(num_ranks));
  shared_output out{&report.plan.part_of, &report.boundaries,
                    &report.rank_stats, &reliable_slots};

  if (opts.backend == transport_backend::inproc) {
    world::options wopts;
    wopts.timeout = opts.timeout;
    wopts.faults = opts.faults;
    world w(num_ranks, wopts);
    w.run([&](communicator& comm) {
      reliable_channel channel(comm, opts.reliable);
      partition_rank_main(channel, comm.rank(), num_ranks, mesh, spec,
                          nparts, weights, opts.partition, out);
    });
    report.counters = w.total_counters();
  } else {
    socket_fabric_options sopts;
    sopts.faults = opts.faults;
    sopts.stream_faults = opts.stream_faults;
    // Pin stream faults to reliable *data* frames, as the seam runner does:
    // acks are smaller than one envelope payload.
    sopts.stream_fault_min_payload = wire::header_doubles + 1;
    socket_fabric fab(num_ranks, sopts);
    fab.run([&](transport& t) {
      reliable_channel channel(t, opts.reliable);
      partition_rank_main(channel, t.rank(), num_ranks, mesh, spec, nparts,
                          weights, opts.partition, out);
    });
    report.counters = fab.total_counters();
    report.socket = fab.total_stats();
  }
  for (const reliable_stats& s : reliable_slots) report.reliable += s;
  return report;
}

}  // namespace sfp::runtime
