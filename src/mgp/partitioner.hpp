#pragma once
// Public facade of the multilevel graph partitioner (METIS stand-in).

#include <vector>

#include "graph/csr.hpp"
#include "mgp/options.hpp"
#include "partition/partition.hpp"

namespace sfp::mgp {

/// Partition `g` into `nparts` with the method selected in `opt`.
/// Deterministic for a fixed options.seed.
partition::partition partition_graph(const graph::csr& g, int nparts,
                                     const options& opt = {});

/// Run all three methods (RB, KWAY, TV) — the paper evaluates SFC against
/// the best METIS-generated partition, so benches need all of them.
struct method_result {
  method algo;
  partition::partition part;
};
std::vector<method_result> run_all_methods(const graph::csr& g, int nparts,
                                           const options& opt = {});

}  // namespace sfp::mgp
