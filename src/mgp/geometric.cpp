#include "mgp/geometric.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace sfp::mgp {

namespace {

void rcb_recurse(std::span<const point3> points,
                 std::span<const graph::weight> weights,
                 std::vector<graph::vid>& ids, int nparts, int first_label,
                 std::vector<graph::vid>& out) {
  if (nparts == 1) {
    for (const graph::vid id : ids)
      out[static_cast<std::size_t>(id)] = first_label;
    return;
  }
  SFP_ASSERT(ids.size() >= static_cast<std::size_t>(nparts),
             "more parts than points in RCB subdomain");

  // Longest axis of the subdomain's bounding box.
  point3 lo = points[static_cast<std::size_t>(ids[0])];
  point3 hi = lo;
  for (const graph::vid id : ids) {
    for (int a = 0; a < 3; ++a) {
      lo[static_cast<std::size_t>(a)] =
          std::min(lo[static_cast<std::size_t>(a)],
                   points[static_cast<std::size_t>(id)][static_cast<std::size_t>(a)]);
      hi[static_cast<std::size_t>(a)] =
          std::max(hi[static_cast<std::size_t>(a)],
                   points[static_cast<std::size_t>(id)][static_cast<std::size_t>(a)]);
    }
  }
  int axis = 0;
  double best_extent = -1;
  for (int a = 0; a < 3; ++a) {
    const double extent = hi[static_cast<std::size_t>(a)] -
                          lo[static_cast<std::size_t>(a)];
    if (extent > best_extent) {
      best_extent = extent;
      axis = a;
    }
  }

  // Sort by the chosen coordinate (id as tiebreak for determinism).
  std::sort(ids.begin(), ids.end(), [&](graph::vid a, graph::vid b) {
    const double ca = points[static_cast<std::size_t>(a)][static_cast<std::size_t>(axis)];
    const double cb = points[static_cast<std::size_t>(b)][static_cast<std::size_t>(axis)];
    if (ca != cb) return ca < cb;
    return a < b;
  });

  // Weighted split at fraction k0/nparts, bounded so both sides can host
  // their share of parts.
  const int k0 = nparts / 2;
  const int k1 = nparts - k0;
  graph::weight total = 0;
  for (const graph::vid id : ids)
    total += weights.empty() ? 1 : weights[static_cast<std::size_t>(id)];
  const double target0 =
      static_cast<double>(total) * k0 / static_cast<double>(nparts);

  std::size_t cut = 0;
  graph::weight acc = 0;
  for (; cut < ids.size(); ++cut) {
    const graph::weight w =
        weights.empty() ? 1 : weights[static_cast<std::size_t>(ids[cut])];
    if (static_cast<double>(acc) + 0.5 * static_cast<double>(w) >= target0)
      break;
    acc += w;
  }
  cut = std::clamp(cut, static_cast<std::size_t>(k0),
                   ids.size() - static_cast<std::size_t>(k1));

  std::vector<graph::vid> left(ids.begin(),
                               ids.begin() + static_cast<std::ptrdiff_t>(cut));
  std::vector<graph::vid> right(ids.begin() + static_cast<std::ptrdiff_t>(cut),
                                ids.end());
  rcb_recurse(points, weights, left, k0, first_label, out);
  rcb_recurse(points, weights, right, k1, first_label + k0, out);
}

}  // namespace

partition::partition recursive_coordinate_bisection(
    std::span<const point3> points, std::span<const graph::weight> weights,
    int nparts) {
  SFP_REQUIRE(!points.empty(), "RCB needs at least one point");
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(static_cast<std::size_t>(nparts) <= points.size(),
              "more parts than points");
  SFP_REQUIRE(weights.empty() || weights.size() == points.size(),
              "weights must be empty or one per point");

  partition::partition p;
  p.num_parts = nparts;
  p.part_of.assign(points.size(), 0);
  std::vector<graph::vid> ids(points.size());
  std::iota(ids.begin(), ids.end(), 0);
  rcb_recurse(points, weights, ids, nparts, 0, p.part_of);
  return p;
}

}  // namespace sfp::mgp
