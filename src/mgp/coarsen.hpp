#pragma once
// Multilevel coarsening hierarchy: repeated heavy-edge matching + contraction.

#include <vector>

#include "graph/csr.hpp"
#include "mgp/match.hpp"
#include "util/rng.hpp"

namespace sfp::mgp {

/// One level of the hierarchy: the graph at this level and, for every level
/// but the finest, the map from the next-finer level's vertices onto ours.
struct level {
  graph::csr g;
  std::vector<graph::vid> coarse_of_finer;  // empty at level 0
};

/// The coarsening ladder, level 0 = the input graph (stored by copy so the
/// hierarchy owns everything it needs during uncoarsening).
struct hierarchy {
  std::vector<level> levels;
  const graph::csr& coarsest() const { return levels.back().g; }
};

/// Coarsen until at most `target_vertices` remain, the shrink factor stalls
/// (< 10% reduction), or matching can no longer merge anything.
/// `max_vertex_weight` is forwarded to heavy_edge_matching.
hierarchy coarsen(const graph::csr& g, graph::vid target_vertices,
                  graph::weight max_vertex_weight, rng& r);

/// Project a coarse-level partition label vector up one level.
std::vector<graph::vid> project(const level& lv,
                                const std::vector<graph::vid>& coarse_labels);

}  // namespace sfp::mgp
