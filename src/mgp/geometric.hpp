#pragma once
// Recursive coordinate bisection (RCB) — the classic geometric partitioner
// (Berger & Bokhari; the default in Zoltan-era toolchains). Included as a
// third family alongside the SFC and multilevel-graph partitioners: like the
// SFC it ignores the graph and uses only element positions, but it cuts by
// coordinate planes instead of following a locality-preserving curve.

#include <array>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace sfp::mgp {

using point3 = std::array<double, 3>;

/// Partition `points` into `nparts` by recursive weighted-median cuts along
/// the longest axis of each subdomain. `weights` may be empty (unit
/// weights). Deterministic. Guarantees every part non-empty for
/// nparts <= points.size(), and exact counts when weights are uniform and
/// the split ratios divide evenly.
partition::partition recursive_coordinate_bisection(
    std::span<const point3> points, std::span<const graph::weight> weights,
    int nparts);

}  // namespace sfp::mgp
