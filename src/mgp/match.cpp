#include "mgp/match.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace sfp::mgp {

matching heavy_edge_matching(const graph::csr& g,
                             graph::weight max_vertex_weight, rng& r) {
  const graph::vid nv = g.num_vertices();
  SFP_REQUIRE(nv > 0, "cannot match an empty graph");

  std::vector<graph::vid> visit(static_cast<std::size_t>(nv));
  std::iota(visit.begin(), visit.end(), 0);
  // Fisher–Yates with the deterministic rng.
  for (std::size_t i = visit.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(r.below(i));
    std::swap(visit[i - 1], visit[j]);
  }

  std::vector<graph::vid> mate(static_cast<std::size_t>(nv), -1);
  for (const graph::vid v : visit) {
    if (mate[static_cast<std::size_t>(v)] != -1) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.neighbor_weights(v);
    graph::vid best = -1;
    graph::weight best_w = -1;
    graph::weight best_vw = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::vid u = nbrs[i];
      if (mate[static_cast<std::size_t>(u)] != -1) continue;
      if (max_vertex_weight > 0 &&
          g.vertex_weight(v) + g.vertex_weight(u) > max_vertex_weight)
        continue;
      const graph::weight uw = g.vertex_weight(u);
      if (wgts[i] > best_w || (wgts[i] == best_w && uw < best_vw)) {
        best = u;
        best_w = wgts[i];
        best_vw = uw;
      }
    }
    if (best != -1) {
      mate[static_cast<std::size_t>(v)] = best;
      mate[static_cast<std::size_t>(best)] = v;
    } else {
      mate[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  matching m;
  m.coarse_of.assign(static_cast<std::size_t>(nv), -1);
  for (graph::vid v = 0; v < nv; ++v) {
    if (m.coarse_of[static_cast<std::size_t>(v)] != -1) continue;
    const graph::vid u = mate[static_cast<std::size_t>(v)];
    m.coarse_of[static_cast<std::size_t>(v)] = m.num_coarse;
    if (u != v) m.coarse_of[static_cast<std::size_t>(u)] = m.num_coarse;
    ++m.num_coarse;
  }
  return m;
}

}  // namespace sfp::mgp
