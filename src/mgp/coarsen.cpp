#include "mgp/coarsen.hpp"

#include "graph/ops.hpp"
#include "graph/validate.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"

namespace sfp::mgp {

hierarchy coarsen(const graph::csr& g, graph::vid target_vertices,
                  graph::weight max_vertex_weight, rng& r) {
  SFP_OBS_TIMED_SCOPE("mgp.coarsen");
  SFP_REQUIRE(g.num_vertices() > 0, "cannot coarsen an empty graph");
  hierarchy h;
  h.levels.push_back({g, {}});
  while (h.coarsest().num_vertices() > target_vertices) {
    const graph::csr& cur = h.coarsest();
    matching m = heavy_edge_matching(cur, max_vertex_weight, r);
    // Stall detection: require at least 10% shrinkage or give up (e.g. a
    // graph of isolated vertices, or the weight cap blocks all merges).
    if (m.num_coarse > (cur.num_vertices() * 9) / 10) break;
    graph::csr coarse = graph::contract(cur, m.coarse_of, m.num_coarse);
    // Audit tier: the contracted level must stay a well-formed symmetric
    // CSR graph, and vertex/edge weight must be conserved exactly (internal
    // edges vanish, nothing else).
    SFP_AUDIT_DIAG(graph::validate_csr(coarse));
    SFP_AUDIT_DIAG(graph::validate_coarsening(cur, coarse, m.coarse_of));
    h.levels.push_back({std::move(coarse), std::move(m.coarse_of)});
  }
  return h;
}

std::vector<graph::vid> project(const level& lv,
                                const std::vector<graph::vid>& coarse_labels) {
  SFP_REQUIRE(!lv.coarse_of_finer.empty(),
              "level 0 has no finer level to project to");
  std::vector<graph::vid> fine(lv.coarse_of_finer.size());
  for (std::size_t v = 0; v < fine.size(); ++v)
    fine[v] = coarse_labels[static_cast<std::size_t>(lv.coarse_of_finer[v])];
  return fine;
}

}  // namespace sfp::mgp
