#pragma once
// Heavy-edge matching for multilevel coarsening.

#include <vector>

#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace sfp::mgp {

/// Result of one matching pass: a fine-vertex -> coarse-vertex map. Matched
/// pairs share a coarse id; unmatched vertices keep their own.
struct matching {
  std::vector<graph::vid> coarse_of;
  graph::vid num_coarse = 0;
};

/// Randomized heavy-edge matching (HEM): visit vertices in random order and
/// match each unmatched vertex with its unmatched neighbour of heaviest
/// connecting edge (ties broken toward lighter vertices to keep coarse
/// weights even). `max_vertex_weight` caps merged weight so one coarse
/// vertex cannot grow past what balancing can later split; pass 0 for no cap.
matching heavy_edge_matching(const graph::csr& g,
                             graph::weight max_vertex_weight, rng& r);

}  // namespace sfp::mgp
