#include "mgp/partitioner.hpp"

#include "mgp/bisect.hpp"
#include "mgp/kway.hpp"
#include "util/contract.hpp"

namespace sfp::mgp {

const char* method_name(method m) {
  switch (m) {
    case method::recursive_bisection: return "RB";
    case method::kway: return "KWAY";
    case method::kway_volume: return "TV";
  }
  return "?";
}

partition::partition partition_graph(const graph::csr& g, int nparts,
                                     const options& opt) {
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(nparts <= g.num_vertices(), "more parts than vertices");
  rng r(opt.seed);
  const auto finish = [&](partition::partition p) {
    // Audit tier: whatever refinement did on the way back up, the result
    // must still label every vertex with an in-range part.
#if SFP_AUDIT_ENABLED
    partition::validate(p, g);  // throws contract_error on violation
    SFP_AUDIT(partition::all_parts_nonempty(p),
              "multilevel refinement left an empty part");
#endif
    return p;
  };
  switch (opt.algo) {
    case method::recursive_bisection:
      return finish(recursive_bisection(g, nparts, opt, r));
    case method::kway:
      return finish(
          kway_partition(g, nparts, kway_objective::edgecut, opt, r));
    case method::kway_volume:
      return finish(
          kway_partition(g, nparts, kway_objective::total_volume, opt, r));
  }
  SFP_REQUIRE(false, "invalid method");
  return {};
}

std::vector<method_result> run_all_methods(const graph::csr& g, int nparts,
                                           const options& opt) {
  std::vector<method_result> out;
  for (const method m : {method::recursive_bisection, method::kway,
                         method::kway_volume}) {
    options o = opt;
    o.algo = m;
    out.push_back({m, partition_graph(g, nparts, o)});
  }
  return out;
}

}  // namespace sfp::mgp
