#pragma once
// Multilevel graph bisection: coarsen, greedy-graph-growing initial
// bisection, Fiduccia–Mattheyses boundary refinement during uncoarsening.
// Recursive application yields the paper's "RB" partitioner.

#include <vector>

#include "graph/csr.hpp"
#include "mgp/options.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace sfp::mgp {

/// Multilevel 2-way split of `g`. Side 0 targets `target0` total vertex
/// weight (side 1 gets the rest). Returns one 0/1 label per vertex.
/// `tol` bounds each side at ceil(tol * target).
std::vector<graph::vid> bisect(const graph::csr& g, graph::weight target0,
                               double tol, const options& opt, rng& r);

/// FM refinement of an existing 2-way labelling (exposed for tests and for
/// the k-way initial partitioner). Mutates `side` in place; returns the
/// final cut weight.
graph::weight fm_refine(const graph::csr& g, std::vector<graph::vid>& side,
                        graph::weight target0, double tol, int max_passes,
                        rng& r);

/// Recursive multilevel bisection into `nparts` near-equal parts
/// (the METIS "RB" algorithm of paper Section 2).
partition::partition recursive_bisection(const graph::csr& g, int nparts,
                                         const options& opt, rng& r);

}  // namespace sfp::mgp
