#pragma once
// Direct multilevel k-way partitioning (METIS "KWAY") and its total-
// communication-volume variant (METIS "TV"), paper Section 2.

#include <vector>

#include "graph/csr.hpp"
#include "mgp/options.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace sfp::mgp {

enum class kway_objective { edgecut, total_volume };

/// Multilevel k-way: coarsen, initial partition via recursive bisection on
/// the coarsest graph, then greedy boundary refinement during uncoarsening
/// driven by the chosen objective. Imbalance up to
/// ceil(imbalance_tol * ideal) is accepted when it pays in the objective —
/// exactly the trade the paper observes costing METIS at O(1) elements per
/// processor.
partition::partition kway_partition(const graph::csr& g, int nparts,
                                    kway_objective objective,
                                    const options& opt, rng& r);

/// One greedy k-way refinement sweep set (exposed for tests): mutates
/// `labels`, returns the number of vertex moves performed.
int kway_refine(const graph::csr& g, std::vector<graph::vid>& labels,
                int nparts, kway_objective objective, double tol,
                int max_passes, rng& r);

}  // namespace sfp::mgp
