#pragma once
// Options for the multilevel graph partitioner (MGP) — this library's
// from-scratch stand-in for METIS (paper Section 2).
//
// The three methods mirror the algorithm families the paper benchmarks:
//  * recursive_bisection — METIS "RB": best load balance, larger edgecut;
//  * kway                — METIS "KWAY": minimises edgecut, tolerates
//                          imbalance up to `imbalance_tol`;
//  * kway_volume         — METIS "TV": k-way refinement driven by total
//                          communication volume instead of edgecut.

#include <cstdint>

namespace sfp::mgp {

enum class method : std::uint8_t {
  recursive_bisection,
  kway,
  kway_volume,
};

struct options {
  method algo = method::kway;

  /// Allowed imbalance for kway-style refinement: a part may grow to
  /// ceil(imbalance_tol * ideal_weight). (RB enforces near-exact splits.)
  double imbalance_tol = 1.03;

  /// Coarsening stops once the graph has at most this many vertices (RB) or
  /// max(coarsen_to, 4*k) vertices (k-way).
  int coarsen_to = 48;

  /// Maximum refinement passes per uncoarsening level.
  int refine_passes = 8;

  /// Number of random initial-bisection attempts at the coarsest level.
  int init_trials = 4;

  /// Seed for all randomized tie-breaking; runs are fully deterministic.
  std::uint64_t seed = 20030422;  // IPDPS'03 nod
};

const char* method_name(method m);

}  // namespace sfp::mgp
