#include "mgp/metis_compat.hpp"

#include <cmath>

#include "graph/csr.hpp"
#include "mgp/options.hpp"
#include "mgp/partitioner.hpp"
#include "partition/metrics.hpp"
#include "util/require.hpp"

namespace sfp::mgp::compat {

namespace {

graph::csr build_graph(const idxtype* nvtxs, const idxtype* xadj,
                       const idxtype* adjncy, const idxtype* vwgt,
                       const idxtype* adjwgt, int wgtflag) {
  SFP_REQUIRE(nvtxs != nullptr && xadj != nullptr, "null graph arrays");
  const idxtype n = *nvtxs;
  SFP_REQUIRE(n > 0, "graph must have vertices");
  const bool use_vwgt = (wgtflag & kVertexWeights) != 0;
  const bool use_adjwgt = (wgtflag & kEdgeWeights) != 0;
  SFP_REQUIRE(!use_vwgt || vwgt != nullptr, "wgtflag requests vwgt but null");
  SFP_REQUIRE(!use_adjwgt || adjwgt != nullptr,
              "wgtflag requests adjwgt but null");

  graph::builder b(n);
  if (use_vwgt) {
    for (idxtype v = 0; v < n; ++v)
      b.set_vertex_weight(v, vwgt[static_cast<std::size_t>(v)]);
  }
  for (idxtype v = 0; v < n; ++v) {
    for (idxtype e = xadj[static_cast<std::size_t>(v)];
         e < xadj[static_cast<std::size_t>(v) + 1]; ++e) {
      const idxtype u = adjncy[static_cast<std::size_t>(e)];
      SFP_REQUIRE(u >= 0 && u < n, "adjacency entry out of range");
      if (v < u) {
        const graph::weight w =
            use_adjwgt ? adjwgt[static_cast<std::size_t>(e)] : 1;
        b.add_edge(v, u, w);
      }
    }
  }
  return b.build();
}

options options_from(const int* opts, method algo) {
  options o;
  o.algo = algo;
  if (opts != nullptr && opts[0] != 0) o.seed = static_cast<std::uint64_t>(opts[1]);
  return o;
}

void run(const idxtype* nvtxs, const idxtype* xadj, const idxtype* adjncy,
         const idxtype* vwgt, const idxtype* adjwgt, const int* wgtflag,
         const int* numflag, const int* nparts, const int* opts, method algo,
         int* objective_out, idxtype* part, bool volume_objective_report) {
  SFP_REQUIRE(numflag == nullptr || *numflag == 0,
              "only C-style numbering (numflag=0) is supported");
  SFP_REQUIRE(nparts != nullptr && *nparts >= 1, "nparts must be >= 1");
  SFP_REQUIRE(part != nullptr, "part output array is null");
  const int wf = wgtflag ? *wgtflag : kNoWeights;
  const graph::csr g = build_graph(nvtxs, xadj, adjncy, vwgt, adjwgt, wf);
  const auto p = partition_graph(g, *nparts, options_from(opts, algo));
  for (std::size_t v = 0; v < p.part_of.size(); ++v)
    part[v] = p.part_of[v];
  if (objective_out != nullptr) {
    const auto m = partition::compute_metrics(g, p);
    *objective_out = volume_objective_report
                         ? static_cast<int>(m.tcv_interfaces)
                         : static_cast<int>(m.edgecut_weight);
  }
}

}  // namespace

void part_graph_recursive(const idxtype* nvtxs, const idxtype* xadj,
                          const idxtype* adjncy, const idxtype* vwgt,
                          const idxtype* adjwgt, const int* wgtflag,
                          const int* numflag, const int* nparts,
                          const int* options_in, int* edgecut, idxtype* part) {
  run(nvtxs, xadj, adjncy, vwgt, adjwgt, wgtflag, numflag, nparts, options_in,
      method::recursive_bisection, edgecut, part, false);
}

void part_graph_kway(const idxtype* nvtxs, const idxtype* xadj,
                     const idxtype* adjncy, const idxtype* vwgt,
                     const idxtype* adjwgt, const int* wgtflag,
                     const int* numflag, const int* nparts,
                     const int* options_in, int* edgecut, idxtype* part) {
  run(nvtxs, xadj, adjncy, vwgt, adjwgt, wgtflag, numflag, nparts, options_in,
      method::kway, edgecut, part, false);
}

void part_graph_vkway(const idxtype* nvtxs, const idxtype* xadj,
                      const idxtype* adjncy, const idxtype* vwgt,
                      const idxtype* adjwgt, const int* wgtflag,
                      const int* numflag, const int* nparts,
                      const int* options_in, int* volume, idxtype* part) {
  run(nvtxs, xadj, adjncy, vwgt, adjwgt, wgtflag, numflag, nparts, options_in,
      method::kway_volume, volume, part, true);
}

}  // namespace sfp::mgp::compat
