#pragma once
// METIS-4-style C API over the MGP partitioner, for drop-in use by codes
// that already call METIS_PartGraphRecursive / METIS_PartGraphKway /
// METIS_PartGraphVKway (the three entry points the paper benchmarks).
//
// Differences from real METIS are documented per parameter; the graph format
// is the classic CSR convention: xadj[nvtxs+1], adjncy/adjwgt[2*nedges],
// optional vwgt[nvtxs]. Only the numbering flag 0 (C-style) is supported.

#include <cstdint>

namespace sfp::mgp::compat {

using idxtype = std::int32_t;  ///< METIS-4's index type

/// Weight-flag values (METIS wgtflag): 0 none, 1 edge weights only,
/// 2 vertex weights only, 3 both.
inline constexpr int kNoWeights = 0;
inline constexpr int kEdgeWeights = 1;
inline constexpr int kVertexWeights = 2;
inline constexpr int kBothWeights = 3;

/// METIS_PartGraphRecursive: multilevel recursive bisection ("RB").
/// options[0] != 0 selects options[1] as the RNG seed; otherwise defaults.
/// Returns the edgecut through *edgecut and fills part[nvtxs].
void part_graph_recursive(const idxtype* nvtxs, const idxtype* xadj,
                          const idxtype* adjncy, const idxtype* vwgt,
                          const idxtype* adjwgt, const int* wgtflag,
                          const int* numflag, const int* nparts,
                          const int* options, int* edgecut, idxtype* part);

/// METIS_PartGraphKway: multilevel k-way, edgecut objective ("KWAY").
void part_graph_kway(const idxtype* nvtxs, const idxtype* xadj,
                     const idxtype* adjncy, const idxtype* vwgt,
                     const idxtype* adjwgt, const int* wgtflag,
                     const int* numflag, const int* nparts,
                     const int* options, int* edgecut, idxtype* part);

/// METIS_PartGraphVKway: multilevel k-way, total-communication-volume
/// objective ("TV"). *volume receives the METIS-style total communication
/// volume (interface count).
void part_graph_vkway(const idxtype* nvtxs, const idxtype* xadj,
                      const idxtype* adjncy, const idxtype* vwgt,
                      const idxtype* adjwgt, const int* wgtflag,
                      const int* numflag, const int* nparts,
                      const int* options, int* volume, idxtype* part);

}  // namespace sfp::mgp::compat
