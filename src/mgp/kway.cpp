#include "mgp/kway.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mgp/bisect.hpp"
#include "mgp/coarsen.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"

namespace sfp::mgp {

namespace {

/// Interface count of vertex u: number of distinct parts other than its own
/// among its neighbours — u's contribution to METIS-style total
/// communication volume.
int interfaces_of(const graph::csr& g, const std::vector<graph::vid>& labels,
                  graph::vid u) {
  const graph::vid pu = labels[static_cast<std::size_t>(u)];
  int count = 0;
  graph::vid seen[9];  // degree <= 8 on the cubed-sphere dual; general path below
  int nseen = 0;
  for (const graph::vid n : g.neighbors(u)) {
    const graph::vid pn = labels[static_cast<std::size_t>(n)];
    if (pn == pu) continue;
    bool dup = false;
    for (int i = 0; i < nseen; ++i) dup |= (seen[i] == pn);
    if (!dup) {
      if (nseen < 9) seen[nseen++] = pn;
      ++count;
    }
  }
  if (g.degree(u) <= 9) return count;
  // High-degree fallback: exact distinct count.
  std::vector<graph::vid> parts;
  for (const graph::vid n : g.neighbors(u)) {
    const graph::vid pn = labels[static_cast<std::size_t>(n)];
    if (pn != pu) parts.push_back(pn);
  }
  std::sort(parts.begin(), parts.end());
  parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
  return static_cast<int>(parts.size());
}

/// Change in total communication volume if v moves from its part to `q`:
/// recompute the contributions of v and its neighbours locally.
int volume_delta(const graph::csr& g, std::vector<graph::vid>& labels,
                 graph::vid v, graph::vid q) {
  const graph::vid p = labels[static_cast<std::size_t>(v)];
  int before = interfaces_of(g, labels, v);
  for (const graph::vid u : g.neighbors(v)) before += interfaces_of(g, labels, u);
  labels[static_cast<std::size_t>(v)] = q;
  int after = interfaces_of(g, labels, v);
  for (const graph::vid u : g.neighbors(v)) after += interfaces_of(g, labels, u);
  labels[static_cast<std::size_t>(v)] = p;
  return after - before;
}

}  // namespace

int kway_refine(const graph::csr& g, std::vector<graph::vid>& labels,
                int nparts, kway_objective objective, double tol,
                int max_passes, rng& r) {
  const graph::vid nv = g.num_vertices();
  SFP_REQUIRE(labels.size() == static_cast<std::size_t>(nv),
              "labels must cover the graph");
  const double ideal =
      static_cast<double>(g.total_vertex_weight()) / nparts;
  const auto allow =
      static_cast<graph::weight>(std::ceil(tol * ideal));

  std::vector<graph::weight> part_w(static_cast<std::size_t>(nparts), 0);
  std::vector<std::int64_t> part_n(static_cast<std::size_t>(nparts), 0);
  for (graph::vid v = 0; v < nv; ++v) {
    part_w[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
    ++part_n[static_cast<std::size_t>(labels[static_cast<std::size_t>(v)])];
  }

  std::vector<graph::vid> order(static_cast<std::size_t>(nv));
  std::iota(order.begin(), order.end(), 0);

  // Per-vertex connectivity scratch: weight of edges into each adjacent part.
  std::vector<graph::weight> conn;
  std::vector<graph::vid> touched;

  int total_moves = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[static_cast<std::size_t>(r.below(i))]);

    int moves = 0;
    for (const graph::vid v : order) {
      const graph::vid p = labels[static_cast<std::size_t>(v)];
      if (part_n[static_cast<std::size_t>(p)] <= 1) continue;  // keep parts non-empty
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.neighbor_weights(v);

      conn.assign(static_cast<std::size_t>(nparts), 0);
      touched.clear();
      bool boundary = false;
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const graph::vid pn = labels[static_cast<std::size_t>(nbrs[j])];
        if (conn[static_cast<std::size_t>(pn)] == 0 && pn != p)
          touched.push_back(pn);
        conn[static_cast<std::size_t>(pn)] += wgts[j];
        boundary |= (pn != p);
      }
      if (!boundary) continue;

      const graph::weight wv = g.vertex_weight(v);
      const graph::weight internal = conn[static_cast<std::size_t>(p)];

      graph::vid best_q = -1;
      graph::weight best_cut_gain = 0;
      int best_vol_delta = 0;
      bool best_balance_gain = false;
      for (const graph::vid q : touched) {
        if (part_w[static_cast<std::size_t>(q)] + wv > allow) continue;
        const graph::weight cut_gain =
            conn[static_cast<std::size_t>(q)] - internal;
        const bool balance_gain = part_w[static_cast<std::size_t>(q)] + wv <
                                  part_w[static_cast<std::size_t>(p)];
        bool take = false;
        int vol_d = 0;
        if (objective == kway_objective::edgecut) {
          // Accept strictly improving moves; accept neutral moves that
          // improve balance.
          if (cut_gain > 0 || (cut_gain == 0 && balance_gain)) {
            take = best_q == -1 || cut_gain > best_cut_gain ||
                   (cut_gain == best_cut_gain && balance_gain &&
                    !best_balance_gain);
          }
        } else {
          vol_d = volume_delta(g, labels, v, q);
          if (vol_d < 0 || (vol_d == 0 && (cut_gain > 0 || balance_gain))) {
            take = best_q == -1 || vol_d < best_vol_delta ||
                   (vol_d == best_vol_delta && cut_gain > best_cut_gain);
          }
        }
        if (take) {
          best_q = q;
          best_cut_gain = cut_gain;
          best_vol_delta = vol_d;
          best_balance_gain = balance_gain;
        }
      }

      if (best_q != -1) {
        labels[static_cast<std::size_t>(v)] = best_q;
        part_w[static_cast<std::size_t>(p)] -= wv;
        part_w[static_cast<std::size_t>(best_q)] += wv;
        --part_n[static_cast<std::size_t>(p)];
        ++part_n[static_cast<std::size_t>(best_q)];
        ++moves;
      }
    }
    total_moves += moves;
    if (moves == 0) break;
  }

  // Hard balance enforcement: any part above the allowance sheds boundary
  // vertices at least cut damage (kmetis-style); if an overweight part has
  // no feasible boundary move, its lightest vertex teleports to the lightest
  // part with room. Guarantees max part weight <= allow whenever a feasible
  // assignment exists.
  const int max_rounds = 4 * static_cast<int>(nv) + nparts;
  for (int round = 0; round < max_rounds; ++round) {
    graph::vid worst = 0;
    for (graph::vid q = 1; q < nparts; ++q)
      if (part_w[static_cast<std::size_t>(q)] >
          part_w[static_cast<std::size_t>(worst)])
        worst = q;
    if (part_w[static_cast<std::size_t>(worst)] <= allow) break;

    graph::vid best_v = -1, best_q = -1;
    graph::weight best_gain = 0;
    bool have = false;
    for (const graph::vid v : order) {
      if (labels[static_cast<std::size_t>(v)] != worst) continue;
      if (part_n[static_cast<std::size_t>(worst)] <= 1) break;
      const graph::weight wv = g.vertex_weight(v);
      conn.assign(static_cast<std::size_t>(nparts), 0);
      touched.clear();
      for (std::size_t j = 0; j < g.neighbors(v).size(); ++j) {
        const graph::vid pn =
            labels[static_cast<std::size_t>(g.neighbors(v)[j])];
        if (conn[static_cast<std::size_t>(pn)] == 0 && pn != worst)
          touched.push_back(pn);
        conn[static_cast<std::size_t>(pn)] += g.neighbor_weights(v)[j];
      }
      for (const graph::vid q : touched) {
        if (part_w[static_cast<std::size_t>(q)] + wv > allow) continue;
        const graph::weight cut_gain =
            conn[static_cast<std::size_t>(q)] -
            conn[static_cast<std::size_t>(worst)];
        if (!have || cut_gain > best_gain) {
          have = true;
          best_v = v;
          best_q = q;
          best_gain = cut_gain;
        }
      }
    }
    if (!have) {
      // Teleport: lightest vertex of the overweight part to the globally
      // lightest part that can take it.
      graph::vid lightest_part = -1;
      for (graph::vid q = 0; q < nparts; ++q) {
        if (q == worst) continue;
        if (lightest_part == -1 ||
            part_w[static_cast<std::size_t>(q)] <
                part_w[static_cast<std::size_t>(lightest_part)])
          lightest_part = q;
      }
      for (const graph::vid v : order) {
        if (labels[static_cast<std::size_t>(v)] != worst) continue;
        if (best_v == -1 || g.vertex_weight(v) < g.vertex_weight(best_v))
          best_v = v;
      }
      if (lightest_part == -1 || best_v == -1 ||
          part_w[static_cast<std::size_t>(lightest_part)] +
                  g.vertex_weight(best_v) >
              allow)
        break;  // no feasible assignment at this granularity
      best_q = lightest_part;
    }
    const graph::weight wv = g.vertex_weight(best_v);
    labels[static_cast<std::size_t>(best_v)] = best_q;
    part_w[static_cast<std::size_t>(worst)] -= wv;
    part_w[static_cast<std::size_t>(best_q)] += wv;
    --part_n[static_cast<std::size_t>(worst)];
    ++part_n[static_cast<std::size_t>(best_q)];
    ++total_moves;
  }
  return total_moves;
}

partition::partition kway_partition(const graph::csr& g, int nparts,
                                    kway_objective objective,
                                    const options& opt, rng& r) {
  SFP_OBS_TIMED_SCOPE("mgp.kway");
  SFP_REQUIRE(nparts >= 1, "need at least one part");
  SFP_REQUIRE(nparts <= g.num_vertices(), "more parts than vertices");
  if (nparts == 1) {
    return partition::partition(
        1, std::vector<graph::vid>(static_cast<std::size_t>(g.num_vertices()), 0));
  }

  // Coarsen to ~4 vertices per part (kmetis-style); never below nparts.
  const graph::vid coarse_target = std::max<graph::vid>(
      static_cast<graph::vid>(nparts) * 4,
      static_cast<graph::vid>(opt.coarsen_to));
  const graph::weight max_vwgt = std::max<graph::weight>(
      1, (3 * g.total_vertex_weight()) /
             (2 * std::max<graph::weight>(1, coarse_target)));
  hierarchy h = coarsen(g, coarse_target, max_vwgt, r);

  // Initial k-way partition on the coarsest graph via recursive bisection
  // (tight tolerance; the k-way refinement then trades balance for the
  // objective on the way back up).
  std::vector<graph::vid> labels;
  {
    SFP_OBS_TIMED_SCOPE("mgp.initial");
    options rb_opt = opt;
    rb_opt.algo = method::recursive_bisection;
    labels = recursive_bisection(h.coarsest(), nparts, rb_opt, r).part_of;
    kway_refine(h.coarsest(), labels, nparts, objective, opt.imbalance_tol,
                opt.refine_passes, r);
  }

  {
    SFP_OBS_TIMED_SCOPE("mgp.refine");
    for (std::size_t lvl = h.levels.size(); lvl-- > 1;) {
      labels = project(h.levels[lvl], labels);
      kway_refine(h.levels[lvl - 1].g, labels, nparts, objective,
                  opt.imbalance_tol, opt.refine_passes, r);
    }
  }
  return partition::partition(nparts, std::move(labels));
}

}  // namespace sfp::mgp
